#!/usr/bin/env bash
# The full pre-merge gate: formatting, lints, release build, all tests.
# Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: release build + tests =="
cargo build --release
cargo test -q

echo "== chaos smoke: fault-injection suite =="
cargo test -q --test chaos

echo "All checks passed."
