#!/usr/bin/env bash
# The full pre-merge gate: formatting, lints, release build, all tests.
# Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: release build + tests =="
cargo build --release
cargo test -q

echo "== chaos smoke: fault-injection suite =="
cargo test -q --test chaos

echo "== bench smoke: regression harness =="
# Tiny-scale run of all four workloads; the emitted JSON must validate
# against the bench schema and self-compare with zero regressions.
GEPETO_SCALE=0.002 ./target/release/gepeto-bench run \
    --users 4 --k 3 --max-iter 2 --out-dir target/bench-smoke
./target/release/gepeto-bench validate \
    target/bench-smoke/BENCH_sampling.json \
    target/bench-smoke/BENCH_kmeans.json \
    target/bench-smoke/BENCH_djcluster.json \
    target/bench-smoke/BENCH_synth.json
for w in sampling kmeans djcluster synth; do
    ./target/release/gepeto-bench compare \
        "target/bench-smoke/BENCH_$w.json" "target/bench-smoke/BENCH_$w.json"
done

echo "== perf-diff smoke: a run diffed against itself is clean =="
# The root-cause engine must not invent causes out of identical runs;
# on a real regression the compare gate appends its ranked report.
./target/release/gepeto-bench diff \
    target/bench-smoke/BENCH_kmeans.json target/bench-smoke/BENCH_kmeans.json \
    | grep -q 'no significant delta'

echo "== bench perf-gate: compare against committed baselines =="
# Virtual-cluster metrics (shuffle_bytes, counters, makespan) are
# deterministic, so any drift beyond the threshold is a real perf or
# output regression — this is what gates the columnar/shuffle fast
# paths. Host-dependent metrics (wall_ms, task p95s) are ignored so
# machine speed is not a regression.
for w in sampling kmeans djcluster synth; do
    ./target/release/gepeto-bench compare \
        "crates/bench/baselines/BENCH_$w.json" "target/bench-smoke/BENCH_$w.json" \
        --threshold 30 --ignore wall_ms,task
done

echo "== pool smoke: thread-count invariance + pool telemetry =="
# The same durable run at --threads 1 (the fully inline sequential
# reference) and --threads 2 (work-stealing pool) must commit
# byte-identical OUTPUT artifacts, and the pooled run's exposition must
# carry the gepeto_pool_* families.
rm -rf target/bench-smoke/pool-t1 target/bench-smoke/pool-t2
POOL_FLAGS=(kmeans --users 6 --scale 0.004 --k 3 --max-iter 4)
./target/release/gepeto "${POOL_FLAGS[@]}" --threads 1 \
    --run-dir target/bench-smoke/pool-t1
./target/release/gepeto "${POOL_FLAGS[@]}" --threads 2 \
    --run-dir target/bench-smoke/pool-t2 \
    --prom-out target/bench-smoke/pool.prom
cmp target/bench-smoke/pool-t1/OUTPUT target/bench-smoke/pool-t2/OUTPUT
./target/release/gepeto-bench validate-prom target/bench-smoke/pool.prom
grep -q '^gepeto_pool_threads 2' target/bench-smoke/pool.prom
grep -q '^gepeto_pool_tasks_total [1-9]' target/bench-smoke/pool.prom
grep -q '^gepeto_pool_steals_total [0-9]' target/bench-smoke/pool.prom

echo "== kernel bench smoke: every micro-bench body runs once =="
# Smoke mode (no --bench flag): each benchmark body executes exactly
# once, so the SoA/pool/grouping/codec kernels stay compile-and-run
# clean without burning bench minutes.
cargo test -q -p gepeto-bench --benches

echo "== spill smoke: out-of-core shuffle under a starvation budget =="
# A synthetic workload forced through the spill/merge path; the
# exposition must prove the engine actually went out of core.
./target/release/gepeto synth --users 500 --chunk-mb 1 --memory-budget 1k \
    --prom-out target/bench-smoke/synth.prom --summary
./target/release/gepeto-bench validate-prom target/bench-smoke/synth.prom
grep -q '^gepeto_shuffle_spill_files_total [1-9]' target/bench-smoke/synth.prom
grep -q '^gepeto_shuffle_spilled_bytes_total [1-9]' target/bench-smoke/synth.prom

echo "== mem-gate: memory observability + regression gating =="
# The v2 bench artifacts must carry the mem block end to end.
grep -q '"mem"' target/bench-smoke/BENCH_synth.json
grep -q '"accounted_peak"' target/bench-smoke/BENCH_synth.json
# The tracking allocator's gauges flow into the Prometheus exposition
# of the budgeted spill run above.
grep -q '^gepeto_mem_peak_bytes [1-9]' target/bench-smoke/synth.prom
grep -q '^gepeto_mem_live_bytes [0-9]' target/bench-smoke/synth.prom
grep -q '^gepeto_mem_allocated_bytes_total [1-9]' target/bench-smoke/synth.prom
# The summary prints budget-vs-actual accounting and the spill
# estimator's cumulative error.
./target/release/gepeto synth --users 200 --chunk-mb 1 --memory-budget 4k \
    --summary 2> target/bench-smoke/memgate.summary
grep -q 'memory: budget' target/bench-smoke/memgate.summary
grep -q 'heap: peak' target/bench-smoke/memgate.summary
# An injected memory regression (10x heap peak) must fail the compare
# gate even though every time metric is identical.
sed 's/"peak_bytes": \([0-9][0-9]*\)/"peak_bytes": \19/' \
    target/bench-smoke/BENCH_synth.json > target/bench-smoke/BENCH_synth_bloat.json
if ./target/release/gepeto-bench compare \
    target/bench-smoke/BENCH_synth.json target/bench-smoke/BENCH_synth_bloat.json \
    --threshold 30 > /dev/null; then
    echo "mem-gate: inflated heap peak was not flagged" >&2
    exit 1
fi

echo "== io-chaos smoke: storage faults repaired, counters exported =="
# A spilling run under a storage-fault soup must still succeed, and the
# repairs must show up in the Prometheus durability families.
./target/release/gepeto synth --users 200 --chunk-mb 1 --memory-budget 1 \
    --io-faults eio=0.3,torn=0.4,bitrot=0.2,seed=11 \
    --prom-out target/bench-smoke/iochaos.prom --summary
./target/release/gepeto-bench validate-prom target/bench-smoke/iochaos.prom
grep -q '^gepeto_io_retries_total [0-9]' target/bench-smoke/iochaos.prom
grep -q '^gepeto_io_torn_writes_detected_total [0-9]' target/bench-smoke/iochaos.prom
grep -q '^gepeto_spill_runs_quarantined_total [0-9]' target/bench-smoke/iochaos.prom

echo "== resume smoke: SIGKILL a durable run mid-flight, resume, diff =="
# Two identical durable k-means runs; one is killed mid-shuffle and
# resumed from its journal. Both OUTPUT artifacts must be byte-equal,
# and the resumed run's exposition must carry the journal families.
RESUME_A=target/bench-smoke/run-clean
RESUME_B=target/bench-smoke/run-killed
rm -rf "$RESUME_A" "$RESUME_B"
KM_FLAGS=(--users 40 --scale 0.01 --k 5 --max-iter 40 --delta 0 --memory-budget 1)
./target/release/gepeto kmeans "${KM_FLAGS[@]}" --run-dir "$RESUME_A"
./target/release/gepeto kmeans "${KM_FLAGS[@]}" --run-dir "$RESUME_B" \
    --trace-out "$RESUME_B/trace.json" &
VICTIM=$!
# Kill once the journal shows committed progress (two sealed iterations).
for _ in $(seq 1 3000); do
    CHECKPOINTS=$(grep -c ' checkpoint ' "$RESUME_B/journal.log" 2>/dev/null || true)
    if [ "${CHECKPOINTS:-0}" -ge 2 ]; then
        break
    fi
    sleep 0.01
done
kill -9 "$VICTIM" 2>/dev/null || true
wait "$VICTIM" 2>/dev/null || true
test ! -f "$RESUME_B/OUTPUT" # the kill landed before completion
./target/release/gepeto resume "$RESUME_B" \
    --prom-out target/bench-smoke/resume.prom
cmp "$RESUME_A/OUTPUT" "$RESUME_B/OUTPUT"
./target/release/gepeto resume "$RESUME_B" | grep -q 'already complete'
./target/release/gepeto-bench validate-prom target/bench-smoke/resume.prom
# Whether the in-flight iteration had committed partitions at kill time
# is a race, so assert the family is exported, not a specific count.
grep -q '^gepeto_journal_replayed_tasks_total [0-9]' target/bench-smoke/resume.prom
# The resumed run re-exports ONE stitched Perfetto trace: structurally
# valid, with the resumed attempt on its own lane next to the pre-kill
# attempt's work.
./target/release/gepeto-bench validate-trace "$RESUME_B/trace.json"
grep -q 'attempt 1' "$RESUME_B/trace.json"

echo "== live monitoring smoke: watch + exposition + flamegraph + trace =="
# A chaos k-means under the heartbeat reporter must leave a well-formed
# Prometheus exposition, folded flamegraph stacks, and a structurally
# valid Chrome/Perfetto trace behind.
./target/release/gepeto kmeans --users 2 --scale 0.002 --k 2 --max-iter 2 \
    --crash 1@40 --watch=0.2 \
    --prom-out target/bench-smoke/kmeans.prom \
    --folded-out target/bench-smoke/kmeans.folded \
    --trace-out target/bench-smoke/kmeans.trace.json
./target/release/gepeto-bench validate-prom target/bench-smoke/kmeans.prom
./target/release/gepeto-bench validate-trace target/bench-smoke/kmeans.trace.json
test -s target/bench-smoke/kmeans.folded
test -s target/bench-smoke/kmeans.folded.virtual
test -s target/bench-smoke/kmeans.folded.alloc

echo "All checks passed."
