#!/usr/bin/env bash
# The full pre-merge gate: formatting, lints, release build, all tests.
# Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: release build + tests =="
cargo build --release
cargo test -q

echo "== chaos smoke: fault-injection suite =="
cargo test -q --test chaos

echo "== bench smoke: regression harness =="
# Tiny-scale run of all four workloads; the emitted JSON must validate
# against the bench schema and self-compare with zero regressions.
GEPETO_SCALE=0.002 ./target/release/gepeto-bench run \
    --users 4 --k 3 --max-iter 2 --out-dir target/bench-smoke
./target/release/gepeto-bench validate \
    target/bench-smoke/BENCH_sampling.json \
    target/bench-smoke/BENCH_kmeans.json \
    target/bench-smoke/BENCH_djcluster.json \
    target/bench-smoke/BENCH_synth.json
for w in sampling kmeans djcluster synth; do
    ./target/release/gepeto-bench compare \
        "target/bench-smoke/BENCH_$w.json" "target/bench-smoke/BENCH_$w.json"
done

echo "== bench perf-gate: compare against committed baselines =="
# Virtual-cluster metrics (shuffle_bytes, counters, makespan) are
# deterministic, so any drift beyond the threshold is a real perf or
# output regression — this is what gates the columnar/shuffle fast
# paths. Host-dependent metrics (wall_ms, task p95s) are ignored so
# machine speed is not a regression.
for w in sampling kmeans djcluster synth; do
    ./target/release/gepeto-bench compare \
        "crates/bench/baselines/BENCH_$w.json" "target/bench-smoke/BENCH_$w.json" \
        --threshold 30 --ignore wall_ms,task
done

echo "== spill smoke: out-of-core shuffle under a starvation budget =="
# A synthetic workload forced through the spill/merge path; the
# exposition must prove the engine actually went out of core.
./target/release/gepeto synth --users 500 --chunk-mb 1 --memory-budget 1k \
    --prom-out target/bench-smoke/synth.prom --summary
./target/release/gepeto-bench validate-prom target/bench-smoke/synth.prom
grep -q '^gepeto_shuffle_spill_files_total [1-9]' target/bench-smoke/synth.prom
grep -q '^gepeto_shuffle_spilled_bytes_total [1-9]' target/bench-smoke/synth.prom

echo "== live monitoring smoke: watch + exposition + flamegraph =="
# A chaos k-means under the heartbeat reporter must leave a well-formed
# Prometheus exposition and folded flamegraph stacks behind.
./target/release/gepeto kmeans --users 2 --scale 0.002 --k 2 --max-iter 2 \
    --crash 1@40 --watch=0.2 \
    --prom-out target/bench-smoke/kmeans.prom \
    --folded-out target/bench-smoke/kmeans.folded
./target/release/gepeto-bench validate-prom target/bench-smoke/kmeans.prom
test -s target/bench-smoke/kmeans.folded
test -s target/bench-smoke/kmeans.folded.virtual

echo "All checks passed."
