//! End-of-run aggregation: folds the flat event stream into the
//! jobtracker-style report the paper's tables are built from — per-phase
//! wall time, task-time quantiles, stragglers, retries, shuffle volume.

use crate::event::{Event, EventKind};
use crate::histogram::Histogram;
use crate::monitor::fmt_bytes;
use std::fmt::Write as _;

/// Counter name the engine uses for shuffled bytes (surfaced as its own
/// line in the report).
pub const SHUFFLE_BYTES_COUNTER: &str = "mapred.shuffle.bytes";
/// Counter name the engine uses for task retries.
pub const TASK_RETRIES_COUNTER: &str = "mapred.task.retries";
/// Counter name the engine uses for map tasks re-executed because their
/// node crashed after they completed (their local outputs were lost).
pub const REEXECUTED_MAPS_COUNTER: &str = "mapred.maps.reexecuted";
/// Counter name the engine uses for chunk reads that failed over past a
/// dead or corrupt replica.
pub const FAILED_OVER_READS_COUNTER: &str = "dfs.reads.failed_over";
/// Counter name the engine uses for nodes blacklisted by the jobtracker
/// after repeated task failures.
pub const BLACKLISTED_NODES_COUNTER: &str = "mapred.nodes.blacklisted";
/// Counter name the clustering kernels use for point-to-centroid distance
/// evaluations (the k-means inner-loop cost driver).
pub const DISTANCE_EVALS_COUNTER: &str = "kernel.distance_evals";
/// Counter name the engine uses for reduce partitions whose stable sort
/// was skipped because the reducer declared order-insensitive input.
pub const SORT_SKIPPED_COUNTER: &str = "shuffle.sort_skipped";
/// Counter name the engine uses for shuffle bytes avoided by compressed
/// payload encodings (e.g. delta-varint neighborhoods), versus the raw
/// representation.
pub const SHUFFLE_BYTES_SAVED_COUNTER: &str = "shuffle.bytes_saved";
/// Counter name the engine uses for intermediate bytes spilled to local
/// disk when a shuffle partition exceeded the job's memory budget.
pub const SPILLED_BYTES_COUNTER: &str = "shuffle.spilled_bytes";
/// Counter name the engine uses for sorted spill runs written to local
/// disk by memory-bounded map tasks.
pub const SPILL_FILES_COUNTER: &str = "shuffle.spill_files";
/// Counter name the engine uses for reduce groups whose value list was
/// spilled to disk because it exceeded the per-group memory budget.
pub const SPILLED_GROUPS_COUNTER: &str = "reduce.spilled_groups";
/// Counter name the engine uses for transient storage IO errors absorbed
/// by commit retry loops (injected EIOs and simulated slow-disk stalls).
pub const IO_RETRIES_COUNTER: &str = "io.retries";
/// Counter name the engine uses for torn (partial) writes caught by
/// commit-footer verification.
pub const TORN_WRITES_COUNTER: &str = "io.torn_writes_detected";
/// Counter name the engine uses for spill runs quarantined after failing
/// verification (torn or corrupt) and rewritten from memory.
pub const RUNS_QUARANTINED_COUNTER: &str = "spill.runs_quarantined";
/// Counter name the engine uses for reduce tasks replayed from committed
/// journal artifacts on `gepeto resume` instead of being recomputed.
pub const JOURNAL_REPLAYED_COUNTER: &str = "journal.replayed_tasks";
/// Counter name the engine uses for virtual milliseconds stalled on
/// storage: EIO retry backoff plus simulated slow-disk write penalties,
/// accumulated across every spill-seal and artifact commit.
pub const IO_STALL_MS_COUNTER: &str = "io.stall_ms";
/// Counter name the engine uses for the configured per-partition spill
/// budget, in bytes (the `--memory-budget` value threaded into the job).
pub const MEM_BUDGET_BYTES_COUNTER: &str = "mem.budget_bytes";
/// Counter name the engine uses for the high-water mark of its
/// budget-accounted buffers (per-partition shuffle buffers), in bytes —
/// the "actual peak" half of the budget-vs-actual line.
pub const MEM_ACCOUNTED_PEAK_COUNTER: &str = "mem.accounted_peak";
/// Counter name the engine uses for how far the accounted peak crossed
/// the configured budget (0 when the run stayed within it).
pub const MEM_PEAK_OVER_BUDGET_COUNTER: &str = "mem.peak_over_budget_bytes";
/// Counter name the engine uses for the allocator-measured peak live
/// heap observed over the run's driver window, in bytes.
pub const MEM_PEAK_BYTES_COUNTER: &str = "mem.peak_bytes";
/// Counter name the engine uses for cumulative bytes allocated over the
/// run's driver window.
pub const MEM_ALLOCATED_BYTES_COUNTER: &str = "mem.allocated_bytes";
/// Counter name the engine uses for cumulative allocation calls over
/// the run's driver window.
pub const MEM_ALLOCS_COUNTER: &str = "mem.allocs";
/// Counter name the engine uses for the absolute error between the
/// estimated buffered size that triggers a spill and the encoded bytes
/// the spill run actually wrote.
pub const SPILL_ESTIMATE_ERROR_COUNTER: &str = "spill.estimate_error_bytes";

/// Wall time attributed to one phase (summed across repeats, e.g.
/// k-means iterations each contributing a map phase).
#[derive(Debug, Clone)]
pub struct PhaseStat {
    /// Phase name (the part after `phase.`).
    pub name: String,
    /// Total wall time in microseconds.
    pub wall_us: u64,
    /// How many spans contributed.
    pub spans: u64,
}

/// Task-duration distribution for one task kind (`task.map`, ...).
#[derive(Debug, Clone)]
pub struct TaskStats {
    /// Task kind (the part after `task.`).
    pub kind: String,
    /// Number of tasks.
    pub count: u64,
    /// Median task wall time (µs, log-bucket resolution).
    pub p50_us: u64,
    /// 95th-percentile task wall time (µs, log-bucket resolution).
    pub p95_us: u64,
    /// Slowest task wall time (µs, exact).
    pub max_us: u64,
}

/// A task whose wall time stands far above its cohort's median.
#[derive(Debug, Clone)]
pub struct Straggler {
    /// Task kind (the part after `task.`).
    pub kind: String,
    /// The task's identity labels, as captured on its span.
    pub labels: Vec<(String, String)>,
    /// The task's wall time in microseconds.
    pub dur_us: u64,
    /// Its cohort's median in microseconds.
    pub p50_us: u64,
}

/// The end-of-run rollup produced by [`crate::Recorder::summary`].
#[derive(Debug, Clone, Default)]
pub struct SummaryReport {
    /// Per-phase wall time, in order of first appearance.
    pub phases: Vec<PhaseStat>,
    /// Per-task-kind duration quantiles.
    pub tasks: Vec<TaskStats>,
    /// Tasks slower than 2x their cohort median (and ≥ 1 ms).
    pub stragglers: Vec<Straggler>,
    /// Total task retries.
    pub retries: u64,
    /// Map tasks re-executed after losing their outputs to a node crash.
    pub reexecuted_maps: u64,
    /// Chunk reads that failed over past a dead or corrupt replica.
    pub failed_over_reads: u64,
    /// Nodes blacklisted by the jobtracker.
    pub blacklisted_nodes: u64,
    /// Total shuffled bytes, when the engine reported them.
    pub shuffle_bytes: Option<u64>,
    /// Point-to-centroid distance evaluations in the clustering kernels.
    pub distance_evals: u64,
    /// Reduce partitions that took the sort-skipping fast path.
    pub sort_skipped: u64,
    /// Shuffle bytes avoided by compressed payload encodings.
    pub shuffle_bytes_saved: u64,
    /// Intermediate bytes spilled to disk by memory-bounded shuffles.
    pub spilled_bytes: u64,
    /// Sorted spill runs written to disk by memory-bounded map tasks.
    pub spill_files: u64,
    /// Reduce groups whose values were spilled past the memory budget.
    pub spilled_groups: u64,
    /// Transient storage IO errors absorbed by commit retry loops.
    pub io_retries: u64,
    /// Torn writes caught by commit-footer verification.
    pub torn_writes_detected: u64,
    /// Spill runs quarantined after failing verification.
    pub runs_quarantined: u64,
    /// Virtual milliseconds stalled on storage (EIO backoff, slow disk).
    pub io_stall_ms: u64,
    /// Reduce tasks replayed from committed journal artifacts on resume.
    pub journal_replayed_tasks: u64,
    /// Configured per-partition spill budget, bytes (0 = unbudgeted).
    pub mem_budget_bytes: u64,
    /// High-water mark of the engine's budget-accounted buffers, bytes.
    pub mem_accounted_peak: u64,
    /// Bytes the accounted peak crossed the budget by (0 when within).
    pub mem_peak_over_budget: u64,
    /// Allocator-measured peak live heap over the run, bytes.
    pub mem_peak_bytes: u64,
    /// Cumulative bytes allocated over the run.
    pub mem_allocated_bytes: u64,
    /// Cumulative allocation calls over the run.
    pub mem_allocs: u64,
    /// |estimated spill size − actual encoded spill bytes|, summed.
    pub spill_estimate_error_bytes: u64,
    /// Every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
}

/// Threshold below which a slow task is noise, not a straggler.
const STRAGGLER_MIN_US: u64 = 1_000;

impl SummaryReport {
    /// Builds the report from a captured event stream and counter
    /// snapshot.
    ///
    /// Conventions: spans named `phase.<p>` feed the phase table; spans
    /// named `task.<kind>` feed the task-time table (their `span_start`
    /// labels identify the task); `task.retry` points count as retries
    /// in addition to [`TASK_RETRIES_COUNTER`].
    pub fn from_events(events: &[Event], counters: &[(String, u64)]) -> Self {
        let mut phases: Vec<PhaseStat> = Vec::new();
        let mut task_hists: Vec<(String, Histogram)> = Vec::new();
        let mut task_durs: Vec<(String, u64, u64)> = Vec::new(); // kind, span_id, dur
        let mut retry_points = 0u64;

        for e in events {
            match e.kind {
                EventKind::SpanEnd => {
                    if let Some(name) = e.name.strip_prefix("phase.") {
                        let dur = e.dur_us.unwrap_or(0);
                        match phases.iter_mut().find(|p| p.name == name) {
                            Some(p) => {
                                p.wall_us += dur;
                                p.spans += 1;
                            }
                            None => phases.push(PhaseStat {
                                name: name.to_owned(),
                                wall_us: dur,
                                spans: 1,
                            }),
                        }
                    } else if let Some(kind) = e.name.strip_prefix("task.") {
                        let dur = e.dur_us.unwrap_or(0);
                        match task_hists.iter_mut().find(|(k, _)| k == kind) {
                            Some((_, h)) => h.observe(dur),
                            None => {
                                let mut h = Histogram::new();
                                h.observe(dur);
                                task_hists.push((kind.to_owned(), h));
                            }
                        }
                        task_durs.push((kind.to_owned(), e.span_id, dur));
                    }
                }
                EventKind::Point if e.name == "task.retry" => retry_points += 1,
                _ => {}
            }
        }

        let tasks: Vec<TaskStats> = task_hists
            .iter()
            .map(|(kind, h)| TaskStats {
                kind: kind.clone(),
                count: h.count(),
                p50_us: h.quantile(0.5).unwrap_or(0),
                p95_us: h.quantile(0.95).unwrap_or(0),
                max_us: h.max().unwrap_or(0),
            })
            .collect();

        // A straggler runs past twice its cohort's median (Hadoop's
        // speculative-execution heuristic) and past an absolute floor.
        let mut stragglers = Vec::new();
        for (kind, span_id, dur) in &task_durs {
            let p50 = tasks
                .iter()
                .find(|t| &t.kind == kind)
                .map(|t| t.p50_us)
                .unwrap_or(0);
            if *dur >= STRAGGLER_MIN_US && *dur > p50.saturating_mul(2) {
                let labels = events
                    .iter()
                    .find(|e| e.kind == EventKind::SpanStart && e.span_id == *span_id)
                    .map(|e| e.labels.clone())
                    .unwrap_or_default();
                stragglers.push(Straggler {
                    kind: kind.clone(),
                    labels,
                    dur_us: *dur,
                    p50_us: p50,
                });
            }
        }
        stragglers.sort_by_key(|s| std::cmp::Reverse(s.dur_us));

        let counter = |name: &str| counters.iter().find(|(k, _)| k == name).map(|&(_, v)| v);
        Self {
            phases,
            tasks,
            stragglers,
            retries: counter(TASK_RETRIES_COUNTER).unwrap_or(0).max(retry_points),
            reexecuted_maps: counter(REEXECUTED_MAPS_COUNTER).unwrap_or(0),
            failed_over_reads: counter(FAILED_OVER_READS_COUNTER).unwrap_or(0),
            blacklisted_nodes: counter(BLACKLISTED_NODES_COUNTER).unwrap_or(0),
            shuffle_bytes: counter(SHUFFLE_BYTES_COUNTER),
            distance_evals: counter(DISTANCE_EVALS_COUNTER).unwrap_or(0),
            sort_skipped: counter(SORT_SKIPPED_COUNTER).unwrap_or(0),
            shuffle_bytes_saved: counter(SHUFFLE_BYTES_SAVED_COUNTER).unwrap_or(0),
            spilled_bytes: counter(SPILLED_BYTES_COUNTER).unwrap_or(0),
            spill_files: counter(SPILL_FILES_COUNTER).unwrap_or(0),
            spilled_groups: counter(SPILLED_GROUPS_COUNTER).unwrap_or(0),
            io_retries: counter(IO_RETRIES_COUNTER).unwrap_or(0),
            torn_writes_detected: counter(TORN_WRITES_COUNTER).unwrap_or(0),
            runs_quarantined: counter(RUNS_QUARANTINED_COUNTER).unwrap_or(0),
            io_stall_ms: counter(IO_STALL_MS_COUNTER).unwrap_or(0),
            journal_replayed_tasks: counter(JOURNAL_REPLAYED_COUNTER).unwrap_or(0),
            mem_budget_bytes: counter(MEM_BUDGET_BYTES_COUNTER).unwrap_or(0),
            mem_accounted_peak: counter(MEM_ACCOUNTED_PEAK_COUNTER).unwrap_or(0),
            mem_peak_over_budget: counter(MEM_PEAK_OVER_BUDGET_COUNTER).unwrap_or(0),
            mem_peak_bytes: counter(MEM_PEAK_BYTES_COUNTER).unwrap_or(0),
            mem_allocated_bytes: counter(MEM_ALLOCATED_BYTES_COUNTER).unwrap_or(0),
            mem_allocs: counter(MEM_ALLOCS_COUNTER).unwrap_or(0),
            spill_estimate_error_bytes: counter(SPILL_ESTIMATE_ERROR_COUNTER).unwrap_or(0),
            counters: counters.to_vec(),
        }
    }

    /// Renders the report as an aligned plain-text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== run summary ==");
        if !self.phases.is_empty() {
            let _ = writeln!(out, "{:<18} {:>12} {:>7}", "phase", "wall", "spans");
            for p in &self.phases {
                let _ = writeln!(
                    out,
                    "{:<18} {:>12} {:>7}",
                    p.name,
                    fmt_us(p.wall_us),
                    p.spans
                );
            }
        }
        if !self.tasks.is_empty() {
            let _ = writeln!(
                out,
                "{:<18} {:>7} {:>12} {:>12} {:>12}",
                "task kind", "n", "p50", "p95", "max"
            );
            for t in &self.tasks {
                let _ = writeln!(
                    out,
                    "{:<18} {:>7} {:>12} {:>12} {:>12}",
                    t.kind,
                    t.count,
                    fmt_us(t.p50_us),
                    fmt_us(t.p95_us),
                    fmt_us(t.max_us)
                );
            }
        }
        if !self.stragglers.is_empty() {
            let _ = writeln!(out, "stragglers ({}):", self.stragglers.len());
            for s in &self.stragglers {
                let tags: Vec<String> = s.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
                let _ = writeln!(
                    out,
                    "  {} [{}] {} (cohort p50 {})",
                    s.kind,
                    tags.join(" "),
                    fmt_us(s.dur_us),
                    fmt_us(s.p50_us)
                );
            }
        }
        let _ = writeln!(out, "retries: {}", self.retries);
        if self.reexecuted_maps > 0 || self.failed_over_reads > 0 || self.blacklisted_nodes > 0 {
            let _ = writeln!(
                out,
                "recovery: {} reexecuted maps, {} failed-over reads, {} blacklisted nodes",
                self.reexecuted_maps, self.failed_over_reads, self.blacklisted_nodes
            );
        }
        if let Some(bytes) = self.shuffle_bytes {
            let _ = writeln!(out, "shuffle bytes: {bytes}");
        }
        if self.shuffle_bytes_saved > 0 {
            let _ = writeln!(out, "shuffle bytes saved: {}", self.shuffle_bytes_saved);
        }
        if self.sort_skipped > 0 {
            let _ = writeln!(out, "sorts skipped: {}", self.sort_skipped);
        }
        if self.spilled_bytes > 0 || self.spill_files > 0 {
            let _ = writeln!(
                out,
                "spill: {} bytes in {} files",
                self.spilled_bytes, self.spill_files
            );
        }
        if self.spill_estimate_error_bytes > 0 {
            let _ = writeln!(
                out,
                "spill estimate error: {} bytes (|estimated - written| across runs)",
                self.spill_estimate_error_bytes
            );
        }
        if self.spilled_groups > 0 {
            let _ = writeln!(out, "spilled reduce groups: {}", self.spilled_groups);
        }
        if self.mem_budget_bytes > 0 {
            let _ = writeln!(
                out,
                "memory: budget {}, actual peak {} ({:.2}x){}",
                fmt_bytes(self.mem_budget_bytes),
                fmt_bytes(self.mem_accounted_peak),
                self.mem_accounted_peak as f64 / self.mem_budget_bytes as f64,
                if self.mem_peak_over_budget > 0 {
                    format!(" — {} over budget", fmt_bytes(self.mem_peak_over_budget))
                } else {
                    String::new()
                }
            );
        } else if self.mem_accounted_peak > 0 {
            let _ = writeln!(
                out,
                "memory: unbudgeted, accounted peak {}",
                fmt_bytes(self.mem_accounted_peak)
            );
        }
        if self.mem_peak_bytes > 0 {
            let _ = writeln!(
                out,
                "heap: peak {}, allocated {} in {} calls",
                fmt_bytes(self.mem_peak_bytes),
                fmt_bytes(self.mem_allocated_bytes),
                self.mem_allocs
            );
        }
        if self.io_retries > 0 || self.torn_writes_detected > 0 || self.runs_quarantined > 0 {
            let _ = writeln!(
                out,
                "storage: {} io retries, {} torn writes detected, {} runs quarantined",
                self.io_retries, self.torn_writes_detected, self.runs_quarantined
            );
        }
        if self.io_stall_ms > 0 {
            let _ = writeln!(
                out,
                "storage stall: {} of virtual time",
                fmt_us(self.io_stall_ms.saturating_mul(1_000))
            );
        }
        if self.journal_replayed_tasks > 0 {
            let _ = writeln!(
                out,
                "journal: {} reduce tasks replayed from committed artifacts",
                self.journal_replayed_tasks
            );
        }
        if self.distance_evals > 0 {
            let _ = writeln!(out, "distance evals: {}", self.distance_evals);
        }
        out
    }
}

/// Human-readable microseconds.
pub(crate) fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.3} s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.3} ms", us as f64 / 1e3)
    } else {
        format!("{us} µs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_pair(
        name: &'static str,
        span_id: u64,
        dur_us: u64,
        labels: &[(&str, &str)],
    ) -> [Event; 2] {
        [
            Event {
                ts_us: 0,
                kind: EventKind::SpanStart,
                name,
                span_id,
                parent_id: 0,
                dur_us: None,
                value: None,
                labels: labels
                    .iter()
                    .map(|&(k, v)| (k.to_owned(), v.to_owned()))
                    .collect(),
            },
            Event {
                ts_us: dur_us,
                kind: EventKind::SpanEnd,
                name,
                span_id,
                parent_id: 0,
                dur_us: Some(dur_us),
                value: None,
                labels: Vec::new(),
            },
        ]
    }

    #[test]
    fn folds_phases_tasks_and_stragglers() {
        let mut events = Vec::new();
        events.extend(span_pair("phase.map", 1, 10_000, &[]));
        events.extend(span_pair("phase.map", 2, 5_000, &[]));
        events.extend(span_pair("phase.reduce", 3, 7_000, &[]));
        for (i, dur) in [2_000u64, 2_100, 1_900, 2_050, 9_000].iter().enumerate() {
            events.extend(span_pair(
                "task.map",
                10 + i as u64,
                *dur,
                &[("task", &i.to_string())],
            ));
        }
        let counters = vec![
            (TASK_RETRIES_COUNTER.to_owned(), 2),
            (SHUFFLE_BYTES_COUNTER.to_owned(), 4096),
        ];
        let report = SummaryReport::from_events(&events, &counters);

        assert_eq!(report.phases.len(), 2);
        assert_eq!(report.phases[0].name, "map");
        assert_eq!(report.phases[0].wall_us, 15_000);
        assert_eq!(report.phases[0].spans, 2);
        assert_eq!(report.phases[1].wall_us, 7_000);

        assert_eq!(report.tasks.len(), 1);
        let t = &report.tasks[0];
        assert_eq!(t.count, 5);
        assert_eq!(t.max_us, 9_000);
        assert!(t.p50_us >= 1_900);

        assert_eq!(report.stragglers.len(), 1);
        assert_eq!(report.stragglers[0].dur_us, 9_000);
        assert_eq!(report.stragglers[0].labels[0].1, "4");

        assert_eq!(report.retries, 2);
        assert_eq!(report.shuffle_bytes, Some(4096));

        let text = report.render();
        assert!(text.contains("phase"));
        assert!(text.contains("map"));
        assert!(text.contains("stragglers (1)"));
        assert!(text.contains("shuffle bytes: 4096"));
    }

    #[test]
    fn fast_path_counters_surface_in_report() {
        let counters = vec![
            (DISTANCE_EVALS_COUNTER.to_owned(), 123_456),
            (SORT_SKIPPED_COUNTER.to_owned(), 4),
            (SHUFFLE_BYTES_SAVED_COUNTER.to_owned(), 999),
        ];
        let report = SummaryReport::from_events(&[], &counters);
        assert_eq!(report.distance_evals, 123_456);
        assert_eq!(report.sort_skipped, 4);
        assert_eq!(report.shuffle_bytes_saved, 999);
        let text = report.render();
        assert!(text.contains("distance evals: 123456"));
        assert!(text.contains("sorts skipped: 4"));
        assert!(text.contains("shuffle bytes saved: 999"));

        // Absent counters stay silent.
        let empty = SummaryReport::from_events(&[], &[]).render();
        assert!(!empty.contains("distance evals"));
        assert!(!empty.contains("sorts skipped"));
        assert!(!empty.contains("shuffle bytes saved"));
    }

    #[test]
    fn spill_counters_surface_in_report() {
        let counters = vec![
            (SPILLED_BYTES_COUNTER.to_owned(), 65_536),
            (SPILL_FILES_COUNTER.to_owned(), 3),
            (SPILLED_GROUPS_COUNTER.to_owned(), 2),
        ];
        let report = SummaryReport::from_events(&[], &counters);
        assert_eq!(report.spilled_bytes, 65_536);
        assert_eq!(report.spill_files, 3);
        assert_eq!(report.spilled_groups, 2);
        let text = report.render();
        assert!(text.contains("spill: 65536 bytes in 3 files"));
        assert!(text.contains("spilled reduce groups: 2"));

        // Jobs that never spilled stay silent.
        let empty = SummaryReport::from_events(&[], &[]).render();
        assert!(!empty.contains("spill"));
    }

    #[test]
    fn storage_counters_surface_in_report() {
        let counters = vec![
            (IO_RETRIES_COUNTER.to_owned(), 7),
            (TORN_WRITES_COUNTER.to_owned(), 2),
            (RUNS_QUARANTINED_COUNTER.to_owned(), 3),
            (JOURNAL_REPLAYED_COUNTER.to_owned(), 5),
            (IO_STALL_MS_COUNTER.to_owned(), 4_500),
        ];
        let report = SummaryReport::from_events(&[], &counters);
        assert_eq!(report.io_retries, 7);
        assert_eq!(report.torn_writes_detected, 2);
        assert_eq!(report.runs_quarantined, 3);
        assert_eq!(report.journal_replayed_tasks, 5);
        assert_eq!(report.io_stall_ms, 4_500);
        let text = report.render();
        assert!(text.contains("storage: 7 io retries, 2 torn writes detected, 3 runs quarantined"));
        assert!(text.contains("journal: 5 reduce tasks replayed"));
        assert!(text.contains("storage stall: 4.500 s"));

        // Fault-free runs stay silent.
        let empty = SummaryReport::from_events(&[], &[]).render();
        assert!(!empty.contains("storage:"));
        assert!(!empty.contains("storage stall"));
        assert!(!empty.contains("journal:"));
    }

    #[test]
    fn memory_counters_surface_budget_vs_actual() {
        let counters = vec![
            (MEM_BUDGET_BYTES_COUNTER.to_owned(), 64_000_000),
            (MEM_ACCOUNTED_PEAK_COUNTER.to_owned(), 91_000_000),
            (MEM_PEAK_OVER_BUDGET_COUNTER.to_owned(), 27_000_000),
            (MEM_PEAK_BYTES_COUNTER.to_owned(), 120_000_000),
            (MEM_ALLOCATED_BYTES_COUNTER.to_owned(), 500_000_000),
            (MEM_ALLOCS_COUNTER.to_owned(), 1_234),
            (SPILL_ESTIMATE_ERROR_COUNTER.to_owned(), 4_096),
        ];
        let report = SummaryReport::from_events(&[], &counters);
        assert_eq!(report.mem_budget_bytes, 64_000_000);
        assert_eq!(report.mem_accounted_peak, 91_000_000);
        assert_eq!(report.mem_peak_over_budget, 27_000_000);
        assert_eq!(report.mem_peak_bytes, 120_000_000);
        assert_eq!(report.spill_estimate_error_bytes, 4_096);
        let text = report.render();
        assert!(
            text.contains("memory: budget 64.0 MB, actual peak 91.0 MB (1.42x)"),
            "{text}"
        );
        assert!(text.contains("27.0 MB over budget"), "{text}");
        assert!(
            text.contains("heap: peak 120.0 MB, allocated 500.0 MB in 1234 calls"),
            "{text}"
        );
        assert!(text.contains("spill estimate error: 4096 bytes"), "{text}");

        // Runs without memory accounting stay silent.
        let empty = SummaryReport::from_events(&[], &[]).render();
        assert!(!empty.contains("memory:"), "{empty}");
        assert!(!empty.contains("heap:"), "{empty}");
        assert!(!empty.contains("spill estimate error"), "{empty}");
    }

    #[test]
    fn unbudgeted_runs_report_the_accounted_peak_alone() {
        let counters = vec![(MEM_ACCOUNTED_PEAK_COUNTER.to_owned(), 50_000_000)];
        let text = SummaryReport::from_events(&[], &counters).render();
        assert!(
            text.contains("memory: unbudgeted, accounted peak 50.0 MB"),
            "{text}"
        );
    }

    #[test]
    fn empty_events_give_empty_report() {
        let report = SummaryReport::from_events(&[], &[]);
        assert!(report.phases.is_empty());
        assert!(report.tasks.is_empty());
        assert!(report.stragglers.is_empty());
        assert_eq!(report.retries, 0);
        assert!(report.render().contains("retries: 0"));
    }

    #[test]
    fn single_span_yields_one_phase_row() {
        let events = span_pair("phase.map", 1, 4_000, &[]);
        let report = SummaryReport::from_events(&events, &[]);
        assert_eq!(report.phases.len(), 1);
        assert_eq!(report.phases[0].name, "map");
        assert_eq!(report.phases[0].wall_us, 4_000);
        assert_eq!(report.phases[0].spans, 1);
        assert!(report.tasks.is_empty());
        assert!(report.render().contains("map"));
    }

    #[test]
    fn unclosed_spans_are_ignored_without_panicking() {
        // Only the starts — the run was cut short before any span_end.
        let mut events: Vec<Event> = span_pair("phase.map", 1, 9_999, &[])[..1].to_vec();
        events.push(span_pair("task.map", 2, 9_999, &[("task", "0")])[0].clone());
        let report = SummaryReport::from_events(&events, &[]);
        assert!(report.phases.is_empty(), "open phase span must not count");
        assert!(report.tasks.is_empty(), "open task span must not count");
        assert!(report.stragglers.is_empty());
        report.render();
    }

    #[test]
    fn single_sample_quantiles_collapse_to_that_sample() {
        let events = span_pair("task.reduce", 1, 5_000, &[("task", "0")]);
        let report = SummaryReport::from_events(&events, &[]);
        assert_eq!(report.tasks.len(), 1);
        let t = &report.tasks[0];
        assert_eq!(t.count, 1);
        assert_eq!(t.p50_us, 5_000);
        assert_eq!(t.p95_us, 5_000);
        assert_eq!(t.max_us, 5_000);
        // A lone task is never a straggler against its own cohort.
        assert!(report.stragglers.is_empty());
    }
}
