//! Minimal JSON-Lines serialisation for [`Event`]s — hand-rolled so the
//! exporter has zero dependencies (the workspace's serde is a no-op
//! shim).

use crate::event::Event;
use std::io::{self, Write};

/// Appends `s` to `out` as a JSON string literal (with escaping).
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders one event as a single JSON object (no trailing newline).
pub fn event_to_json(event: &Event) -> String {
    let mut out = String::with_capacity(128);
    out.push_str("{\"ts_us\":");
    out.push_str(&event.ts_us.to_string());
    out.push_str(",\"kind\":");
    push_json_str(&mut out, event.kind.as_str());
    out.push_str(",\"name\":");
    push_json_str(&mut out, event.name);
    if event.span_id != 0 {
        out.push_str(",\"span\":");
        out.push_str(&event.span_id.to_string());
    }
    if event.parent_id != 0 {
        out.push_str(",\"parent\":");
        out.push_str(&event.parent_id.to_string());
    }
    if let Some(dur) = event.dur_us {
        out.push_str(",\"dur_us\":");
        out.push_str(&dur.to_string());
    }
    if let Some(value) = event.value {
        out.push_str(",\"value\":");
        if value.is_finite() {
            out.push_str(&format!("{value}"));
        } else {
            out.push_str("null");
        }
    }
    if !event.labels.is_empty() {
        out.push_str(",\"labels\":{");
        for (i, (k, v)) in event.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, k);
            out.push(':');
            push_json_str(&mut out, v);
        }
        out.push('}');
    }
    out.push('}');
    out
}

/// Writes `events` as JSON-Lines: one object per line.
pub fn write_jsonl<W: Write>(writer: &mut W, events: &[Event]) -> io::Result<()> {
    for event in events {
        writeln!(writer, "{}", event_to_json(event))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn escapes_and_omits_empty_fields() {
        let e = Event {
            ts_us: 7,
            kind: EventKind::Point,
            name: "x.y",
            span_id: 0,
            parent_id: 0,
            dur_us: None,
            value: Some(1.5),
            labels: vec![("key \"q\"".into(), "line\nbreak".into())],
        };
        assert_eq!(
            event_to_json(&e),
            r#"{"ts_us":7,"kind":"point","name":"x.y","value":1.5,"labels":{"key \"q\"":"line\nbreak"}}"#
        );
    }

    #[test]
    fn span_end_carries_ids_and_duration() {
        let e = Event {
            ts_us: 10,
            kind: EventKind::SpanEnd,
            name: "phase.map",
            span_id: 3,
            parent_id: 1,
            dur_us: Some(250),
            value: None,
            labels: vec![],
        };
        assert_eq!(
            event_to_json(&e),
            r#"{"ts_us":10,"kind":"span_end","name":"phase.map","span":3,"parent":1,"dur_us":250}"#
        );
    }
}
