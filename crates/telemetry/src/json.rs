//! The workspace's shared hand-rolled JSON toolkit — a value type with
//! a recursive-descent parser, a pretty two-space [`Writer`], and the
//! JSON-Lines event exporter — all dependency-free because the
//! workspace's serde is a no-op shim.
//!
//! Only what the telemetry exporters and bench reports need: objects,
//! arrays, strings, finite numbers, booleans and null. Object keys keep
//! insertion order so emitted files diff cleanly across runs.

use crate::event::Event;
use std::fmt;
use std::io;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`; integers round-trip up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an unsigned integer (truncating), if non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Parses a JSON document (must consume all non-whitespace input).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after document"));
        }
        Ok(value)
    }
}

/// A parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("malformed \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for bench
                            // files; map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through untouched).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Appends `s` to `out` as a JSON string literal (with escaping).
pub fn push_str_lit(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders a finite `f64` so it round-trips through [`Json::parse`].
pub fn push_f64(out: &mut String, value: f64) {
    if value.is_finite() {
        out.push_str(&format!("{value}"));
    } else {
        out.push_str("null");
    }
}

/// Renders one event as a single JSON object (no trailing newline).
pub fn event_to_json(event: &Event) -> String {
    let mut out = String::with_capacity(128);
    out.push_str("{\"ts_us\":");
    out.push_str(&event.ts_us.to_string());
    out.push_str(",\"kind\":");
    push_str_lit(&mut out, event.kind.as_str());
    out.push_str(",\"name\":");
    push_str_lit(&mut out, event.name);
    if event.span_id != 0 {
        out.push_str(",\"span\":");
        out.push_str(&event.span_id.to_string());
    }
    if event.parent_id != 0 {
        out.push_str(",\"parent\":");
        out.push_str(&event.parent_id.to_string());
    }
    if let Some(dur) = event.dur_us {
        out.push_str(",\"dur_us\":");
        out.push_str(&dur.to_string());
    }
    if let Some(value) = event.value {
        out.push_str(",\"value\":");
        push_f64(&mut out, value);
    }
    if !event.labels.is_empty() {
        out.push_str(",\"labels\":{");
        for (i, (k, v)) in event.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_str_lit(&mut out, k);
            out.push(':');
            push_str_lit(&mut out, v);
        }
        out.push('}');
    }
    out.push('}');
    out
}

/// Writes `events` as JSON-Lines: one object per line.
pub fn write_jsonl<W: io::Write>(writer: &mut W, events: &[Event]) -> io::Result<()> {
    for event in events {
        writeln!(writer, "{}", event_to_json(event))?;
    }
    Ok(())
}

/// An indentation-aware object/array writer for pretty two-space JSON.
pub struct Writer {
    out: String,
    depth: usize,
    /// Whether the current container already has a member.
    needs_comma: Vec<bool>,
}

impl Writer {
    /// A writer positioned at the document root.
    pub fn new() -> Self {
        Self {
            out: String::with_capacity(1024),
            depth: 0,
            needs_comma: Vec::new(),
        }
    }

    fn newline_item(&mut self) {
        if let Some(seen) = self.needs_comma.last_mut() {
            if *seen {
                self.out.push(',');
            }
            *seen = true;
            self.out.push('\n');
            for _ in 0..self.depth {
                self.out.push_str("  ");
            }
        }
    }

    fn close_container(&mut self, bracket: char) {
        let had_items = self.needs_comma.pop().unwrap_or(false);
        self.depth -= 1;
        if had_items {
            self.out.push('\n');
            for _ in 0..self.depth {
                self.out.push_str("  ");
            }
        }
        self.out.push(bracket);
    }

    /// Opens an object; at the root or as an array element.
    pub fn open_obj(&mut self) {
        self.newline_item();
        self.out.push('{');
        self.depth += 1;
        self.needs_comma.push(false);
    }

    /// Opens an object as the value of `key`.
    pub fn open_obj_field(&mut self, key: &str) {
        self.newline_item();
        push_str_lit(&mut self.out, key);
        self.out.push_str(": {");
        self.depth += 1;
        self.needs_comma.push(false);
    }

    /// Closes the innermost object.
    pub fn close_obj(&mut self) {
        self.close_container('}');
    }

    /// Opens an array as the value of `key`.
    pub fn open_arr_field(&mut self, key: &str) {
        self.newline_item();
        push_str_lit(&mut self.out, key);
        self.out.push_str(": [");
        self.depth += 1;
        self.needs_comma.push(false);
    }

    /// Closes the innermost array.
    pub fn close_arr(&mut self) {
        self.close_container(']');
    }

    /// Writes a string member.
    pub fn str_field(&mut self, key: &str, value: &str) {
        self.newline_item();
        push_str_lit(&mut self.out, key);
        self.out.push_str(": ");
        push_str_lit(&mut self.out, value);
    }

    /// Writes an unsigned-integer member.
    pub fn u64_field(&mut self, key: &str, value: u64) {
        self.newline_item();
        push_str_lit(&mut self.out, key);
        self.out.push_str(": ");
        self.out.push_str(&value.to_string());
    }

    /// Writes a number member.
    pub fn f64_field(&mut self, key: &str, value: f64) {
        self.newline_item();
        push_str_lit(&mut self.out, key);
        self.out.push_str(": ");
        push_f64(&mut self.out, value);
    }

    /// The finished document plus a trailing newline.
    pub fn finish(mut self) -> String {
        self.out.push('\n');
        self.out
    }
}

impl Default for Writer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn escapes_and_omits_empty_fields() {
        let e = Event {
            ts_us: 7,
            kind: EventKind::Point,
            name: "x.y",
            span_id: 0,
            parent_id: 0,
            dur_us: None,
            value: Some(1.5),
            labels: vec![("key \"q\"".into(), "line\nbreak".into())],
        };
        assert_eq!(
            event_to_json(&e),
            r#"{"ts_us":7,"kind":"point","name":"x.y","value":1.5,"labels":{"key \"q\"":"line\nbreak"}}"#
        );
    }

    #[test]
    fn span_end_carries_ids_and_duration() {
        let e = Event {
            ts_us: 10,
            kind: EventKind::SpanEnd,
            name: "phase.map",
            span_id: 3,
            parent_id: 1,
            dur_us: Some(250),
            value: None,
            labels: vec![],
        };
        assert_eq!(
            event_to_json(&e),
            r#"{"ts_us":10,"kind":"span_end","name":"phase.map","span":3,"parent":1,"dur_us":250}"#
        );
    }

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"s": "x\ny", "t": true, "n": null}}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("s").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("t"), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("n"), Some(&Json::Null));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_escapes() {
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse(r#""\q""#).is_err());
        assert!(Json::parse("[1,]").is_err());
    }

    #[test]
    fn writer_output_parses_back() {
        let mut w = Writer::new();
        w.open_obj();
        w.str_field("name", "bench \"quoted\"");
        w.u64_field("count", 42);
        w.f64_field("ratio", 0.125);
        w.open_arr_field("items");
        w.open_obj();
        w.str_field("k", "v");
        w.close_obj();
        w.close_arr();
        w.open_obj_field("empty");
        w.close_obj();
        w.close_obj();
        let text = w.finish();
        let v = Json::parse(&text).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("bench \"quoted\""));
        assert_eq!(v.get("count").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("ratio").unwrap().as_f64(), Some(0.125));
        assert_eq!(v.get("items").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(v.get("empty").unwrap().as_obj(), Some(&[][..]));
    }
}
