//! Durable per-attempt telemetry segments and the resume stitcher.
//!
//! A crash-safe run (`--run-dir`) loses its in-memory telemetry with
//! every SIGKILL — the resumed attempt's recorder starts from an empty
//! stream and the pre-kill work becomes invisible. This module closes
//! that gap: each attempt streams its events to a checksummed segment
//! file (`<run-dir>/telemetry/attempt-NNN.jsonl`, one
//! `<event-json> <fnv64-hex>` line per event, torn tails tolerated),
//! and [`stitch`] folds every attempt's segment back into one causal
//! stream — timestamps rebased end-to-end, span ids disambiguated per
//! attempt, every event tagged `run_attempt=N` — that the summary,
//! flamegraph, Gantt and Chrome-trace exporters consume unchanged.
//!
//! The [`ArchiveWriter`] is a background flusher in the mold of
//! [`crate::Reporter`]: it tails [`crate::Recorder::events_from`] at a
//! fixed cadence, so even a SIGKILLed attempt leaves everything but its
//! last interval on disk. On a clean stop it also materializes the
//! recorder's aggregate counters as `count` events — counters live
//! outside the event stream, and without this they would not survive
//! into the archive.

use crate::event::{Event, EventKind};
use crate::json::{event_to_json, Json};
use crate::Recorder;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// FNV-1a over a byte string (local copy: this crate sits below the
/// engine and cannot borrow its hasher).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Interns an event name loaded from disk. [`Event::name`] is a
/// `&'static str` (recorders only ever use literals), so replayed names
/// are leaked once into a global registry — bounded by the number of
/// distinct event names in the instrumentation, not by stream length.
fn intern(name: &str) -> &'static str {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, &'static str>>> = OnceLock::new();
    let mut registry = REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new())).lock();
    if let Some(&s) = registry.get(name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    registry.insert(name.to_owned(), leaked);
    leaked
}

/// Reconstructs an [`Event`] from its JSONL object form (the inverse of
/// [`crate::json::event_to_json`]). `None` on any structural mismatch.
pub fn event_from_json(json: &Json) -> Option<Event> {
    let ts_us = json.get("ts_us").and_then(Json::as_u64)?;
    let kind = match json.get("kind").and_then(Json::as_str)? {
        "span_start" => EventKind::SpanStart,
        "span_end" => EventKind::SpanEnd,
        "point" => EventKind::Point,
        "count" => EventKind::Count,
        _ => return None,
    };
    let name = intern(json.get("name").and_then(Json::as_str)?);
    let labels = match json.get("labels").and_then(Json::as_obj) {
        Some(pairs) => pairs
            .iter()
            .filter_map(|(k, v)| Some((k.clone(), v.as_str()?.to_owned())))
            .collect(),
        None => Vec::new(),
    };
    Some(Event {
        ts_us,
        kind,
        name,
        span_id: json.get("span").and_then(Json::as_u64).unwrap_or(0),
        parent_id: json.get("parent").and_then(Json::as_u64).unwrap_or(0),
        dur_us: json.get("dur_us").and_then(Json::as_u64),
        value: json.get("value").and_then(Json::as_f64),
        labels,
    })
}

/// Materializes aggregate counter totals as `count` events at `ts_us`.
/// Counters never enter the live event stream (hot-path rule), so
/// archived segments and exported JSONL streams append these at the
/// end — without them a replayed stream would have no counters at all.
pub fn counter_events(counters: &[(String, u64)], ts_us: u64) -> Vec<Event> {
    counters
        .iter()
        .map(|(name, value)| Event {
            ts_us,
            kind: EventKind::Count,
            name: intern(name),
            span_id: 0,
            parent_id: 0,
            dur_us: None,
            value: Some(*value as f64),
            labels: Vec::new(),
        })
        .collect()
}

/// One checksummed segment line: the event JSON plus its own hash, so a
/// torn tail (the flusher died mid-line) is detected, not replayed.
fn segment_line(event: &Event) -> String {
    let json = event_to_json(event);
    format!("{json} {:016x}\n", fnv64(json.as_bytes()))
}

fn parse_segment_line(line: &str) -> Option<Event> {
    let (json_text, checksum) = line.rsplit_once(' ')?;
    if u64::from_str_radix(checksum, 16).ok()? != fnv64(json_text.as_bytes()) {
        return None;
    }
    event_from_json(&Json::parse(json_text).ok()?)
}

/// The telemetry directory of a run dir.
pub fn telemetry_dir(run_dir: &Path) -> PathBuf {
    run_dir.join("telemetry")
}

/// Allocates the next attempt's segment path under `run_dir` (attempt
/// number = segments already on disk), creating the directory.
pub fn next_segment_path(run_dir: &Path) -> io::Result<(usize, PathBuf)> {
    let dir = telemetry_dir(run_dir);
    std::fs::create_dir_all(&dir)?;
    let attempt = list_segments(&dir)?.len();
    Ok((attempt, dir.join(format!("attempt-{attempt:03}.jsonl"))))
}

/// Reads the run's shared id, minting one on first call
/// (first-writer-wins, like the engine's MANIFEST protocol).
pub fn ensure_run_id(run_dir: &Path) -> io::Result<String> {
    let dir = telemetry_dir(run_dir);
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("RUN_ID");
    if let Ok(existing) = std::fs::read_to_string(&path) {
        let id = existing.trim();
        if !id.is_empty() {
            return Ok(id.to_owned());
        }
    }
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    let id = format!(
        "run-{:016x}",
        fnv64(format!("{}:{nanos}", run_dir.display()).as_bytes())
    );
    std::fs::write(&path, format!("{id}\n"))?;
    Ok(id)
}

fn list_segments(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("attempt-") && n.ends_with(".jsonl"))
        })
        .collect();
    paths.sort();
    Ok(paths)
}

/// One attempt's replayed telemetry.
#[derive(Debug, Clone)]
pub struct AttemptSegment {
    /// 0-based attempt number (position in the segment directory).
    pub attempt: usize,
    /// The attempt's events, in capture order. Lines after a torn or
    /// corrupt line are dropped (the flusher appends strictly in order,
    /// so everything before the tear is trustworthy).
    pub events: Vec<Event>,
}

/// Loads every attempt segment under `run_dir`, in attempt order.
/// Missing directory = no segments (an undurable or pre-archive run).
pub fn load_segments(run_dir: &Path) -> Vec<AttemptSegment> {
    let dir = telemetry_dir(run_dir);
    let Ok(paths) = list_segments(&dir) else {
        return Vec::new();
    };
    paths
        .iter()
        .enumerate()
        .map(|(attempt, path)| {
            let text = std::fs::read_to_string(path).unwrap_or_default();
            let mut events = Vec::new();
            for line in text.lines() {
                match parse_segment_line(line) {
                    Some(e) => events.push(e),
                    None => break,
                }
            }
            AttemptSegment { attempt, events }
        })
        .collect()
}

/// Span ids are disambiguated per attempt by this stride (ids are a
/// process-local `AtomicU64` starting at 1, so attempts collide).
const SPAN_ID_STRIDE: u64 = 1 << 32;

/// Microsecond gap inserted between stitched attempts so the kill →
/// resume boundary is visible as a gap, not an overlap.
const ATTEMPT_GAP_US: u64 = 1_000;

/// Folds per-attempt segments into one causal stream: each attempt's
/// timestamps are rebased to start where the previous attempt ended,
/// its span ids are shifted into a per-attempt namespace, and every
/// event gains a `run_attempt=N` label (feeding the per-attempt lanes
/// of [`crate::trace_event::write_chrome_trace`]). The key is
/// deliberately NOT `attempt`: the engine already labels task spans
/// with their per-task execution attempt, and the two must not shadow
/// each other.
pub fn stitch(segments: &[AttemptSegment]) -> Vec<Event> {
    let mut out = Vec::new();
    let mut base_us = 0u64;
    for seg in segments {
        let id_base = (seg.attempt as u64 + 1) * SPAN_ID_STRIDE;
        let mut max_ts = base_us;
        let attempt_label = seg.attempt.to_string();
        for e in &seg.events {
            let mut e = e.clone();
            e.ts_us += base_us;
            if e.span_id != 0 {
                e.span_id += id_base;
            }
            if e.parent_id != 0 {
                e.parent_id += id_base;
            }
            e.labels
                .push(("run_attempt".to_owned(), attempt_label.clone()));
            max_ts = max_ts.max(e.ts_us);
            out.push(e);
        }
        base_us = max_ts + ATTEMPT_GAP_US;
    }
    out
}

/// Background segment flusher: tails the recorder's event stream to an
/// append-only checksummed JSONL file at a fixed cadence, so a killed
/// attempt still leaves (almost) everything on disk. [`ArchiveWriter::stop`]
/// performs the final flush, appends the aggregate counters as `count`
/// events, and joins the thread — call it before reading the segment.
#[derive(Debug)]
pub struct ArchiveWriter {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ArchiveWriter {
    /// Spawns the flusher appending to `path` every `every`.
    ///
    /// # Errors
    /// Propagates the initial open/create failure; later write errors
    /// are best-effort (a full disk must not kill the observed run).
    pub fn start(recorder: Recorder, path: PathBuf, every: Duration) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut out = BufWriter::new(file);
            let mut offset = 0usize;
            let mut max_ts = 0u64;
            let flush = |offset: &mut usize, max_ts: &mut u64, out: &mut BufWriter<File>| {
                let tail = recorder.events_from(*offset);
                *offset += tail.len();
                for e in &tail {
                    *max_ts = (*max_ts).max(e.ts_us);
                    let _ = out.write_all(segment_line(e).as_bytes());
                }
                let _ = out.flush();
            };
            while !stop_flag.load(Ordering::Relaxed) {
                let mut slept = Duration::ZERO;
                while slept < every && !stop_flag.load(Ordering::Relaxed) {
                    let slice = (every - slept).min(Duration::from_millis(25));
                    std::thread::sleep(slice);
                    slept += slice;
                }
                flush(&mut offset, &mut max_ts, &mut out);
            }
            flush(&mut offset, &mut max_ts, &mut out);
            // The segment materializes the final counter totals here for
            // the diff engine and any replayed summary to read back.
            for e in counter_events(&recorder.counters(), max_ts) {
                let _ = out.write_all(segment_line(&e).as_bytes());
            }
            let _ = out.flush();
            if let Ok(f) = out.into_inner() {
                let _ = f.sync_data();
            }
        });
        Ok(Self {
            stop,
            handle: Some(handle),
        })
    }

    /// Signals the flusher, waits for the final flush, and joins it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ArchiveWriter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "gepeto-archive-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn events_round_trip_through_a_segment() {
        let dir = scratch("roundtrip");
        let rec = Recorder::enabled();
        {
            let phase = rec.span("phase.map", &[("job", "j")]);
            let _task = phase.child("task.map", &[("task", "0")]);
        }
        rec.point("task.retry", 1.0, &[("phase", "map")]);
        rec.count("io.retries", 7);
        let (attempt, path) = next_segment_path(&dir).unwrap();
        assert_eq!(attempt, 0);
        let writer = ArchiveWriter::start(rec.clone(), path, Duration::from_secs(3600)).unwrap();
        writer.stop();

        let segments = load_segments(&dir);
        assert_eq!(segments.len(), 1);
        let events = &segments[0].events;
        // 4 span events + the phase-end live-heap sample + 1 point + 1
        // synthesized counter.
        assert_eq!(events.len(), 7);
        let original = rec.events();
        for (a, b) in original.iter().zip(events.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.ts_us, b.ts_us);
            assert_eq!(a.span_id, b.span_id);
            assert_eq!(a.parent_id, b.parent_id);
            assert_eq!(a.dur_us, b.dur_us);
            assert_eq!(a.labels, b.labels);
        }
        let count = events.last().unwrap();
        assert_eq!(count.kind, EventKind::Count);
        assert_eq!(count.name, "io.retries");
        assert_eq!(count.value, Some(7.0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_dropped_not_replayed() {
        let dir = scratch("torn");
        let rec = Recorder::enabled();
        rec.point("a", 1.0, &[]);
        rec.point("b", 2.0, &[]);
        let (_, path) = next_segment_path(&dir).unwrap();
        let writer = ArchiveWriter::start(rec, path.clone(), Duration::from_secs(3600)).unwrap();
        writer.stop();
        // Tear the last line mid-checksum and append garbage after it.
        let text = std::fs::read_to_string(&path).unwrap();
        let torn = &text[..text.len() - 5];
        std::fs::write(&path, format!("{torn}\n{{\"ts_us\":9}} beef\n")).unwrap();
        let segments = load_segments(&dir);
        assert_eq!(segments[0].events.len(), 1, "only the intact prefix");
        assert_eq!(segments[0].events[0].name, "a");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stitch_rebases_time_disambiguates_spans_and_tags_attempts() {
        let mk = |attempt: usize, names: &[&'static str]| AttemptSegment {
            attempt,
            events: names
                .iter()
                .enumerate()
                .flat_map(|(i, name)| {
                    let id = i as u64 + 1;
                    [
                        Event {
                            ts_us: i as u64 * 10,
                            kind: EventKind::SpanStart,
                            name,
                            span_id: id,
                            parent_id: 0,
                            dur_us: None,
                            value: None,
                            labels: Vec::new(),
                        },
                        Event {
                            ts_us: i as u64 * 10 + 5,
                            kind: EventKind::SpanEnd,
                            name,
                            span_id: id,
                            parent_id: 0,
                            dur_us: Some(5),
                            value: None,
                            labels: Vec::new(),
                        },
                    ]
                })
                .collect(),
        };
        let stitched = stitch(&[mk(0, &["job"]), mk(1, &["job"])]);
        assert_eq!(stitched.len(), 4);
        // Same original span id, different stitched namespaces.
        assert_ne!(stitched[0].span_id, stitched[2].span_id);
        // Attempt 1 starts after attempt 0 ends.
        assert!(stitched[2].ts_us > stitched[1].ts_us);
        assert_eq!(stitched[0].label("run_attempt"), Some("0"));
        assert_eq!(stitched[2].label("run_attempt"), Some("1"));
        // The stitched stream is still one well-formed span forest.
        let cp = crate::CriticalPath::from_events(&stitched);
        assert_eq!(cp.steps.len(), 1);
    }

    #[test]
    fn run_id_is_minted_once_and_attempts_accumulate() {
        let dir = scratch("runid");
        let a = ensure_run_id(&dir).unwrap();
        let b = ensure_run_id(&dir).unwrap();
        assert_eq!(a, b);
        assert!(a.starts_with("run-"), "{a}");
        let (first, p1) = next_segment_path(&dir).unwrap();
        std::fs::write(&p1, "").unwrap();
        let (second, p2) = next_segment_path(&dir).unwrap();
        assert_eq!((first, second), (0, 1));
        assert_ne!(p1, p2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
