//! # gepeto-telemetry — structured observability for the GEPETO stack
//!
//! The paper's entire evaluation (per-task runtimes, shuffle volumes,
//! retry counts, speedup curves) comes from jobtracker-side telemetry;
//! this crate is the equivalent measurement substrate for our engine.
//! It captures three things through one cheap handle:
//!
//! - **Spans** — RAII timed regions with identity labels, nested via
//!   parent ids (`phase.map` → `task.map`), emitted as paired
//!   `span_start` / `span_end` [`Event`]s;
//! - **Points** — instantaneous measurements (`kmeans.iteration` with a
//!   centroid-shift value, scheduling decisions with locality tags);
//! - **Aggregates** — monotonic counters and log-bucketed
//!   [`Histogram`]s, kept out of the event stream so hot paths don't
//!   flood it.
//!
//! A [`Recorder`] is an `Option<Arc<...>>` under the hood: cloning is a
//! pointer copy, and the disabled recorder ([`Recorder::disabled`],
//! also `Default`) makes every call a no-op without allocating, so
//! instrumented code pays nothing when observability is off.
//!
//! Exporters: [`Recorder::write_jsonl`] streams the captured events as
//! JSON-Lines (one object per line, hand-serialised — no serde), and
//! [`Recorder::summary`] folds them into a [`SummaryReport`] (per-phase
//! wall time, task-time p50/p95/max, straggler list, retries, shuffle
//! bytes) with a plain-text [`SummaryReport::render`].
//!
//! A process-wide [`TrackingAllocator`] (installed as the global
//! allocator by this crate) counts live/peak/total-allocated bytes, and
//! every span carries a [`LedgerScope`] window over those counters: its
//! `span_end` event is tagged with `mem.peak_delta` / `mem.allocated` /
//! `mem.allocs` labels, and phase spans additionally sample the live
//! heap into the event stream (a `count` event feeding the Chrome-trace
//! `C` counter track).
//!
//! ```
//! use gepeto_telemetry::Recorder;
//!
//! let rec = Recorder::enabled();
//! {
//!     let phase = rec.span("phase.map", &[("job", "demo")]);
//!     let _task = phase.child("task.map", &[("task", "0")]);
//!     rec.observe("bytes.per.task", 4096);
//! } // spans close here, emitting span_end events with durations
//! rec.count("records", 10);
//! let mut out = Vec::new();
//! rec.write_jsonl(&mut out).unwrap();
//! // Four span events plus the phase-end live-heap sample.
//! assert_eq!(out.split(|&b| b == b'\n').filter(|l| !l.is_empty()).count(), 5);
//! ```

pub mod alloc;
mod analysis;
pub mod archive;
pub mod diff;
mod event;
mod flamegraph;
mod histogram;
pub mod json;
mod monitor;
mod summary;
mod timeline;
pub mod trace_event;

pub use alloc::{mem_stats, LedgerScope, MemDelta, MemStats, TrackingAllocator};
pub use analysis::{CriticalPath, CriticalPathStep, PhaseCritical, TaskRef, VirtualCriticalPath};
pub use archive::{counter_events, load_segments, stitch, ArchiveWriter, AttemptSegment};
pub use diff::{profile_from_events, Cause, PerfDiff, RunProfile, TaskCohort};
pub use event::{Event, EventKind};
pub use flamegraph::{alloc_folded, host_folded, virtual_folded};
pub use histogram::Histogram;
pub use json::{event_to_json, write_jsonl};
pub use monitor::{MetricsSnapshot, Monitor, Reporter};
pub use summary::{
    PhaseStat, Straggler, SummaryReport, TaskStats, BLACKLISTED_NODES_COUNTER,
    DISTANCE_EVALS_COUNTER, FAILED_OVER_READS_COUNTER, IO_RETRIES_COUNTER, IO_STALL_MS_COUNTER,
    JOURNAL_REPLAYED_COUNTER, MEM_ACCOUNTED_PEAK_COUNTER, MEM_ALLOCATED_BYTES_COUNTER,
    MEM_ALLOCS_COUNTER, MEM_BUDGET_BYTES_COUNTER, MEM_PEAK_BYTES_COUNTER,
    MEM_PEAK_OVER_BUDGET_COUNTER, REEXECUTED_MAPS_COUNTER, RUNS_QUARANTINED_COUNTER,
    SHUFFLE_BYTES_COUNTER, SHUFFLE_BYTES_SAVED_COUNTER, SORT_SKIPPED_COUNTER,
    SPILLED_BYTES_COUNTER, SPILLED_GROUPS_COUNTER, SPILL_ESTIMATE_ERROR_COUNTER,
    SPILL_FILES_COUNTER, TASK_RETRIES_COUNTER, TORN_WRITES_COUNTER,
};
pub use timeline::{NodeLane, Timeline};
pub use trace_event::write_chrome_trace;

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    events: Mutex<Vec<Event>>,
    counters: Mutex<BTreeMap<String, u64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    next_span: AtomicU64,
    /// Innermost-open stack of spans created via [`Recorder::span`]:
    /// driver-level spans (`kmeans`, `job`, ...) opened sequentially on
    /// the submitting thread nest under each other, so trace analysis
    /// sees one causal tree (driver → job → phase → task) instead of a
    /// forest of roots. Task-level spans use [`Span::child`] and never
    /// touch this stack, keeping parallel tasks correctly attributed.
    context: Mutex<Vec<u64>>,
    /// Live progress registry, present on [`Recorder::monitored`]
    /// recorders only. Engine hooks update it in place; a background
    /// [`Reporter`] snapshots it at its own cadence.
    monitor: Option<Arc<Monitor>>,
}

/// The telemetry handle threaded through the engine.
///
/// Cheap to clone (one `Arc` bump when enabled, nothing when disabled)
/// and safe to share across task threads. All methods on a disabled
/// recorder return immediately without allocating.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// A recorder that captures everything.
    pub fn enabled() -> Self {
        Self::build(None)
    }

    /// A recorder that captures everything **and** carries a live
    /// [`Monitor`] registry: engine hooks bump its atomics as tasks
    /// finish, so a [`Reporter`] (or any caller of
    /// [`Monitor::snapshot`]) can watch the run in flight.
    pub fn monitored() -> Self {
        Self::build(Some(Arc::new(Monitor::new())))
    }

    fn build(monitor: Option<Arc<Monitor>>) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                events: Mutex::new(Vec::new()),
                counters: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                next_span: AtomicU64::new(1),
                context: Mutex::new(Vec::new()),
                monitor,
            })),
        }
    }

    /// The no-op recorder (also what `Default` gives you).
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// The live progress registry, on [`Recorder::monitored`] recorders.
    pub fn monitor(&self) -> Option<Arc<Monitor>> {
        self.inner.as_ref().and_then(|inner| inner.monitor.clone())
    }

    /// Whether this recorder captures anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn now_us(inner: &Inner) -> u64 {
        inner.epoch.elapsed().as_micros() as u64
    }

    fn push(inner: &Inner, event: Event) {
        inner.events.lock().push(event);
    }

    fn owned_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
        labels
            .iter()
            .map(|&(k, v)| (k.to_owned(), v.to_owned()))
            .collect()
    }

    /// Opens a top-level span. It nests under the innermost span still
    /// open from a previous `span()` call (so sequential driver/job
    /// spans form one causal tree); use [`Span::child`] for explicit
    /// nesting. Ends (and emits `span_end`) when the returned guard
    /// drops.
    pub fn span(&self, name: &'static str, labels: &[(&str, &str)]) -> Span {
        let parent = self
            .inner
            .as_ref()
            .and_then(|inner| inner.context.lock().last().copied())
            .unwrap_or(0);
        let mut span = self.start_span(name, parent, labels);
        if let Some(inner) = &self.inner {
            inner.context.lock().push(span.id);
            span.in_context = true;
        }
        span
    }

    fn start_span(&self, name: &'static str, parent_id: u64, labels: &[(&str, &str)]) -> Span {
        let id = match &self.inner {
            None => 0,
            Some(inner) => {
                let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
                Self::push(
                    inner,
                    Event {
                        ts_us: Self::now_us(inner),
                        kind: EventKind::SpanStart,
                        name,
                        span_id: id,
                        parent_id,
                        dur_us: None,
                        value: None,
                        labels: Self::owned_labels(labels),
                    },
                );
                id
            }
        };
        Span {
            ledger: self.inner.as_ref().map(|_| LedgerScope::open()),
            rec: self.clone(),
            id,
            parent_id,
            name,
            started: Instant::now(),
            in_context: false,
        }
    }

    /// Records an instantaneous measurement into the event stream.
    pub fn point(&self, name: &'static str, value: f64, labels: &[(&str, &str)]) {
        if let Some(inner) = &self.inner {
            Self::push(
                inner,
                Event {
                    ts_us: Self::now_us(inner),
                    kind: EventKind::Point,
                    name,
                    span_id: 0,
                    parent_id: 0,
                    dur_us: None,
                    value: Some(value),
                    labels: Self::owned_labels(labels),
                },
            );
        }
    }

    /// Bumps a monotonic counter (aggregate only — not in the event
    /// stream, so it is safe on hot paths).
    pub fn count(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            let mut counters = inner.counters.lock();
            match counters.get_mut(name) {
                Some(v) => *v += delta,
                None => {
                    counters.insert(name.to_owned(), delta);
                }
            }
        }
    }

    /// Records a sample into the named log-bucketed histogram
    /// (aggregate only).
    pub fn observe(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            let mut histograms = inner.histograms.lock();
            match histograms.get_mut(name) {
                Some(h) => h.observe(value),
                None => {
                    let mut h = Histogram::new();
                    h.observe(value);
                    histograms.insert(name.to_owned(), h);
                }
            }
        }
    }

    /// Snapshot of all captured events, in capture order.
    pub fn events(&self) -> Vec<Event> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.events.lock().clone(),
        }
    }

    /// Snapshot of the events captured at index `offset` onward —
    /// the incremental read used by the [`ArchiveWriter`] flusher, so
    /// each flush copies only the tail it has not persisted yet.
    pub fn events_from(&self, offset: usize) -> Vec<Event> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => {
                let events = inner.events.lock();
                events.get(offset..).unwrap_or_default().to_vec()
            }
        }
    }

    /// Snapshot of all counters.
    pub fn counters(&self) -> Vec<(String, u64)> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner
                .counters
                .lock()
                .iter()
                .map(|(k, &v)| (k.clone(), v))
                .collect(),
        }
    }

    /// The named counter's current value (0 if never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => inner.counters.lock().get(name).copied().unwrap_or(0),
        }
    }

    /// Snapshot of the named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner
            .as_ref()
            .and_then(|inner| inner.histograms.lock().get(name).cloned())
    }

    /// Streams all captured events as JSON-Lines.
    pub fn write_jsonl<W: Write>(&self, writer: &mut W) -> io::Result<()> {
        json::write_jsonl(writer, &self.events())
    }

    /// Folds the captured events and counters into an end-of-run report.
    pub fn summary(&self) -> SummaryReport {
        SummaryReport::from_events(&self.events(), &self.counters())
    }

    /// Extracts the dominant chain through the host-side span tree.
    pub fn critical_path(&self) -> CriticalPath {
        CriticalPath::from_events(&self.events())
    }

    /// Attributes the dominant job's virtual makespan to its phases and
    /// critical tasks (`None` without simulator scheduling points).
    pub fn virtual_critical_path(&self) -> Option<VirtualCriticalPath> {
        VirtualCriticalPath::from_events(&self.events())
    }

    /// Charts the dominant job's per-node utilization as an ASCII Gantt
    /// (`None` without simulator scheduling points).
    pub fn timeline(&self) -> Option<Timeline> {
        Timeline::from_events(&self.events())
    }

    /// Folds the host-side span tree into flamegraph stacks (see
    /// [`host_folded`]); empty string without spans.
    pub fn host_folded(&self) -> String {
        flamegraph::host_folded(&self.events())
    }

    /// Folds the dominant job's virtual schedule into flamegraph stacks
    /// (see [`virtual_folded`]); `None` without scheduling points.
    pub fn virtual_folded(&self) -> Option<String> {
        flamegraph::virtual_folded(&self.events())
    }
}

/// RAII timed region opened by [`Recorder::span`] / [`Span::child`].
///
/// Dropping emits the `span_end` event carrying the measured wall time.
/// On a disabled recorder the span is inert.
#[derive(Debug)]
pub struct Span {
    rec: Recorder,
    id: u64,
    parent_id: u64,
    name: &'static str,
    started: Instant,
    /// Whether this span sits on the recorder's context stack (created
    /// via [`Recorder::span`]) and must be popped off on drop.
    in_context: bool,
    /// Allocator window attributing heap activity to this span
    /// (enabled recorders only); closed on drop, its delta rides the
    /// `span_end` event as `mem.*` labels.
    ledger: Option<LedgerScope>,
}

impl Span {
    /// Opens a child span nested under this one.
    pub fn child(&self, name: &'static str, labels: &[(&str, &str)]) -> Span {
        self.rec.start_span(name, self.id, labels)
    }

    /// This span's id (0 on a disabled recorder).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Closes the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = &self.rec.inner {
            if self.in_context {
                inner.context.lock().retain(|&id| id != self.id);
            }
            // Close the allocator window first so the span's own labels
            // (and the summary's phase accounting) see its heap delta.
            let mut labels: Vec<(String, String)> = Vec::new();
            if let Some(ledger) = self.ledger.take() {
                let mem = ledger.close();
                labels.push(("mem.peak_delta".to_owned(), mem.peak_delta.to_string()));
                labels.push(("mem.allocated".to_owned(), mem.allocated.to_string()));
                labels.push(("mem.allocs".to_owned(), mem.allocs.to_string()));
                if let Some(phase) = self.name.strip_prefix("phase.") {
                    // Sample the live heap into the stream (rendered as a
                    // `C` counter track by the Chrome-trace exporter) and
                    // feed the per-phase peak into the live monitor.
                    Recorder::push(
                        inner,
                        Event {
                            ts_us: Recorder::now_us(inner),
                            kind: EventKind::Count,
                            name: "mem.live_bytes",
                            span_id: 0,
                            parent_id: 0,
                            dur_us: None,
                            value: Some(alloc::mem_stats().live_bytes as f64),
                            labels: Vec::new(),
                        },
                    );
                    if let Some(monitor) = &inner.monitor {
                        monitor.note_phase_peak(phase, mem.peak_bytes);
                    }
                }
            }
            let dur_us = self.started.elapsed().as_micros() as u64;
            Recorder::push(
                inner,
                Event {
                    ts_us: Recorder::now_us(inner),
                    kind: EventKind::SpanEnd,
                    name: self.name,
                    span_id: self.id,
                    parent_id: self.parent_id,
                    dur_us: Some(dur_us),
                    value: None,
                    labels,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        let span = rec.span("phase.map", &[("job", "x")]);
        let child = span.child("task.map", &[]);
        drop(child);
        drop(span);
        rec.point("p", 1.0, &[]);
        rec.count("c", 5);
        rec.observe("h", 10);
        assert!(rec.events().is_empty());
        assert_eq!(rec.counter("c"), 0);
        assert!(rec.histogram("h").is_none());
    }

    #[test]
    fn nested_spans_emit_paired_events_with_monotonic_timing() {
        let rec = Recorder::enabled();
        {
            let outer = rec.span("phase.map", &[("job", "j")]);
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = outer.child("task.map", &[("task", "0")]);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let events = rec.events();
        assert_eq!(events.len(), 5);
        assert_eq!(events[0].kind, EventKind::SpanStart);
        assert_eq!(events[0].name, "phase.map");
        assert_eq!(events[1].name, "task.map");
        assert_eq!(events[1].parent_id, events[0].span_id);
        // Inner closes before outer; the phase end is preceded by its
        // live-heap sample.
        assert_eq!(events[2].name, "task.map");
        assert_eq!(events[3].name, "mem.live_bytes");
        assert_eq!(events[3].kind, EventKind::Count);
        assert_eq!(events[4].name, "phase.map");
        // Every span end carries its allocator attribution.
        for end in [&events[2], &events[4]] {
            assert!(end.label("mem.allocated").is_some(), "{end:?}");
            assert!(end.label("mem.peak_delta").is_some(), "{end:?}");
            assert!(end.label("mem.allocs").is_some(), "{end:?}");
        }
        let inner_dur = events[2].dur_us.unwrap();
        let outer_dur = events[4].dur_us.unwrap();
        assert!(inner_dur <= outer_dur, "{inner_dur} > {outer_dur}");
        assert!(outer_dur >= 4_000, "outer span too short: {outer_dur}");
        // Timestamps never go backwards.
        for pair in events.windows(2) {
            assert!(pair[0].ts_us <= pair[1].ts_us);
        }
    }

    #[test]
    fn counters_and_histograms_aggregate() {
        let rec = Recorder::enabled();
        rec.count("records", 3);
        rec.count("records", 4);
        rec.observe("latency", 100);
        rec.observe("latency", 200);
        assert_eq!(rec.counter("records"), 7);
        let h = rec.histogram("latency").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 300);
        // Aggregates stay out of the event stream.
        assert!(rec.events().is_empty());
    }

    #[test]
    fn clones_share_the_sink() {
        let rec = Recorder::enabled();
        let clone = rec.clone();
        clone.point("from.clone", 1.0, &[]);
        assert_eq!(rec.events().len(), 1);
    }
}
