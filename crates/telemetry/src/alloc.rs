//! The tracking global allocator and the scoped resource ledger.
//!
//! The paper's MRC-style model (and our `--memory-budget` spill
//! machinery) treats per-machine memory as *the* defining constraint of
//! a valid MapReduce algorithm — yet a budget is only a promise unless
//! something measures what a run actually allocates. This module makes
//! the measurement ambient: a [`TrackingAllocator`] wraps the system
//! allocator behind `#[global_allocator]`, so every binary linking this
//! crate counts live bytes, the all-time peak, cumulative allocated
//! bytes and allocation calls in four relaxed atomics — cheap enough to
//! leave on unconditionally, and incapable of changing allocation
//! behaviour (outputs stay bit-identical).
//!
//! On top of the raw counters, a [`LedgerScope`] carves the global
//! stream into attributable windows: opening a scope snapshots the
//! counters and restarts a windowed high-water mark; closing it yields
//! a [`MemDelta`] — the scope's own peak, its growth over the live size
//! at open, and the bytes/calls allocated inside it. Scopes nest: a
//! child's peak propagates into its parent's window on close, so for
//! sequentially nested scopes (the driver → job → phase span tree) the
//! invariants `child peak ≤ parent peak` and `Σ child allocated ≤
//! parent allocated` hold exactly. Under truly concurrent scopes the
//! window is shared and the attribution becomes approximate (never
//! unsafe, never negative) — good enough for the span tree, which opens
//! task scopes from a sequential driver loop.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Bytes currently allocated and not yet freed.
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
/// All-time high-water mark of [`LIVE_BYTES`].
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);
/// Cumulative bytes ever handed out (never decremented).
static TOTAL_ALLOCATED: AtomicU64 = AtomicU64::new(0);
/// Cumulative allocation calls (alloc, alloc_zeroed, realloc).
static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
/// Windowed high-water mark for the innermost open [`LedgerScope`]:
/// swapped down to the current live size on open, max-merged back into
/// the enclosing window on close.
static REGION_PEAK: AtomicU64 = AtomicU64::new(0);

/// A `System`-backed allocator that maintains the module's counters.
/// Installed as the process-wide `#[global_allocator]` below.
pub struct TrackingAllocator;

#[global_allocator]
static GLOBAL: TrackingAllocator = TrackingAllocator;

#[inline]
fn on_alloc(size: usize) {
    let live = LIVE_BYTES.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
    TOTAL_ALLOCATED.fetch_add(size as u64, Ordering::Relaxed);
    ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
    REGION_PEAK.fetch_max(live, Ordering::Relaxed);
}

#[inline]
fn on_dealloc(size: usize) {
    LIVE_BYTES.fetch_sub(size as u64, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            // A realloc retires the old block and allocates the new one;
            // only the net growth moves the live gauge, but the full new
            // size counts as turnover.
            TOTAL_ALLOCATED.fetch_add(new_size as u64, Ordering::Relaxed);
            ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
            if new_size >= layout.size() {
                let grown = (new_size - layout.size()) as u64;
                let live = LIVE_BYTES.fetch_add(grown, Ordering::Relaxed) + grown;
                PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
                REGION_PEAK.fetch_max(live, Ordering::Relaxed);
            } else {
                LIVE_BYTES.fetch_sub((layout.size() - new_size) as u64, Ordering::Relaxed);
            }
        }
        new_ptr
    }
}

/// A point-in-time copy of the allocator's process-wide counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemStats {
    /// Bytes currently allocated and not yet freed.
    pub live_bytes: u64,
    /// All-time high-water mark of `live_bytes`.
    pub peak_bytes: u64,
    /// Cumulative bytes ever allocated.
    pub total_allocated: u64,
    /// Cumulative allocation calls.
    pub allocs: u64,
}

/// Reads the allocator's counters (relaxed loads; consistent enough for
/// telemetry, not a synchronization point).
pub fn mem_stats() -> MemStats {
    MemStats {
        live_bytes: LIVE_BYTES.load(Ordering::Relaxed),
        peak_bytes: PEAK_BYTES.load(Ordering::Relaxed),
        total_allocated: TOTAL_ALLOCATED.load(Ordering::Relaxed),
        allocs: ALLOC_COUNT.load(Ordering::Relaxed),
    }
}

/// What one [`LedgerScope`] observed between open and close.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemDelta {
    /// The highest live size observed while the scope was open
    /// (absolute bytes, ≥ the live size at open).
    pub peak_bytes: u64,
    /// `peak_bytes` minus the live size at open: how far above its
    /// starting point the scope pushed the heap.
    pub peak_delta: u64,
    /// Bytes allocated while the scope was open.
    pub allocated: u64,
    /// Allocation calls made while the scope was open.
    pub allocs: u64,
}

/// A window over the allocator's counters, opened at a span boundary
/// and closed at the matching end — the "resource ledger" every
/// recorder span carries.
#[derive(Debug)]
pub struct LedgerScope {
    live_at_open: u64,
    total_at_open: u64,
    allocs_at_open: u64,
    /// The enclosing window's high-water mark, saved so close() can
    /// restore (and propagate into) it.
    outer_region_peak: u64,
}

impl LedgerScope {
    /// Snapshots the counters and restarts the windowed peak at the
    /// current live size.
    pub fn open() -> Self {
        let live = LIVE_BYTES.load(Ordering::Relaxed);
        let outer = REGION_PEAK.swap(live, Ordering::Relaxed);
        Self {
            live_at_open: live,
            total_at_open: TOTAL_ALLOCATED.load(Ordering::Relaxed),
            allocs_at_open: ALLOC_COUNT.load(Ordering::Relaxed),
            outer_region_peak: outer,
        }
    }

    /// Closes the window: reads this scope's peak, folds it back into
    /// the enclosing window (so a parent's peak is never below its
    /// children's), and returns the attribution.
    pub fn close(self) -> MemDelta {
        let scope_peak = REGION_PEAK.load(Ordering::Relaxed).max(self.live_at_open);
        REGION_PEAK.fetch_max(self.outer_region_peak.max(scope_peak), Ordering::Relaxed);
        MemDelta {
            peak_bytes: scope_peak,
            peak_delta: scope_peak.saturating_sub(self.live_at_open),
            allocated: TOTAL_ALLOCATED
                .load(Ordering::Relaxed)
                .saturating_sub(self.total_at_open),
            allocs: ALLOC_COUNT
                .load(Ordering::Relaxed)
                .saturating_sub(self.allocs_at_open),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_move_the_counters() {
        let before = mem_stats();
        let v: Vec<u8> = Vec::with_capacity(1 << 16);
        let after = mem_stats();
        assert!(after.total_allocated >= before.total_allocated + (1 << 16));
        assert!(after.allocs > before.allocs);
        // The peak gauge trails the live gauge monotonically.
        assert!(after.peak_bytes >= after.live_bytes);
        drop(v);
        // Cumulative counters never move backwards.
        let freed = mem_stats();
        assert!(freed.total_allocated >= after.total_allocated);
        assert!(freed.peak_bytes >= after.peak_bytes);
    }

    #[test]
    fn scope_attributes_its_own_allocations() {
        // Other test threads share the global counters, so assert only
        // invariants that hold under concurrent allocation: our own
        // turnover is a lower bound, and live growth never exceeds the
        // bytes allocated inside the window.
        let scope = LedgerScope::open();
        let v: Vec<u8> = vec![0; 1 << 18];
        let held = v.len() as u64;
        drop(v);
        let delta = scope.close();
        assert!(delta.allocated >= held, "{delta:?}");
        assert!(delta.allocs >= 1, "{delta:?}");
        assert!(delta.peak_delta <= delta.allocated, "{delta:?}");
        assert!(delta.peak_bytes >= delta.peak_delta, "{delta:?}");
    }

    #[test]
    fn nested_scope_peak_propagates_to_the_parent() {
        let parent = LedgerScope::open();
        let child = LedgerScope::open();
        let v: Vec<u8> = vec![0; 1 << 18];
        drop(v);
        let child_delta = child.close();
        let parent_delta = parent.close();
        assert!(
            child_delta.peak_bytes <= parent_delta.peak_bytes,
            "child {child_delta:?} parent {parent_delta:?}"
        );
        assert!(child_delta.allocated <= parent_delta.allocated);
        assert!(child_delta.allocs <= parent_delta.allocs);
    }

    #[test]
    fn idle_scope_growth_is_bounded_by_its_turnover() {
        let scope = LedgerScope::open();
        let delta = scope.close();
        // We allocated nothing, so any window growth came from other
        // threads — and live growth is always bounded by the bytes
        // allocated inside the window.
        assert!(delta.peak_delta <= delta.allocated, "{delta:?}");
        // peak_bytes is the absolute live size, never below the open
        // point even when nothing was allocated.
        assert!(delta.peak_bytes > 0);
    }
}
