//! Log-bucketed histograms: power-of-two buckets give ~2x relative
//! error on quantiles at a fixed 65-slot footprint, which is plenty for
//! task-runtime and byte-size distributions.

/// A histogram over `u64` samples with power-of-two buckets.
///
/// Bucket 0 holds the value 0; bucket `i >= 1` holds the half-open
/// value range `[2^(i-1), 2^i)`. Exact `count`/`sum`/`min`/`max` are
/// tracked alongside, so means and extremes are not quantised.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index `value` falls into.
    pub fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// The inclusive value range `[lo, hi]` covered by bucket `index`.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        match index {
            0 => (0, 0),
            64 => (1 << 63, u64::MAX),
            i => (1 << (i - 1), (1 << i) - 1),
        }
    }

    /// The raw per-bucket counts (value ranges per
    /// [`Histogram::bucket_bounds`]) — what a Prometheus-style
    /// exposition folds into cumulative `le` buckets.
    pub fn buckets(&self) -> &[u64; 65] {
        &self.buckets
    }

    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of all samples, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), resolved to the upper bound of
    /// the bucket containing the rank, clamped to the observed max.
    /// `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the sample we want, 1-based ceil: q=0.5 over 10
        // samples lands on the 5th.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(Self::bucket_bounds(i).1.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::Histogram;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        for i in 0..=64 {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert!(lo <= hi);
            assert_eq!(Histogram::bucket_index(lo), i, "lo of bucket {i}");
            assert_eq!(Histogram::bucket_index(hi), i, "hi of bucket {i}");
        }
    }

    #[test]
    fn exact_stats_are_not_quantised() {
        let mut h = Histogram::new();
        for v in [3, 5, 900, 17] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 925);
        assert_eq!(h.min(), Some(3));
        assert_eq!(h.max(), Some(900));
    }

    #[test]
    fn quantiles_resolve_to_bucket_upper_bounds() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        // p50 of 1..=1000 is 500, bucket [256,511] -> upper bound 511.
        assert_eq!(h.quantile(0.5), Some(511));
        // p95 is 950, bucket [512,1023] -> clamped to the observed max.
        assert_eq!(h.quantile(0.95), Some(1000));
        assert_eq!(h.quantile(1.0), Some(1000));
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(Histogram::new().quantile(0.5), None);
    }
}
