//! The structured event model: everything a [`crate::Recorder`] captures
//! is one of these flat records, ordered by capture time.

/// What an [`Event`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span (timed region) opened.
    SpanStart,
    /// A span closed; `dur_us` holds its wall time.
    SpanEnd,
    /// An instantaneous measurement; `value` holds it.
    Point,
    /// A monotonic counter increment; `value` holds the delta.
    Count,
}

impl EventKind {
    /// Stable lowercase identifier used in the JSONL export.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::SpanStart => "span_start",
            EventKind::SpanEnd => "span_end",
            EventKind::Point => "point",
            EventKind::Count => "count",
        }
    }
}

/// One captured telemetry record.
#[derive(Debug, Clone)]
pub struct Event {
    /// Microseconds since the recorder was created.
    pub ts_us: u64,
    /// Record type.
    pub kind: EventKind,
    /// Event name, dot-namespaced (`phase.map`, `task.map`,
    /// `kmeans.iteration`, ...).
    pub name: &'static str,
    /// Span identity (`SpanStart`/`SpanEnd` only; 0 otherwise).
    pub span_id: u64,
    /// Enclosing span's id, or 0 at the root.
    pub parent_id: u64,
    /// Wall time of the span in microseconds (`SpanEnd` only).
    pub dur_us: Option<u64>,
    /// Measurement or counter delta (`Point` / `Count` only).
    pub value: Option<f64>,
    /// Free-form identity tags (`task` number, `locality`, `node`, ...).
    pub labels: Vec<(String, String)>,
}

impl Event {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}
