//! Folded-stack ("flamegraph") export of a captured trace, in the
//! format `inferno` / speedscope / Brendan Gregg's `flamegraph.pl`
//! consume: one `frame;frame;frame value` line per stack, value in
//! integer microseconds.
//!
//! Two complementary exports mirror the two critical-path views:
//!
//! - [`host_folded`] folds the *host-side* span tree. Because parallel
//!   task spans overlap in wall time, a naive self-time fold would
//!   double-count; instead the root span's wall clock is swept interval
//!   by interval and each instant is attributed to the chain of spans
//!   the run was actually waiting on (the same "latest-ending child"
//!   rule as [`crate::CriticalPath`]), so the exported self-times sum
//!   exactly to the root span's wall time.
//! - [`virtual_folded`] folds the virtual scheduler's `sched.*` points
//!   of the dominant job: every scheduled attempt (successes, failures,
//!   crash kills) becomes a stack under its phase, weighted by its
//!   virtual duration — makespan *attribution* rather than wall time.

use crate::analysis::{build_spans, dominant_segment, parse_label_usize, SpanNode};
use crate::event::Event;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A span's display frame: its name plus the first identity label.
fn frame(span: &SpanNode) -> String {
    for key in ["job", "iter", "task", "block"] {
        if let Some((_, v)) = span.labels.iter().find(|(k, _)| k == key) {
            return format!("{}({})", span.name, v);
        }
    }
    span.name.to_string()
}

/// Folds the host-side span tree into stacks whose self-times sum to
/// the root span's wall time (the [`crate::CriticalPath`] total).
/// Empty string when the stream holds no spans.
pub fn host_folded(events: &[Event]) -> String {
    let spans = build_spans(events);
    if spans.is_empty() {
        return String::new();
    }
    let ids: BTreeMap<u64, usize> = spans
        .iter()
        .enumerate()
        .map(|(i, s)| (s.span_id, i))
        .collect();
    let mut children: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        if s.parent_id != 0 && ids.contains_key(&s.parent_id) {
            children.entry(s.parent_id).or_default().push(i);
        }
    }
    // Same root rule as CriticalPath: the longest top-level span,
    // earliest on ties.
    let root = spans
        .iter()
        .enumerate()
        .filter(|(_, s)| s.parent_id == 0 || !ids.contains_key(&s.parent_id))
        .max_by(|a, b| a.1.dur_us.cmp(&b.1.dur_us).then(b.0.cmp(&a.0)))
        .map(|(i, _)| i)
        .expect("non-empty span set has a root");
    let (root_start, root_end) = (spans[root].start_us(), spans[root].end_us);
    if root_end <= root_start {
        return format!("{} {}\n", frame(&spans[root]), spans[root].dur_us);
    }

    // Members of the root's subtree, with endpoints clamped to the root
    // interval so every span boundary is a sweep boundary.
    let mut subtree = vec![false; spans.len()];
    let mut stack = vec![root];
    while let Some(i) = stack.pop() {
        subtree[i] = true;
        if let Some(kids) = children.get(&spans[i].span_id) {
            stack.extend(kids.iter().copied());
        }
    }
    let clamp = |t: u64| t.clamp(root_start, root_end);
    let mut boundaries: Vec<u64> = Vec::with_capacity(spans.len() * 2);
    for (i, s) in spans.iter().enumerate() {
        if subtree[i] {
            boundaries.push(clamp(s.start_us()));
            boundaries.push(clamp(s.end_us));
        }
    }
    boundaries.sort_unstable();
    boundaries.dedup();

    // Sweep: attribute each elementary interval to the deepest chain of
    // spans covering it, descending to the latest-ending covering child
    // at each level (ties to the longest) — the child the parent waits
    // on, matching CriticalPath's chain rule.
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for window in boundaries.windows(2) {
        let (t0, t1) = (window[0], window[1]);
        if t1 <= t0 {
            continue;
        }
        let mut path = frame(&spans[root]);
        let mut cur = root;
        loop {
            let next = children.get(&spans[cur].span_id).and_then(|kids| {
                kids.iter()
                    .copied()
                    .filter(|&j| clamp(spans[j].start_us()) <= t0 && clamp(spans[j].end_us) >= t1)
                    .max_by(|&a, &b| {
                        spans[a]
                            .end_us
                            .cmp(&spans[b].end_us)
                            .then(spans[a].dur_us.cmp(&spans[b].dur_us))
                    })
            });
            match next {
                Some(j) => {
                    let _ = write!(path, ";{}", frame(&spans[j]));
                    cur = j;
                }
                None => break,
            }
        }
        *folded.entry(path).or_insert(0) += t1 - t0;
    }

    let mut out = String::with_capacity(folded.len() * 48);
    for (path, us) in folded {
        let _ = writeln!(out, "{path} {us}");
    }
    out
}

/// Folds the span tree into *allocation* stacks: each span's frame
/// chain weighted by the bytes its own code allocated (the span's
/// `mem.allocated` ledger minus its direct children's), so frame widths
/// show where the heap turnover happened instead of where the time
/// went. `None` when no span carries ledger labels (recorder disabled
/// or a pre-ledger stream).
pub fn alloc_folded(events: &[Event]) -> Option<String> {
    let spans = build_spans(events);
    let allocated: Vec<Option<u64>> = spans
        .iter()
        .map(|s| {
            s.labels
                .iter()
                .find(|(k, _)| k == "mem.allocated")
                .and_then(|(_, v)| v.parse::<u64>().ok())
        })
        .collect();
    if allocated.iter().all(Option::is_none) {
        return None;
    }
    let ids: BTreeMap<u64, usize> = spans
        .iter()
        .enumerate()
        .map(|(i, s)| (s.span_id, i))
        .collect();
    // Bytes already attributed to each span's direct children; the
    // ledger nests, so a parent's exclusive share is its own total
    // minus theirs.
    let mut child_alloc = vec![0u64; spans.len()];
    for (i, s) in spans.iter().enumerate() {
        if s.parent_id == 0 {
            continue;
        }
        if let (Some(&p), Some(a)) = (ids.get(&s.parent_id), allocated[i]) {
            child_alloc[p] += a;
        }
    }
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        let Some(own) = allocated[i] else { continue };
        let exclusive = own.saturating_sub(child_alloc[i]);
        if exclusive == 0 {
            continue;
        }
        let mut chain = vec![frame(s)];
        let mut cur = s;
        while cur.parent_id != 0 {
            match ids.get(&cur.parent_id) {
                Some(&p) => {
                    cur = &spans[p];
                    chain.push(frame(cur));
                }
                None => break,
            }
        }
        chain.reverse();
        *folded.entry(chain.join(";")).or_insert(0) += exclusive;
    }
    let mut out = String::with_capacity(folded.len() * 48);
    for (path, bytes) in folded {
        let _ = writeln!(out, "{path} {bytes}");
    }
    Some(out)
}

/// Folds the dominant job's virtual schedule into stacks weighted by
/// each attempt's virtual duration (integer microseconds): makespan
/// attribution of scheduled work, recovery attempts included. `None`
/// when the stream holds no successful `sched.*` points.
pub fn virtual_folded(events: &[Event]) -> Option<String> {
    let seg = dominant_segment(events)?;
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for p in &seg.points {
        let Some(kind) = p.name.strip_prefix("sched.") else {
            continue;
        };
        let (Some(task), Some(node), Some(dur_s)) = (
            parse_label_usize(p, "task"),
            parse_label_usize(p, "node"),
            p.value,
        ) else {
            continue;
        };
        let kind = if kind == "map" && p.label("reexec").is_some() {
            "map.reexec".to_string()
        } else {
            kind.to_string()
        };
        let stack = format!("job({});{kind};task{task}@n{node}", seg.name);
        *folded.entry(stack).or_insert(0) += (dur_s * 1e6).round() as u64;
    }
    let mut out = String::with_capacity(folded.len() * 48);
    for (path, us) in folded {
        let _ = writeln!(out, "{path} {us}");
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::CriticalPath;
    use crate::event::EventKind;

    fn owned(labels: &[(&str, &str)]) -> Vec<(String, String)> {
        labels
            .iter()
            .map(|&(k, v)| (k.to_owned(), v.to_owned()))
            .collect()
    }

    fn start(name: &'static str, id: u64, parent: u64, ts: u64, labels: &[(&str, &str)]) -> Event {
        Event {
            ts_us: ts,
            kind: EventKind::SpanStart,
            name,
            span_id: id,
            parent_id: parent,
            dur_us: None,
            value: None,
            labels: owned(labels),
        }
    }

    fn end(name: &'static str, id: u64, parent: u64, ts: u64, dur: u64) -> Event {
        Event {
            ts_us: ts,
            kind: EventKind::SpanEnd,
            name,
            span_id: id,
            parent_id: parent,
            dur_us: Some(dur),
            value: None,
            labels: Vec::new(),
        }
    }

    fn sched(
        name: &'static str,
        task: usize,
        node: usize,
        start_s: f64,
        dur_s: f64,
        extra: &[(&str, &str)],
    ) -> Event {
        let mut labels = vec![
            ("task".to_string(), task.to_string()),
            ("node".to_string(), node.to_string()),
            ("start".to_string(), format!("{start_s:.6}")),
        ];
        labels.extend(extra.iter().map(|&(k, v)| (k.to_owned(), v.to_owned())));
        Event {
            ts_us: 0,
            kind: EventKind::Point,
            name,
            span_id: 0,
            parent_id: 0,
            dur_us: None,
            value: Some(dur_s),
            labels,
        }
    }

    fn folded_total(text: &str) -> u64 {
        text.lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum()
    }

    #[test]
    fn empty_stream_folds_to_nothing() {
        assert_eq!(host_folded(&[]), "");
        assert!(virtual_folded(&[]).is_none());
    }

    #[test]
    fn overlapping_tasks_do_not_double_count() {
        // job(0..100) -> phase.map(0..60) -> two tasks overlapping in
        // 10..50; a naive fold would sum 40 extra microseconds.
        let events = vec![
            start("job", 1, 0, 0, &[("job", "wc")]),
            start("phase.map", 2, 1, 0, &[]),
            start("task.map", 3, 2, 10, &[("task", "0")]),
            start("task.map", 4, 2, 10, &[("task", "1")]),
            end("task.map", 3, 2, 50, 40),
            end("task.map", 4, 2, 55, 45),
            end("phase.map", 2, 1, 60, 60),
            end("job", 1, 0, 100, 100),
        ];
        let text = host_folded(&events);
        let cp = CriticalPath::from_events(&events);
        assert_eq!(folded_total(&text), cp.total_us);
        // The overlap window belongs to the later-ending task 1.
        assert!(text.contains("job(wc);phase.map;task.map(1) 45"), "{text}");
        // Task 0 never owns an instant: task 1 covers its whole life.
        assert!(!text.contains("task.map(0)"), "{text}");
        // Time outside phase.map stays with the job frame.
        assert!(text.contains("job(wc) 40"), "{text}");
    }

    #[test]
    fn unclosed_spans_still_sum_to_the_critical_path_total() {
        let events = vec![
            start("job", 1, 0, 0, &[("job", "wc")]),
            start("phase.map", 2, 1, 10, &[]),
            start("task.map", 3, 2, 20, &[("task", "0")]),
            end("task.map", 3, 2, 45, 25),
        ];
        let text = host_folded(&events);
        let cp = CriticalPath::from_events(&events);
        assert_eq!(folded_total(&text), cp.total_us);
    }

    fn end_with_alloc(
        name: &'static str,
        id: u64,
        parent: u64,
        ts: u64,
        dur: u64,
        allocated: u64,
    ) -> Event {
        let mut e = end(name, id, parent, ts, dur);
        e.labels = owned(&[("mem.allocated", &allocated.to_string())]);
        e
    }

    #[test]
    fn alloc_fold_attributes_exclusive_bytes_per_frame() {
        let events = vec![
            start("job", 1, 0, 0, &[("job", "wc")]),
            start("phase.map", 2, 1, 0, &[]),
            start("task.map", 3, 2, 10, &[("task", "0")]),
            end_with_alloc("task.map", 3, 2, 50, 40, 25),
            end_with_alloc("phase.map", 2, 1, 60, 60, 60),
            end_with_alloc("job", 1, 0, 100, 100, 100),
        ];
        let text = alloc_folded(&events).unwrap();
        // Exclusive shares: job 100-60, phase 60-25, task 25.
        assert!(text.contains("job(wc) 40"), "{text}");
        assert!(text.contains("job(wc);phase.map 35"), "{text}");
        assert!(text.contains("job(wc);phase.map;task.map(0) 25"), "{text}");
        // Exclusive bytes sum back to the root's ledger total.
        assert_eq!(folded_total(&text), 100);
        // Streams without ledger labels have no alloc fold.
        let plain = vec![start("job", 1, 0, 0, &[]), end("job", 1, 0, 10, 10)];
        assert!(alloc_folded(&plain).is_none());
    }

    #[test]
    fn virtual_fold_weights_attempts_by_virtual_duration() {
        let mut events = vec![start("job", 1, 0, 0, &[("job", "wc")])];
        events.push(sched("sched.map", 0, 0, 0.0, 2.0, &[]));
        events.push(sched("sched.map", 1, 1, 0.0, 3.0, &[("reexec", "1")]));
        events.push(sched("sched.map.killed", 2, 2, 0.0, 1.5, &[]));
        events.push(sched("sched.reduce", 0, 0, 3.0, 4.0, &[]));
        events.push(end("job", 1, 0, 10, 10));
        let text = virtual_folded(&events).unwrap();
        assert!(text.contains("job(wc);map;task0@n0 2000000"), "{text}");
        assert!(
            text.contains("job(wc);map.reexec;task1@n1 3000000"),
            "{text}"
        );
        assert!(
            text.contains("job(wc);map.killed;task2@n2 1500000"),
            "{text}"
        );
        assert!(text.contains("job(wc);reduce;task0@n0 4000000"), "{text}");
        assert_eq!(folded_total(&text), 10_500_000);
    }
}
