//! Chrome trace-event (Perfetto) export of a captured run.
//!
//! Serializes the host span tree and the virtual scheduler's timeline
//! into the JSON Object Format the Chrome tracing ecosystem consumes
//! (`chrome://tracing`, `ui.perfetto.dev`): a `traceEvents` array of
//! `B`/`E` duration pairs, complete `X` events, instant `i` markers,
//! `C` counter samples and `M` metadata records.
//!
//! Two synthetic processes keep the host and virtual views apart:
//!
//! - **pid 1 — `host`**: real wall time. Each resume attempt gets a
//!   block of thread lanes (`attempt N` for the driver/job/phase spans,
//!   `attempt N task K` for per-task spans), so a stitched trace shows
//!   pre-kill work and the resumed attempt side by side.
//! - **pid 2 — `virtual-cluster`**: the simulator's job-local schedule.
//!   Every `sched.*` point becomes an `X` slice on its node's lane
//!   (`node N`), re-executions are renamed `map.reexec`, and `chaos.*`
//!   points land as instant markers.
//!
//! The export is a pure fold over an [`Event`] slice, so it works on a
//! live recorder snapshot and on a stitched
//! [`crate::archive`] stream alike.

use crate::analysis::{build_spans, parse_label_f64, parse_label_usize, SpanNode};
use crate::event::{Event, EventKind};
use crate::json::{push_f64, push_str_lit};
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// Synthetic pid of the host (wall-clock) span process.
const HOST_PID: u64 = 1;
/// Synthetic pid of the virtual-cluster (simulated schedule) process.
const VIRT_PID: u64 = 2;
/// Thread-id block reserved per resume attempt on the host pid.
const LANE_STRIDE: u64 = 1000;

/// One serialized trace-event object under construction.
struct Obj(String);

impl Obj {
    fn new() -> Self {
        Obj(String::from("{"))
    }
    fn sep(&mut self) {
        if self.0.len() > 1 {
            self.0.push(',');
        }
    }
    fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.sep();
        push_str_lit(&mut self.0, key);
        self.0.push(':');
        push_str_lit(&mut self.0, value);
        self
    }
    fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.sep();
        push_str_lit(&mut self.0, key);
        self.0.push(':');
        self.0.push_str(&value.to_string());
        self
    }
    /// Inserts a pre-serialized JSON value (e.g. a nested `args` object).
    fn raw(&mut self, key: &str, value: &str) -> &mut Self {
        self.sep();
        push_str_lit(&mut self.0, key);
        self.0.push(':');
        self.0.push_str(value);
        self
    }
    fn finish(mut self) -> String {
        self.0.push('}');
        self.0
    }
}

/// Serializes string-valued labels as a JSON object.
fn args_obj(labels: &[(String, String)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str_lit(&mut out, k);
        out.push(':');
        push_str_lit(&mut out, v);
    }
    out.push('}');
    out
}

fn label_of<'a>(labels: &'a [(String, String)], key: &str) -> Option<&'a str> {
    labels
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

/// The resume attempt a span belongs to (0 for unstitched streams).
/// Reads the stitcher's `run_attempt` tag — NOT the engine's per-task
/// `attempt` label, which counts task re-executions, not resumes.
fn span_attempt(s: &SpanNode) -> u64 {
    label_of(&s.labels, "run_attempt")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn event_attempt(e: &Event) -> u64 {
    e.label("run_attempt")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Emits one span subtree as `B`/`E` pairs on `tid`, clamped to
/// `[lo, hi]` so children (and overlap-racing siblings) never violate
/// the per-thread stack discipline the format requires. Returns the
/// clamped end so the caller can advance its sibling cursor.
#[allow(clippy::too_many_arguments)]
fn emit_span(
    spans: &[SpanNode],
    children: &BTreeMap<u64, Vec<usize>>,
    lane: &[u64],
    i: usize,
    lo: u64,
    hi: u64,
    tid: u64,
    out: &mut Vec<String>,
) -> u64 {
    let s = &spans[i];
    let start = s.start_us().clamp(lo, hi);
    let end = s.end_us.clamp(start, hi);
    let mut b = Obj::new();
    b.str("name", s.name)
        .str("ph", "B")
        .u64("ts", start)
        .u64("pid", HOST_PID)
        .u64("tid", tid);
    if !s.labels.is_empty() {
        b.raw("args", &args_obj(&s.labels));
    }
    out.push(b.finish());
    let mut kids: Vec<usize> = children
        .get(&s.span_id)
        .map(|c| c.iter().copied().filter(|&j| lane[j] == lane[i]).collect())
        .unwrap_or_default();
    kids.sort_by_key(|&j| spans[j].start_us());
    let mut cursor = start;
    for j in kids {
        let child_lo = cursor.max(spans[j].start_us()).min(end);
        cursor = emit_span(spans, children, lane, j, child_lo, end, tid, out);
    }
    let mut e = Obj::new();
    e.str("name", s.name)
        .str("ph", "E")
        .u64("ts", end)
        .u64("pid", HOST_PID)
        .u64("tid", tid);
    out.push(e.finish());
    end
}

/// Exports a captured event stream as a Chrome trace-event JSON
/// document (`{"traceEvents":[...],"displayTimeUnit":"ms"}`), loadable
/// in `ui.perfetto.dev` or `chrome://tracing`.
pub fn write_chrome_trace(events: &[Event]) -> String {
    let spans = build_spans(events);
    let ids: BTreeMap<u64, usize> = spans
        .iter()
        .enumerate()
        .map(|(i, s)| (s.span_id, i))
        .collect();
    let mut children: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        if s.parent_id != 0 && ids.contains_key(&s.parent_id) {
            children.entry(s.parent_id).or_default().push(i);
        }
    }

    // Lane assignment. Spans arrive in start order, so a parent's lane
    // is always decided before its children inherit it: `task.*` spans
    // open a per-task lane inside their attempt's block, everything
    // else (driver, job, phase spans) shares the attempt's control lane.
    let mut lane = vec![0u64; spans.len()];
    for i in 0..spans.len() {
        let s = &spans[i];
        let base = span_attempt(s) * LANE_STRIDE;
        let inherited = ids.get(&s.parent_id).map(|&j| lane[j]);
        let task_lane = if s.name.starts_with("task.") {
            label_of(&s.labels, "task")
                .and_then(|v| v.parse::<u64>().ok())
                .map(|t| base + 2 + t)
        } else {
            None
        };
        lane[i] = task_lane.or(inherited).unwrap_or(base + 1);
    }

    // A lane-root is a span whose parent lives on another lane (or is
    // absent); each root's subtree is emitted as one stack-disciplined
    // B/E sequence.
    let mut lane_roots: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        let is_root = match ids.get(&s.parent_id) {
            Some(&j) => lane[j] != lane[i],
            None => true,
        };
        if is_root {
            lane_roots.entry(lane[i]).or_default().push(i);
        }
    }

    let mut out: Vec<String> = Vec::new();
    let mut host_tids: BTreeSet<u64> = BTreeSet::new();
    for (&tid, roots) in &mut lane_roots {
        host_tids.insert(tid);
        roots.sort_by_key(|&i| spans[i].start_us());
        let mut cursor = 0u64;
        for &i in roots.iter() {
            let lo = cursor.max(spans[i].start_us());
            cursor = emit_span(&spans, &children, &lane, i, lo, u64::MAX, tid, &mut out);
        }
    }

    // Counters, instant points, and the virtual-cluster schedule.
    let mut virt_tids: BTreeSet<u64> = BTreeSet::new();
    let mut open_jobs: Vec<(u64, u64, String)> = Vec::new(); // span_id, host ts, job name
    for e in events {
        match e.kind {
            EventKind::SpanStart if e.name == "job" => {
                open_jobs.push((e.span_id, e.ts_us, e.label("job").unwrap_or("?").to_owned()));
            }
            EventKind::SpanEnd if e.name == "job" => {
                open_jobs.retain(|&(id, _, _)| id != e.span_id);
            }
            EventKind::Count => {
                let mut c = Obj::new();
                c.str("name", e.name)
                    .str("ph", "C")
                    .u64("ts", e.ts_us)
                    .u64("pid", HOST_PID)
                    .u64("tid", event_attempt(e) * LANE_STRIDE + 1);
                host_tids.insert(event_attempt(e) * LANE_STRIDE + 1);
                let mut args = String::from("{");
                push_str_lit(&mut args, e.name);
                args.push(':');
                push_f64(&mut args, e.value.unwrap_or(0.0));
                args.push('}');
                c.raw("args", &args);
                out.push(c.finish());
            }
            EventKind::Point if e.name.starts_with("sched.") || e.name.starts_with("chaos.") => {
                let job_ts = open_jobs.last().map(|&(_, ts, _)| ts).unwrap_or(0);
                let job_name = open_jobs
                    .last()
                    .map(|(_, _, n)| n.as_str())
                    .unwrap_or("run");
                if e.name.starts_with("sched.") {
                    let (Some(start_s), Some(dur_s), Some(node)) = (
                        parse_label_f64(e, "start"),
                        e.value,
                        parse_label_usize(e, "node"),
                    ) else {
                        continue;
                    };
                    let mut name = e.name.strip_prefix("sched.").unwrap_or(e.name).to_owned();
                    if name == "map" && e.label("reexec").is_some() {
                        name = "map.reexec".to_owned();
                    }
                    let tid = node as u64 + 1;
                    virt_tids.insert(tid);
                    let mut x = Obj::new();
                    x.str("name", &name)
                        .str("ph", "X")
                        .u64("ts", job_ts + (start_s * 1e6).round().max(0.0) as u64)
                        .u64("dur", (dur_s * 1e6).round().max(0.0) as u64)
                        .u64("pid", VIRT_PID)
                        .u64("tid", tid);
                    let mut labels: Vec<(String, String)> = Vec::new();
                    if let Some(task) = e.label("task") {
                        labels.push(("task".to_owned(), task.to_owned()));
                    }
                    labels.push(("job".to_owned(), job_name.to_owned()));
                    x.raw("args", &args_obj(&labels));
                    out.push(x.finish());
                } else {
                    let node = parse_label_usize(e, "node").unwrap_or(0);
                    let at_s = e.value.unwrap_or(0.0).max(0.0);
                    let tid = node as u64 + 1;
                    virt_tids.insert(tid);
                    let mut i = Obj::new();
                    i.str("name", e.name)
                        .str("ph", "i")
                        .u64("ts", job_ts + (at_s * 1e6).round() as u64)
                        .u64("pid", VIRT_PID)
                        .u64("tid", tid)
                        .str("s", "t");
                    out.push(i.finish());
                }
            }
            EventKind::Point => {
                let tid = event_attempt(e) * LANE_STRIDE + 1;
                host_tids.insert(tid);
                let mut i = Obj::new();
                i.str("name", e.name)
                    .str("ph", "i")
                    .u64("ts", e.ts_us)
                    .u64("pid", HOST_PID)
                    .u64("tid", tid)
                    .str("s", "t");
                if !e.labels.is_empty() {
                    i.raw("args", &args_obj(&e.labels));
                }
                out.push(i.finish());
            }
            _ => {}
        }
    }

    // Metadata names, emitted first so viewers label lanes immediately.
    let mut meta: Vec<String> = Vec::new();
    let process_name = |pid: u64, name: &str| {
        let mut m = Obj::new();
        m.str("name", "process_name").str("ph", "M").u64("pid", pid);
        let mut args = String::from("{");
        push_str_lit(&mut args, "name");
        args.push(':');
        push_str_lit(&mut args, name);
        args.push('}');
        m.raw("args", &args);
        m.finish()
    };
    let thread_name = |pid: u64, tid: u64, name: &str| {
        let mut m = Obj::new();
        m.str("name", "thread_name")
            .str("ph", "M")
            .u64("pid", pid)
            .u64("tid", tid);
        let mut args = String::from("{");
        push_str_lit(&mut args, "name");
        args.push(':');
        push_str_lit(&mut args, name);
        args.push('}');
        m.raw("args", &args);
        m.finish()
    };
    meta.push(process_name(HOST_PID, "host"));
    for &tid in &host_tids {
        let attempt = tid / LANE_STRIDE;
        let name = if tid % LANE_STRIDE == 1 {
            format!("attempt {attempt}")
        } else {
            format!("attempt {attempt} task {}", tid % LANE_STRIDE - 2)
        };
        meta.push(thread_name(HOST_PID, tid, &name));
    }
    if !virt_tids.is_empty() {
        meta.push(process_name(VIRT_PID, "virtual-cluster"));
        for &tid in &virt_tids {
            meta.push(thread_name(VIRT_PID, tid, &format!("node {}", tid - 1)));
        }
    }

    let mut doc = String::from("{\"traceEvents\":[");
    for (i, ev) in meta.iter().chain(out.iter()).enumerate() {
        if i > 0 {
            doc.push(',');
        }
        doc.push('\n');
        doc.push_str(ev);
    }
    doc.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn owned(labels: &[(&str, &str)]) -> Vec<(String, String)> {
        labels
            .iter()
            .map(|&(k, v)| (k.to_owned(), v.to_owned()))
            .collect()
    }

    fn start(name: &'static str, id: u64, parent: u64, ts: u64, labels: &[(&str, &str)]) -> Event {
        Event {
            ts_us: ts,
            kind: EventKind::SpanStart,
            name,
            span_id: id,
            parent_id: parent,
            dur_us: None,
            value: None,
            labels: owned(labels),
        }
    }

    fn end(name: &'static str, id: u64, parent: u64, ts: u64, dur: u64) -> Event {
        Event {
            ts_us: ts,
            kind: EventKind::SpanEnd,
            name,
            span_id: id,
            parent_id: parent,
            dur_us: Some(dur),
            value: None,
            labels: Vec::new(),
        }
    }

    fn point(name: &'static str, value: f64, labels: &[(&str, &str)]) -> Event {
        Event {
            ts_us: 5,
            kind: EventKind::Point,
            name,
            span_id: 0,
            parent_id: 0,
            dur_us: None,
            value: Some(value),
            labels: owned(labels),
        }
    }

    fn sample_events() -> Vec<Event> {
        vec![
            start("job", 1, 0, 0, &[("job", "wc")]),
            start("phase.map", 2, 1, 0, &[("tasks", "2")]),
            start("task.map", 3, 2, 1, &[("task", "0")]),
            end("task.map", 3, 2, 40, 39),
            start("task.map", 4, 2, 2, &[("task", "1")]),
            end("task.map", 4, 2, 60, 58),
            end("phase.map", 2, 1, 60, 60),
            point(
                "sched.map",
                2.0,
                &[("task", "0"), ("node", "0"), ("start", "0.000000")],
            ),
            point(
                "sched.map",
                3.0,
                &[
                    ("task", "1"),
                    ("node", "1"),
                    ("start", "2.000000"),
                    ("reexec", "1"),
                ],
            ),
            point("chaos.crash", 1.5, &[("node", "1")]),
            point("task.retry", 1.0, &[("phase", "map"), ("task", "1")]),
            end("job", 1, 0, 100, 100),
        ]
    }

    fn events_of(doc: &str) -> Vec<Json> {
        let parsed = Json::parse(doc).expect("trace parses as JSON");
        parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array")
            .to_vec()
    }

    #[test]
    fn exports_balanced_begin_end_pairs_per_lane() {
        let doc = write_chrome_trace(&sample_events());
        let events = events_of(&doc);
        let mut stacks: BTreeMap<(u64, u64), Vec<String>> = BTreeMap::new();
        for e in &events {
            let ph = e.get("ph").and_then(Json::as_str).unwrap();
            let pid = e.get("pid").and_then(Json::as_u64).unwrap_or(0);
            let tid = e.get("tid").and_then(Json::as_u64).unwrap_or(0);
            let name = e.get("name").and_then(Json::as_str).unwrap().to_owned();
            match ph {
                "B" => stacks.entry((pid, tid)).or_default().push(name),
                "E" => {
                    let top = stacks.entry((pid, tid)).or_default().pop();
                    assert_eq!(top.as_deref(), Some(name.as_str()), "mismatched E");
                }
                _ => {}
            }
        }
        for ((pid, tid), stack) in stacks {
            assert!(stack.is_empty(), "unclosed B events on {pid}:{tid}");
        }
    }

    #[test]
    fn task_spans_get_their_own_lanes_and_sched_points_become_slices() {
        let doc = write_chrome_trace(&sample_events());
        let events = events_of(&doc);
        let tid_of = |name: &str, ph: &str| -> Vec<u64> {
            events
                .iter()
                .filter(|e| {
                    e.get("name").and_then(Json::as_str) == Some(name)
                        && e.get("ph").and_then(Json::as_str) == Some(ph)
                })
                .map(|e| e.get("tid").and_then(Json::as_u64).unwrap())
                .collect()
        };
        // The two map tasks sit on distinct lanes, apart from the
        // control lane carrying job/phase spans.
        let task_tids = tid_of("task.map", "B");
        assert_eq!(task_tids.len(), 2);
        assert_ne!(task_tids[0], task_tids[1]);
        let control = tid_of("job", "B");
        assert_eq!(control, vec![1]);
        assert!(!task_tids.contains(&1));
        // The virtual schedule: one clean map slice, one re-execution.
        assert_eq!(tid_of("map", "X"), vec![1]);
        assert_eq!(tid_of("map.reexec", "X"), vec![2]);
        // Chaos instant and the retry marker survive.
        assert_eq!(tid_of("chaos.crash", "i").len(), 1);
        assert_eq!(tid_of("task.retry", "i"), vec![1]);
        // Metadata names both processes.
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .filter_map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
            })
            .collect();
        assert!(names.contains(&"host"), "{names:?}");
        assert!(names.contains(&"virtual-cluster"), "{names:?}");
        assert!(names.contains(&"node 1"), "{names:?}");
        assert!(names.contains(&"attempt 0 task 0"), "{names:?}");
    }

    #[test]
    fn stitched_attempt_labels_split_host_lanes() {
        let mut events = sample_events();
        for e in &mut events {
            e.labels.push(("run_attempt".to_owned(), "1".to_owned()));
        }
        let doc = write_chrome_trace(&events);
        let parsed = events_of(&doc);
        let job_tid = parsed
            .iter()
            .find(|e| {
                e.get("name").and_then(Json::as_str) == Some("job")
                    && e.get("ph").and_then(Json::as_str) == Some("B")
            })
            .and_then(|e| e.get("tid"))
            .and_then(Json::as_u64)
            .unwrap();
        assert_eq!(job_tid, LANE_STRIDE + 1, "attempt 1 uses its own block");
    }

    #[test]
    fn empty_stream_is_still_a_valid_document() {
        let doc = write_chrome_trace(&[]);
        let parsed = Json::parse(&doc).unwrap();
        assert_eq!(
            parsed
                .get("traceEvents")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(1),
            "only the host process_name record"
        );
    }
}
