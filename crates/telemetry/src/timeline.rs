//! Per-node utilization timeline: renders the virtual scheduler's
//! `sched.*` points as an ASCII Gantt chart, one lane per node, with the
//! chaos events (crashes, blacklists, degradations) overlaid — the
//! visual counterpart of [`crate::VirtualCriticalPath`]'s attribution.
//!
//! ```text
//! == node timeline: job wc (0 .. 12.000 s, 1 col ~= 0.200 s) ==
//! node 0 |MMMMMMMMMM..RRRRRRRR....| busy 75%
//! node 1 |mmmmmmmm....RRRR........| busy 50%
//! node 2 |xxxx!-------------------| busy 17%, crashed @ 5.000 s
//! legend: M map  m re-executed map  R reduce  x failed/killed  . idle  ~ degraded  - down  ! crash
//! ```

use crate::analysis::segment_makespan;
use crate::analysis::{dominant_segment, fmt_s, parse_label_f64, parse_label_usize, JobSegment};
use crate::event::{Event, EventKind};
use crate::monitor::fmt_bytes;
use std::fmt::Write as _;

/// One node's lane in the Gantt chart.
#[derive(Debug, Clone)]
pub struct NodeLane {
    /// The virtual node id.
    pub node: usize,
    /// Virtual seconds this node's slots spent running attempts
    /// (successes plus failed/killed work).
    pub busy_s: f64,
    /// Job-local crash time, when scripted.
    pub crash_s: Option<f64>,
    /// Job-local degradation start, when scripted.
    pub degrade_s: Option<f64>,
    cells: Vec<char>,
}

/// The per-node utilization chart for the dominant job of a stream.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// Name of the charted job.
    pub job: String,
    /// Virtual seconds spanned by the chart (the job's scheduled
    /// makespan, overheads excluded).
    pub makespan_s: f64,
    /// One lane per node, in node order.
    pub lanes: Vec<NodeLane>,
    /// Highest `mem.live_bytes` sample in the stream (the tracking
    /// allocator's live heap at phase boundaries); 0 when the stream
    /// predates the memory ledger.
    pub peak_live_bytes: u64,
}

/// Default chart width, columns.
const DEFAULT_WIDTH: usize = 60;

impl Timeline {
    /// Charts the dominant job at the default width. `None` when the
    /// stream has no successful `sched.*` points.
    pub fn from_events(events: &[Event]) -> Option<Self> {
        Self::with_width(events, DEFAULT_WIDTH)
    }

    /// Charts the dominant job with `width` time columns (min 10).
    pub fn with_width(events: &[Event], width: usize) -> Option<Self> {
        let seg = dominant_segment(events)?;
        let makespan_s = segment_makespan(&seg);
        if makespan_s <= 0.0 {
            return None;
        }
        let mut timeline = Self::build(&seg, makespan_s, width.max(10));
        timeline.peak_live_bytes = events
            .iter()
            .filter(|e| e.kind == EventKind::Count && e.name == "mem.live_bytes")
            .filter_map(|e| e.value)
            .fold(0.0, f64::max) as u64;
        Some(timeline)
    }

    fn build(seg: &JobSegment, makespan_s: f64, width: usize) -> Self {
        let num_nodes = seg
            .points
            .iter()
            .filter_map(|p| parse_label_usize(p, "node"))
            .max()
            .map_or(0, |n| n + 1);
        let col =
            |t: f64| -> usize { ((t / makespan_s * width as f64).floor() as usize).min(width - 1) };

        let mut lanes: Vec<NodeLane> = (0..num_nodes)
            .map(|node| NodeLane {
                node,
                busy_s: 0.0,
                crash_s: None,
                degrade_s: None,
                cells: vec!['.'; width],
            })
            .collect();

        // Chaos annotations first so task paint wins where they overlap.
        for p in &seg.points {
            let Some(node) = parse_label_usize(p, "node") else {
                continue;
            };
            let Some(lane) = lanes.get_mut(node) else {
                continue;
            };
            match p.name {
                "chaos.crash" => {
                    let at = p.value.unwrap_or(0.0);
                    lane.crash_s = Some(at);
                    let from = if at <= 0.0 { 0 } else { col(at) };
                    for c in lane.cells[from..].iter_mut() {
                        *c = '-';
                    }
                }
                "chaos.degrade" => {
                    let at = p.value.unwrap_or(0.0).max(0.0);
                    lane.degrade_s = Some(at);
                }
                _ => {}
            }
        }

        // Attempts: failed/killed work first, successes on top.
        let mut paint = |p: &Event, glyph: char| {
            let (Some(node), Some(start), Some(dur)) = (
                parse_label_usize(p, "node"),
                parse_label_f64(p, "start"),
                p.value,
            ) else {
                return;
            };
            let Some(lane) = lanes.get_mut(node) else {
                return;
            };
            lane.busy_s += dur;
            let (c0, c1) = (col(start), col((start + dur).min(makespan_s)));
            for c in lane.cells[c0..=c1].iter_mut() {
                *c = glyph;
            }
        };
        for p in &seg.points {
            if matches!(
                p.name,
                "sched.map.failed"
                    | "sched.map.killed"
                    | "sched.reduce.failed"
                    | "sched.reduce.killed"
            ) {
                paint(p, 'x');
            }
        }
        for p in &seg.points {
            match p.name {
                "sched.map" => paint(
                    p,
                    if p.label("reexec").is_some() {
                        'm'
                    } else {
                        'M'
                    },
                ),
                "sched.reduce" => paint(p, 'R'),
                _ => {}
            }
        }

        // Overlay markers last: degraded idle time and the crash instant.
        for lane in lanes.iter_mut() {
            if let Some(at) = lane.degrade_s {
                for c in lane.cells[col(at)..].iter_mut() {
                    if *c == '.' {
                        *c = '~';
                    }
                }
            }
            if let Some(at) = lane.crash_s {
                if at >= 0.0 {
                    lane.cells[col(at)] = '!';
                }
            }
        }

        Self {
            job: seg.name.clone(),
            makespan_s,
            lanes,
            peak_live_bytes: 0,
        }
    }

    /// Renders the chart with an axis line and a glyph legend.
    pub fn render(&self) -> String {
        let width = self.lanes.first().map_or(0, |l| l.cells.len());
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== node timeline: job {} (0 .. {}, 1 col ~= {}) ==",
            self.job,
            fmt_s(self.makespan_s),
            fmt_s(self.makespan_s / width.max(1) as f64),
        );
        for lane in &self.lanes {
            let chart: String = lane.cells.iter().collect();
            let mut notes = format!(
                "busy {:.0}%",
                100.0 * (lane.busy_s / self.makespan_s).min(1.0)
            );
            if let Some(at) = lane.crash_s {
                if at < 0.0 {
                    notes.push_str(", dead before job start");
                } else {
                    let _ = write!(notes, ", crashed @ {}", fmt_s(at));
                }
            }
            if let Some(at) = lane.degrade_s {
                let _ = write!(notes, ", degraded from {}", fmt_s(at));
            }
            let _ = writeln!(out, "node {:<2} |{chart}| {notes}", lane.node);
        }
        let _ = writeln!(
            out,
            "legend: M map  m re-executed map  R reduce  x failed/killed  . idle  ~ degraded  - down  ! crash"
        );
        if self.peak_live_bytes > 0 {
            let _ = writeln!(
                out,
                "heap: peak live {} at phase boundaries",
                fmt_bytes(self.peak_live_bytes)
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn point(name: &'static str, value: f64, labels: &[(&str, &str)]) -> Event {
        Event {
            ts_us: 0,
            kind: EventKind::Point,
            name,
            span_id: 0,
            parent_id: 0,
            dur_us: None,
            value: Some(value),
            labels: labels
                .iter()
                .map(|&(k, v)| (k.to_owned(), v.to_owned()))
                .collect(),
        }
    }

    fn sched(
        name: &'static str,
        task: usize,
        node: usize,
        start_s: f64,
        dur_s: f64,
        extra: &[(&str, &str)],
    ) -> Event {
        let task = task.to_string();
        let node = node.to_string();
        let start_s = format!("{start_s:.6}");
        let mut labels: Vec<(&str, &str)> =
            vec![("task", &task), ("node", &node), ("start", &start_s)];
        labels.extend_from_slice(extra);
        point(name, dur_s, &labels)
    }

    #[test]
    fn lanes_paint_tasks_crashes_and_legend() {
        let events = vec![
            sched("sched.map", 0, 0, 0.0, 5.0, &[]),
            sched("sched.map", 1, 1, 0.0, 4.0, &[("reexec", "1")]),
            sched("sched.map.killed", 2, 2, 0.0, 5.0, &[]),
            point("chaos.crash", 5.0, &[("node", "2")]),
            sched("sched.reduce", 0, 0, 5.0, 5.0, &[]),
        ];
        let t = Timeline::with_width(&events, 10).unwrap();
        assert_eq!(t.makespan_s, 10.0);
        assert_eq!(t.lanes.len(), 3);
        // Node 0: first half map, second half reduce.
        let lane0: String = t.lanes[0].cells.iter().collect();
        assert_eq!(lane0, "MMMMMRRRRR");
        // Node 1: re-executed map glyph, then idle.
        let lane1: String = t.lanes[1].cells.iter().collect();
        assert!(lane1.starts_with("mmmm"), "{lane1}");
        assert!(lane1.ends_with('.'), "{lane1}");
        // Node 2: killed attempt, crash marker, dead afterwards.
        let lane2: String = t.lanes[2].cells.iter().collect();
        assert!(lane2.contains('x'), "{lane2}");
        assert!(lane2.contains('!'), "{lane2}");
        assert!(lane2.ends_with("----"), "{lane2}");
        assert_eq!(t.lanes[2].crash_s, Some(5.0));
        let text = t.render();
        assert!(text.contains("legend:"), "{text}");
        assert!(text.contains("crashed @ 5.000 s"), "{text}");
    }

    #[test]
    fn heap_footer_reports_the_peak_live_sample() {
        let mut events = vec![
            sched("sched.map", 0, 0, 0.0, 5.0, &[]),
            sched("sched.reduce", 0, 0, 5.0, 5.0, &[]),
        ];
        // No mem samples: no footer.
        let quiet = Timeline::with_width(&events, 10).unwrap();
        assert_eq!(quiet.peak_live_bytes, 0);
        assert!(!quiet.render().contains("heap:"));
        for live in [40_000_000.0, 91_000_000.0, 12_000_000.0] {
            events.push(Event {
                ts_us: 0,
                kind: EventKind::Count,
                name: "mem.live_bytes",
                span_id: 0,
                parent_id: 0,
                dur_us: None,
                value: Some(live),
                labels: Vec::new(),
            });
        }
        let t = Timeline::with_width(&events, 10).unwrap();
        assert_eq!(t.peak_live_bytes, 91_000_000);
        assert!(t.render().contains("heap: peak live 91.0 MB"));
    }

    #[test]
    fn degraded_idle_time_is_marked() {
        let events = vec![
            sched("sched.map", 0, 0, 0.0, 2.0, &[]),
            sched("sched.map", 1, 1, 0.0, 10.0, &[]),
            point("chaos.degrade", 4.0, &[("node", "0"), ("factor", "3")]),
        ];
        let t = Timeline::with_width(&events, 10).unwrap();
        let lane0: String = t.lanes[0].cells.iter().collect();
        assert!(lane0.ends_with("~~~~~~"), "{lane0}");
        assert_eq!(t.lanes[0].degrade_s, Some(4.0));
    }

    #[test]
    fn empty_stream_has_no_timeline() {
        assert!(Timeline::from_events(&[]).is_none());
    }

    fn span(kind: EventKind, name: &'static str, span_id: u64, ts_us: u64) -> Event {
        Event {
            ts_us,
            kind,
            name,
            span_id,
            parent_id: 0,
            dur_us: (kind == EventKind::SpanEnd).then_some(ts_us),
            value: None,
            labels: vec![("job".to_owned(), name.to_owned())],
        }
    }

    #[test]
    fn zero_task_run_has_no_timeline() {
        // A job that opened and closed without scheduling a single
        // attempt (e.g. an empty input split) must not chart: there is
        // no scheduled makespan to scale the lanes against.
        let events = vec![
            span(EventKind::SpanStart, "job", 1, 0),
            span(EventKind::SpanEnd, "job", 1, 5_000),
        ];
        assert!(Timeline::from_events(&events).is_none());
    }

    #[test]
    fn single_node_cluster_charts_one_lane() {
        let events = vec![
            sched("sched.map", 0, 0, 0.0, 4.0, &[]),
            sched("sched.map", 1, 0, 4.0, 4.0, &[]),
            sched("sched.reduce", 0, 0, 8.0, 2.0, &[]),
        ];
        let t = Timeline::with_width(&events, 10).unwrap();
        assert_eq!(t.lanes.len(), 1);
        assert_eq!(t.makespan_s, 10.0);
        assert!((t.lanes[0].busy_s - 10.0).abs() < 1e-9);
        let lane: String = t.lanes[0].cells.iter().collect();
        assert_eq!(lane, "MMMMMMMMRR");
        assert!(t.render().contains("busy 100%"));
    }

    #[test]
    fn chaos_points_without_attempts_have_no_timeline() {
        // A run that died before any attempt finished leaves only
        // chaos markers behind — nothing schedulable to chart.
        let events = vec![
            point("chaos.crash", 0.0, &[("node", "0")]),
            point("chaos.crash", 0.0, &[("node", "1")]),
            point("chaos.degrade", 2.0, &[("node", "2"), ("factor", "4")]),
            point("chaos.blacklist", 1.0, &[("node", "0")]),
        ];
        assert!(Timeline::from_events(&events).is_none());
    }
}
