//! Trace analysis: folds the flat event stream into causal explanations
//! of where a run's time went.
//!
//! Two complementary views answer "why was this run slow?":
//!
//! - [`CriticalPath`] walks the *host-side* span tree (driver → job →
//!   phase → task). At every level the child whose end timestamp is
//!   latest is the one its parent was actually waiting on, so the
//!   chain's self-times telescope to the root's wall time and each step
//!   carries its share of the total.
//! - [`VirtualCriticalPath`] reads the virtual scheduler's `sched.*`
//!   points (emitted by `gepeto-mapred`'s cluster simulator) and answers
//!   the same question for *cluster* time: which task's finish defined
//!   each phase's end, what share of the makespan each phase owns, and
//!   how much of it was recovery work — re-executed maps, attempts
//!   killed by crashes, failed-over reads.
//!
//! Both are pure folds over a captured [`Event`] slice, so they work on
//! live [`crate::Recorder`] snapshots and on replayed streams alike.

use crate::event::{Event, EventKind};
use crate::monitor::fmt_bytes;
use crate::summary::fmt_us;
use std::collections::BTreeMap;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Host-side span-tree critical path
// ---------------------------------------------------------------------------

/// One reconstructed span (a `span_start`/`span_end` pair; unclosed
/// spans are extended to the end of the stream).
#[derive(Debug, Clone)]
pub(crate) struct SpanNode {
    pub(crate) name: &'static str,
    pub(crate) span_id: u64,
    pub(crate) parent_id: u64,
    pub(crate) end_us: u64,
    pub(crate) dur_us: u64,
    pub(crate) labels: Vec<(String, String)>,
}

impl SpanNode {
    /// Start timestamp, recovered from the recorded end and duration.
    pub(crate) fn start_us(&self) -> u64 {
        self.end_us.saturating_sub(self.dur_us)
    }
}

pub(crate) fn build_spans(events: &[Event]) -> Vec<SpanNode> {
    let max_ts = events.iter().map(|e| e.ts_us).max().unwrap_or(0);
    let mut spans: Vec<SpanNode> = Vec::new();
    let mut index: BTreeMap<u64, usize> = BTreeMap::new();
    for e in events {
        match e.kind {
            EventKind::SpanStart => {
                index.insert(e.span_id, spans.len());
                spans.push(SpanNode {
                    name: e.name,
                    span_id: e.span_id,
                    parent_id: e.parent_id,
                    end_us: max_ts,
                    dur_us: max_ts.saturating_sub(e.ts_us),
                    labels: e.labels.clone(),
                });
            }
            EventKind::SpanEnd => {
                if let Some(&i) = index.get(&e.span_id) {
                    let start_us = e.ts_us.saturating_sub(e.dur_us.unwrap_or(0));
                    spans[i].end_us = e.ts_us;
                    spans[i].dur_us = e.dur_us.unwrap_or_else(|| e.ts_us - start_us);
                    // End events carry attribution only known at close
                    // (the span's memory ledger); fold it into the node.
                    spans[i].labels.extend(e.labels.iter().cloned());
                }
            }
            _ => {}
        }
    }
    spans
}

/// One link of the dominant chain through the span tree.
#[derive(Debug, Clone)]
pub struct CriticalPathStep {
    /// Span name (`job`, `phase.map`, `task.reduce`, ...).
    pub name: &'static str,
    /// The span's identity in the stream.
    pub span_id: u64,
    /// Depth below the chain's root (root = 0).
    pub depth: usize,
    /// Identity labels from the span's start event, plus close-time
    /// attribution from its end event (the `mem.*` ledger).
    pub labels: Vec<(String, String)>,
    /// The span's wall time, microseconds.
    pub dur_us: u64,
    /// Wall time *not* explained by the next chain link — the step's
    /// own contribution. Self times telescope to [`CriticalPath::total_us`].
    pub self_us: u64,
    /// Median wall time of same-named spans (`task.*` steps only), for
    /// straggler ratios.
    pub cohort_p50_us: Option<u64>,
}

/// The dominant chain through the host-side span tree: at each level,
/// the child the parent was last waiting on.
#[derive(Debug, Clone, Default)]
pub struct CriticalPath {
    /// Wall time of the chain's root span, microseconds.
    pub total_us: u64,
    /// Chain links, root first. Empty when no spans were captured.
    pub steps: Vec<CriticalPathStep>,
}

impl CriticalPath {
    /// Extracts the critical path from a captured event stream.
    ///
    /// The root is the longest top-level span (parent 0 or a parent that
    /// never appeared in the stream — e.g. when a truncated capture cut
    /// the enclosing span's start). Spans still open at the end of the
    /// stream are treated as ending with it.
    pub fn from_events(events: &[Event]) -> Self {
        let spans = build_spans(events);
        if spans.is_empty() {
            return Self::default();
        }
        let ids: BTreeMap<u64, usize> = spans
            .iter()
            .enumerate()
            .map(|(i, s)| (s.span_id, i))
            .collect();
        let mut children: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for (i, s) in spans.iter().enumerate() {
            if s.parent_id != 0 && ids.contains_key(&s.parent_id) {
                children.entry(s.parent_id).or_default().push(i);
            }
        }
        let mut cohorts: BTreeMap<&'static str, Vec<u64>> = BTreeMap::new();
        for s in &spans {
            cohorts.entry(s.name).or_default().push(s.dur_us);
        }
        for durs in cohorts.values_mut() {
            durs.sort_unstable();
        }

        let root = spans
            .iter()
            .enumerate()
            .filter(|(_, s)| s.parent_id == 0 || !ids.contains_key(&s.parent_id))
            .max_by(|a, b| a.1.dur_us.cmp(&b.1.dur_us).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
            .expect("non-empty span set has a root");

        let mut steps = Vec::new();
        let mut cur = Some(root);
        let mut depth = 0usize;
        while let Some(i) = cur {
            let s = &spans[i];
            // The child the parent was waiting on when it closed: the
            // one that ended last (longest duration breaks ties).
            let next = children.get(&s.span_id).and_then(|c| {
                c.iter().copied().max_by(|&a, &b| {
                    spans[a]
                        .end_us
                        .cmp(&spans[b].end_us)
                        .then(spans[a].dur_us.cmp(&spans[b].dur_us))
                })
            });
            let child_dur = next.map_or(0, |j| spans[j].dur_us);
            steps.push(CriticalPathStep {
                name: s.name,
                span_id: s.span_id,
                depth,
                labels: s.labels.clone(),
                dur_us: s.dur_us,
                self_us: s.dur_us.saturating_sub(child_dur),
                cohort_p50_us: if s.name.starts_with("task.") {
                    cohorts.get(s.name).map(|durs| durs[durs.len() / 2])
                } else {
                    None
                },
            });
            cur = next;
            depth += 1;
        }
        Self {
            total_us: spans[root].dur_us,
            steps,
        }
    }

    /// Renders the chain as an indented plain-text report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== critical path (host spans) ==");
        if self.steps.is_empty() {
            let _ = writeln!(out, "(no spans captured)");
            return out;
        }
        let _ = writeln!(out, "total {}", fmt_us(self.total_us));
        for s in &self.steps {
            // Memory attribution renders as a humanized suffix, not as
            // raw byte-count tags.
            let tags: Vec<String> = s
                .labels
                .iter()
                .filter(|(k, _)| !k.starts_with("mem."))
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            let pct = if self.total_us > 0 {
                100.0 * s.self_us as f64 / self.total_us as f64
            } else {
                0.0
            };
            let mut line = format!(
                "{:indent$}{}{}{}{} {} (self {} = {pct:.0}% of total)",
                "",
                s.name,
                if tags.is_empty() { "" } else { " [" },
                tags.join(" "),
                if tags.is_empty() { "" } else { "]" },
                fmt_us(s.dur_us),
                fmt_us(s.self_us),
                indent = s.depth * 2,
            );
            if let Some(p50) = s.cohort_p50_us {
                if p50 > 0 {
                    let _ = write!(line, "  x{:.1} cohort median", s.dur_us as f64 / p50 as f64);
                }
            }
            let mem = |key: &str| {
                s.labels
                    .iter()
                    .find(|(k, _)| k == key)
                    .and_then(|(_, v)| v.parse::<u64>().ok())
                    .unwrap_or(0)
            };
            let (peak_delta, allocated) = (mem("mem.peak_delta"), mem("mem.allocated"));
            if peak_delta > 0 || allocated > 0 {
                let _ = write!(
                    line,
                    "  mem +{} peak, {} allocated",
                    fmt_bytes(peak_delta),
                    fmt_bytes(allocated)
                );
            }
            let _ = writeln!(out, "{line}");
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Virtual-cluster critical path (from the simulator's sched.* points)
// ---------------------------------------------------------------------------

/// `sched.*` / `chaos.*` points grouped by the `job` span active when
/// they were emitted (the simulator runs inside the job span).
#[derive(Debug, Clone)]
pub(crate) struct JobSegment {
    /// The job's name (its span's `job` label), `"run"` for points
    /// emitted outside any job span.
    pub name: String,
    /// The scheduling and chaos points of this job, in emission order.
    pub points: Vec<Event>,
}

/// Splits the stream into per-job scheduling segments. Multi-job
/// workloads (k-means iterations, pipelines) produce one segment per
/// job; points outside any job span share a synthetic `"run"` segment.
pub(crate) fn job_segments(events: &[Event]) -> Vec<JobSegment> {
    let mut segments: Vec<JobSegment> = Vec::new();
    let mut open: Vec<(u64, usize)> = Vec::new();
    let mut orphan: Option<usize> = None;
    for e in events {
        match e.kind {
            EventKind::SpanStart if e.name == "job" => {
                segments.push(JobSegment {
                    name: e.label("job").unwrap_or("?").to_owned(),
                    points: Vec::new(),
                });
                open.push((e.span_id, segments.len() - 1));
            }
            EventKind::SpanEnd if e.name == "job" => {
                open.retain(|&(id, _)| id != e.span_id);
            }
            EventKind::Point if e.name.starts_with("sched.") || e.name.starts_with("chaos.") => {
                let idx = match open.last() {
                    Some(&(_, idx)) => idx,
                    None => match orphan {
                        Some(idx) => idx,
                        None => {
                            segments.push(JobSegment {
                                name: "run".to_owned(),
                                points: Vec::new(),
                            });
                            orphan = Some(segments.len() - 1);
                            segments.len() - 1
                        }
                    },
                };
                segments[idx].points.push(e.clone());
            }
            _ => {}
        }
    }
    segments
}

pub(crate) fn parse_label_f64(e: &Event, key: &str) -> Option<f64> {
    e.label(key).and_then(|v| v.parse::<f64>().ok())
}

pub(crate) fn parse_label_usize(e: &Event, key: &str) -> Option<usize> {
    e.label(key).and_then(|v| v.parse::<usize>().ok())
}

/// End of a sched point on the job-local virtual timeline.
fn point_end(e: &Event) -> Option<f64> {
    Some(parse_label_f64(e, "start")? + e.value?)
}

/// Virtual seconds of scheduled work in a segment: the latest task end.
pub(crate) fn segment_makespan(seg: &JobSegment) -> f64 {
    seg.points
        .iter()
        .filter(|p| matches!(p.name, "sched.map" | "sched.reduce"))
        .filter_map(point_end)
        .fold(0.0, f64::max)
}

/// Picks the segment with the largest scheduled makespan — the job that
/// dominates a multi-job workload's virtual time.
pub(crate) fn dominant_segment(events: &[Event]) -> Option<JobSegment> {
    job_segments(events)
        .into_iter()
        .filter(|s| segment_makespan(s) > 0.0)
        .max_by(|a, b| segment_makespan(a).total_cmp(&segment_makespan(b)))
}

/// The task attempt whose completion defined a phase's end.
#[derive(Debug, Clone)]
pub struct TaskRef {
    /// 0-based task index within its phase.
    pub task: usize,
    /// Virtual node the attempt ran on.
    pub node: usize,
    /// Job-local virtual start time, seconds.
    pub start_s: f64,
    /// Virtual duration, seconds.
    pub dur_s: f64,
    /// Map locality tag (`data-local` / `rack-local` / `remote`).
    pub locality: Option<String>,
    /// The attempt re-ran a map whose output died with its node.
    pub reexec: bool,
    /// The attempt's input read skipped a dead or corrupt replica.
    pub failover: bool,
}

/// One phase's share of the virtual makespan plus its critical task.
#[derive(Debug, Clone)]
pub struct PhaseCritical {
    /// `"map"` or `"reduce"`.
    pub phase: &'static str,
    /// Virtual seconds between the phase's start and its last task end.
    pub wall_s: f64,
    /// `wall_s / makespan_s`.
    pub share: f64,
    /// The task whose finish defined the phase end.
    pub critical: TaskRef,
    /// Critical task duration over the phase's median task duration.
    pub median_ratio: f64,
}

/// Where the virtual makespan went: per-phase shares, the critical task
/// closing each phase, and the recovery work folded into the schedule.
#[derive(Debug, Clone)]
pub struct VirtualCriticalPath {
    /// Name of the analyzed job (the dominant one when several ran).
    pub job: String,
    /// Virtual seconds of scheduled work (excludes the per-job overhead
    /// and cluster startup constants, which no task can explain).
    pub makespan_s: f64,
    /// Phase breakdown in execution order (map, then reduce if any).
    pub phases: Vec<PhaseCritical>,
    /// Successful map attempts that were re-executions of lost outputs.
    pub reexecuted_maps: usize,
    /// Successful map attempts whose read failed over past a bad replica.
    pub failed_over_reads: usize,
    /// Attempts that burned slot time without completing (injected
    /// failures + crash kills).
    pub recovery_attempts: usize,
    /// Virtual seconds those attempts burned.
    pub recovery_s: f64,
    /// `(node, job-local crash time)` for every scripted crash visible
    /// to this job (negative time = dead before the job started).
    pub crashes: Vec<(usize, f64)>,
    /// `(node, job-local time)` of jobtracker blacklistings.
    pub blacklisted: Vec<(usize, f64)>,
}

impl VirtualCriticalPath {
    /// Analyzes the dominant job's scheduling points. `None` when the
    /// stream holds no successful `sched.*` point (telemetry disabled,
    /// or no simulated job ran).
    pub fn from_events(events: &[Event]) -> Option<Self> {
        let seg = dominant_segment(events)?;
        let makespan_s = segment_makespan(&seg);

        let task_ref = |p: &Event| -> Option<TaskRef> {
            Some(TaskRef {
                task: parse_label_usize(p, "task")?,
                node: parse_label_usize(p, "node")?,
                start_s: parse_label_f64(p, "start")?,
                dur_s: p.value?,
                locality: p.label("locality").map(str::to_owned),
                reexec: p.label("reexec").is_some(),
                failover: p.label("failover").is_some(),
            })
        };

        let mut phases = Vec::new();
        let mut phase_start = 0.0f64;
        for (phase, point_name) in [("map", "sched.map"), ("reduce", "sched.reduce")] {
            let tasks: Vec<TaskRef> = seg
                .points
                .iter()
                .filter(|p| p.name == point_name)
                .filter_map(task_ref)
                .collect();
            let Some(critical) = tasks
                .iter()
                .max_by(|a, b| (a.start_s + a.dur_s).total_cmp(&(b.start_s + b.dur_s)))
                .cloned()
            else {
                continue;
            };
            let phase_end = critical.start_s + critical.dur_s;
            let mut durs: Vec<f64> = tasks.iter().map(|t| t.dur_s).collect();
            durs.sort_by(f64::total_cmp);
            let median = durs[durs.len() / 2];
            phases.push(PhaseCritical {
                phase,
                wall_s: phase_end - phase_start,
                share: if makespan_s > 0.0 {
                    (phase_end - phase_start) / makespan_s
                } else {
                    0.0
                },
                median_ratio: if median > 0.0 {
                    critical.dur_s / median
                } else {
                    0.0
                },
                critical,
            });
            phase_start = phase_end;
        }

        let map_successes = |label: &str| {
            seg.points
                .iter()
                .filter(|p| p.name == "sched.map" && p.label(label).is_some())
                .count()
        };
        let reexecuted_maps = map_successes("reexec");
        let failed_over_reads = map_successes("failover");
        let burned: Vec<f64> = seg
            .points
            .iter()
            .filter(|p| {
                matches!(
                    p.name,
                    "sched.map.failed"
                        | "sched.map.killed"
                        | "sched.reduce.failed"
                        | "sched.reduce.killed"
                )
            })
            .filter_map(|p| p.value)
            .collect();
        let chaos_at = |name: &str| {
            seg.points
                .iter()
                .filter(|p| p.name == name)
                .filter_map(|p| Some((parse_label_usize(p, "node")?, p.value?)))
                .collect::<Vec<_>>()
        };

        Some(Self {
            job: seg.name,
            makespan_s,
            phases,
            reexecuted_maps,
            failed_over_reads,
            recovery_attempts: burned.len(),
            recovery_s: burned.iter().sum(),
            crashes: chaos_at("chaos.crash"),
            blacklisted: chaos_at("chaos.blacklist"),
        })
    }

    /// Renders the makespan attribution as a plain-text report, e.g.
    ///
    /// ```text
    /// == virtual critical path: job wc ==
    /// makespan 12.000 s (scheduled work; overheads excluded)
    ///   map    66.7% of makespan (8.000 s) — ends with task 3 on node 2 (data-local, re-executed), 4.000 s = x2.8 phase median
    ///   reduce 33.3% of makespan (4.000 s) — ends with task 1 on node 0, 4.000 s = x1.0 phase median
    /// recovery: 2 re-executed maps, 1 failed/killed attempts burning 3.000 s
    /// chaos: node 2 crashed @ 5.000 s
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== virtual critical path: job {} ==", self.job);
        let _ = writeln!(
            out,
            "makespan {} (scheduled work; overheads excluded)",
            fmt_s(self.makespan_s)
        );
        for p in &self.phases {
            let c = &p.critical;
            let mut how = c.locality.clone().unwrap_or_default();
            for (flag, tag) in [(c.reexec, "re-executed"), (c.failover, "failed-over read")] {
                if flag {
                    if !how.is_empty() {
                        how.push_str(", ");
                    }
                    how.push_str(tag);
                }
            }
            let _ = writeln!(
                out,
                "  {:<6} {:.1}% of makespan ({}) — ends with task {} on node {}{}, {} = x{:.1} phase median",
                p.phase,
                100.0 * p.share,
                fmt_s(p.wall_s),
                c.task,
                c.node,
                if how.is_empty() {
                    String::new()
                } else {
                    format!(" ({how})")
                },
                fmt_s(c.dur_s),
                p.median_ratio,
            );
        }
        if self.reexecuted_maps > 0 || self.recovery_attempts > 0 || self.failed_over_reads > 0 {
            let mut parts = Vec::new();
            if self.reexecuted_maps > 0 {
                parts.push(format!("{} re-executed maps", self.reexecuted_maps));
            }
            if self.recovery_attempts > 0 {
                parts.push(format!(
                    "{} failed/killed attempts burning {}",
                    self.recovery_attempts,
                    fmt_s(self.recovery_s)
                ));
            }
            if self.failed_over_reads > 0 {
                parts.push(format!("{} failed-over reads", self.failed_over_reads));
            }
            let _ = writeln!(out, "recovery: {}", parts.join(", "));
        }
        if !self.crashes.is_empty() || !self.blacklisted.is_empty() {
            let mut parts = Vec::new();
            for &(node, at) in &self.crashes {
                if at < 0.0 {
                    parts.push(format!("node {node} dead before job start"));
                } else {
                    parts.push(format!("node {node} crashed @ {}", fmt_s(at)));
                }
            }
            for &(node, at) in &self.blacklisted {
                parts.push(format!("node {node} blacklisted @ {}", fmt_s(at)));
            }
            let _ = writeln!(out, "chaos: {}", parts.join("; "));
        }
        out
    }
}

/// Human-readable virtual seconds.
pub(crate) fn fmt_s(s: f64) -> String {
    format!("{s:.3} s")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owned(labels: &[(&str, &str)]) -> Vec<(String, String)> {
        labels
            .iter()
            .map(|&(k, v)| (k.to_owned(), v.to_owned()))
            .collect()
    }

    fn start(name: &'static str, id: u64, parent: u64, ts: u64, labels: &[(&str, &str)]) -> Event {
        Event {
            ts_us: ts,
            kind: EventKind::SpanStart,
            name,
            span_id: id,
            parent_id: parent,
            dur_us: None,
            value: None,
            labels: owned(labels),
        }
    }

    fn end(name: &'static str, id: u64, parent: u64, ts: u64, dur: u64) -> Event {
        Event {
            ts_us: ts,
            kind: EventKind::SpanEnd,
            name,
            span_id: id,
            parent_id: parent,
            dur_us: Some(dur),
            value: None,
            labels: Vec::new(),
        }
    }

    fn point(name: &'static str, value: f64, labels: &[(&str, &str)]) -> Event {
        Event {
            ts_us: 0,
            kind: EventKind::Point,
            name,
            span_id: 0,
            parent_id: 0,
            dur_us: None,
            value: Some(value),
            labels: owned(labels),
        }
    }

    #[test]
    fn empty_stream_yields_empty_path() {
        let cp = CriticalPath::from_events(&[]);
        assert_eq!(cp.total_us, 0);
        assert!(cp.steps.is_empty());
        assert!(cp.render().contains("no spans"));
    }

    #[test]
    fn chain_follows_latest_ending_child_and_self_times_telescope() {
        // job(0..100) -> phase.map(0..60), phase.reduce(60..100)
        // phase.reduce -> task.reduce 0 (60..80), task.reduce 1 (61..100)
        let events = vec![
            start("job", 1, 0, 0, &[("job", "wc")]),
            start("phase.map", 2, 1, 0, &[]),
            end("phase.map", 2, 1, 60, 60),
            start("phase.reduce", 3, 1, 60, &[]),
            start("task.reduce", 4, 3, 60, &[("task", "0")]),
            end("task.reduce", 4, 3, 80, 20),
            start("task.reduce", 5, 3, 61, &[("task", "1")]),
            end("task.reduce", 5, 3, 100, 39),
            end("phase.reduce", 3, 1, 100, 40),
            end("job", 1, 0, 100, 100),
        ];
        let cp = CriticalPath::from_events(&events);
        assert_eq!(cp.total_us, 100);
        let names: Vec<&str> = cp.steps.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["job", "phase.reduce", "task.reduce"]);
        // The chain picked the reduce task ending at 100, not at 80.
        assert_eq!(cp.steps[2].labels[0].1, "1");
        let self_total: u64 = cp.steps.iter().map(|s| s.self_us).sum();
        assert_eq!(self_total, cp.total_us);
        // Cohort median over the two reduce tasks: sorted [20, 39] -> 39.
        assert_eq!(cp.steps[2].cohort_p50_us, Some(39));
        assert!(cp.render().contains("task.reduce"));
    }

    #[test]
    fn span_end_labels_merge_and_mem_renders_as_a_suffix() {
        let mut close = end("job", 1, 0, 100, 100);
        close.labels = owned(&[
            ("mem.peak_delta", "25000000"),
            ("mem.allocated", "75000000"),
            ("mem.allocs", "42"),
        ]);
        let events = vec![start("job", 1, 0, 0, &[("job", "wc")]), close];
        let cp = CriticalPath::from_events(&events);
        assert_eq!(cp.steps.len(), 1);
        assert!(cp.steps[0]
            .labels
            .iter()
            .any(|(k, v)| k == "mem.allocs" && v == "42"));
        let text = cp.render();
        assert!(text.contains("job=wc"), "{text}");
        // mem.* labels stay out of the tag list and render humanized.
        assert!(!text.contains("mem.peak_delta="), "{text}");
        assert!(
            text.contains("mem +25.0 MB peak, 75.0 MB allocated"),
            "{text}"
        );
    }

    #[test]
    fn unclosed_spans_extend_to_stream_end() {
        let events = vec![
            start("job", 1, 0, 0, &[]),
            start("phase.map", 2, 1, 10, &[]),
            point(
                "sched.map",
                1.0,
                &[("task", "0"), ("node", "0"), ("start", "0")],
            ),
        ];
        let cp = CriticalPath::from_events(&events);
        assert_eq!(cp.total_us, 10); // max ts is the map phase's start
        assert_eq!(cp.steps.len(), 2);
        assert_eq!(cp.steps[1].dur_us, 0);
    }

    #[test]
    fn single_span_is_its_own_path() {
        let events = vec![start("job", 1, 0, 0, &[]), end("job", 1, 0, 42, 42)];
        let cp = CriticalPath::from_events(&events);
        assert_eq!(cp.total_us, 42);
        assert_eq!(cp.steps.len(), 1);
        assert_eq!(cp.steps[0].self_us, 42);
    }

    fn sched(
        name: &'static str,
        task: usize,
        node: usize,
        start_s: f64,
        dur_s: f64,
        extra: &[(&str, &str)],
    ) -> Event {
        let task = task.to_string();
        let node = node.to_string();
        let start_s = format!("{start_s:.6}");
        let mut labels: Vec<(&str, &str)> =
            vec![("task", &task), ("node", &node), ("start", &start_s)];
        labels.extend_from_slice(extra);
        point(name, dur_s, &labels)
    }

    fn job_wrapped(name: &'static str, points: Vec<Event>) -> Vec<Event> {
        let mut events = vec![start("job", 1, 0, 0, &[("job", name)])];
        events.extend(points);
        events.push(end("job", 1, 0, 1000, 1000));
        events
    }

    #[test]
    fn virtual_path_attributes_phases_and_recovery() {
        let events = job_wrapped(
            "wc",
            vec![
                sched("sched.map", 0, 0, 0.0, 2.0, &[("locality", "data-local")]),
                sched("sched.map.killed", 1, 2, 0.0, 5.0, &[]),
                sched(
                    "sched.map",
                    1,
                    1,
                    5.0,
                    3.0,
                    &[("locality", "remote"), ("reexec", "1"), ("failover", "1")],
                ),
                point("chaos.crash", 5.0, &[("node", "2")]),
                sched("sched.reduce", 0, 0, 8.0, 4.0, &[]),
                sched("sched.reduce", 1, 1, 8.0, 2.0, &[]),
            ],
        );
        let v = VirtualCriticalPath::from_events(&events).unwrap();
        assert_eq!(v.job, "wc");
        assert_eq!(v.makespan_s, 12.0);
        assert_eq!(v.phases.len(), 2);
        assert_eq!(v.phases[0].phase, "map");
        assert_eq!(v.phases[0].wall_s, 8.0);
        assert_eq!(v.phases[0].critical.task, 1);
        assert!(v.phases[0].critical.reexec);
        assert!(v.phases[0].critical.failover);
        assert_eq!(v.phases[1].phase, "reduce");
        assert_eq!(v.phases[1].wall_s, 4.0);
        assert_eq!(v.phases[1].critical.task, 0);
        assert!((v.phases[0].share - 8.0 / 12.0).abs() < 1e-9);
        assert_eq!(v.reexecuted_maps, 1);
        assert_eq!(v.failed_over_reads, 1);
        assert_eq!(v.recovery_attempts, 1);
        assert_eq!(v.recovery_s, 5.0);
        assert_eq!(v.crashes, vec![(2, 5.0)]);
        let text = v.render();
        assert!(text.contains("66.7% of makespan"), "{text}");
        assert!(text.contains("re-executed"), "{text}");
        assert!(text.contains("node 2 crashed"), "{text}");
    }

    #[test]
    fn dominant_job_wins_in_multi_job_streams() {
        let mut events = vec![start("job", 1, 0, 0, &[("job", "small")])];
        events.push(sched("sched.map", 0, 0, 0.0, 1.0, &[]));
        events.push(end("job", 1, 0, 10, 10));
        events.push(start("job", 2, 0, 20, &[("job", "big")]));
        events.push(sched("sched.map", 0, 0, 0.0, 9.0, &[]));
        events.push(end("job", 2, 0, 40, 20));
        let v = VirtualCriticalPath::from_events(&events).unwrap();
        assert_eq!(v.job, "big");
        assert_eq!(v.makespan_s, 9.0);
    }

    #[test]
    fn no_sched_points_is_none() {
        let events = vec![start("job", 1, 0, 0, &[]), end("job", 1, 0, 10, 10)];
        assert!(VirtualCriticalPath::from_events(&events).is_none());
        assert!(VirtualCriticalPath::from_events(&[]).is_none());
    }

    #[test]
    fn orphan_points_form_a_synthetic_run_segment() {
        let events = vec![sched("sched.map", 0, 0, 0.0, 3.0, &[])];
        let v = VirtualCriticalPath::from_events(&events).unwrap();
        assert_eq!(v.job, "run");
        assert_eq!(v.makespan_s, 3.0);
    }
}
