//! Live run monitoring: a lock-light progress registry updated in place
//! by the engine, plus a background [`Reporter`] that renders
//! jobtracker-style heartbeat lines and Prometheus text exposition
//! while the run is still in flight.
//!
//! The paper's cluster runs were watched through Hadoop's
//! jobtracker/tasktracker heartbeats; everything else in this crate is
//! post-hoc (computed from a finished [`crate::Recorder`]). The
//! [`Monitor`] closes that gap: hot paths bump relaxed atomics (no
//! event allocation, no lock on the counter path), and a snapshot at
//! any instant is a consistent-enough [`MetricsSnapshot`] for an
//! operator to spot stragglers, crashes and stalled iterations before
//! the run completes.

use crate::histogram::Histogram;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The live progress registry shared between the engine's hot paths and
/// the reporter thread. All counter updates are relaxed atomic bumps;
/// per-node occupancy and histograms take a short `parking_lot` lock on
/// the (rare) task-completion path only.
#[derive(Debug, Default)]
pub struct Monitor {
    jobs_started: AtomicU64,
    jobs_finished: AtomicU64,
    map_tasks_total: AtomicU64,
    map_tasks_done: AtomicU64,
    reduce_tasks_total: AtomicU64,
    reduce_tasks_done: AtomicU64,
    shuffle_bytes: AtomicU64,
    task_retries: AtomicU64,
    reexecuted_maps: AtomicU64,
    failed_over_reads: AtomicU64,
    blacklisted_nodes: AtomicU64,
    crash_killed_attempts: AtomicU64,
    distance_evals: AtomicU64,
    sorts_skipped: AtomicU64,
    shuffle_bytes_saved: AtomicU64,
    spilled_bytes: AtomicU64,
    spill_files: AtomicU64,
    spilled_groups: AtomicU64,
    io_retries: AtomicU64,
    torn_writes_detected: AtomicU64,
    runs_quarantined: AtomicU64,
    io_stall_ms: AtomicU64,
    journal_replayed_tasks: AtomicU64,
    driver_iteration: AtomicU64,
    /// The driver's latest convergence delta, stored as `f64` bits.
    driver_delta_bits: AtomicU64,
    /// Virtual busy microseconds per node, indexed by node id.
    node_busy_us: Mutex<Vec<u64>>,
    /// Allocator peak observed inside each `phase.*` span, max-merged
    /// across repeats (k-means iterations), fed by span close.
    phase_peak_bytes: Mutex<BTreeMap<String, u64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    /// Run identity (`run_id`, command line) surfaced as the
    /// `gepeto_run_info` Prometheus family, set once by the driver.
    run_info: Mutex<Option<(String, String)>>,
}

impl Monitor {
    /// An empty registry (all zeros).
    pub fn new() -> Self {
        Self {
            driver_delta_bits: AtomicU64::new(f64::NAN.to_bits()),
            ..Self::default()
        }
    }

    /// A job entered its run loop.
    pub fn job_started(&self) {
        self.jobs_started.fetch_add(1, Ordering::Relaxed);
    }

    /// A job finished (its stats were folded).
    pub fn job_finished(&self) {
        self.jobs_finished.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` map tasks were scheduled for the current job.
    pub fn add_map_tasks(&self, n: u64) {
        self.map_tasks_total.fetch_add(n, Ordering::Relaxed);
    }

    /// One map task completed.
    pub fn map_task_done(&self) {
        self.map_tasks_done.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` reduce tasks were scheduled for the current job.
    pub fn add_reduce_tasks(&self, n: u64) {
        self.reduce_tasks_total.fetch_add(n, Ordering::Relaxed);
    }

    /// One reduce task completed.
    pub fn reduce_task_done(&self) {
        self.reduce_tasks_done.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` more bytes crossed the shuffle.
    pub fn add_shuffle_bytes(&self, n: u64) {
        self.shuffle_bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// A task attempt failed and was retried.
    pub fn add_task_retry(&self) {
        self.task_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` map tasks were re-executed after losing their output.
    pub fn add_reexecuted_maps(&self, n: u64) {
        self.reexecuted_maps.fetch_add(n, Ordering::Relaxed);
    }

    /// A block read failed over to a replica.
    pub fn add_failed_over_read(&self) {
        self.failed_over_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// A node was blacklisted.
    pub fn add_blacklisted(&self) {
        self.blacklisted_nodes.fetch_add(1, Ordering::Relaxed);
    }

    /// An in-flight attempt was killed by a node crash.
    pub fn add_crash_killed(&self) {
        self.crash_killed_attempts.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` more point-to-centroid distances were evaluated by the
    /// clustering kernels.
    pub fn add_distance_evals(&self, n: u64) {
        self.distance_evals.fetch_add(n, Ordering::Relaxed);
    }

    /// `n` reduce partitions took the sort-skipping fast path.
    pub fn add_sorts_skipped(&self, n: u64) {
        self.sorts_skipped.fetch_add(n, Ordering::Relaxed);
    }

    /// `n` shuffle bytes were avoided by a compressed payload encoding.
    pub fn add_shuffle_bytes_saved(&self, n: u64) {
        self.shuffle_bytes_saved.fetch_add(n, Ordering::Relaxed);
    }

    /// `n` more intermediate bytes were spilled to local disk by a
    /// memory-bounded shuffle.
    pub fn add_spilled_bytes(&self, n: u64) {
        self.spilled_bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// `n` more sorted spill runs were written to local disk.
    pub fn add_spill_files(&self, n: u64) {
        self.spill_files.fetch_add(n, Ordering::Relaxed);
    }

    /// `n` more reduce groups spilled their value lists past the
    /// per-group memory budget.
    pub fn add_spilled_groups(&self, n: u64) {
        self.spilled_groups.fetch_add(n, Ordering::Relaxed);
    }

    /// `n` more IO operations were retried after a transient storage
    /// fault.
    pub fn add_io_retries(&self, n: u64) {
        self.io_retries.fetch_add(n, Ordering::Relaxed);
    }

    /// `n` more torn (partial) writes were caught by commit verification.
    pub fn add_torn_writes(&self, n: u64) {
        self.torn_writes_detected.fetch_add(n, Ordering::Relaxed);
    }

    /// `n` more corrupt spill runs were quarantined.
    pub fn add_runs_quarantined(&self, n: u64) {
        self.runs_quarantined.fetch_add(n, Ordering::Relaxed);
    }

    /// `n` more virtual milliseconds were stalled on storage (EIO
    /// backoff, simulated slow-disk penalties).
    pub fn add_io_stall_ms(&self, n: u64) {
        self.io_stall_ms.fetch_add(n, Ordering::Relaxed);
    }

    /// Records the run's identity for the `gepeto_run_info` family.
    pub fn set_run_info(&self, run_id: &str, command: &str) {
        *self.run_info.lock() = Some((run_id.to_owned(), command.to_owned()));
    }

    /// `n` more reduce tasks were replayed from committed artifacts
    /// instead of re-executing.
    pub fn add_journal_replayed(&self, n: u64) {
        self.journal_replayed_tasks.fetch_add(n, Ordering::Relaxed);
    }

    /// The iterative driver finished an iteration with this delta.
    pub fn set_driver_progress(&self, iteration: u64, delta: f64) {
        self.driver_iteration.store(iteration, Ordering::Relaxed);
        self.driver_delta_bits
            .store(delta.to_bits(), Ordering::Relaxed);
    }

    /// `node` spent `secs` more virtual seconds running attempts.
    pub fn node_busy(&self, node: usize, secs: f64) {
        if secs.is_nan() || secs <= 0.0 {
            return;
        }
        let mut busy = self.node_busy_us.lock();
        if busy.len() <= node {
            busy.resize(node + 1, 0);
        }
        busy[node] += (secs * 1e6) as u64;
    }

    /// A `phase.<phase>` span closed having observed this allocator
    /// peak; the per-phase high-water mark keeps the max across repeats.
    pub fn note_phase_peak(&self, phase: &str, peak_bytes: u64) {
        let mut peaks = self.phase_peak_bytes.lock();
        let entry = peaks.entry(phase.to_owned()).or_insert(0);
        *entry = (*entry).max(peak_bytes);
    }

    /// Records a sample into the named live histogram.
    pub fn observe(&self, name: &str, value: u64) {
        let mut histograms = self.histograms.lock();
        match histograms.get_mut(name) {
            Some(h) => h.observe(value),
            None => {
                let mut h = Histogram::new();
                h.observe(value);
                histograms.insert(name.to_owned(), h);
            }
        }
    }

    /// A point-in-time copy of every gauge, counter and histogram.
    /// Heap gauges are read straight off the process-wide
    /// [`crate::alloc::TrackingAllocator`] counters; pool gauges off the
    /// global `gepeto-pool` counters (all zero until something creates
    /// the pool — the snapshot never forces its creation).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mem = crate::alloc::mem_stats();
        let pool = gepeto_pool::global_stats();
        MetricsSnapshot {
            jobs_started: load(&self.jobs_started),
            jobs_finished: load(&self.jobs_finished),
            map_tasks_total: load(&self.map_tasks_total),
            map_tasks_done: load(&self.map_tasks_done),
            reduce_tasks_total: load(&self.reduce_tasks_total),
            reduce_tasks_done: load(&self.reduce_tasks_done),
            shuffle_bytes: load(&self.shuffle_bytes),
            task_retries: load(&self.task_retries),
            reexecuted_maps: load(&self.reexecuted_maps),
            failed_over_reads: load(&self.failed_over_reads),
            blacklisted_nodes: load(&self.blacklisted_nodes),
            crash_killed_attempts: load(&self.crash_killed_attempts),
            distance_evals: load(&self.distance_evals),
            sorts_skipped: load(&self.sorts_skipped),
            shuffle_bytes_saved: load(&self.shuffle_bytes_saved),
            spilled_bytes: load(&self.spilled_bytes),
            spill_files: load(&self.spill_files),
            spilled_groups: load(&self.spilled_groups),
            io_retries: load(&self.io_retries),
            torn_writes_detected: load(&self.torn_writes_detected),
            runs_quarantined: load(&self.runs_quarantined),
            io_stall_ms: load(&self.io_stall_ms),
            journal_replayed_tasks: load(&self.journal_replayed_tasks),
            driver_iteration: load(&self.driver_iteration),
            driver_delta: f64::from_bits(load(&self.driver_delta_bits)),
            mem_live_bytes: mem.live_bytes,
            mem_peak_bytes: mem.peak_bytes,
            mem_allocated_bytes: mem.total_allocated,
            mem_allocs: mem.allocs,
            pool_threads: pool.threads as u64,
            pool_tasks: pool.tasks,
            pool_steals: pool.steals,
            pool_batches: pool.batches,
            pool_worker_busy_s: pool
                .worker_busy_ns
                .iter()
                .map(|&ns| ns as f64 / 1e9)
                .collect(),
            pool_caller_busy_s: pool.caller_busy_ns as f64 / 1e9,
            phase_peak_bytes: self
                .phase_peak_bytes
                .lock()
                .iter()
                .map(|(k, &v)| (k.clone(), v))
                .collect(),
            node_busy_s: self
                .node_busy_us
                .lock()
                .iter()
                .map(|&us| us as f64 / 1e6)
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            run_info: self.run_info.lock().clone(),
        }
    }
}

/// One consistent-enough copy of the [`Monitor`]'s state.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Jobs that entered their run loop.
    pub jobs_started: u64,
    /// Jobs whose stats were folded.
    pub jobs_finished: u64,
    /// Map tasks scheduled so far.
    pub map_tasks_total: u64,
    /// Map tasks completed so far.
    pub map_tasks_done: u64,
    /// Reduce tasks scheduled so far.
    pub reduce_tasks_total: u64,
    /// Reduce tasks completed so far.
    pub reduce_tasks_done: u64,
    /// Bytes shuffled so far.
    pub shuffle_bytes: u64,
    /// Failure-injected task retries so far.
    pub task_retries: u64,
    /// Map tasks re-executed after output loss.
    pub reexecuted_maps: u64,
    /// Block reads failed over to a replica.
    pub failed_over_reads: u64,
    /// Nodes blacklisted so far.
    pub blacklisted_nodes: u64,
    /// Attempts killed mid-flight by node crashes.
    pub crash_killed_attempts: u64,
    /// Point-to-centroid distance evaluations in the clustering kernels.
    pub distance_evals: u64,
    /// Reduce partitions that took the sort-skipping fast path.
    pub sorts_skipped: u64,
    /// Shuffle bytes avoided by compressed payload encodings.
    pub shuffle_bytes_saved: u64,
    /// Intermediate bytes spilled to disk by memory-bounded shuffles.
    pub spilled_bytes: u64,
    /// Sorted spill runs written to disk by memory-bounded map tasks.
    pub spill_files: u64,
    /// Reduce groups whose values were spilled past the memory budget.
    pub spilled_groups: u64,
    /// IO operations retried after transient storage faults.
    pub io_retries: u64,
    /// Torn (partial) writes caught by commit verification.
    pub torn_writes_detected: u64,
    /// Corrupt spill runs quarantined.
    pub runs_quarantined: u64,
    /// Virtual milliseconds stalled on storage faults and slow disks.
    pub io_stall_ms: u64,
    /// Reduce tasks replayed from committed artifacts on resume.
    pub journal_replayed_tasks: u64,
    /// The driver's current iteration (0 before the first completes).
    pub driver_iteration: u64,
    /// The driver's latest convergence delta (NaN before the first).
    pub driver_delta: f64,
    /// Bytes currently live on the heap (tracking allocator).
    pub mem_live_bytes: u64,
    /// All-time peak live heap bytes (tracking allocator).
    pub mem_peak_bytes: u64,
    /// Cumulative bytes allocated by the process.
    pub mem_allocated_bytes: u64,
    /// Cumulative allocation calls made by the process.
    pub mem_allocs: u64,
    /// Work-stealing pool parallelism (0 until the pool exists).
    pub pool_threads: u64,
    /// Tasks executed on the work-stealing pool.
    pub pool_tasks: u64,
    /// Steal-half operations between pool workers.
    pub pool_steals: u64,
    /// Batches submitted to the pool.
    pub pool_batches: u64,
    /// Busy seconds per spawned pool worker.
    pub pool_worker_busy_s: Vec<f64>,
    /// Busy seconds submitting threads spent executing pool tasks.
    pub pool_caller_busy_s: f64,
    /// Allocator peak observed inside each phase, max across repeats.
    pub phase_peak_bytes: Vec<(String, u64)>,
    /// Virtual busy seconds per node, indexed by node id.
    pub node_busy_s: Vec<f64>,
    /// Live histograms, sorted by name.
    pub histograms: Vec<(String, Histogram)>,
    /// Run identity (`run_id`, command), when the driver set one.
    pub run_info: Option<(String, String)>,
}

/// Formats a byte count with a binary-ish human unit.
pub(crate) fn fmt_bytes(n: u64) -> String {
    match n {
        0..=9_999 => format!("{n} B"),
        10_000..=9_999_999 => format!("{:.1} KB", n as f64 / 1e3),
        10_000_000..=9_999_999_999 => format!("{:.1} MB", n as f64 / 1e6),
        _ => format!("{:.1} GB", n as f64 / 1e9),
    }
}

impl MetricsSnapshot {
    /// One Hadoop-jobtracker-style heartbeat line, e.g.
    ///
    /// ```text
    /// maps 12/16 75% | reduces 2/4 50% | shuffle 1.2 MB | retries 3 reexec 2 blacklist 1 killed 0 | iter 3 delta 0.00123
    /// ```
    pub fn status_line(&self) -> String {
        let progress = |done: u64, total: u64| -> String {
            if total == 0 {
                format!("{done}/{total}")
            } else {
                format!("{done}/{total} {:.0}%", 100.0 * done as f64 / total as f64)
            }
        };
        let mut line = format!(
            "maps {} | reduces {} | shuffle {} | retries {} reexec {} blacklist {} killed {}",
            progress(self.map_tasks_done, self.map_tasks_total),
            progress(self.reduce_tasks_done, self.reduce_tasks_total),
            fmt_bytes(self.shuffle_bytes),
            self.task_retries,
            self.reexecuted_maps,
            self.blacklisted_nodes,
            self.crash_killed_attempts,
        );
        if self.spilled_bytes > 0 || self.spill_files > 0 {
            let _ = write!(
                line,
                " | spill {} in {} runs",
                fmt_bytes(self.spilled_bytes),
                self.spill_files
            );
        }
        if self.io_retries > 0 || self.torn_writes_detected > 0 || self.runs_quarantined > 0 {
            let _ = write!(
                line,
                " | io retries {} torn {} quarantined {}",
                self.io_retries, self.torn_writes_detected, self.runs_quarantined
            );
        }
        if self.io_stall_ms > 0 {
            let _ = write!(line, " stall {:.1}s", self.io_stall_ms as f64 / 1e3);
        }
        if self.journal_replayed_tasks > 0 {
            let _ = write!(line, " | replayed {}", self.journal_replayed_tasks);
        }
        if self.mem_live_bytes > 0 || self.mem_peak_bytes > 0 {
            let _ = write!(
                line,
                " | mem {} peak {}",
                fmt_bytes(self.mem_live_bytes),
                fmt_bytes(self.mem_peak_bytes)
            );
        }
        if self.driver_iteration > 0 {
            let _ = write!(line, " | iter {}", self.driver_iteration);
            if self.driver_delta.is_finite() {
                let _ = write!(line, " delta {:.5}", self.driver_delta);
            }
        }
        if !self.node_busy_s.is_empty() {
            line.push_str(" | busy");
            for (node, s) in self.node_busy_s.iter().enumerate() {
                let _ = write!(line, " n{node}:{s:.1}s");
            }
        }
        line
    }

    /// Serializes the snapshot in the Prometheus text-exposition format
    /// (one `# HELP`/`# TYPE` header per family; histogram families
    /// reuse the log-bucket bounds of [`Histogram`] as `le` values).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(2048);
        let mut metric = |name: &str, kind: &str, help: &str, value: f64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
            let _ = writeln!(out, "{name} {value}");
        };
        metric(
            "gepeto_jobs_started_total",
            "counter",
            "Jobs that entered their run loop.",
            self.jobs_started as f64,
        );
        metric(
            "gepeto_jobs_finished_total",
            "counter",
            "Jobs whose stats were folded.",
            self.jobs_finished as f64,
        );
        metric(
            "gepeto_map_tasks_total",
            "counter",
            "Map tasks scheduled.",
            self.map_tasks_total as f64,
        );
        metric(
            "gepeto_map_tasks_done",
            "counter",
            "Map tasks completed.",
            self.map_tasks_done as f64,
        );
        metric(
            "gepeto_reduce_tasks_total",
            "counter",
            "Reduce tasks scheduled.",
            self.reduce_tasks_total as f64,
        );
        metric(
            "gepeto_reduce_tasks_done",
            "counter",
            "Reduce tasks completed.",
            self.reduce_tasks_done as f64,
        );
        metric(
            "gepeto_shuffle_bytes_total",
            "counter",
            "Bytes shuffled between map and reduce.",
            self.shuffle_bytes as f64,
        );
        metric(
            "gepeto_task_retries_total",
            "counter",
            "Failure-injected task retries.",
            self.task_retries as f64,
        );
        metric(
            "gepeto_reexecuted_maps_total",
            "counter",
            "Map tasks re-executed after output loss.",
            self.reexecuted_maps as f64,
        );
        metric(
            "gepeto_failed_over_reads_total",
            "counter",
            "Block reads failed over to a replica.",
            self.failed_over_reads as f64,
        );
        metric(
            "gepeto_blacklisted_nodes_total",
            "counter",
            "Nodes blacklisted by the failure policy.",
            self.blacklisted_nodes as f64,
        );
        metric(
            "gepeto_crash_killed_attempts_total",
            "counter",
            "Attempts killed mid-flight by node crashes.",
            self.crash_killed_attempts as f64,
        );
        metric(
            "gepeto_kernel_distance_evals_total",
            "counter",
            "Point-to-centroid distance evaluations in the clustering kernels.",
            self.distance_evals as f64,
        );
        metric(
            "gepeto_shuffle_sort_skipped_total",
            "counter",
            "Reduce partitions that took the sort-skipping fast path.",
            self.sorts_skipped as f64,
        );
        metric(
            "gepeto_shuffle_bytes_saved_total",
            "counter",
            "Shuffle bytes avoided by compressed payload encodings.",
            self.shuffle_bytes_saved as f64,
        );
        metric(
            "gepeto_shuffle_spilled_bytes_total",
            "counter",
            "Intermediate bytes spilled to disk by memory-bounded shuffles.",
            self.spilled_bytes as f64,
        );
        metric(
            "gepeto_shuffle_spill_files_total",
            "counter",
            "Sorted spill runs written to disk by memory-bounded map tasks.",
            self.spill_files as f64,
        );
        metric(
            "gepeto_reduce_spilled_groups_total",
            "counter",
            "Reduce groups whose value lists spilled past the memory budget.",
            self.spilled_groups as f64,
        );
        metric(
            "gepeto_io_retries_total",
            "counter",
            "IO operations retried after transient storage faults.",
            self.io_retries as f64,
        );
        metric(
            "gepeto_io_torn_writes_detected_total",
            "counter",
            "Torn (partial) writes caught by commit verification.",
            self.torn_writes_detected as f64,
        );
        metric(
            "gepeto_spill_runs_quarantined_total",
            "counter",
            "Corrupt spill runs quarantined by verifying reads.",
            self.runs_quarantined as f64,
        );
        metric(
            "gepeto_io_stall_ms_total",
            "counter",
            "Virtual milliseconds stalled on storage faults and slow disks.",
            self.io_stall_ms as f64,
        );
        metric(
            "gepeto_journal_replayed_tasks_total",
            "counter",
            "Reduce tasks replayed from committed artifacts on resume.",
            self.journal_replayed_tasks as f64,
        );
        metric(
            "gepeto_jobs_running",
            "gauge",
            "Jobs started but not yet finished.",
            self.jobs_started.saturating_sub(self.jobs_finished) as f64,
        );
        metric(
            "gepeto_driver_iteration",
            "gauge",
            "Current driver iteration (0 before the first completes).",
            self.driver_iteration as f64,
        );
        if self.driver_delta.is_finite() {
            metric(
                "gepeto_driver_delta",
                "gauge",
                "Latest driver convergence delta.",
                self.driver_delta,
            );
        }
        metric(
            "gepeto_mem_live_bytes",
            "gauge",
            "Bytes currently live on the heap (tracking allocator).",
            self.mem_live_bytes as f64,
        );
        metric(
            "gepeto_mem_peak_bytes",
            "gauge",
            "All-time peak live heap bytes (tracking allocator).",
            self.mem_peak_bytes as f64,
        );
        metric(
            "gepeto_mem_allocated_bytes_total",
            "counter",
            "Cumulative bytes allocated by the process.",
            self.mem_allocated_bytes as f64,
        );
        metric(
            "gepeto_mem_allocs_total",
            "counter",
            "Cumulative allocation calls made by the process.",
            self.mem_allocs as f64,
        );
        metric(
            "gepeto_pool_threads",
            "gauge",
            "Work-stealing pool parallelism (0 until the pool exists).",
            self.pool_threads as f64,
        );
        metric(
            "gepeto_pool_tasks_total",
            "counter",
            "Tasks executed on the work-stealing pool.",
            self.pool_tasks as f64,
        );
        metric(
            "gepeto_pool_steals_total",
            "counter",
            "Steal-half operations between pool workers.",
            self.pool_steals as f64,
        );
        metric(
            "gepeto_pool_batches_total",
            "counter",
            "Batches submitted to the work-stealing pool.",
            self.pool_batches as f64,
        );
        if !self.pool_worker_busy_s.is_empty() || self.pool_caller_busy_s > 0.0 {
            let _ = writeln!(
                out,
                "# HELP gepeto_pool_worker_busy_seconds Wall seconds each pool executor spent running tasks."
            );
            let _ = writeln!(out, "# TYPE gepeto_pool_worker_busy_seconds gauge");
            for (worker, s) in self.pool_worker_busy_s.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "gepeto_pool_worker_busy_seconds{{worker=\"{worker}\"}} {s}"
                );
            }
            let _ = writeln!(
                out,
                "gepeto_pool_worker_busy_seconds{{worker=\"caller\"}} {}",
                self.pool_caller_busy_s
            );
        }
        if !self.phase_peak_bytes.is_empty() {
            let _ = writeln!(
                out,
                "# HELP gepeto_mem_phase_peak_bytes Allocator peak observed inside each phase (max across repeats)."
            );
            let _ = writeln!(out, "# TYPE gepeto_mem_phase_peak_bytes gauge");
            for (phase, peak) in &self.phase_peak_bytes {
                let _ = writeln!(
                    out,
                    "gepeto_mem_phase_peak_bytes{{phase=\"{}\"}} {peak}",
                    escape_label_value(phase)
                );
            }
        }
        if let Some((run_id, command)) = &self.run_info {
            let _ = writeln!(
                out,
                "# HELP gepeto_run_info Identity of the run behind this exposition."
            );
            let _ = writeln!(out, "# TYPE gepeto_run_info gauge");
            let _ = writeln!(
                out,
                "gepeto_run_info{{run_id=\"{}\",command=\"{}\"}} 1",
                escape_label_value(run_id),
                escape_label_value(command)
            );
        }
        if !self.node_busy_s.is_empty() {
            let _ = writeln!(
                out,
                "# HELP gepeto_node_busy_seconds Virtual seconds each node spent running attempts."
            );
            let _ = writeln!(out, "# TYPE gepeto_node_busy_seconds gauge");
            for (node, s) in self.node_busy_s.iter().enumerate() {
                let _ = writeln!(out, "gepeto_node_busy_seconds{{node=\"{node}\"}} {s}");
            }
        }
        for (name, h) in &self.histograms {
            let family = format!("gepeto_{}", sanitize_metric_name(name));
            let _ = writeln!(out, "# HELP {family} Live histogram '{name}'.");
            let _ = writeln!(out, "# TYPE {family} histogram");
            let mut cumulative = 0u64;
            for (i, &count) in h.buckets().iter().enumerate() {
                if count == 0 {
                    continue;
                }
                cumulative += count;
                let (_, upper) = Histogram::bucket_bounds(i);
                let _ = writeln!(out, "{family}_bucket{{le=\"{upper}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{family}_bucket{{le=\"+Inf\"}} {}", h.count());
            let _ = writeln!(out, "{family}_sum {}", h.sum());
            let _ = writeln!(out, "{family}_count {}", h.count());
        }
        out
    }
}

/// Escapes a Prometheus label *value* per the text-exposition rules:
/// backslash, double-quote and newline must be backslash-escaped (and we
/// fold carriage returns into `\n` so no raw control byte survives).
pub(crate) fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' | '\r' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Maps a dotted internal metric name onto the Prometheus charset.
fn sanitize_metric_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// The background heartbeat thread behind `--watch` / `--prom-out`.
///
/// Ticks every `every` until stopped, rendering the monitor's
/// [`MetricsSnapshot::status_line`] to stderr (when `echo`) and
/// rewriting the Prometheus exposition file (when `prom_out` is set).
/// A final tick runs at shutdown, so even runs shorter than one
/// interval leave a complete exposition file behind.
#[derive(Debug)]
pub struct Reporter {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Reporter {
    /// Spawns the reporter thread.
    pub fn start(
        monitor: Arc<Monitor>,
        every: Duration,
        prom_out: Option<PathBuf>,
        echo: bool,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let started = Instant::now();
            let tick = |final_tick: bool| {
                let snapshot = monitor.snapshot();
                if echo {
                    let tag = if final_tick { "done" } else { "watch" };
                    eprintln!(
                        "[{tag} +{:.1}s] {}",
                        started.elapsed().as_secs_f64(),
                        snapshot.status_line()
                    );
                }
                if let Some(path) = &prom_out {
                    // Best-effort: a transiently unwritable path must not
                    // kill the run being observed.
                    let _ = std::fs::write(path, snapshot.to_prometheus());
                }
            };
            while !stop_flag.load(Ordering::Relaxed) {
                // Sleep in short slices so stop() returns promptly even
                // with a multi-second interval.
                let mut slept = Duration::ZERO;
                while slept < every && !stop_flag.load(Ordering::Relaxed) {
                    let slice = (every - slept).min(Duration::from_millis(25));
                    std::thread::sleep(slice);
                    slept += slice;
                }
                if stop_flag.load(Ordering::Relaxed) {
                    break;
                }
                tick(false);
            }
            tick(true);
        });
        Self {
            stop,
            handle: Some(handle),
        }
    }

    /// Signals the thread, waits for its final tick, and joins it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Reporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_updates_and_progress_is_monotonic() {
        let m = Monitor::new();
        m.job_started();
        m.add_map_tasks(4);
        let mut last_done = 0;
        for _ in 0..4 {
            m.map_task_done();
            let s = m.snapshot();
            assert!(s.map_tasks_done > last_done);
            last_done = s.map_tasks_done;
        }
        m.add_shuffle_bytes(1_000);
        m.add_task_retry();
        m.add_blacklisted();
        m.set_driver_progress(3, 0.125);
        m.node_busy(2, 1.5);
        m.job_finished();
        let s = m.snapshot();
        assert_eq!(s.map_tasks_done, 4);
        assert_eq!(s.map_tasks_total, 4);
        assert_eq!(s.shuffle_bytes, 1_000);
        assert_eq!(s.task_retries, 1);
        assert_eq!(s.blacklisted_nodes, 1);
        assert_eq!(s.driver_iteration, 3);
        assert_eq!(s.driver_delta, 0.125);
        assert_eq!(s.node_busy_s.len(), 3);
        assert!((s.node_busy_s[2] - 1.5).abs() < 1e-9);
        assert_eq!(s.jobs_started, 1);
        assert_eq!(s.jobs_finished, 1);
    }

    #[test]
    fn status_line_shows_progress_and_guards_empty_totals() {
        let m = Monitor::new();
        let empty = m.snapshot().status_line();
        assert!(empty.contains("maps 0/0"), "{empty}");
        assert!(!empty.contains('%'), "{empty}");
        assert!(!empty.contains("iter"), "{empty}");
        m.add_map_tasks(4);
        m.map_task_done();
        m.map_task_done();
        m.set_driver_progress(2, 0.5);
        let line = m.snapshot().status_line();
        assert!(line.contains("maps 2/4 50%"), "{line}");
        assert!(line.contains("iter 2 delta 0.50000"), "{line}");
    }

    #[test]
    fn status_line_surfaces_spill_io_and_replay_counters_when_nonzero() {
        let m = Monitor::new();
        let quiet = m.snapshot().status_line();
        assert!(!quiet.contains("spill"), "{quiet}");
        assert!(!quiet.contains("io retries"), "{quiet}");
        assert!(!quiet.contains("replayed"), "{quiet}");
        m.add_spilled_bytes(65_536);
        m.add_spill_files(3);
        m.add_io_retries(5);
        m.add_torn_writes(1);
        m.add_runs_quarantined(2);
        m.add_io_stall_ms(2_500);
        m.add_journal_replayed(4);
        let line = m.snapshot().status_line();
        assert!(line.contains("spill 65.5 KB in 3 runs"), "{line}");
        assert!(line.contains("io retries 5 torn 1 quarantined 2"), "{line}");
        assert!(line.contains("stall 2.5s"), "{line}");
        assert!(line.contains("replayed 4"), "{line}");
    }

    #[test]
    fn run_info_labels_are_escaped() {
        let m = Monitor::new();
        m.add_io_stall_ms(7);
        m.set_run_info("r\"1\"\n", "kmeans --run-dir C:\\tmp");
        let text = m.snapshot().to_prometheus();
        assert!(text.contains("gepeto_io_stall_ms_total 7"), "{text}");
        assert!(
            text.contains("gepeto_run_info{run_id=\"r\\\"1\\\"\\n\",command=\"kmeans --run-dir C:\\\\tmp\"} 1"),
            "{text}"
        );
        // No raw newline inside a sample line.
        for line in text.lines() {
            assert!(!line.contains('\r'));
        }
        assert_eq!(escape_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
    }

    #[test]
    fn prometheus_exposition_has_families_and_cumulative_buckets() {
        let m = Monitor::new();
        m.add_map_tasks(2);
        m.map_task_done();
        m.add_shuffle_bytes(4096);
        m.add_distance_evals(7);
        m.add_sorts_skipped(2);
        m.add_shuffle_bytes_saved(100);
        m.add_spilled_bytes(8192);
        m.add_spill_files(3);
        m.add_spilled_groups(1);
        m.add_io_retries(5);
        m.add_torn_writes(2);
        m.add_runs_quarantined(1);
        m.add_journal_replayed(4);
        m.node_busy(0, 2.0);
        m.observe("task.map.us", 10);
        m.observe("task.map.us", 1000);
        let text = m.snapshot().to_prometheus();
        assert!(
            text.contains("gepeto_kernel_distance_evals_total 7"),
            "{text}"
        );
        assert!(
            text.contains("gepeto_shuffle_sort_skipped_total 2"),
            "{text}"
        );
        assert!(
            text.contains("gepeto_shuffle_bytes_saved_total 100"),
            "{text}"
        );
        assert!(
            text.contains("gepeto_shuffle_spilled_bytes_total 8192"),
            "{text}"
        );
        assert!(
            text.contains("gepeto_shuffle_spill_files_total 3"),
            "{text}"
        );
        assert!(
            text.contains("gepeto_reduce_spilled_groups_total 1"),
            "{text}"
        );
        assert!(text.contains("gepeto_io_retries_total 5"), "{text}");
        assert!(
            text.contains("gepeto_io_torn_writes_detected_total 2"),
            "{text}"
        );
        assert!(
            text.contains("gepeto_spill_runs_quarantined_total 1"),
            "{text}"
        );
        assert!(
            text.contains("gepeto_journal_replayed_tasks_total 4"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE gepeto_map_tasks_done counter"),
            "{text}"
        );
        assert!(text.contains("gepeto_map_tasks_done 1"), "{text}");
        assert!(text.contains("gepeto_shuffle_bytes_total 4096"), "{text}");
        assert!(
            text.contains("gepeto_node_busy_seconds{node=\"0\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE gepeto_task_map_us histogram"),
            "{text}"
        );
        assert!(
            text.contains("gepeto_task_map_us_bucket{le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("gepeto_task_map_us_sum 1010"), "{text}");
        assert!(text.contains("gepeto_task_map_us_count 2"), "{text}");
        // Buckets are cumulative and non-decreasing.
        let mut last = 0u64;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("gepeto_task_map_us_bucket{le=\"") {
                let count: u64 = rest.split("} ").nth(1).unwrap().parse().unwrap();
                assert!(count >= last, "{text}");
                last = count;
            }
        }
    }

    #[test]
    fn mem_gauges_flow_from_the_allocator_into_the_exposition() {
        let m = Monitor::new();
        m.note_phase_peak("map", 100);
        m.note_phase_peak("map", 50);
        m.note_phase_peak("reduce", 7);
        let s = m.snapshot();
        // The tracking allocator is process-wide, so a live test process
        // always has a nonzero heap.
        assert!(s.mem_live_bytes > 0);
        assert!(s.mem_peak_bytes >= s.mem_live_bytes);
        assert!(s.mem_allocated_bytes > 0);
        assert!(s.mem_allocs > 0);
        assert_eq!(
            s.phase_peak_bytes,
            vec![("map".to_owned(), 100), ("reduce".to_owned(), 7)]
        );
        let line = s.status_line();
        assert!(line.contains(" | mem "), "{line}");
        assert!(line.contains(" peak "), "{line}");
        let text = s.to_prometheus();
        assert!(
            text.contains("# TYPE gepeto_mem_live_bytes gauge"),
            "{text}"
        );
        assert!(text.contains("gepeto_mem_peak_bytes "), "{text}");
        assert!(text.contains("gepeto_mem_allocated_bytes_total "), "{text}");
        assert!(text.contains("gepeto_mem_allocs_total "), "{text}");
        assert!(
            text.contains("gepeto_mem_phase_peak_bytes{phase=\"map\"} 100"),
            "{text}"
        );
        assert!(
            text.contains("gepeto_mem_phase_peak_bytes{phase=\"reduce\"} 7"),
            "{text}"
        );
    }

    #[test]
    fn reporter_writes_exposition_file_on_final_tick() {
        let dir = std::env::temp_dir().join(format!(
            "gepeto-monitor-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.prom");
        let monitor = Arc::new(Monitor::new());
        monitor.add_map_tasks(1);
        // An interval far longer than the run: only the final tick fires.
        let reporter = Reporter::start(
            Arc::clone(&monitor),
            Duration::from_secs(3600),
            Some(path.clone()),
            false,
        );
        monitor.map_task_done();
        reporter.stop();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("gepeto_map_tasks_done 1"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
