//! Perf-diff root-cause engine: explains *why* one run was slower than
//! another.
//!
//! The bench harness's `compare` gate (and any operator staring at two
//! metrics files) can see *that* wall time or makespan moved; this
//! module walks the two runs' phase breakdowns, task cohorts and
//! counters and attributes the movement — producing a ranked "why it
//! got slower" report in both ASCII and machine-readable JSON.
//!
//! Attribution is deliberately heuristic but unit-honest: causes that
//! carry a real time delta (phase walls, cohort totals, storage stall
//! milliseconds) are ranked by their seconds-equivalent contribution;
//! dimensionless counter swings (io retries, re-executions, distance
//! evaluations) rank below them by relative change, as corroborating
//! evidence rather than attributed time.

use crate::analysis::{CriticalPath, VirtualCriticalPath};
use crate::event::Event;
use crate::json::Writer;
use crate::monitor::fmt_bytes;
use crate::summary::{SummaryReport, IO_STALL_MS_COUNTER, MEM_PEAK_OVER_BUDGET_COUNTER};
use std::fmt::Write as _;

/// Task-duration quantiles for one task kind, as carried by a profile.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskCohort {
    /// Task kind (`map`, `reduce`, ...).
    pub kind: String,
    /// Number of tasks in the cohort.
    pub count: u64,
    /// Median task wall time, microseconds.
    pub p50_us: u64,
    /// 95th-percentile task wall time, microseconds.
    pub p95_us: u64,
    /// Slowest task wall time, microseconds.
    pub max_us: u64,
}

/// Everything the diff engine needs to know about one run — a common
/// denominator of a bench report and a metrics JSONL stream.
#[derive(Debug, Clone, Default)]
pub struct RunProfile {
    /// Where this profile came from (file name, workload tag).
    pub label: String,
    /// Host wall time, milliseconds.
    pub wall_ms: u64,
    /// Virtual-cluster makespan, seconds (0 when no simulated job ran).
    pub makespan_s: f64,
    /// Per-phase wall seconds (host spans, summed across repeats), in
    /// first-appearance order.
    pub phases: Vec<(String, f64)>,
    /// Counter totals, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Per-task-kind duration quantiles.
    pub tasks: Vec<TaskCohort>,
}

impl RunProfile {
    fn phase(&self, name: &str) -> f64 {
        self.phases
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, s)| s)
            .unwrap_or(0.0)
    }

    fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    fn cohort(&self, kind: &str) -> Option<&TaskCohort> {
        self.tasks.iter().find(|t| t.kind == kind)
    }
}

/// Builds a [`RunProfile`] from a captured (or replayed) event stream —
/// the same stream `--metrics-out` writes as JSONL.
pub fn profile_from_events(label: &str, events: &[Event]) -> RunProfile {
    // Counters ride in the stream as `count` events (the archive writer
    // materializes the recorder's aggregate totals on stop).
    let mut counters: Vec<(String, u64)> = Vec::new();
    for e in events {
        if e.kind == crate::event::EventKind::Count {
            let v = e.value.unwrap_or(0.0).max(0.0) as u64;
            match counters.iter_mut().find(|(n, _)| n == e.name) {
                // The live-heap gauge is sampled at every phase
                // boundary; its profile value is the peak sample, not
                // the sum of samples.
                Some((_, total)) if e.name == "mem.live_bytes" => *total = (*total).max(v),
                Some((_, total)) => *total += v,
                None => counters.push((e.name.to_owned(), v)),
            }
        }
    }
    counters.sort_by(|a, b| a.0.cmp(&b.0));
    let summary = SummaryReport::from_events(events, &counters);
    let host = CriticalPath::from_events(events);
    let makespan_s = VirtualCriticalPath::from_events(events)
        .map(|v| v.makespan_s)
        .unwrap_or(0.0);
    RunProfile {
        label: label.to_owned(),
        wall_ms: host.total_us / 1_000,
        makespan_s,
        phases: summary
            .phases
            .iter()
            .map(|p| (p.name.clone(), p.wall_us as f64 / 1e6))
            .collect(),
        counters,
        tasks: summary
            .tasks
            .iter()
            .map(|t| TaskCohort {
                kind: t.kind.clone(),
                count: t.count,
                p50_us: t.p50_us,
                p95_us: t.p95_us,
                max_us: t.max_us,
            })
            .collect(),
    }
}

/// One ranked explanation for the delta between two runs.
#[derive(Debug, Clone)]
pub struct Cause {
    /// Attribution class: `phase`, `stall`, `tasks`, `memory`, or
    /// `counter`.
    pub kind: &'static str,
    /// What moved (phase name, counter name, task kind).
    pub name: String,
    /// Baseline value (seconds for timed causes, raw for counters).
    pub base: f64,
    /// Candidate value.
    pub cand: f64,
    /// `cand - base`, in `unit`.
    pub delta: f64,
    /// `"s"` for seconds-equivalent causes, `""` for raw counters.
    pub unit: &'static str,
    /// Seconds-equivalent share of the baseline reference time (0 for
    /// raw counter causes).
    pub share: f64,
    /// Human explanation of what the movement means.
    pub note: String,
}

impl Cause {
    /// Seconds this cause contributes to the ranking (raw counters
    /// rank by relative change, far below any timed cause).
    fn weight(&self) -> f64 {
        if self.unit == "s" {
            self.delta.abs()
        } else {
            0.0
        }
    }

    fn relative(&self) -> f64 {
        if self.base.abs() > 0.0 {
            (self.delta / self.base).abs()
        } else if self.delta.abs() > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    }
}

/// The full two-run comparison: headline deltas plus ranked causes.
#[derive(Debug, Clone)]
pub struct PerfDiff {
    /// Baseline label.
    pub base: String,
    /// Candidate label.
    pub cand: String,
    /// Candidate minus baseline host wall, milliseconds.
    pub wall_delta_ms: f64,
    /// Candidate minus baseline virtual makespan, seconds.
    pub makespan_delta_s: f64,
    /// Ranked causes, biggest attributed time first; empty when nothing
    /// moved past the significance floor.
    pub causes: Vec<Cause>,
}

/// A timed delta is significant past this share of the baseline's
/// dominant time scale.
const TIME_SIGNIFICANCE: f64 = 0.01;
/// A raw counter swing is significant past this relative change.
const COUNTER_SIGNIFICANCE: f64 = 0.10;

/// Executor-milliseconds the host thread pool spent NOT running tasks
/// (bench reports inject this from their `host` block). Milliseconds of
/// real time, so it attributes as a timed cause.
pub const HOST_IDLE_MS_COUNTER: &str = "host.idle_ms";

/// Attributes the performance delta between `base` and `cand`.
pub fn diff(base: &RunProfile, cand: &RunProfile) -> PerfDiff {
    // The baseline's dominant time scale: virtual makespan when a
    // simulated job ran, host wall otherwise. Floored so an all-zero
    // baseline cannot make everything "significant".
    let reference_s = base
        .makespan_s
        .max(base.wall_ms as f64 / 1e3)
        .max(cand.makespan_s.max(cand.wall_ms as f64 / 1e3) * 0.01)
        .max(1e-6);
    let significant_s = TIME_SIGNIFICANCE * reference_s;
    let mut causes: Vec<Cause> = Vec::new();

    // Phase wall deltas (host seconds).
    let mut phase_names: Vec<&str> = base.phases.iter().map(|(n, _)| n.as_str()).collect();
    for (n, _) in &cand.phases {
        if !phase_names.contains(&n.as_str()) {
            phase_names.push(n);
        }
    }
    for name in phase_names {
        let (b, c) = (base.phase(name), cand.phase(name));
        let delta = c - b;
        if delta.abs() >= significant_s {
            causes.push(Cause {
                kind: "phase",
                name: name.to_owned(),
                base: b,
                cand: c,
                delta,
                unit: "s",
                share: delta.abs() / reference_s,
                note: format!(
                    "phase.{name} wall {} by {:.3} s ({:.3} s -> {:.3} s)",
                    if delta > 0.0 { "grew" } else { "shrank" },
                    delta.abs(),
                    b,
                    c
                ),
            });
        }
    }

    // Task cohort totals (count x median, in seconds).
    let mut kinds: Vec<&str> = base.tasks.iter().map(|t| t.kind.as_str()).collect();
    for t in &cand.tasks {
        if !kinds.contains(&t.kind.as_str()) {
            kinds.push(&t.kind);
        }
    }
    for kind in kinds {
        let total_s = |p: &RunProfile| {
            p.cohort(kind)
                .map(|t| t.count as f64 * t.p50_us as f64 / 1e6)
                .unwrap_or(0.0)
        };
        let (b, c) = (total_s(base), total_s(cand));
        let delta = c - b;
        if delta.abs() >= significant_s {
            let (bc, cc) = (
                base.cohort(kind).map_or(0, |t| t.count),
                cand.cohort(kind).map_or(0, |t| t.count),
            );
            causes.push(Cause {
                kind: "tasks",
                name: kind.to_owned(),
                base: b,
                cand: c,
                delta,
                unit: "s",
                share: delta.abs() / reference_s,
                note: format!(
                    "task.{kind} cohort time (count x p50) moved {:.3} s ({bc} -> {cc} tasks)",
                    delta.abs()
                ),
            });
        }
    }

    // Counter deltas. The storage-stall counter is milliseconds of
    // virtual time, so it attributes as a timed cause; everything else
    // is corroborating evidence ranked by relative change.
    let mut counter_names: Vec<&str> = base.counters.iter().map(|(n, _)| n.as_str()).collect();
    for (n, _) in &cand.counters {
        if !counter_names.contains(&n.as_str()) {
            counter_names.push(n);
        }
    }
    for name in counter_names {
        let (b, c) = (base.counter(name), cand.counter(name));
        if b == c {
            continue;
        }
        let delta = c as f64 - b as f64;
        if name == IO_STALL_MS_COUNTER {
            let delta_s = delta / 1e3;
            if delta_s.abs() >= significant_s {
                causes.push(Cause {
                    kind: "stall",
                    name: name.to_owned(),
                    base: b as f64 / 1e3,
                    cand: c as f64 / 1e3,
                    delta: delta_s,
                    unit: "s",
                    share: delta_s.abs() / reference_s,
                    note: format!(
                        "storage stall in the shuffle/spill commit path (spill seals, \
                         artifact commits) {} by {:.3} s — the shuffle phase was IO-bound \
                         (slow disk or EIO retry backoff)",
                        if delta_s > 0.0 { "grew" } else { "shrank" },
                        delta_s.abs()
                    ),
                });
            }
        } else if name == HOST_IDLE_MS_COUNTER {
            let delta_s = delta / 1e3;
            if delta_s.abs() >= significant_s {
                causes.push(Cause {
                    kind: "idle",
                    name: name.to_owned(),
                    base: b as f64 / 1e3,
                    cand: c as f64 / 1e3,
                    delta: delta_s,
                    unit: "s",
                    share: delta_s.abs() / reference_s,
                    note: if delta_s > 0.0 {
                        format!(
                            "got slower because workers idled — pool executors spent \
                             {:.3} s more doing nothing (serial sections, lock contention \
                             or too few runnable tasks for the thread count)",
                            delta_s
                        )
                    } else {
                        format!(
                            "pool executors idled {:.3} s less — the run kept its \
                             workers fed",
                            delta_s.abs()
                        )
                    },
                });
            }
        } else if name == MEM_PEAK_OVER_BUDGET_COUNTER {
            // Crossing the memory budget is the canonical "why did it
            // start spilling" explanation — call it out by name instead
            // of burying it in the generic counter list.
            let rel = if b > 0 {
                delta.abs() / b as f64
            } else {
                f64::INFINITY
            };
            if rel >= COUNTER_SIGNIFICANCE {
                causes.push(Cause {
                    kind: "memory",
                    name: name.to_owned(),
                    base: b as f64,
                    cand: c as f64,
                    delta,
                    unit: "",
                    share: 0.0,
                    note: if b == 0 && c > 0 {
                        format!(
                            "got slower because it started spilling — the accounted shuffle \
                             peak crossed the memory budget by {} (spill writes and merge \
                             reads follow the overshoot)",
                            fmt_bytes(c)
                        )
                    } else {
                        format!(
                            "accounted peak over budget {} from {} to {}",
                            if delta > 0.0 { "grew" } else { "shrank" },
                            fmt_bytes(b),
                            fmt_bytes(c)
                        )
                    },
                });
            }
        } else {
            let rel = if b > 0 {
                delta.abs() / b as f64
            } else {
                f64::INFINITY
            };
            if rel >= COUNTER_SIGNIFICANCE {
                causes.push(Cause {
                    kind: "counter",
                    name: name.to_owned(),
                    base: b as f64,
                    cand: c as f64,
                    delta,
                    unit: "",
                    share: 0.0,
                    note: format!(
                        "counter {name} moved {b} -> {c} ({})",
                        if b > 0 {
                            format!("{:+.0}%", 100.0 * delta / b as f64)
                        } else {
                            "new".to_owned()
                        }
                    ),
                });
            }
        }
    }

    // Rank: attributed seconds first, then relative swing.
    causes.sort_by(|a, b| {
        b.weight()
            .total_cmp(&a.weight())
            .then(b.relative().total_cmp(&a.relative()))
            .then(a.name.cmp(&b.name))
    });

    PerfDiff {
        base: base.label.clone(),
        cand: cand.label.clone(),
        wall_delta_ms: cand.wall_ms as f64 - base.wall_ms as f64,
        makespan_delta_s: cand.makespan_s - base.makespan_s,
        causes,
    }
}

impl PerfDiff {
    /// Renders the ranked report as plain text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== perf diff: {} -> {} ==", self.base, self.cand);
        let _ = writeln!(
            out,
            "wall     {:+.1} ms | makespan {:+.3} s",
            self.wall_delta_ms, self.makespan_delta_s
        );
        if self.causes.is_empty() {
            let _ = writeln!(out, "no significant delta");
            return out;
        }
        // Direction follows the headline deltas, unless the top
        // attributed time swing dwarfs them — a run whose makespan
        // barely moved but stalled 100 s on disk still "got slower".
        let headline_s = (self.wall_delta_ms / 1000.0)
            .abs()
            .max(self.makespan_delta_s.abs());
        let top = &self.causes[0];
        let slower = if top.unit == "s" && top.delta.abs() > headline_s {
            top.delta > 0.0
        } else if self.makespan_delta_s.abs() >= (self.wall_delta_ms / 1000.0).abs() {
            self.makespan_delta_s > 0.0
        } else {
            self.wall_delta_ms > 0.0
        };
        let _ = writeln!(
            out,
            "why it got {} (ranked):",
            if slower { "slower" } else { "faster" }
        );
        for (i, c) in self.causes.iter().enumerate() {
            let amount = if c.unit == "s" {
                format!("{:+.3} s ({:.0}% of baseline)", c.delta, 100.0 * c.share)
            } else {
                format!("{:+.0}", c.delta)
            };
            let _ = writeln!(out, "  {}. [{:<7}] {:<24} {amount}", i + 1, c.kind, c.name);
            let _ = writeln!(out, "      {}", c.note);
        }
        out
    }

    /// Serializes the report as machine-readable JSON.
    pub fn to_json(&self) -> String {
        let mut w = Writer::new();
        w.open_obj();
        w.str_field("schema", "gepeto-perf-diff/1");
        w.str_field("base", &self.base);
        w.str_field("cand", &self.cand);
        w.f64_field("wall_delta_ms", self.wall_delta_ms);
        w.f64_field("makespan_delta_s", self.makespan_delta_s);
        w.open_arr_field("causes");
        for c in &self.causes {
            w.open_obj();
            w.str_field("kind", c.kind);
            w.str_field("name", &c.name);
            w.f64_field("base", c.base);
            w.f64_field("cand", c.cand);
            w.f64_field("delta", c.delta);
            w.str_field("unit", c.unit);
            w.f64_field("share", c.share);
            w.str_field("note", &c.note);
            w.close_obj();
        }
        w.close_arr();
        w.close_obj();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(label: &str) -> RunProfile {
        RunProfile {
            label: label.to_owned(),
            wall_ms: 1_000,
            makespan_s: 100.0,
            phases: vec![
                ("map".to_owned(), 0.6),
                ("shuffle".to_owned(), 0.2),
                ("reduce".to_owned(), 0.2),
            ],
            counters: vec![
                ("io.retries".to_owned(), 10),
                ("shuffle.spilled_bytes".to_owned(), 1_000_000),
            ],
            tasks: vec![TaskCohort {
                kind: "map".to_owned(),
                count: 100,
                p50_us: 5_000,
                p95_us: 9_000,
                max_us: 12_000,
            }],
        }
    }

    #[test]
    fn self_diff_reports_no_significant_delta() {
        let p = profile("a");
        let d = diff(&p, &p);
        assert!(d.causes.is_empty());
        assert_eq!(d.wall_delta_ms, 0.0);
        assert!(
            d.render().contains("no significant delta"),
            "{}",
            d.render()
        );
    }

    #[test]
    fn storage_stall_dominates_and_names_the_io_bound_phase() {
        let base = profile("clean");
        let mut cand = profile("slow-disk");
        cand.makespan_s = 250.0;
        cand.counters
            .push((IO_STALL_MS_COUNTER.to_owned(), 150_000));
        cand.counters.sort();
        // A small decoy phase wiggle that must NOT outrank the stall.
        cand.phases[0].1 = 2.0;
        let d = diff(&base, &cand);
        assert!(!d.causes.is_empty());
        assert_eq!(d.causes[0].kind, "stall");
        assert_eq!(d.causes[0].name, IO_STALL_MS_COUNTER);
        assert!((d.causes[0].delta - 150.0).abs() < 1e-9);
        assert!(d.causes[0].note.contains("shuffle"), "{}", d.causes[0].note);
        assert!(
            d.causes[0].note.contains("IO-bound"),
            "{}",
            d.causes[0].note
        );
        let text = d.render();
        assert!(text.contains("why it got slower"), "{text}");
        assert!(text.contains("io.stall_ms"), "{text}");
        let json = d.to_json();
        let parsed = crate::json::Json::parse(&json).unwrap();
        assert_eq!(
            parsed
                .get("causes")
                .and_then(crate::json::Json::as_arr)
                .and_then(|a| a.first())
                .and_then(|c| c.get("kind"))
                .and_then(crate::json::Json::as_str),
            Some("stall")
        );
    }

    #[test]
    fn counter_swings_rank_below_timed_causes() {
        let base = profile("a");
        let mut cand = profile("b");
        cand.counters[0].1 = 100; // io.retries 10 -> 100
        cand.phases[2].1 = 5.0; // reduce grew by 4.8 s
        let d = diff(&base, &cand);
        let kinds: Vec<&str> = d.causes.iter().map(|c| c.kind).collect();
        assert_eq!(d.causes[0].kind, "phase");
        assert_eq!(d.causes[0].name, "reduce");
        assert!(kinds.contains(&"counter"), "{kinds:?}");
        let counter_pos = kinds.iter().position(|&k| k == "counter").unwrap();
        assert!(counter_pos > 0);
    }

    #[test]
    fn crossing_the_memory_budget_reads_as_started_spilling() {
        let base = profile("fits");
        let mut cand = profile("spills");
        cand.counters
            .push((MEM_PEAK_OVER_BUDGET_COUNTER.to_owned(), 27_000_000));
        cand.counters.sort();
        let d = diff(&base, &cand);
        let mem = d
            .causes
            .iter()
            .find(|c| c.kind == "memory")
            .expect("memory cause");
        assert_eq!(mem.name, MEM_PEAK_OVER_BUDGET_COUNTER);
        assert!(mem.note.contains("started spilling"), "{}", mem.note);
        assert!(mem.note.contains("27.0 MB"), "{}", mem.note);
        // A further overshoot reads as growth, not a fresh crossing.
        let mut worse = cand.clone();
        for (n, v) in worse.counters.iter_mut() {
            if n == MEM_PEAK_OVER_BUDGET_COUNTER {
                *v = 54_000_000;
            }
        }
        let d2 = diff(&cand, &worse);
        let grew = d2.causes.iter().find(|c| c.kind == "memory").unwrap();
        assert!(
            grew.note.contains("grew from 27.0 MB to 54.0 MB"),
            "{}",
            grew.note
        );
    }

    #[test]
    fn idling_pool_workers_read_as_got_slower_because_workers_idled() {
        let base = profile("busy");
        let mut cand = profile("starved");
        cand.counters
            .push((HOST_IDLE_MS_COUNTER.to_owned(), 40_000));
        cand.counters.sort();
        let d = diff(&base, &cand);
        let idle = d
            .causes
            .iter()
            .find(|c| c.kind == "idle")
            .expect("idle cause");
        assert_eq!(idle.name, HOST_IDLE_MS_COUNTER);
        assert_eq!(idle.unit, "s");
        assert!((idle.delta - 40.0).abs() < 1e-9);
        assert!(
            idle.note.contains("got slower because workers idled"),
            "{}",
            idle.note
        );
        // The reverse direction credits the fix.
        let d2 = diff(&cand, &base);
        let fed = d2.causes.iter().find(|c| c.kind == "idle").unwrap();
        assert!(fed.note.contains("kept its workers fed"), "{}", fed.note);
    }

    #[test]
    fn live_heap_samples_profile_as_a_peak_not_a_sum() {
        use crate::event::{Event, EventKind};
        let sample = |v: f64| Event {
            ts_us: 0,
            kind: EventKind::Count,
            name: "mem.live_bytes",
            span_id: 0,
            parent_id: 0,
            dur_us: None,
            value: Some(v),
            labels: Vec::new(),
        };
        let events = vec![sample(40.0), sample(91.0), sample(12.0)];
        let p = profile_from_events("x", &events);
        assert_eq!(p.counters, vec![("mem.live_bytes".to_owned(), 91)]);
    }

    #[test]
    fn task_cohort_growth_is_attributed() {
        let base = profile("a");
        let mut cand = profile("b");
        cand.tasks[0].count = 300;
        cand.tasks[0].p50_us = 20_000; // 0.5 s -> 6 s of cohort time
        let d = diff(&base, &cand);
        assert!(d
            .causes
            .iter()
            .any(|c| c.kind == "tasks" && c.name == "map" && c.delta > 5.0));
    }

    #[test]
    fn profile_from_events_reads_spans_and_count_events() {
        use crate::event::{Event, EventKind};
        let span = |name: &'static str, id: u64, ts: u64, dur: u64| {
            [
                Event {
                    ts_us: ts,
                    kind: EventKind::SpanStart,
                    name,
                    span_id: id,
                    parent_id: 0,
                    dur_us: None,
                    value: None,
                    labels: Vec::new(),
                },
                Event {
                    ts_us: ts + dur,
                    kind: EventKind::SpanEnd,
                    name,
                    span_id: id,
                    parent_id: 0,
                    dur_us: Some(dur),
                    value: None,
                    labels: Vec::new(),
                },
            ]
        };
        let mut events: Vec<Event> = Vec::new();
        events.extend(span("job", 1, 0, 2_000_000));
        events.extend(span("phase.map", 2, 0, 1_500_000));
        events.push(Event {
            ts_us: 2_000_000,
            kind: EventKind::Count,
            name: "io.retries",
            span_id: 0,
            parent_id: 0,
            dur_us: None,
            value: Some(4.0),
            labels: Vec::new(),
        });
        let p = profile_from_events("x", &events);
        assert_eq!(p.label, "x");
        assert_eq!(p.wall_ms, 2_000);
        assert_eq!(p.phases, vec![("map".to_owned(), 1.5)]);
        assert_eq!(p.counters, vec![("io.retries".to_owned(), 4)]);
    }
}
