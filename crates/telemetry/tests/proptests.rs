//! Ledger properties: however scopes nest and whatever they allocate,
//! the attribution invariants hold — a child's peak never exceeds its
//! parent's, children's turnover sums into the parent's, and live
//! growth is always bounded by the bytes allocated inside the window.
//!
//! The allocator counters are process-global and the test harness runs
//! threads concurrently, so every assertion here is chosen to be true
//! under interference: other threads can only *add* turnover to an open
//! window and raise its peak, never shrink either, which preserves all
//! the ≤ relations below.

use gepeto_telemetry::{LedgerScope, MemDelta};
use proptest::prelude::*;

/// Allocate-and-free `sizes` inside the innermost scope, keeping every
/// other buffer alive until the end of the scope.
fn churn(sizes: &[usize]) -> Vec<Vec<u8>> {
    let mut held = Vec::new();
    for (i, &size) in sizes.iter().enumerate() {
        let buf = vec![0u8; size];
        if i % 2 == 0 {
            held.push(buf);
        }
    }
    held
}

fn well_formed(d: &MemDelta) {
    assert!(d.peak_delta <= d.allocated, "{d:?}");
    assert!(d.peak_bytes >= d.peak_delta, "{d:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn nested_scopes_preserve_the_ledger_invariants(
        parent_sizes in prop::collection::vec(1usize..10_000, 0..8),
        child_sizes in prop::collection::vec(1usize..10_000, 0..8),
        grandchild_sizes in prop::collection::vec(1usize..10_000, 0..8),
    ) {
        let parent = LedgerScope::open();
        let _parent_held = churn(&parent_sizes);

        let child = LedgerScope::open();
        let _child_held = churn(&child_sizes);

        let grandchild = LedgerScope::open();
        let _grandchild_held = churn(&grandchild_sizes);
        let gd = grandchild.close();

        let cd = child.close();
        let pd = parent.close();

        for d in [&gd, &cd, &pd] {
            well_formed(d);
        }
        // A scope's window is contained in its parent's window.
        prop_assert!(gd.peak_bytes <= cd.peak_bytes, "{gd:?} vs {cd:?}");
        prop_assert!(cd.peak_bytes <= pd.peak_bytes, "{cd:?} vs {pd:?}");
        // Turnover observed by a child is a subset of the parent's.
        prop_assert!(gd.allocated <= cd.allocated, "{gd:?} vs {cd:?}");
        prop_assert!(cd.allocated <= pd.allocated, "{cd:?} vs {pd:?}");
        prop_assert!(gd.allocs <= cd.allocs, "{gd:?} vs {cd:?}");
        prop_assert!(cd.allocs <= pd.allocs, "{cd:?} vs {pd:?}");
        // The parent saw at least the bytes its own churn allocated.
        let own: u64 = parent_sizes.iter().map(|&s| s as u64).sum();
        prop_assert!(pd.allocated >= own, "{pd:?} own {own}");
    }

    #[test]
    fn sequential_siblings_sum_into_the_parent(
        first in prop::collection::vec(1usize..10_000, 0..8),
        second in prop::collection::vec(1usize..10_000, 0..8),
    ) {
        let parent = LedgerScope::open();

        let a = LedgerScope::open();
        let _a_held = churn(&first);
        let ad = a.close();

        let b = LedgerScope::open();
        let _b_held = churn(&second);
        let bd = b.close();

        let pd = parent.close();
        well_formed(&ad);
        well_formed(&bd);
        well_formed(&pd);
        // Sequential siblings partition disjoint slices of the parent's
        // window, so their turnover sums into (never past) the parent's.
        prop_assert!(
            ad.allocated + bd.allocated <= pd.allocated,
            "{ad:?} + {bd:?} vs {pd:?}"
        );
        prop_assert!(ad.allocs + bd.allocs <= pd.allocs, "{ad:?} + {bd:?} vs {pd:?}");
        // Each sibling's peak propagated into the parent on close.
        prop_assert!(ad.peak_bytes <= pd.peak_bytes, "{ad:?} vs {pd:?}");
        prop_assert!(bd.peak_bytes <= pd.peak_bytes, "{bd:?} vs {pd:?}");
    }
}
