#![warn(missing_docs)]

//! # gepeto-geolife
//!
//! A deterministic synthetic mobility-dataset generator calibrated to the
//! GeoLife GPS trajectory dataset **as the paper uses it** (§IV):
//! 178 users, ≈ 2,033,686 mobility traces (≈ 128 MB of PLT text), dense
//! logging ("a mobility trace is recorded every 1 to 5 seconds"), mostly
//! outdoor movements plus dwell periods at the users' points of interest.
//!
//! The real GeoLife dataset cannot be redistributed, so every experiment
//! of the reproduction runs on this generator's output; the PLT format
//! implemented in `gepeto-model` is drop-in compatible with genuine
//! GeoLife files should they be available. The generator's aggregate
//! statistics are what the paper's results depend on — see the
//! calibration table in `DESIGN.md` §5 and the verification tests in
//! [`stats`].

pub mod gen;
pub mod rng;
pub mod stats;

pub use gen::{GeneratorConfig, SyntheticGeoLife, TransportMode};
pub use stats::DatasetStats;
