//! The synthetic mobility simulator.
//!
//! Each user gets a personal geography (home, work, a few leisure places
//! around a Beijing-like city) and a trace budget. The generator then
//! plays out *recording sessions* — GeoLife users switched their loggers
//! on for individual trips — consisting of a dwell at the origin POI, a
//! trip at walking/cycling/driving speed, and a dwell at the destination
//! POI. Positions are logged every 1–5 seconds with GPS jitter, exactly
//! the density the paper reports, and the dwell/trip time split is tuned
//! so that the DJ-Cluster preprocessing filter ratios of Table IV hold.

use crate::rng::{log_normal, normal, weighted_index};
use gepeto_model::{Dataset, GeoPoint, MobilityTrace, Timestamp, Trail, UserId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Meters per degree of latitude (and of longitude at the equator).
const M_PER_DEG: f64 = 111_194.93;

/// How a user covers a trip; decides the speed and hence the trip time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportMode {
    /// ~1.35 m/s.
    Walk,
    /// ~4.2 m/s.
    Bike,
    /// ~9.5 m/s (urban driving).
    Car,
}

impl TransportMode {
    /// Mean speed of the mode in meters per second.
    pub fn speed_mps(self) -> f64 {
        match self {
            TransportMode::Walk => 1.35,
            TransportMode::Bike => 4.2,
            TransportMode::Car => 9.5,
        }
    }

    /// Mode choice by trip length, the usual urban pattern.
    pub fn for_distance_m(d: f64) -> Self {
        if d < 900.0 {
            TransportMode::Walk
        } else if d < 3_200.0 {
            TransportMode::Bike
        } else {
            TransportMode::Car
        }
    }
}

/// Tunable parameters of the generator. [`GeneratorConfig::paper`] is the
/// calibration used throughout the reproduction.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of users (GeoLife: 178).
    pub users: usize,
    /// Linear size factor: expected total traces =
    /// `scale × target_traces_full_scale`.
    pub scale: f64,
    /// Master seed; every derived stream is deterministic in it.
    pub seed: u64,
    /// Trace count the paper reports for the full dataset.
    pub target_traces_full_scale: usize,
    /// Fraction of logged time spent moving (calibrates Table IV's
    /// "filter moving traces" column; GeoLife is outdoor-trip heavy).
    pub moving_time_fraction: f64,
    /// GPS noise at dwell locations, meters (1 σ per axis).
    pub stationary_jitter_m: f64,
    /// GPS noise while moving, meters (1 σ per axis).
    pub travel_jitter_m: f64,
    /// City center all geography is anchored to.
    pub city_center: GeoPoint,
    /// Weights of logging periods 1..=5 seconds. GeoLife mixes 1 s and
    /// 5 s loggers; the mix fixes the Table I sampling ratios.
    pub period_weights: [f64; 5],
}

impl GeneratorConfig {
    /// The calibration targeting the paper's aggregates (DESIGN.md §5).
    pub fn paper() -> Self {
        Self {
            users: 178,
            scale: 1.0,
            seed: 20130520,
            target_traces_full_scale: 2_033_686,
            moving_time_fraction: 0.44,
            stationary_jitter_m: 2.5,
            travel_jitter_m: 4.0,
            city_center: GeoPoint::new(39.9042, 116.4074), // Beijing
            // mean 1/period ≈ 0.217 → one 60 s window holds ≈ 13 traces,
            // matching Table I's 2,033,686 → 155,260 reduction.
            period_weights: [0.01, 0.01, 0.02, 0.06, 0.90],
        }
    }

    /// The paper calibration at a reduced scale (for tests and laptops).
    pub fn paper_scaled(scale: f64) -> Self {
        Self {
            scale,
            ..Self::paper()
        }
    }
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// A user's personal geography.
struct UserGeography {
    home: GeoPoint,
    work: GeoPoint,
    leisure: Vec<GeoPoint>,
}

impl UserGeography {
    fn poi(&self, idx: usize) -> GeoPoint {
        match idx {
            0 => self.home,
            1 => self.work,
            i => self.leisure[(i - 2) % self.leisure.len()],
        }
    }

    fn num_pois(&self) -> usize {
        2 + self.leisure.len()
    }
}

/// The generator. Construct once, call [`SyntheticGeoLife::generate`].
#[derive(Debug, Clone)]
pub struct SyntheticGeoLife {
    config: GeneratorConfig,
}

impl SyntheticGeoLife {
    /// A generator with the given configuration.
    pub fn new(config: GeneratorConfig) -> Self {
        assert!(config.users > 0, "need at least one user");
        assert!(config.scale > 0.0, "scale must be positive");
        assert!(
            (0.05..=0.95).contains(&config.moving_time_fraction),
            "moving_time_fraction must be in (0.05, 0.95)"
        );
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Generates the whole dataset, one trail per user, in parallel.
    pub fn generate(&self) -> Dataset {
        let trails: Vec<Trail> = (0..self.config.users as UserId)
            .into_par_iter()
            .map(|u| self.generate_user(u))
            .collect();
        Dataset::from_trails(trails)
    }

    /// Generates one user's trail deterministically (independent of every
    /// other user).
    pub fn generate_user(&self, user: UserId) -> Trail {
        let mut rng = StdRng::seed_from_u64(
            self.config
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(u64::from(user) + 1),
        );
        let geo = self.user_geography(&mut rng);
        let budget = self.user_trace_budget(user, &mut rng);

        // Recording starts somewhere in the GeoLife span
        // (April 2007 – August 2012).
        let base = Timestamp::from_civil(2007, 4, 1, 0, 0, 0).unwrap();
        let mut clock = base.plus(rng.random_range(0..1_500) * 86_400 + 6 * 3_600);

        let mut traces = Vec::with_capacity(budget);
        let mut at_poi = 0usize; // start at home
        while traces.len() < budget {
            let next_poi = self.pick_destination(&mut rng, &geo, at_poi);
            let session_start = clock;
            self.emit_session(
                &mut rng,
                user,
                &geo,
                at_poi,
                next_poi,
                session_start,
                budget,
                &mut traces,
            );
            at_poi = next_poi;
            // Logger off between sessions: hours to a couple of days.
            let gap = log_normal(&mut rng, (8.0f64 * 3_600.0).ln(), 1.0) as i64;
            let session_span = traces
                .last()
                .map_or(0, |t: &MobilityTrace| t.timestamp.delta(session_start));
            clock = session_start.plus(session_span + gap.clamp(900, 5 * 86_400));
        }
        Trail::new(user, traces)
    }

    /// Per-user trace budget: log-normal share of the scaled total, so a
    /// few heavy loggers dominate like in real GeoLife.
    fn user_trace_budget(&self, _user: UserId, rng: &mut StdRng) -> usize {
        let mean_share = self.config.target_traces_full_scale as f64 * self.config.scale
            / self.config.users as f64;
        // lognormal(µ=-σ²/2, σ) has mean 1.
        let sigma = 0.75f64;
        let w = log_normal(rng, -sigma * sigma / 2.0, sigma);
        ((mean_share * w).round() as usize).max(50)
    }

    fn user_geography(&self, rng: &mut StdRng) -> UserGeography {
        let c = self.config.city_center;
        // Home: residential ring 3–12 km out.
        let home = offset_m(
            c,
            normal(rng, 0.0, 5_000.0).clamp(-12_000.0, 12_000.0),
            normal(rng, 0.0, 5_000.0).clamp(-12_000.0, 12_000.0),
        );
        // Work: central business district.
        let work = offset_m(c, normal(rng, 0.0, 2_500.0), normal(rng, 0.0, 2_500.0));
        // Leisure: scattered around home.
        let n_leisure = rng.random_range(3..=6);
        let leisure = (0..n_leisure)
            .map(|_| offset_m(home, normal(rng, 0.0, 1_800.0), normal(rng, 0.0, 1_800.0)))
            .collect();
        UserGeography {
            home,
            work,
            leisure,
        }
    }

    /// Habit model: strong pull towards home, then work, then leisure —
    /// what makes the POI-extraction attack land.
    fn pick_destination(&self, rng: &mut StdRng, geo: &UserGeography, from: usize) -> usize {
        let n = geo.num_pois();
        let mut weights = vec![0.0f64; n];
        for (i, w) in weights.iter_mut().enumerate() {
            *w = match i {
                0 => 0.40,                    // home
                1 => 0.30,                    // work
                _ => 0.30 / (n as f64 - 2.0), // leisure spread
            };
        }
        weights[from] = 0.0; // always actually travel somewhere
        weighted_index(rng, &weights)
    }

    /// Emits one dwell→trip→dwell session, stopping early once `out`
    /// reaches the user's absolute trace `budget`.
    #[allow(clippy::too_many_arguments)]
    fn emit_session(
        &self,
        rng: &mut StdRng,
        user: UserId,
        geo: &UserGeography,
        from: usize,
        to: usize,
        start: Timestamp,
        budget: usize,
        out: &mut Vec<MobilityTrace>,
    ) {
        let cfg = &self.config;
        let a = geo.poi(from);
        let b = geo.poi(to);
        let dist = gepeto_geo::haversine_m(a, b).max(150.0);
        let mode = TransportMode::for_distance_m(dist);
        let travel_secs = dist / mode.speed_mps();
        // Total dwell chosen so that moving/total = moving_time_fraction.
        let f = cfg.moving_time_fraction;
        let dwell_total = travel_secs * (1.0 - f) / f;
        // Uneven split: arrival dwells run longer (you stay where you go).
        let dwell_a = dwell_total * rng.random_range(0.25..0.45);
        let dwell_b = dwell_total - dwell_a;

        // Logging period for this session (GeoLife: per-device).
        let period = 1 + weighted_index(rng, &cfg.period_weights) as i64;

        // GPS noise is temporally correlated (receiver drift), not white:
        // an AR(1) walk keeps the absolute error at σ while consecutive
        // fixes move only σ·√(2(1-ρ)) ≈ 0.3 σ — otherwise stationary
        // dwells would register apparent speeds above the preprocessing
        // filter threshold.
        let rho = 0.95f64;
        let (mut drift_n, mut drift_e) = (0.0f64, 0.0f64);
        let step = |rng: &mut StdRng, d: f64, sigma: f64| {
            rho * d + normal(rng, 0.0, sigma * (1.0 - rho * rho).sqrt())
        };

        let total_secs = (dwell_a + travel_secs + dwell_b) as i64;
        let mut t = 0i64;
        while t <= total_secs && out.len() < budget {
            let ts = t as f64;
            let (pos, sigma) = if ts < dwell_a {
                (a, cfg.stationary_jitter_m)
            } else if ts < dwell_a + travel_secs {
                let frac = (ts - dwell_a) / travel_secs;
                (interpolate(a, b, frac), cfg.travel_jitter_m)
            } else {
                (b, cfg.stationary_jitter_m)
            };
            drift_n = step(rng, drift_n, sigma);
            drift_e = step(rng, drift_e, sigma);
            let noisy = offset_m(pos, drift_n, drift_e);
            let altitude = normal(rng, 55.0, 6.0) as f32;
            out.push(MobilityTrace::with_altitude(
                user,
                noisy,
                start.plus(t),
                altitude,
            ));
            t += period;
        }
    }
}

/// Shifts `p` by `(north_m, east_m)` meters.
fn offset_m(p: GeoPoint, north_m: f64, east_m: f64) -> GeoPoint {
    let lat = p.lat + north_m / M_PER_DEG;
    let lon = p.lon + east_m / (M_PER_DEG * p.lat.to_radians().cos());
    GeoPoint::new(lat, lon)
}

/// Linear interpolation between two nearby points.
fn interpolate(a: GeoPoint, b: GeoPoint, frac: f64) -> GeoPoint {
    GeoPoint::new(
        a.lat + (b.lat - a.lat) * frac,
        a.lon + (b.lon - a.lon) * frac,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        SyntheticGeoLife::new(GeneratorConfig {
            users: 10,
            scale: 0.01,
            ..GeneratorConfig::paper()
        })
        .generate()
    }

    #[test]
    fn generates_requested_users() {
        let ds = small();
        assert_eq!(ds.num_users(), 10);
        for trail in ds.trails() {
            assert!(trail.len() >= 50, "user {} too sparse", trail.user);
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = small();
        let b = small();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = small();
        let b = SyntheticGeoLife::new(GeneratorConfig {
            users: 10,
            scale: 0.01,
            seed: 42,
            ..GeneratorConfig::paper()
        })
        .generate();
        assert_ne!(a, b);
    }

    #[test]
    fn traces_are_time_ordered_with_dense_periods() {
        let ds = small();
        for trail in ds.trails() {
            let ts = trail.traces();
            for w in ts.windows(2) {
                assert!(w[0].timestamp <= w[1].timestamp);
            }
            // In-session gaps are 1..=5 s; most consecutive deltas must be
            // in that band.
            let small_gaps = ts
                .windows(2)
                .filter(|w| (1..=5).contains(&w[1].timestamp.delta(w[0].timestamp)))
                .count();
            assert!(
                small_gaps as f64 > ts.len() as f64 * 0.9,
                "user {}: {}/{} dense gaps",
                trail.user,
                small_gaps,
                ts.len()
            );
        }
    }

    #[test]
    fn coordinates_stay_in_the_city() {
        let ds = small();
        let c = GeneratorConfig::paper().city_center;
        for t in ds.iter_traces() {
            assert!(t.point.is_valid());
            assert!(
                gepeto_geo::haversine_m(c, t.point) < 60_000.0,
                "trace {} km from center",
                gepeto_geo::haversine_m(c, t.point) / 1000.0
            );
        }
    }

    #[test]
    fn total_trace_count_tracks_scale() {
        // Scale semantics: expected total = scale × target, independent of
        // the user count. 10 users × lognormal weights give a wide spread.
        let ds = small();
        let total = ds.num_traces() as f64;
        let expected = 2_033_686.0 * 0.01;
        assert!(
            total > expected * 0.35 && total < expected * 2.5,
            "total {total} vs expected {expected}"
        );
    }

    #[test]
    fn timestamps_inside_geolife_span() {
        let ds = small();
        let lo = Timestamp::from_civil(2007, 4, 1, 0, 0, 0).unwrap();
        let hi = Timestamp::from_civil(2013, 12, 31, 0, 0, 0).unwrap();
        for t in ds.iter_traces() {
            assert!(t.timestamp >= lo && t.timestamp <= hi);
        }
    }

    #[test]
    fn transport_mode_by_distance() {
        assert_eq!(TransportMode::for_distance_m(300.0), TransportMode::Walk);
        assert_eq!(TransportMode::for_distance_m(2_000.0), TransportMode::Bike);
        assert_eq!(TransportMode::for_distance_m(8_000.0), TransportMode::Car);
        assert!(TransportMode::Walk.speed_mps() < TransportMode::Bike.speed_mps());
        assert!(TransportMode::Bike.speed_mps() < TransportMode::Car.speed_mps());
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn zero_users_rejected() {
        let _ = SyntheticGeoLife::new(GeneratorConfig {
            users: 0,
            ..GeneratorConfig::paper()
        });
    }
}
