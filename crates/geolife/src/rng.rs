//! Small deterministic sampling helpers on top of `rand`.
//!
//! `rand_distr` is deliberately not a dependency (see DESIGN.md §7);
//! the two non-uniform distributions the generator needs — Gaussian and
//! log-normal — are implemented here via Box–Muller.

use rand::Rng;

/// A standard-normal sample (Box–Muller transform).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] to keep the logarithm finite.
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A `N(mean, sd²)` sample.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    mean + sd * standard_normal(rng)
}

/// A log-normal sample with the given parameters of the underlying
/// normal distribution.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Draws an index according to `weights` (need not be normalized).
///
/// # Panics
/// If `weights` is empty or sums to a non-positive value.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must sum to a positive value");
    let mut x = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "{mean}");
        assert!((var - 4.0).abs() < 0.25, "{var}");
    }

    #[test]
    fn log_normal_is_positive() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(log_normal(&mut rng, 0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..8000 {
            counts[weighted_index(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((2.5..3.5).contains(&ratio), "{counts:?}");
    }

    #[test]
    fn deterministic_under_same_seed() {
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..10).map(|_| standard_normal(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..10).map(|_| standard_normal(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn weighted_index_rejects_zero_weights() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = weighted_index(&mut rng, &[0.0, 0.0]);
    }
}
