//! Aggregate dataset statistics — the quantities the generator is
//! calibrated against (DESIGN.md §5) and the first thing `gepeto report`
//! prints for any dataset.

use gepeto_geo::haversine_m;
use gepeto_model::Dataset;

/// Summary statistics of a geolocated dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Number of users (trails).
    pub users: usize,
    /// Total number of mobility traces.
    pub traces: usize,
    /// Approximate PLT text size in bytes.
    pub plt_bytes: usize,
    /// Mean time between consecutive *in-session* traces (gap ≤ 30 s).
    pub mean_period_secs: f64,
    /// Fraction of in-session consecutive pairs moving faster than
    /// 1 m/s — an estimate of the moving-time share.
    pub moving_fraction: f64,
    /// Number of recording sessions (splits at gaps > 5 minutes),
    /// GeoLife's "trajectories".
    pub sessions: usize,
    /// Total recorded duration across sessions, hours.
    pub recorded_hours: f64,
}

impl DatasetStats {
    /// Computes the statistics in one pass over the dataset.
    pub fn compute(dataset: &Dataset) -> Self {
        let mut period_sum = 0.0f64;
        let mut period_n = 0usize;
        let mut moving = 0usize;
        let mut pairs = 0usize;
        let mut sessions = 0usize;
        let mut recorded_secs = 0.0f64;
        for trail in dataset.trails() {
            let ts = trail.traces();
            if !ts.is_empty() {
                sessions += 1; // first trace opens a session
            }
            for w in ts.windows(2) {
                let dt = w[1].timestamp.delta(w[0].timestamp);
                if dt > 300 {
                    sessions += 1;
                    continue;
                }
                recorded_secs += dt as f64;
                if dt <= 30 && dt > 0 {
                    period_sum += dt as f64;
                    period_n += 1;
                    pairs += 1;
                    let speed = haversine_m(w[0].point, w[1].point) / dt as f64;
                    if speed > 1.0 {
                        moving += 1;
                    }
                }
            }
        }
        Self {
            users: dataset.num_users(),
            traces: dataset.num_traces(),
            plt_bytes: dataset.approx_plt_bytes(),
            mean_period_secs: if period_n > 0 {
                period_sum / period_n as f64
            } else {
                0.0
            },
            moving_fraction: if pairs > 0 {
                moving as f64 / pairs as f64
            } else {
                0.0
            },
            sessions,
            recorded_hours: recorded_secs / 3_600.0,
        }
    }
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "users:            {}", self.users)?;
        writeln!(f, "traces:           {}", self.traces)?;
        writeln!(f, "plt size:         {:.1} MB", self.plt_bytes as f64 / 1e6)?;
        writeln!(f, "mean period:      {:.2} s", self.mean_period_secs)?;
        writeln!(f, "moving fraction:  {:.1} %", self.moving_fraction * 100.0)?;
        writeln!(f, "sessions:         {}", self.sessions)?;
        write!(f, "recorded:         {:.1} h", self.recorded_hours)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GeneratorConfig, SyntheticGeoLife};
    use gepeto_model::{GeoPoint, MobilityTrace, Timestamp};

    #[test]
    fn empty_dataset_stats() {
        let s = DatasetStats::compute(&Dataset::new());
        assert_eq!(s.users, 0);
        assert_eq!(s.traces, 0);
        assert_eq!(s.mean_period_secs, 0.0);
        assert_eq!(s.moving_fraction, 0.0);
        assert_eq!(s.sessions, 0);
    }

    #[test]
    fn sessions_split_at_long_gaps() {
        let mk = |secs: i64| MobilityTrace::new(1, GeoPoint::new(40.0, 116.0), Timestamp(secs));
        // Two sessions: 0..10s then a 1h gap then 3610..3620.
        let ds = Dataset::from_traces(vec![mk(0), mk(5), mk(10), mk(3_610), mk(3_620)]);
        let s = DatasetStats::compute(&ds);
        assert_eq!(s.sessions, 2);
        assert_eq!(s.traces, 5);
    }

    /// The generator calibration test: at a reduced scale the synthetic
    /// dataset must reproduce the aggregates the paper's results depend
    /// on (tolerances documented in DESIGN.md §5).
    #[test]
    fn generator_matches_paper_calibration() {
        let ds = SyntheticGeoLife::new(GeneratorConfig {
            users: 40,
            scale: 0.05,
            ..GeneratorConfig::paper()
        })
        .generate();
        let s = DatasetStats::compute(&ds);
        assert_eq!(s.users, 40);
        // Logging density: GeoLife logs every 1–5 s.
        assert!(
            (3.5..=5.0).contains(&s.mean_period_secs),
            "mean period {}",
            s.mean_period_secs
        );
        // Moving share calibrated to Table IV's filter ratio (44 %).
        assert!(
            (0.34..=0.54).contains(&s.moving_fraction),
            "moving fraction {}",
            s.moving_fraction
        );
        // PLT bytes per trace ≈ 64 (Figure 1 line shape).
        let bytes_per_trace = s.plt_bytes as f64 / s.traces as f64;
        assert!((55.0..=75.0).contains(&bytes_per_trace));
    }

    #[test]
    fn full_user_count_scales_trace_total() {
        // At scale 0.02 with all 178 users the total should be near
        // 0.02 × 2,033,686 ≈ 40.7k (lognormal user weights add spread).
        let ds = SyntheticGeoLife::new(GeneratorConfig::paper_scaled(0.02)).generate();
        let s = DatasetStats::compute(&ds);
        assert_eq!(s.users, 178);
        let expected = 2_033_686.0 * 0.02;
        assert!(
            (s.traces as f64) > expected * 0.7 && (s.traces as f64) < expected * 1.3,
            "traces {} vs expected {expected}",
            s.traces
        );
    }

    #[test]
    fn display_formats_all_fields() {
        let ds = SyntheticGeoLife::new(GeneratorConfig {
            users: 3,
            scale: 0.002,
            ..GeneratorConfig::paper()
        })
        .generate();
        let text = DatasetStats::compute(&ds).to_string();
        for needle in ["users:", "traces:", "plt size:", "moving fraction:"] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }
}
