//! Generator invariants under arbitrary configurations.

use gepeto_geolife::{DatasetStats, GeneratorConfig, SyntheticGeoLife};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn any_config_yields_wellformed_traces(
        users in 1usize..12,
        scale in 0.001f64..0.02,
        seed in any::<u64>(),
        moving in 0.2f64..0.7,
    ) {
        let ds = SyntheticGeoLife::new(GeneratorConfig {
            users,
            scale,
            seed,
            moving_time_fraction: moving,
            ..GeneratorConfig::paper()
        })
        .generate();
        prop_assert_eq!(ds.num_users(), users);
        for trail in ds.trails() {
            prop_assert!(trail.len() >= 50);
            let mut prev = None;
            for t in trail.traces() {
                prop_assert!(t.point.is_valid());
                prop_assert_eq!(t.user, trail.user);
                if let Some(p) = prev {
                    prop_assert!(t.timestamp >= p);
                }
                prev = Some(t.timestamp);
            }
        }
    }

    #[test]
    fn users_are_independent_streams(
        users in 2usize..8,
        seed in any::<u64>(),
    ) {
        // Generating user u alone equals user u inside the full dataset:
        // budgets and geography depend only on (seed, user).
        let cfg = GeneratorConfig {
            users,
            scale: 0.003,
            seed,
            ..GeneratorConfig::paper()
        };
        let gen = SyntheticGeoLife::new(cfg);
        let full = gen.generate();
        let pick = (seed % users as u64) as u32;
        let solo = gen.generate_user(pick);
        prop_assert_eq!(full.trail(pick).unwrap(), &solo);
    }

    #[test]
    fn moving_fraction_tracks_config(
        seed in any::<u64>(),
        moving in 0.25f64..0.65,
    ) {
        let ds = SyntheticGeoLife::new(GeneratorConfig {
            users: 15,
            scale: 0.01,
            seed,
            moving_time_fraction: moving,
            ..GeneratorConfig::paper()
        })
        .generate();
        let s = DatasetStats::compute(&ds);
        prop_assert!(
            (s.moving_fraction - moving).abs() < 0.12,
            "target {} measured {}",
            moving,
            s.moving_fraction
        );
    }
}
