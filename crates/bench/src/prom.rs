//! Schema validation for Prometheus text-exposition files.
//!
//! The `--prom-out` flag of the `gepeto` CLI writes a live metrics
//! snapshot in the Prometheus text format (version 0.0.4).  This module
//! checks such a file without depending on a real Prometheus server:
//! every sample must belong to a declared metric family (`# TYPE`), and
//! histogram families must expose internally consistent cumulative
//! buckets.  `gepeto-bench validate-prom` and `scripts/check.sh` use it
//! as a smoke gate so a malformed exposition fails CI instead of
//! silently confusing a scraper.

use std::collections::BTreeMap;

/// The declared kind of a metric family (`# TYPE name <kind>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FamilyKind {
    /// A monotonically increasing counter.
    Counter,
    /// A value that can go up and down.
    Gauge,
    /// A cumulative histogram with `_bucket`/`_sum`/`_count` series.
    Histogram,
}

impl FamilyKind {
    fn parse(s: &str) -> Option<Self> {
        match s {
            "counter" => Some(Self::Counter),
            "gauge" => Some(Self::Gauge),
            "histogram" => Some(Self::Histogram),
            _ => None,
        }
    }
}

/// One parsed sample line: `name{labels} value`.
#[derive(Debug, Clone)]
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
    line: usize,
}

/// Summary of a successfully validated exposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromReport {
    /// Declared metric families, in file order of first declaration.
    pub families: Vec<String>,
    /// Total number of sample lines.
    pub samples: usize,
}

/// Validates a Prometheus text exposition.
///
/// Returns a [`PromReport`] when the document is well-formed, or a
/// human-readable description of the first problem found.  The checks:
///
/// - every non-comment line parses as `name{labels} value`;
/// - metric names match `[a-zA-Z_:][a-zA-Z0-9_:]*` and label names
///   match `[a-zA-Z_][a-zA-Z0-9_]*`;
/// - every sample belongs to a `# TYPE`-declared family (histogram
///   samples may carry the `_bucket`/`_sum`/`_count` suffixes);
/// - each histogram family has at least one `le` bucket, cumulative
///   bucket counts that never decrease as `le` grows, an `+Inf` bucket,
///   and `_sum`/`_count` series with `_count` equal to the `+Inf`
///   bucket.
pub fn validate(text: &str) -> Result<PromReport, String> {
    let mut families: BTreeMap<String, FamilyKind> = BTreeMap::new();
    let mut family_order: Vec<String> = Vec::new();
    let mut samples: Vec<Sample> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let name = parts
                    .next()
                    .ok_or_else(|| format!("line {lineno}: # TYPE without a metric name"))?;
                let kind = parts
                    .next()
                    .ok_or_else(|| format!("line {lineno}: # TYPE {name} without a kind"))?;
                if !is_metric_name(name) {
                    return Err(format!("line {lineno}: bad metric name '{name}'"));
                }
                let kind = FamilyKind::parse(kind)
                    .ok_or_else(|| format!("line {lineno}: unknown family kind '{kind}'"))?;
                if families.insert(name.to_string(), kind).is_some() {
                    return Err(format!("line {lineno}: duplicate # TYPE for '{name}'"));
                }
                family_order.push(name.to_string());
            } else if let Some(decl) = rest.strip_prefix("HELP ") {
                let name = decl.split_whitespace().next().unwrap_or("");
                if !is_metric_name(name) {
                    return Err(format!(
                        "line {lineno}: # HELP with bad metric name '{name}'"
                    ));
                }
            }
            // Other comments are legal and ignored.
            continue;
        }
        samples.push(parse_sample(line, lineno)?);
    }

    // Every sample must belong to a declared family.
    for s in &samples {
        let family = family_of(&s.name, &families).ok_or_else(|| {
            format!(
                "line {}: sample '{}' has no matching # TYPE declaration",
                s.line, s.name
            )
        })?;
        let kind = families[&family];
        let suffixed = s.name != family;
        if suffixed && kind != FamilyKind::Histogram {
            return Err(format!(
                "line {}: suffixed sample '{}' on non-histogram family '{family}'",
                s.line, s.name
            ));
        }
    }

    // Histogram families must be internally consistent.
    for (name, kind) in &families {
        if *kind == FamilyKind::Histogram {
            check_histogram(name, &samples)?;
        }
    }

    Ok(PromReport {
        families: family_order,
        samples: samples.len(),
    })
}

/// Resolves a sample name to its declared family, stripping histogram
/// suffixes when the suffixed form is what's declared.
fn family_of(name: &str, families: &BTreeMap<String, FamilyKind>) -> Option<String> {
    if families.contains_key(name) {
        return Some(name.to_string());
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if families.get(base) == Some(&FamilyKind::Histogram) {
                return Some(base.to_string());
            }
        }
    }
    None
}

fn check_histogram(name: &str, samples: &[Sample]) -> Result<(), String> {
    let bucket_name = format!("{name}_bucket");
    let mut buckets: Vec<(f64, u64, usize)> = Vec::new();
    let mut count: Option<(f64, usize)> = None;
    let mut has_sum = false;
    for s in samples {
        if s.name == bucket_name {
            let le = s
                .labels
                .iter()
                .find(|(k, _)| k == "le")
                .map(|(_, v)| v.as_str())
                .ok_or_else(|| format!("line {}: histogram bucket without an le label", s.line))?;
            let bound = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse::<f64>()
                    .map_err(|_| format!("line {}: bad le bound '{le}'", s.line))?
            };
            buckets.push((bound, s.value as u64, s.line));
        } else if s.name == format!("{name}_count") {
            count = Some((s.value, s.line));
        } else if s.name == format!("{name}_sum") {
            has_sum = true;
        }
    }
    if buckets.is_empty() {
        return Err(format!("histogram '{name}' has no buckets"));
    }
    if !has_sum {
        return Err(format!("histogram '{name}' has no _sum series"));
    }
    let (count, _) = count.ok_or_else(|| format!("histogram '{name}' has no _count series"))?;
    buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut prev = 0u64;
    for (bound, cum, line) in &buckets {
        if *cum < prev {
            return Err(format!(
                "line {line}: histogram '{name}' bucket le={bound} decreases ({cum} < {prev})"
            ));
        }
        prev = *cum;
    }
    let (inf_bound, inf_cum, _) = buckets.last().unwrap();
    if !inf_bound.is_infinite() {
        return Err(format!("histogram '{name}' has no le=\"+Inf\" bucket"));
    }
    if *inf_cum as f64 != count {
        return Err(format!(
            "histogram '{name}': +Inf bucket {inf_cum} != _count {count}"
        ));
    }
    Ok(())
}

fn parse_sample(line: &str, lineno: usize) -> Result<Sample, String> {
    let bytes = line.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() && is_name_char(bytes[i] as char, i == 0) {
        i += 1;
    }
    if i == 0 {
        return Err(format!("line {lineno}: expected a metric name"));
    }
    let name = line[..i].to_string();
    let mut labels = Vec::new();
    let rest = &line[i..];
    let rest = if let Some(body) = rest.strip_prefix('{') {
        let close = body
            .find('}')
            .ok_or_else(|| format!("line {lineno}: unterminated label set"))?;
        labels = parse_labels(&body[..close], lineno)?;
        &body[close + 1..]
    } else {
        rest
    };
    let mut parts = rest.split_whitespace();
    let value = parts
        .next()
        .ok_or_else(|| format!("line {lineno}: sample '{name}' has no value"))?;
    let value: f64 = match value {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v
            .parse()
            .map_err(|_| format!("line {lineno}: bad sample value '{v}'"))?,
    };
    // An optional integer timestamp may follow; anything else is junk.
    if let Some(ts) = parts.next() {
        ts.parse::<i64>()
            .map_err(|_| format!("line {lineno}: trailing junk '{ts}'"))?;
    }
    if parts.next().is_some() {
        return Err(format!("line {lineno}: too many fields"));
    }
    Ok(Sample {
        name,
        labels,
        value,
        line: lineno,
    })
}

fn parse_labels(body: &str, lineno: usize) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("line {lineno}: label without '='"))?;
        let key = rest[..eq].trim();
        if !is_label_name(key) {
            return Err(format!("line {lineno}: bad label name '{key}'"));
        }
        let after = rest[eq + 1..].trim_start();
        let inner = after
            .strip_prefix('"')
            .ok_or_else(|| format!("line {lineno}: label '{key}' value is not quoted"))?;
        // Scan to the closing quote, honoring backslash escapes.
        let mut value = String::new();
        let mut chars = inner.char_indices();
        let mut end = None;
        while let Some((pos, c)) = chars.next() {
            match c {
                '"' => {
                    end = Some(pos);
                    break;
                }
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    other => {
                        return Err(format!(
                            "line {lineno}: bad escape '\\{}'",
                            other.map(|(_, c)| c).unwrap_or(' ')
                        ));
                    }
                },
                c if (c as u32) < 0x20 => {
                    return Err(format!(
                        "line {lineno}: label '{key}' value contains an unescaped control \
                         character (U+{:04X}) — exporters must escape with \\n or \\\\",
                        c as u32
                    ));
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| format!("line {lineno}: unterminated label value"))?;
        labels.push((key.to_string(), value));
        rest = inner[end + 1..].trim_start();
        if let Some(after_comma) = rest.strip_prefix(',') {
            rest = after_comma.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("line {lineno}: expected ',' between labels"));
        }
    }
    Ok(labels)
}

fn is_name_char(c: char, first: bool) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == ':' || (!first && c.is_ascii_digit())
}

fn is_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .enumerate()
            .all(|(i, c)| is_name_char(c, i == 0))
}

fn is_label_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .enumerate()
            .all(|(i, c)| c.is_ascii_alphabetic() || c == '_' || (i > 0 && c.is_ascii_digit()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# HELP gepeto_map_tasks_done Completed map tasks.
# TYPE gepeto_map_tasks_done counter
gepeto_map_tasks_done 12
# TYPE gepeto_node_busy_seconds gauge
gepeto_node_busy_seconds{node=\"0\"} 41.5
gepeto_node_busy_seconds{node=\"1\"} 39.25
# TYPE gepeto_task_map_us histogram
gepeto_task_map_us_bucket{le=\"1023\"} 3
gepeto_task_map_us_bucket{le=\"2047\"} 9
gepeto_task_map_us_bucket{le=\"+Inf\"} 12
gepeto_task_map_us_sum 19000
gepeto_task_map_us_count 12
";

    #[test]
    fn accepts_a_well_formed_exposition() {
        let report = validate(GOOD).unwrap();
        assert_eq!(
            report.families,
            vec![
                "gepeto_map_tasks_done",
                "gepeto_node_busy_seconds",
                "gepeto_task_map_us"
            ]
        );
        assert_eq!(report.samples, 8);
    }

    #[test]
    fn rejects_undeclared_and_misdeclared_samples() {
        let err = validate("gepeto_mystery 1\n").unwrap_err();
        assert!(err.contains("no matching # TYPE"), "{err}");
        let err = validate("# TYPE x counter\nx_bucket{le=\"1\"} 1\n").unwrap_err();
        assert!(err.contains("no matching # TYPE"), "{err}");
        let err = validate("# TYPE x gauge\n# TYPE x counter\n").unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
        let err = validate("# TYPE x widget\n").unwrap_err();
        assert!(err.contains("unknown family kind"), "{err}");
    }

    #[test]
    fn rejects_inconsistent_histograms() {
        let err = validate(
            "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n\
             h_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n",
        )
        .unwrap_err();
        assert!(err.contains("decreases"), "{err}");
        let err =
            validate("# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 9\nh_count 5\n").unwrap_err();
        assert!(err.contains("+Inf"), "{err}");
        let err = validate("# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 9\nh_count 5\n")
            .unwrap_err();
        assert!(err.contains("!= _count"), "{err}");
        let err = validate("# TYPE h histogram\nh_sum 9\nh_count 5\n").unwrap_err();
        assert!(err.contains("no buckets"), "{err}");
    }

    #[test]
    fn parses_label_escapes_and_rejects_malformed_lines() {
        let report = validate("# TYPE g gauge\ng{path=\"a\\\\b\\\"c\\nd\"} 1\n").unwrap();
        assert_eq!(report.samples, 1);
        let err = validate("# TYPE g gauge\ng{path=\"open} 1\n").unwrap_err();
        assert!(err.contains("unterminated"), "{err}");
        let err = validate("# TYPE g gauge\ng nope\n").unwrap_err();
        assert!(err.contains("bad sample value"), "{err}");
        let err = validate("# TYPE g gauge\n9metric 1\n").unwrap_err();
        assert!(err.contains("expected a metric name"), "{err}");
    }

    #[test]
    fn rejects_raw_control_characters_in_label_values() {
        let err = validate("# TYPE g gauge\ng{cmd=\"a\tb\"} 1\n").unwrap_err();
        assert!(err.contains("unescaped control character"), "{err}");
        // The escaped form of the same payload is fine.
        let ok = validate("# TYPE g gauge\ng{cmd=\"a\\nb\"} 1\n").unwrap();
        assert_eq!(ok.samples, 1);
    }

    #[test]
    fn validates_the_live_monitor_exposition() {
        // End-to-end: the telemetry monitor's own output must pass.
        let monitor = gepeto_telemetry::Monitor::new();
        monitor.job_started();
        monitor.add_map_tasks(4);
        monitor.map_task_done();
        monitor.node_busy(0, 12.5);
        monitor.observe("task.map.us", 1500);
        monitor.observe("task.map.us", 90);
        let text = monitor.snapshot().to_prometheus();
        let report = validate(&text).unwrap();
        assert!(report.families.iter().any(|f| f == "gepeto_task_map_us"));
        assert!(report.samples > 0);
    }
}
