#![warn(missing_docs)]

//! Shared workload setup for the benchmark harness: scaled synthetic
//! GeoLife datasets (cached per configuration so Criterion benches and
//! the `tables` binary don't regenerate them), cluster profiles, and
//! table formatting.
//!
//! Scale is controlled by `GEPETO_SCALE` (default 0.05): all datasets
//! *and* chunk sizes are multiplied by it, so chunk counts — and thus
//! map-task counts — match the paper's proportions at any scale.

pub mod prom;
pub mod report;
pub mod trace;
pub mod workloads;

/// The workspace-shared JSON toolkit (value type, parser, pretty
/// writer), re-exported from `gepeto-telemetry` so bench code and
/// downstream tools keep their `gepeto_bench::json` path.
pub use gepeto_telemetry::json;

use gepeto::prelude::*;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// The benchmark scale factor from `GEPETO_SCALE` (default 0.05; 1.0
/// reproduces the paper's full 2-M-trace dataset).
pub fn scale() -> f64 {
    static SCALE: OnceLock<f64> = OnceLock::new();
    *SCALE.get_or_init(|| {
        std::env::var("GEPETO_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&s| s > 0.0)
            .unwrap_or(0.05)
    })
}

/// A generated dataset, cached per `(users, scale)`.
pub fn dataset(users: usize, scale: f64) -> Arc<Dataset> {
    type Cache = Mutex<HashMap<(usize, u64), Arc<Dataset>>>;
    static CACHE: OnceLock<Cache> = OnceLock::new();
    let key = (users, (scale * 1e9) as u64);
    let cache = CACHE.get_or_init(Default::default);
    if let Some(ds) = cache.lock().get(&key) {
        return Arc::clone(ds);
    }
    let ds = Arc::new(
        SyntheticGeoLife::new(GeneratorConfig {
            users,
            scale,
            ..GeneratorConfig::paper()
        })
        .generate(),
    );
    cache.lock().insert(key, Arc::clone(&ds));
    ds
}

/// The full 178-user dataset at the bench scale — the paper's "128 MB"
/// dataset (scaled).
pub fn full_dataset() -> Arc<Dataset> {
    dataset(178, scale())
}

/// The paper's smaller evaluation cut: 90 users, "66 MB" (scaled).
/// 90/178 of the full trace budget keeps per-user density identical.
pub fn small_dataset() -> Arc<Dataset> {
    dataset(90, scale() * 90.0 / 178.0)
}

/// A chunk size in bytes equal to `mb` paper-megabytes times the bench
/// scale, so the chunk **count** matches the paper's setup.
pub fn scaled_chunk_bytes(mb: usize) -> usize {
    ((mb as f64 * 1e6 * scale()) as usize).max(4 * 1024)
}

/// The Parapluie cluster profile of the paper's testbed.
pub fn parapluie() -> Cluster {
    Cluster::parapluie()
}

/// Loads a dataset into a fresh DFS with the given chunk size.
pub fn dfs_for(cluster: &Cluster, ds: &Dataset, chunk_bytes: usize) -> Dfs<MobilityTrace> {
    let mut dfs = gepeto::dfs_io::trace_dfs(cluster, chunk_bytes);
    gepeto::dfs_io::put_dataset(&mut dfs, "input", ds).unwrap();
    dfs
}

/// The "0.5 (Mahout units)" convergence delta translated into each
/// metric's native unit at a 0.5-meter equivalent.
pub fn convergence_delta_for(metric: gepeto_geo::DistanceMetric) -> f64 {
    use gepeto_geo::DistanceMetric::*;
    const HALF_M_IN_DEG: f64 = 0.5 / 111_194.93;
    match metric {
        Haversine => 0.5,
        Euclidean | Manhattan => HALF_M_IN_DEG,
        SquaredEuclidean => HALF_M_IN_DEG * HALF_M_IN_DEG,
    }
}

/// Fixed-width table printer for the `tables` harness.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_cache_returns_same_arc() {
        let a = dataset(5, 0.002);
        let b = dataset(5, 0.002);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.num_users(), 5);
    }

    #[test]
    fn scaled_chunk_has_floor() {
        assert!(scaled_chunk_bytes(1) >= 4 * 1024);
    }

    #[test]
    fn convergence_deltas_are_half_meter_equivalents() {
        use gepeto_geo::DistanceMetric::*;
        assert_eq!(convergence_delta_for(Haversine), 0.5);
        let e = convergence_delta_for(Euclidean);
        assert!((e * 111_194.93 - 0.5).abs() < 1e-9);
        let se = convergence_delta_for(SquaredEuclidean);
        assert!((se - e * e).abs() < 1e-20);
    }
}
