//! Machine-readable bench reports (`BENCH_<workload>.json`) and the
//! regression comparison between two of them.
//!
//! The schema is versioned (`gepeto-bench/2`); [`BenchReport::from_json`]
//! doubles as the validator — a file that parses back is a valid bench
//! artifact, and `gepeto-bench validate` exposes exactly that check.

use crate::json::{Json, Writer};
use gepeto_mapred::JobStats;
use gepeto_telemetry::{MemDelta, Recorder};

/// Current schema identifier, bumped on breaking field changes.
/// Version 2 added the `mem` block (tracking-allocator peaks and the
/// engine's budget-vs-actual accounting) so memory regressions gate the
/// same way time regressions do.
pub const SCHEMA: &str = "gepeto-bench/2";

/// One phase of the virtual critical path (see
/// [`gepeto_telemetry::VirtualCriticalPath`]), flattened for JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseBreakdown {
    /// `"map"` or `"reduce"`.
    pub phase: String,
    /// Virtual wall time attributed to this phase, seconds.
    pub wall_s: f64,
    /// Fraction of the dominant job's makespan (0..=1).
    pub share: f64,
    /// Task index finishing the phase (the critical task).
    pub critical_task: u64,
    /// Node that ran the critical task.
    pub critical_node: u64,
    /// The critical task's virtual duration, seconds.
    pub critical_dur_s: f64,
    /// Critical-task duration over the phase median (straggler factor).
    pub median_ratio: f64,
}

/// Duration quantiles for one task kind, from the telemetry summary.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskQuantiles {
    /// Task kind (`map`, `reduce`, ...).
    pub kind: String,
    /// Number of task spans.
    pub count: u64,
    /// Median host-side wall time, µs.
    pub p50_us: u64,
    /// 95th percentile host-side wall time, µs.
    pub p95_us: u64,
    /// Slowest task, µs.
    pub max_us: u64,
}

/// Memory footprint of one workload run: what the tracking allocator
/// observed over the whole workload, plus the engine's own
/// budget-vs-actual shuffle accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemBlock {
    /// Tracking-allocator peak live bytes over the workload window.
    pub peak_bytes: u64,
    /// Total heap bytes allocated over the window (turnover, not live).
    pub allocated_bytes: u64,
    /// Heap allocation calls over the window.
    pub allocs: u64,
    /// Highest buffered intermediate size the engine's accounting saw
    /// (max across jobs — the value compared against the spill budget).
    pub accounted_peak: u64,
    /// Configured per-task memory budget (0 = unbudgeted workload).
    pub budget_bytes: u64,
    /// How far the accounted peak overshot the budget (0 when inside).
    pub peak_over_budget_bytes: u64,
}

/// Host-parallelism telemetry for one workload run: what the
/// `gepeto-pool` work-stealing pool did while the workload executed.
/// Written by every report this build produces; parsed leniently (a
/// file without the block reads back as all-zero) so pre-pool bench
/// artifacts stay valid under the same schema.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HostBlock {
    /// Pool executors (workers + the submitting thread); 0 when the
    /// workload never touched the pool.
    pub threads: u64,
    /// Pool tasks executed during the workload window.
    pub tasks: u64,
    /// Steal-half operations during the window.
    pub steals: u64,
    /// Wall seconds executors spent running pool tasks (summed across
    /// executors — can exceed the workload wall time).
    pub busy_s: f64,
    /// Executor-seconds spent NOT running pool tasks:
    /// `threads x wall - busy`, floored at zero. Large values against a
    /// similar baseline mean the run got slower because workers idled.
    pub idle_s: f64,
}

/// Everything `gepeto-bench run` measures for one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Always [`SCHEMA`] on files this build writes.
    pub schema: String,
    /// `"sampling"`, `"kmeans"` or `"djcluster"`.
    pub workload: String,
    /// `GEPETO_SCALE` the run used.
    pub scale: f64,
    /// Users in the synthetic dataset.
    pub users: u64,
    /// Real host wall-clock of the whole workload, milliseconds.
    pub wall_ms: u64,
    /// Summed virtual makespan across the workload's jobs, seconds.
    pub makespan_s: f64,
    /// Summed virtual map-phase time, seconds.
    pub map_phase_s: f64,
    /// Summed virtual shuffle+reduce time, seconds.
    pub reduce_phase_s: f64,
    /// MapReduce jobs the workload submitted.
    pub jobs: u64,
    /// Total map tasks across jobs.
    pub map_tasks: u64,
    /// Total reduce tasks across jobs.
    pub reduce_tasks: u64,
    /// Total bytes shuffled.
    pub shuffle_bytes: u64,
    /// Failure-injected task retries (0 on a clean bench run).
    pub retries: u64,
    /// Map tasks re-executed after output loss.
    pub reexecuted_maps: u64,
    /// Memory footprint: allocator peaks plus budget-vs-actual shuffle
    /// accounting.
    pub mem: MemBlock,
    /// Work-stealing pool activity over the workload window.
    pub host: HostBlock,
    /// Per-phase critical path of the dominant job, when telemetry
    /// captured scheduler points.
    pub critical_path: Vec<PhaseBreakdown>,
    /// Host-side task-duration quantiles per kind.
    pub tasks: Vec<TaskQuantiles>,
    /// Every telemetry counter, sorted by name.
    pub counters: Vec<(String, u64)>,
}

impl BenchReport {
    /// Folds job statistics, the run's telemetry and the workload-wide
    /// ledger window (`mem`) into a report.
    #[allow(clippy::too_many_arguments)]
    pub fn from_run(
        workload: &str,
        scale: f64,
        users: usize,
        wall_ms: u64,
        jobs: &[&JobStats],
        telemetry: &Recorder,
        mem: MemDelta,
        host: HostBlock,
    ) -> Self {
        let summary = telemetry.summary();
        let counter = |name: &str| {
            summary
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        let mem = MemBlock {
            peak_bytes: mem.peak_bytes,
            allocated_bytes: mem.allocated,
            allocs: mem.allocs,
            accounted_peak: counter(gepeto_telemetry::MEM_ACCOUNTED_PEAK_COUNTER),
            budget_bytes: counter(gepeto_telemetry::MEM_BUDGET_BYTES_COUNTER),
            peak_over_budget_bytes: counter(gepeto_telemetry::MEM_PEAK_OVER_BUDGET_COUNTER),
        };
        let critical_path = telemetry
            .virtual_critical_path()
            .map(|vcp| {
                vcp.phases
                    .iter()
                    .map(|p| PhaseBreakdown {
                        phase: p.phase.to_string(),
                        wall_s: p.wall_s,
                        share: p.share,
                        critical_task: p.critical.task as u64,
                        critical_node: p.critical.node as u64,
                        critical_dur_s: p.critical.dur_s,
                        median_ratio: p.median_ratio,
                    })
                    .collect()
            })
            .unwrap_or_default();
        Self {
            schema: SCHEMA.to_string(),
            workload: workload.to_string(),
            scale,
            users: users as u64,
            wall_ms,
            makespan_s: jobs.iter().map(|s| s.sim.makespan_s).sum(),
            map_phase_s: jobs.iter().map(|s| s.sim.map_phase_s).sum(),
            reduce_phase_s: jobs.iter().map(|s| s.sim.reduce_phase_s).sum(),
            jobs: jobs.len() as u64,
            map_tasks: jobs.iter().map(|s| s.map_tasks as u64).sum(),
            reduce_tasks: jobs.iter().map(|s| s.reduce_tasks as u64).sum(),
            shuffle_bytes: jobs.iter().map(|s| s.sim.shuffle_bytes).sum(),
            retries: jobs.iter().map(|s| s.retries).sum(),
            reexecuted_maps: jobs.iter().map(|s| s.reexecuted_maps).sum(),
            mem,
            host,
            critical_path,
            tasks: summary
                .tasks
                .iter()
                .map(|t| TaskQuantiles {
                    kind: t.kind.clone(),
                    count: t.count,
                    p50_us: t.p50_us,
                    p95_us: t.p95_us,
                    max_us: t.max_us,
                })
                .collect(),
            counters: summary.counters.clone(),
        }
    }

    /// Serialises to pretty JSON (ends with a newline).
    pub fn to_json(&self) -> String {
        let mut w = Writer::new();
        w.open_obj();
        w.str_field("schema", &self.schema);
        w.str_field("workload", &self.workload);
        w.f64_field("scale", self.scale);
        w.u64_field("users", self.users);
        w.u64_field("wall_ms", self.wall_ms);
        w.f64_field("makespan_s", self.makespan_s);
        w.f64_field("map_phase_s", self.map_phase_s);
        w.f64_field("reduce_phase_s", self.reduce_phase_s);
        w.u64_field("jobs", self.jobs);
        w.u64_field("map_tasks", self.map_tasks);
        w.u64_field("reduce_tasks", self.reduce_tasks);
        w.u64_field("shuffle_bytes", self.shuffle_bytes);
        w.u64_field("retries", self.retries);
        w.u64_field("reexecuted_maps", self.reexecuted_maps);
        w.open_obj_field("mem");
        w.u64_field("peak_bytes", self.mem.peak_bytes);
        w.u64_field("allocated_bytes", self.mem.allocated_bytes);
        w.u64_field("allocs", self.mem.allocs);
        w.u64_field("accounted_peak", self.mem.accounted_peak);
        w.u64_field("budget_bytes", self.mem.budget_bytes);
        w.u64_field("peak_over_budget_bytes", self.mem.peak_over_budget_bytes);
        w.close_obj();
        w.open_obj_field("host");
        w.u64_field("threads", self.host.threads);
        w.u64_field("tasks", self.host.tasks);
        w.u64_field("steals", self.host.steals);
        w.f64_field("busy_s", self.host.busy_s);
        w.f64_field("idle_s", self.host.idle_s);
        w.close_obj();
        w.open_arr_field("critical_path");
        for p in &self.critical_path {
            w.open_obj();
            w.str_field("phase", &p.phase);
            w.f64_field("wall_s", p.wall_s);
            w.f64_field("share", p.share);
            w.u64_field("critical_task", p.critical_task);
            w.u64_field("critical_node", p.critical_node);
            w.f64_field("critical_dur_s", p.critical_dur_s);
            w.f64_field("median_ratio", p.median_ratio);
            w.close_obj();
        }
        w.close_arr();
        w.open_arr_field("tasks");
        for t in &self.tasks {
            w.open_obj();
            w.str_field("kind", &t.kind);
            w.u64_field("count", t.count);
            w.u64_field("p50_us", t.p50_us);
            w.u64_field("p95_us", t.p95_us);
            w.u64_field("max_us", t.max_us);
            w.close_obj();
        }
        w.close_arr();
        w.open_obj_field("counters");
        for (name, value) in &self.counters {
            w.u64_field(name, *value);
        }
        w.close_obj();
        w.close_obj();
        w.finish()
    }

    /// Flattens this report into the diff engine's [`RunProfile`] so
    /// `gepeto-bench diff` (and the compare gate's failure diagnosis)
    /// can attribute deltas between two bench artifacts.
    pub fn profile(&self, label: &str) -> gepeto_telemetry::RunProfile {
        // Host-pool activity rides along as synthetic counters so the
        // diff engine can attribute a slowdown to idling executors
        // (`host.idle_ms` is special-cased there as a timed cause).
        let mut counters = self.counters.clone();
        if self.host.threads > 0 {
            counters.push(("host.busy_ms".to_string(), (self.host.busy_s * 1e3) as u64));
            counters.push(("host.idle_ms".to_string(), (self.host.idle_s * 1e3) as u64));
            counters.push(("host.steals".to_string(), self.host.steals));
            counters.push(("host.threads".to_string(), self.host.threads));
        }
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        gepeto_telemetry::RunProfile {
            label: label.to_string(),
            wall_ms: self.wall_ms,
            makespan_s: self.makespan_s,
            phases: vec![
                ("map".to_string(), self.map_phase_s),
                ("reduce".to_string(), self.reduce_phase_s),
            ],
            counters,
            tasks: self
                .tasks
                .iter()
                .map(|t| gepeto_telemetry::TaskCohort {
                    kind: t.kind.clone(),
                    count: t.count,
                    p50_us: t.p50_us,
                    p95_us: t.p95_us,
                    max_us: t.max_us,
                })
                .collect(),
        }
    }

    /// Parses and validates a bench file; errors name the missing or
    /// ill-typed field.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = Json::parse(text).map_err(|e| format!("malformed JSON: {e}"))?;
        let str_of = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing or non-string field '{key}'"))
        };
        let u64_of = |obj: &Json, key: &str| -> Result<u64, String> {
            obj.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing or non-integer field '{key}'"))
        };
        let f64_of = |obj: &Json, key: &str| -> Result<f64, String> {
            obj.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing or non-numeric field '{key}'"))
        };
        let schema = str_of("schema")?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema '{schema}' (want '{SCHEMA}')"));
        }
        let critical_path = v
            .get("critical_path")
            .and_then(Json::as_arr)
            .ok_or("missing array field 'critical_path'")?
            .iter()
            .map(|p| {
                Ok(PhaseBreakdown {
                    phase: p
                        .get("phase")
                        .and_then(Json::as_str)
                        .ok_or("critical_path entry without 'phase'")?
                        .to_string(),
                    wall_s: f64_of(p, "wall_s")?,
                    share: f64_of(p, "share")?,
                    critical_task: u64_of(p, "critical_task")?,
                    critical_node: u64_of(p, "critical_node")?,
                    critical_dur_s: f64_of(p, "critical_dur_s")?,
                    median_ratio: f64_of(p, "median_ratio")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let tasks = v
            .get("tasks")
            .and_then(Json::as_arr)
            .ok_or("missing array field 'tasks'")?
            .iter()
            .map(|t| {
                Ok(TaskQuantiles {
                    kind: t
                        .get("kind")
                        .and_then(Json::as_str)
                        .ok_or("tasks entry without 'kind'")?
                        .to_string(),
                    count: u64_of(t, "count")?,
                    p50_us: u64_of(t, "p50_us")?,
                    p95_us: u64_of(t, "p95_us")?,
                    max_us: u64_of(t, "max_us")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let mem_obj = v.get("mem").ok_or("missing object field 'mem'")?;
        let mem = MemBlock {
            peak_bytes: u64_of(mem_obj, "peak_bytes")?,
            allocated_bytes: u64_of(mem_obj, "allocated_bytes")?,
            allocs: u64_of(mem_obj, "allocs")?,
            accounted_peak: u64_of(mem_obj, "accounted_peak")?,
            budget_bytes: u64_of(mem_obj, "budget_bytes")?,
            peak_over_budget_bytes: u64_of(mem_obj, "peak_over_budget_bytes")?,
        };
        // Lenient by design: reports written before the pool existed
        // have no host block and read back as all-zero.
        let host = match v.get("host") {
            None => HostBlock::default(),
            Some(h) => HostBlock {
                threads: u64_of(h, "threads")?,
                tasks: u64_of(h, "tasks")?,
                steals: u64_of(h, "steals")?,
                busy_s: f64_of(h, "busy_s")?,
                idle_s: f64_of(h, "idle_s")?,
            },
        };
        let counters = v
            .get("counters")
            .and_then(Json::as_obj)
            .ok_or("missing object field 'counters'")?
            .iter()
            .map(|(name, value)| {
                value
                    .as_u64()
                    .map(|n| (name.clone(), n))
                    .ok_or_else(|| format!("counter '{name}' is not an integer"))
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Self {
            schema,
            workload: str_of("workload")?,
            scale: f64_of(&v, "scale")?,
            users: u64_of(&v, "users")?,
            wall_ms: u64_of(&v, "wall_ms")?,
            makespan_s: f64_of(&v, "makespan_s")?,
            map_phase_s: f64_of(&v, "map_phase_s")?,
            reduce_phase_s: f64_of(&v, "reduce_phase_s")?,
            jobs: u64_of(&v, "jobs")?,
            map_tasks: u64_of(&v, "map_tasks")?,
            reduce_tasks: u64_of(&v, "reduce_tasks")?,
            shuffle_bytes: u64_of(&v, "shuffle_bytes")?,
            retries: u64_of(&v, "retries")?,
            reexecuted_maps: u64_of(&v, "reexecuted_maps")?,
            mem,
            host,
            critical_path,
            tasks,
            counters,
        })
    }
}

/// One metric that moved between baseline and candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Metric name (`makespan_s`, `task.map.p95_us`, ...).
    pub metric: String,
    /// Baseline value.
    pub old: f64,
    /// Candidate value.
    pub new: f64,
    /// Relative change in percent (positive = candidate is larger).
    pub delta_pct: f64,
}

/// The outcome of `gepeto-bench compare`.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    /// Cost metrics that grew past the threshold.
    pub regressions: Vec<MetricDelta>,
    /// Cost metrics that shrank past the threshold.
    pub improvements: Vec<MetricDelta>,
    /// Informational drift (counters, task counts) — never fails a run.
    pub notes: Vec<String>,
}

impl Comparison {
    /// Human-readable diff, one line per moved metric.
    pub fn render(&self, threshold_pct: f64) -> String {
        let mut out = String::new();
        let line = |out: &mut String, d: &MetricDelta, tag: &str| {
            out.push_str(&format!(
                "  {tag} {:<24} {:>14.3} -> {:>14.3}  ({:+.1}%)\n",
                d.metric, d.old, d.new, d.delta_pct
            ));
        };
        if self.regressions.is_empty() && self.improvements.is_empty() {
            out.push_str(&format!(
                "no cost metric moved more than {threshold_pct:.1}%\n"
            ));
        }
        for d in &self.regressions {
            line(&mut out, d, "REGRESSION");
        }
        for d in &self.improvements {
            line(&mut out, d, "improved  ");
        }
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        out
    }
}

fn delta_pct(old: f64, new: f64) -> f64 {
    if old == 0.0 {
        if new == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (new - old) / old * 100.0
    }
}

/// Diffs two bench reports. Cost metrics (times, shuffled bytes, task
/// p95s) whose relative growth exceeds `threshold_pct` become
/// regressions; shrinkage past the same threshold is reported as an
/// improvement. Structural drift (task counts, counters, recovery
/// activity) lands in `notes`.
pub fn compare(old: &BenchReport, new: &BenchReport, threshold_pct: f64) -> Comparison {
    compare_ignoring(old, new, threshold_pct, &[])
}

/// Like [`compare`], but skips cost metrics matching an `ignore` entry:
/// a metric is skipped when its name equals the entry or starts with
/// `entry + "."` (so `task` covers every `task.<kind>.p95_us`). Used
/// when diffing against committed baselines, where host-dependent
/// metrics (`wall_ms`, task p95s) would flag machine speed, not code.
pub fn compare_ignoring(
    old: &BenchReport,
    new: &BenchReport,
    threshold_pct: f64,
    ignore: &[&str],
) -> Comparison {
    let mut cmp = Comparison::default();
    if old.workload != new.workload {
        cmp.notes.push(format!(
            "comparing different workloads: '{}' vs '{}'",
            old.workload, new.workload
        ));
    }
    if old.scale != new.scale || old.users != new.users {
        cmp.notes.push(format!(
            "shape mismatch: scale {} users {} vs scale {} users {}",
            old.scale, old.users, new.scale, new.users
        ));
    }
    let mut cost = |metric: &str, old_v: f64, new_v: f64| {
        let skipped = ignore
            .iter()
            .any(|e| metric == *e || metric.starts_with(&format!("{e}.")));
        if skipped {
            return;
        }
        let pct = delta_pct(old_v, new_v);
        let moved = MetricDelta {
            metric: metric.to_string(),
            old: old_v,
            new: new_v,
            delta_pct: pct,
        };
        if pct > threshold_pct {
            cmp.regressions.push(moved);
        } else if pct < -threshold_pct {
            cmp.improvements.push(moved);
        }
    };
    cost("wall_ms", old.wall_ms as f64, new.wall_ms as f64);
    cost("makespan_s", old.makespan_s, new.makespan_s);
    cost("map_phase_s", old.map_phase_s, new.map_phase_s);
    cost("reduce_phase_s", old.reduce_phase_s, new.reduce_phase_s);
    cost(
        "shuffle_bytes",
        old.shuffle_bytes as f64,
        new.shuffle_bytes as f64,
    );
    // Memory is a cost metric like time: a candidate whose heap peak or
    // accounted shuffle peak grew past the threshold fails the gate. An
    // overshoot appearing where the baseline had none is an infinite
    // regression — the run started spilling.
    cost(
        "mem.peak_bytes",
        old.mem.peak_bytes as f64,
        new.mem.peak_bytes as f64,
    );
    cost(
        "mem.allocated_bytes",
        old.mem.allocated_bytes as f64,
        new.mem.allocated_bytes as f64,
    );
    cost(
        "mem.accounted_peak",
        old.mem.accounted_peak as f64,
        new.mem.accounted_peak as f64,
    );
    cost(
        "mem.peak_over_budget_bytes",
        old.mem.peak_over_budget_bytes as f64,
        new.mem.peak_over_budget_bytes as f64,
    );
    if old.mem.budget_bytes != new.mem.budget_bytes {
        cmp.notes.push(format!(
            "mem budget: {} -> {}",
            old.mem.budget_bytes, new.mem.budget_bytes
        ));
    }
    // Host parallelism is a run configuration, not a cost: a different
    // thread count explains wall-time movement rather than gating it.
    if old.host.threads != new.host.threads {
        cmp.notes.push(format!(
            "host threads: {} -> {}",
            old.host.threads, new.host.threads
        ));
    }
    for t_new in &new.tasks {
        if let Some(t_old) = old.tasks.iter().find(|t| t.kind == t_new.kind) {
            cost(
                &format!("task.{}.p95_us", t_new.kind),
                t_old.p95_us as f64,
                t_new.p95_us as f64,
            );
        }
    }
    for (name, old_v, new_v) in [
        ("jobs", old.jobs, new.jobs),
        ("map_tasks", old.map_tasks, new.map_tasks),
        ("reduce_tasks", old.reduce_tasks, new.reduce_tasks),
        ("retries", old.retries, new.retries),
        ("reexecuted_maps", old.reexecuted_maps, new.reexecuted_maps),
    ] {
        if old_v != new_v {
            cmp.notes.push(format!("{name}: {old_v} -> {new_v}"));
        }
    }
    for (name, new_v) in &new.counters {
        // Durability bookkeeping (retry/repair/replay tallies) tracks
        // fault-injection luck and resume history, not workload cost —
        // drift there is expected and must not spam baseline diffs.
        if DURABILITY_COUNTER_PREFIXES
            .iter()
            .any(|p| name.starts_with(p))
        {
            continue;
        }
        let old_v = old
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v);
        if old_v != Some(*new_v) {
            cmp.notes.push(format!(
                "counter {name}: {} -> {new_v}",
                old_v.map_or("absent".to_string(), |v| v.to_string())
            ));
        }
    }
    cmp
}

/// Counter families exempt from baseline-drift notes: storage-fault
/// repairs and journal replays vary run to run by design, and the
/// memory counters already gate through the dedicated `mem` block (a
/// second note per moved byte would just be noise).
const DURABILITY_COUNTER_PREFIXES: &[&str] = &[
    "io.",
    "journal.",
    "spill.runs_quarantined",
    "mem.",
    "spill.estimate_error_bytes",
];

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        BenchReport {
            schema: SCHEMA.to_string(),
            workload: "sampling".to_string(),
            scale: 0.05,
            users: 178,
            wall_ms: 1234,
            makespan_s: 87.5,
            map_phase_s: 60.0,
            reduce_phase_s: 27.5,
            jobs: 1,
            map_tasks: 9,
            reduce_tasks: 7,
            shuffle_bytes: 1_000_000,
            retries: 0,
            reexecuted_maps: 0,
            mem: MemBlock {
                peak_bytes: 40_000_000,
                allocated_bytes: 250_000_000,
                allocs: 1_200_000,
                accounted_peak: 30_000_000,
                budget_bytes: 64_000_000,
                peak_over_budget_bytes: 0,
            },
            host: HostBlock {
                threads: 4,
                tasks: 640,
                steals: 12,
                busy_s: 3.5,
                idle_s: 1.5,
            },
            critical_path: vec![PhaseBreakdown {
                phase: "map".to_string(),
                wall_s: 60.0,
                share: 0.685,
                critical_task: 3,
                critical_node: 2,
                critical_dur_s: 14.0,
                median_ratio: 2.8,
            }],
            tasks: vec![TaskQuantiles {
                kind: "map".to_string(),
                count: 9,
                p50_us: 1500,
                p95_us: 4000,
                max_us: 4100,
            }],
            counters: vec![("mapred.shuffle.bytes".to_string(), 1_000_000)],
        }
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let report = sample_report();
        let text = report.to_json();
        let back = BenchReport::from_json(&text).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn reports_without_a_host_block_parse_as_all_zero() {
        // Pre-pool artifacts have no "host" object; they stay valid
        // under the same schema and read back with a zeroed block.
        let report = sample_report();
        let text = report.to_json();
        let start = text.find("\"host\": {").unwrap();
        let end = start + text[start..].find('}').unwrap() + 2; // "},"
        let stripped = format!("{}{}", &text[..start], &text[end..]);
        let back = BenchReport::from_json(&stripped).unwrap();
        assert_eq!(back.host, HostBlock::default());
        assert_eq!(back.wall_ms, report.wall_ms);
        // And a thread-count change is a note, never a regression.
        let cmp = compare(&back, &report, 5.0);
        assert!(cmp.regressions.is_empty(), "{:?}", cmp.regressions);
        assert!(
            cmp.notes.iter().any(|n| n.contains("host threads: 0 -> 4")),
            "{:?}",
            cmp.notes
        );
    }

    #[test]
    fn from_json_rejects_missing_fields_and_wrong_schema() {
        let mut report = sample_report();
        report.schema = "gepeto-bench/999".to_string();
        let err = BenchReport::from_json(&report.to_json()).unwrap_err();
        assert!(err.contains("unsupported schema"), "{err}");

        let text = sample_report().to_json().replace("\"makespan_s\"", "\"x\"");
        let err = BenchReport::from_json(&text).unwrap_err();
        assert!(err.contains("makespan_s"), "{err}");
    }

    #[test]
    fn identical_reports_have_no_regressions() {
        let a = sample_report();
        let cmp = compare(&a, &a.clone(), 5.0);
        assert!(cmp.regressions.is_empty());
        assert!(cmp.improvements.is_empty());
        assert!(cmp.notes.is_empty());
    }

    #[test]
    fn injected_slowdown_is_flagged_and_speedup_is_credited() {
        let a = sample_report();
        let mut b = a.clone();
        b.makespan_s *= 1.20; // +20% past a 5% threshold
        b.tasks[0].p95_us = 2000; // -50%: an improvement
        let cmp = compare(&a, &b, 5.0);
        assert_eq!(cmp.regressions.len(), 1);
        assert_eq!(cmp.regressions[0].metric, "makespan_s");
        assert!((cmp.regressions[0].delta_pct - 20.0).abs() < 1e-9);
        assert_eq!(cmp.improvements.len(), 1);
        assert_eq!(cmp.improvements[0].metric, "task.map.p95_us");
    }

    #[test]
    fn structural_drift_lands_in_notes_not_regressions() {
        let a = sample_report();
        let mut b = a.clone();
        b.map_tasks = 12;
        b.counters[0].1 = 999;
        b.counters.push(("mapred.task.retries".to_string(), 2));
        let cmp = compare(&a, &b, 5.0);
        assert!(cmp.regressions.is_empty());
        assert_eq!(cmp.notes.len(), 3);
        assert!(cmp.notes.iter().any(|n| n.contains("map_tasks")));
        assert!(cmp.notes.iter().any(|n| n.contains("absent")));
    }

    #[test]
    fn memory_regressions_trip_the_gate() {
        let a = sample_report();
        let mut b = a.clone();
        b.mem.peak_bytes = (a.mem.peak_bytes as f64 * 1.30) as u64; // +30%
        let cmp = compare(&a, &b, 5.0);
        assert_eq!(cmp.regressions.len(), 1);
        assert_eq!(cmp.regressions[0].metric, "mem.peak_bytes");

        // An overshoot appearing from a zero baseline is infinite: the
        // candidate started spilling.
        let mut c = a.clone();
        c.mem.peak_over_budget_bytes = 27_000_000;
        let cmp = compare(&a, &c, 5.0);
        assert!(cmp
            .regressions
            .iter()
            .any(|d| d.metric == "mem.peak_over_budget_bytes" && d.delta_pct.is_infinite()));

        // A shrinking heap is credited, and a budget change is a note,
        // not a regression.
        let mut d = a.clone();
        d.mem.allocated_bytes /= 2;
        d.mem.budget_bytes = 128_000_000;
        let cmp = compare(&a, &d, 5.0);
        assert!(cmp.regressions.is_empty());
        assert!(cmp
            .improvements
            .iter()
            .any(|m| m.metric == "mem.allocated_bytes"));
        assert!(cmp.notes.iter().any(|n| n.contains("mem budget")));
    }

    #[test]
    fn memory_counters_are_exempt_from_notes_like_durability() {
        let a = sample_report();
        let mut b = a.clone();
        b.counters.push(("mem.accounted_peak".to_string(), 123));
        b.counters.push(("mem.peak_bytes".to_string(), 456));
        b.counters
            .push(("spill.estimate_error_bytes".to_string(), 789));
        let cmp = compare(&a, &b, 5.0);
        assert!(cmp.notes.is_empty(), "{:?}", cmp.notes);
        // Other spill counters still note drift.
        b.counters.push(("spill.files".to_string(), 3));
        assert_eq!(compare(&a, &b, 5.0).notes.len(), 1);
    }

    #[test]
    fn durability_counter_drift_is_exempt_from_notes() {
        let a = sample_report();
        let mut b = a.clone();
        b.counters.push(("io.retries".to_string(), 14));
        b.counters.push(("io.torn_writes_detected".to_string(), 3));
        b.counters.push(("journal.replayed_tasks".to_string(), 7));
        b.counters.push(("spill.runs_quarantined".to_string(), 2));
        let cmp = compare(&a, &b, 5.0);
        assert!(cmp.notes.is_empty(), "{:?}", cmp.notes);
        // A non-durability counter appearing still makes a note.
        b.counters.push(("mapred.task.retries".to_string(), 1));
        assert_eq!(compare(&a, &b, 5.0).notes.len(), 1);
    }

    #[test]
    fn ignore_list_skips_exact_and_prefixed_cost_metrics() {
        let a = sample_report();
        let mut b = a.clone();
        b.wall_ms = 100_000; // host noise: must be ignorable
        b.tasks[0].p95_us = 40_000; // task.map.p95_us: covered by "task"
        b.makespan_s *= 1.5; // virtual: must still be flagged
        let cmp = compare_ignoring(&a, &b, 5.0, &["wall_ms", "task"]);
        assert_eq!(cmp.regressions.len(), 1);
        assert_eq!(cmp.regressions[0].metric, "makespan_s");
        // Without the ignore list all three are regressions.
        assert_eq!(compare(&a, &b, 5.0).regressions.len(), 3);
    }

    #[test]
    fn profile_flattens_report_and_self_diff_is_clean() {
        let a = sample_report();
        let p = a.profile("base");
        assert_eq!(p.wall_ms, a.wall_ms);
        assert_eq!(p.makespan_s, a.makespan_s);
        assert_eq!(p.phases[0], ("map".to_string(), a.map_phase_s));
        let d = gepeto_telemetry::diff::diff(&p, &a.profile("cand"));
        assert!(d.causes.is_empty());
        assert!(d.render().contains("no significant delta"));
    }

    #[test]
    fn zero_baseline_growth_is_a_regression() {
        let a = sample_report();
        let mut b = a.clone();
        let mut zeroed = a.clone();
        zeroed.shuffle_bytes = 0;
        b.shuffle_bytes = 10;
        let cmp = compare(&zeroed, &b, 5.0);
        assert!(cmp
            .regressions
            .iter()
            .any(|d| d.metric == "shuffle_bytes" && d.delta_pct.is_infinite()));
    }
}
