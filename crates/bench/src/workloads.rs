//! The paper's three workloads, instrumented for `gepeto-bench`.
//!
//! Each run builds the synthetic GeoLife-calibrated dataset, loads it
//! into a fresh DFS on the virtual Parapluie cluster, executes the
//! workload with an enabled telemetry [`Recorder`], and folds the job
//! statistics plus the captured trace into a [`BenchReport`].

use crate::report::{BenchReport, HostBlock};
use crate::{convergence_delta_for, dataset, parapluie};
use gepeto::prelude::*;
use gepeto_geo::DistanceMetric;
use gepeto_mapred::JobStats;
use gepeto_pool::PoolStats;
use gepeto_telemetry::{LedgerScope, Recorder};
use std::sync::Arc;
use std::time::Instant;

/// Folds the pool-counter movement across the workload window into the
/// report's [`HostBlock`]. Counters are process-cumulative, so the
/// block is the delta between the snapshot taken before the workload
/// started and the one taken after it finished.
fn host_block(before: &PoolStats, wall_ms: u64) -> HostBlock {
    let after = gepeto_pool::global_stats();
    let threads = after.threads as u64;
    let busy_s = after.busy_ns().saturating_sub(before.busy_ns()) as f64 / 1e9;
    let idle_s = (threads as f64 * wall_ms as f64 / 1e3 - busy_s).max(0.0);
    HostBlock {
        threads,
        tasks: after.tasks.saturating_sub(before.tasks),
        steals: after.steals.saturating_sub(before.steals),
        busy_s,
        idle_s,
    }
}

/// Knobs of one bench invocation; env-independent so tests can pin the
/// shape without mutating `GEPETO_SCALE`.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Users in the synthetic dataset (the paper's full cut is 178).
    pub users: usize,
    /// Dataset/chunk scale factor.
    pub scale: f64,
    /// k-means cluster count (the paper uses 11).
    pub k: usize,
    /// k-means iteration cap — kept small so a bench run is bounded
    /// even when the convergence delta is not reached.
    pub max_iterations: usize,
    /// Unscaled DFS chunk size in MB (the paper's HDFS block is 64 MB).
    pub chunk_mb: usize,
}

impl BenchConfig {
    /// The defaults at a given scale: the paper's full 178-user cut.
    pub fn at_scale(scale: f64) -> Self {
        Self {
            users: 178,
            scale,
            k: 11,
            max_iterations: 8,
            chunk_mb: 64,
        }
    }

    fn chunk_bytes(&self) -> usize {
        ((self.chunk_mb as f64 * 1e6 * self.scale) as usize).max(4 * 1024)
    }

    fn setup(&self) -> (Arc<Dataset>, Cluster, Dfs<MobilityTrace>) {
        let ds = dataset(self.users, self.scale);
        let cluster = parapluie();
        let mut dfs = gepeto::dfs_io::trace_dfs(&cluster, self.chunk_bytes());
        gepeto::dfs_io::put_dataset(&mut dfs, "input", &ds).unwrap();
        (ds, cluster, dfs)
    }
}

/// Runs one workload by name (`sampling`, `kmeans`, `djcluster`,
/// `synth`).
pub fn run_workload(name: &str, cfg: &BenchConfig) -> Result<BenchReport, String> {
    match name {
        "sampling" => run_sampling(cfg),
        "kmeans" => run_kmeans(cfg),
        "djcluster" => run_djcluster(cfg),
        "synth" => run_synth(cfg),
        other => Err(format!(
            "unknown workload '{other}' (expected sampling, kmeans, djcluster or synth)"
        )),
    }
}

/// Workload 1: distributed sampling, 1-minute window, closest-to-upper.
pub fn run_sampling(cfg: &BenchConfig) -> Result<BenchReport, String> {
    let (_ds, cluster, dfs) = cfg.setup();
    let scfg = sampling::SamplingConfig::new(60, sampling::Technique::ClosestToUpperLimit);
    let telemetry = Recorder::enabled();
    let ledger = LedgerScope::open();
    let pool_before = gepeto_pool::global_stats();
    let started = Instant::now();
    let (_sampled, stats) =
        sampling::mapreduce_sample_with(&cluster, &dfs, "input", &scfg, &telemetry)
            .map_err(|e| e.to_string())?;
    let wall_ms = started.elapsed().as_millis() as u64;
    let mem = ledger.close();
    Ok(BenchReport::from_run(
        "sampling",
        cfg.scale,
        cfg.users,
        wall_ms,
        &[&stats],
        &telemetry,
        mem,
        host_block(&pool_before, wall_ms),
    ))
}

/// Workload 2: iterative k-means (k = 11, squared Euclidean).
pub fn run_kmeans(cfg: &BenchConfig) -> Result<BenchReport, String> {
    let (_ds, cluster, dfs) = cfg.setup();
    let metric = DistanceMetric::SquaredEuclidean;
    let kcfg = kmeans::KMeansConfig {
        max_iterations: cfg.max_iterations,
        convergence_delta: convergence_delta_for(metric),
        k: cfg.k,
        ..kmeans::KMeansConfig::paper(metric)
    };
    let telemetry = Recorder::enabled();
    let ledger = LedgerScope::open();
    let pool_before = gepeto_pool::global_stats();
    let started = Instant::now();
    let result = kmeans::mapreduce_kmeans_with(&cluster, &dfs, "input", &kcfg, &telemetry)
        .map_err(|e| e.to_string())?;
    let wall_ms = started.elapsed().as_millis() as u64;
    let mem = ledger.close();
    let jobs: Vec<&JobStats> = result.per_iteration.iter().map(|it| &it.job).collect();
    Ok(BenchReport::from_run(
        "kmeans",
        cfg.scale,
        cfg.users,
        wall_ms,
        &jobs,
        &telemetry,
        mem,
        host_block(&pool_before, wall_ms),
    ))
}

/// Workload 4: the out-of-core tier. A `GEPETO_SCALE`-sized slice of a
/// million-user synthetic day is streamed into the DFS (never holding
/// more than one user's trail in memory) and regrouped through the
/// by-user shuffle under a memory budget small enough to force the
/// external spill/merge path at every scale — `GEPETO_SCALE=1.0` runs
/// the full million users.
pub fn run_synth(cfg: &BenchConfig) -> Result<BenchReport, String> {
    let users = ((1_000_000.0 * cfg.scale) as u64).clamp(16, u64::from(u32::MAX));
    let synth = gepeto_synth::SynthConfig::new(users);
    let cluster = parapluie();
    let mut dfs = gepeto::dfs_io::trace_dfs(&cluster, cfg.chunk_bytes());
    let telemetry = Recorder::enabled();
    let ledger = LedgerScope::open();
    let pool_before = gepeto_pool::global_stats();
    let started = Instant::now();
    synth.to_dfs(&mut dfs, "input").map_err(|e| e.to_string())?;
    // ~1/64 of the whole shuffle per partition: a handful of sorted
    // runs per reducer regardless of scale, floored so tiny smoke runs
    // still exercise the spill path.
    let budget = (synth.estimated_plt_bytes() / 64).max(4 * 1024) as usize;
    let scfg = sampling::SamplingConfig::new(60, sampling::Technique::ClosestToUpperLimit);
    let (_grouped, stats) = sampling::mapreduce_sample_by_user(
        &cluster,
        &dfs,
        "input",
        &scfg,
        Some(budget),
        &telemetry,
    )
    .map_err(|e| e.to_string())?;
    let wall_ms = started.elapsed().as_millis() as u64;
    let mem = ledger.close();
    Ok(BenchReport::from_run(
        "synth",
        cfg.scale,
        users as usize,
        wall_ms,
        &[&stats],
        &telemetry,
        mem,
        host_block(&pool_before, wall_ms),
    ))
}

/// Workload 3: the full DJ-Cluster pipeline — sampling, preprocessing
/// (speed filter + dedup), MapReduce R-tree build, clustering — as the
/// CLI runs it.
pub fn run_djcluster(cfg: &BenchConfig) -> Result<BenchReport, String> {
    let (_ds, cluster, mut dfs) = cfg.setup();
    let scfg = sampling::SamplingConfig::new(60, sampling::Technique::ClosestToUpperLimit);
    let dj = djcluster::DjConfig::default();
    let rtree_cfg = gepeto::rtree_build::RTreeBuildConfig::default();
    let telemetry = Recorder::enabled();
    let ledger = LedgerScope::open();
    let pool_before = gepeto_pool::global_stats();
    let started = Instant::now();
    let sample_stats =
        sampling::mapreduce_sample_to_dfs(&cluster, &mut dfs, "input", "sampled", &scfg)
            .map_err(|e| e.to_string())?;
    let (_clustering, pre, stats) = djcluster::mapreduce_djcluster_full_with(
        &cluster,
        &mut dfs,
        "sampled",
        &dj,
        Some(&rtree_cfg),
        &telemetry,
    )
    .map_err(|e| e.to_string())?;
    let wall_ms = started.elapsed().as_millis() as u64;
    let mem = ledger.close();
    let mut jobs: Vec<&JobStats> = vec![&sample_stats];
    jobs.extend(pre.jobs.stages());
    jobs.push(&stats.cluster_job);
    Ok(BenchReport::from_run(
        "djcluster",
        cfg.scale,
        cfg.users,
        wall_ms,
        &jobs,
        &telemetry,
        mem,
        host_block(&pool_before, wall_ms),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{compare, BenchReport, SCHEMA};

    fn tiny() -> BenchConfig {
        BenchConfig {
            users: 3,
            scale: 0.002,
            k: 3,
            max_iterations: 2,
            chunk_mb: 64,
        }
    }

    #[test]
    fn sampling_report_is_valid_and_self_compares_clean() {
        let report = run_sampling(&tiny()).unwrap();
        assert_eq!(report.schema, SCHEMA);
        assert_eq!(report.workload, "sampling");
        assert_eq!(report.jobs, 1);
        assert!(report.map_tasks >= 1);
        assert!(report.makespan_s > 0.0, "Parapluie replay must take time");
        assert!(!report.tasks.is_empty(), "task quantiles missing");
        assert!(
            !report.critical_path.is_empty(),
            "virtual critical path missing"
        );
        let share: f64 = report.critical_path.iter().map(|p| p.share).sum();
        assert!((share - 1.0).abs() < 1e-6, "phase shares sum to {share}");

        let back = BenchReport::from_json(&report.to_json()).unwrap();
        let cmp = compare(&report, &back, 1.0);
        assert!(cmp.regressions.is_empty());
        assert!(cmp.notes.is_empty());
    }

    #[test]
    fn reports_carry_pool_activity_in_the_host_block() {
        let report = run_sampling(&tiny()).unwrap();
        assert!(report.host.threads >= 1, "{:?}", report.host);
        assert!(report.host.tasks > 0, "{:?}", report.host);
        // busy + idle partition the executors' wall time, so both are
        // finite and non-negative by construction.
        assert!(report.host.busy_s >= 0.0 && report.host.idle_s >= 0.0);
        let back = BenchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back.host.threads, report.host.threads);
        assert_eq!(back.host.tasks, report.host.tasks);
    }

    #[test]
    fn kmeans_report_counts_one_job_per_iteration() {
        let report = run_kmeans(&tiny()).unwrap();
        assert_eq!(report.workload, "kmeans");
        assert!(report.jobs >= 1 && report.jobs <= 2);
        assert!(report.reduce_tasks > 0, "k-means jobs have reducers");
    }

    #[test]
    fn synth_report_records_spill_counters() {
        let report = run_synth(&tiny()).unwrap();
        assert_eq!(report.workload, "synth");
        assert_eq!(report.jobs, 1);
        assert!(report.reduce_tasks > 0, "by-user regrouping has reducers");
        let counter = |key: &str| {
            report
                .counters
                .iter()
                .find(|(k, _)| k == key)
                .map_or(0, |(_, v)| *v)
        };
        let spilled = counter("shuffle.spilled_bytes");
        let files = counter("shuffle.spill_files");
        assert!(
            spilled > 0 && files > 0,
            "the synth tier must exercise the out-of-core shuffle, got {:?}",
            report.counters
        );

        // The budgeted synth tier fills the whole mem block: allocator
        // peaks from the ledger, budget accounting from the engine.
        assert!(report.mem.peak_bytes > 0);
        assert!(report.mem.allocated_bytes > 0);
        assert!(report.mem.allocs > 0);
        assert!(report.mem.budget_bytes > 0);
        assert!(report.mem.accounted_peak > 0);

        let back = BenchReport::from_json(&report.to_json()).unwrap();
        let cmp = compare(&report, &back, 1.0);
        assert!(cmp.regressions.is_empty());
    }

    #[test]
    fn djcluster_report_spans_the_whole_pipeline() {
        let report = run_djcluster(&tiny()).unwrap();
        assert_eq!(report.workload, "djcluster");
        assert!(
            report.jobs >= 4,
            "sampling + 2 preprocess + rtree + cluster jobs, got {}",
            report.jobs
        );
    }
}
