//! `gepeto-bench` — the machine-readable perf-regression harness.
//!
//! ```text
//! # run the paper's three workloads, write BENCH_<workload>.json
//! cargo run --release -p gepeto-bench --bin gepeto-bench -- run --out-dir bench-out
//! GEPETO_SCALE=0.01 gepeto-bench run --workload kmeans --out-dir bench-out
//!
//! # diff two captures; exits 1 when a cost metric regressed > threshold
//! gepeto-bench compare baseline/BENCH_kmeans.json bench-out/BENCH_kmeans.json
//! gepeto-bench compare old.json new.json --threshold 10
//!
//! # schema-check files without running anything
//! gepeto-bench validate bench-out/BENCH_sampling.json
//! ```
//!
//! Cluster times in the reports are virtual Parapluie-profile replays
//! (see DESIGN.md §6); `wall_ms` is the real host time and is the only
//! machine-dependent metric — compare it across runs of the same box.

use gepeto_bench::json::Json;
use gepeto_bench::report::{compare_ignoring, BenchReport};
use gepeto_bench::workloads::{run_workload, BenchConfig};
use gepeto_telemetry::diff::{diff, profile_from_events, RunProfile};
use gepeto_telemetry::Event;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const WORKLOADS: [&str; 4] = ["sampling", "kmeans", "djcluster", "synth"];

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = match argv.first().map(String::as_str) {
        Some("run") => cmd_run(&argv[1..]),
        Some("compare") => cmd_compare(&argv[1..]),
        Some("diff") => cmd_diff(&argv[1..]),
        Some("validate") => cmd_validate(&argv[1..]),
        Some("validate-prom") => cmd_validate_prom(&argv[1..]),
        Some("validate-trace") => cmd_validate_trace(&argv[1..]),
        Some("--help") | Some("help") | None => {
            eprintln!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => Err(format!("unknown subcommand '{other}'\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("gepeto-bench: {message}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  gepeto-bench run [--workload all|sampling|kmeans|djcluster|synth]
                   [--users N] [--k N] [--max-iter N] [--threads N]
                   [--out-dir DIR]
  gepeto-bench compare BASELINE.json CANDIDATE.json [--threshold PCT]
                       [--ignore METRIC[,METRIC...]]
  gepeto-bench diff BASE CAND [--metrics BASE.jsonl,CAND.jsonl]
                    [--json-out FILE.json]
  gepeto-bench validate FILE.json...
  gepeto-bench validate-prom FILE.prom...
  gepeto-bench validate-trace FILE.json...

run writes BENCH_<workload>.json per workload (scale from GEPETO_SCALE);
--threads sizes the work-stealing pool the workloads execute on (default:
all cores; the report's host block records threads/busy/steal/idle);
compare exits 1 when any cost metric grew more than PCT percent (default 5)
and prints a perf-diff diagnosis of the regression;
--ignore skips cost metrics by name or dotted prefix (e.g. wall_ms,task —
use it against committed baselines, where host speed is not a regression);
diff attributes the slowdown between two runs — each positional is either a
bench report or a `--metrics-out` events JSONL (auto-detected), --metrics
enriches both sides with event streams, --json-out also writes the report
as machine-readable JSON;
validate exits 1 when a file does not parse as the bench schema;
validate-prom exits 1 when a file is not a well-formed Prometheus text
exposition (as written by `gepeto ... --prom-out`);
validate-trace exits 1 when a file is not a structurally sound Chrome
trace-event export (as written by `gepeto ... --trace-out`).";

/// Parsed `--key value` flags, in order of appearance.
type Flags = Vec<(String, String)>;

/// Splits `argv` into positionals and `--key value` flags (a trailing
/// or flag-followed `--key` stores `"true"`).
fn split_args(argv: &[String]) -> Result<(Vec<String>, Flags), String> {
    let mut positionals = Vec::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        if let Some(key) = argv[i].strip_prefix("--") {
            match argv.get(i + 1) {
                Some(value) if !value.starts_with("--") => {
                    flags.push((key.to_string(), value.clone()));
                    i += 2;
                }
                _ => {
                    flags.push((key.to_string(), "true".to_string()));
                    i += 1;
                }
            }
        } else {
            positionals.push(argv[i].clone());
            i += 1;
        }
    }
    Ok((positionals, flags))
}

fn flag<'a>(flags: &'a Flags, key: &str) -> Option<&'a str> {
    flags
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

fn flag_or<T: std::str::FromStr>(flags: &Flags, key: &str, default: T) -> Result<T, String> {
    match flag(flags, key) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("flag --{key}: cannot parse '{raw}'")),
    }
}

fn cmd_run(argv: &[String]) -> Result<ExitCode, String> {
    let (positionals, flags) = split_args(argv)?;
    if let Some(extra) = positionals.first() {
        return Err(format!("run takes no positional argument '{extra}'"));
    }
    let mut cfg = BenchConfig::at_scale(gepeto_bench::scale());
    cfg.users = flag_or(&flags, "users", cfg.users)?;
    cfg.k = flag_or(&flags, "k", cfg.k)?;
    cfg.max_iterations = flag_or(&flags, "max-iter", cfg.max_iterations)?;
    let threads: usize = flag_or(&flags, "threads", 0)?;
    if threads > 0 && !gepeto_pool::set_threads(threads) {
        eprintln!("--threads {threads}: pool already sized; flag ignored");
    }
    let out_dir = PathBuf::from(flag(&flags, "out-dir").unwrap_or("."));
    std::fs::create_dir_all(&out_dir).map_err(|e| format!("{}: {e}", out_dir.display()))?;

    let selected = flag(&flags, "workload").unwrap_or("all");
    let workloads: Vec<&str> = if selected == "all" {
        WORKLOADS.to_vec()
    } else if WORKLOADS.contains(&selected) {
        vec![selected]
    } else {
        return Err(format!("unknown workload '{selected}'"));
    };

    println!(
        "gepeto-bench | scale = {} | users = {} | out = {}",
        cfg.scale,
        cfg.users,
        out_dir.display()
    );
    for workload in workloads {
        let report = run_workload(workload, &cfg)?;
        let path = out_dir.join(format!("BENCH_{workload}.json"));
        std::fs::write(&path, report.to_json()).map_err(|e| format!("{}: {e}", path.display()))?;
        println!(
            "{workload:>10}: {} jobs, {} map + {} reduce tasks, \
             virtual makespan {:.1}s, host {}ms, heap peak {:.1} MB -> {}",
            report.jobs,
            report.map_tasks,
            report.reduce_tasks,
            report.makespan_s,
            report.wall_ms,
            report.mem.peak_bytes as f64 / 1e6,
            path.display()
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn load(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
    BenchReport::from_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_compare(argv: &[String]) -> Result<ExitCode, String> {
    let (positionals, flags) = split_args(argv)?;
    let [baseline_path, candidate_path] = positionals.as_slice() else {
        return Err("compare needs exactly two files: BASELINE.json CANDIDATE.json".to_string());
    };
    let threshold_pct: f64 = flag_or(&flags, "threshold", 5.0)?;
    let ignore_spec = flag(&flags, "ignore").unwrap_or("");
    let ignore: Vec<&str> = ignore_spec.split(',').filter(|s| !s.is_empty()).collect();
    let baseline = load(baseline_path)?;
    let candidate = load(candidate_path)?;
    let cmp = compare_ignoring(&baseline, &candidate, threshold_pct, &ignore);
    println!(
        "compare {} ({}) -> {} ({}), threshold {threshold_pct:.1}%{}",
        baseline_path,
        baseline.workload,
        candidate_path,
        candidate.workload,
        if ignore.is_empty() {
            String::new()
        } else {
            format!(", ignoring {}", ignore.join(","))
        }
    );
    print!("{}", cmp.render(threshold_pct));
    if cmp.regressions.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        println!("{} metric(s) regressed", cmp.regressions.len());
        // A failing gate ships its own diagnosis: attribute the delta.
        print!(
            "{}",
            diff(
                &baseline.profile(baseline_path),
                &candidate.profile(candidate_path)
            )
            .render()
        );
        Ok(ExitCode::FAILURE)
    }
}

/// Parses a `--metrics-out` events JSONL stream.
fn events_from_jsonl(text: &str, path: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = Json::parse(line).map_err(|e| format!("{path}:{}: {e}", idx + 1))?;
        let event = gepeto_telemetry::archive::event_from_json(&v)
            .ok_or_else(|| format!("{path}:{}: not a telemetry event", idx + 1))?;
        events.push(event);
    }
    Ok(events)
}

/// Loads one side of a diff: a bench report or an events JSONL stream,
/// auto-detected by trying the (whole-document) bench schema first.
fn load_profile(path: &str) -> Result<RunProfile, String> {
    let text = std::fs::read_to_string(Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
    if let Ok(report) = BenchReport::from_json(&text) {
        return Ok(report.profile(path));
    }
    let events = events_from_jsonl(&text, path)?;
    if events.is_empty() {
        return Err(format!(
            "{path}: neither a bench report nor a metrics JSONL stream"
        ));
    }
    Ok(profile_from_events(path, &events))
}

/// Fills gaps in `profile` from an event-stream profile: headline times
/// when missing, plus phases/counters/task cohorts it does not already
/// carry. Existing (bench-report) figures always win on collision.
fn enrich_profile(profile: &mut RunProfile, extra: RunProfile) {
    if profile.wall_ms == 0 {
        profile.wall_ms = extra.wall_ms;
    }
    if profile.makespan_s == 0.0 {
        profile.makespan_s = extra.makespan_s;
    }
    for (name, v) in extra.phases {
        if !profile.phases.iter().any(|(n, _)| *n == name) {
            profile.phases.push((name, v));
        }
    }
    for (name, v) in extra.counters {
        if !profile.counters.iter().any(|(n, _)| *n == name) {
            profile.counters.push((name, v));
        }
    }
    profile.counters.sort_by(|a, b| a.0.cmp(&b.0));
    for t in extra.tasks {
        if !profile.tasks.iter().any(|x| x.kind == t.kind) {
            profile.tasks.push(t);
        }
    }
}

fn cmd_diff(argv: &[String]) -> Result<ExitCode, String> {
    let (positionals, flags) = split_args(argv)?;
    let [base_path, cand_path] = positionals.as_slice() else {
        return Err("diff needs exactly two files: BASE CAND".to_string());
    };
    let mut base = load_profile(base_path)?;
    let mut cand = load_profile(cand_path)?;
    if let Some(spec) = flag(&flags, "metrics") {
        let paths: Vec<&str> = spec.split(',').filter(|s| !s.is_empty()).collect();
        let [base_metrics, cand_metrics] = paths.as_slice() else {
            return Err("--metrics needs two comma-separated files: BASE.jsonl,CAND.jsonl".into());
        };
        enrich_profile(&mut base, load_profile(base_metrics)?);
        enrich_profile(&mut cand, load_profile(cand_metrics)?);
    }
    let report = diff(&base, &cand);
    print!("{}", report.render());
    if let Some(out) = flag(&flags, "json-out") {
        std::fs::write(Path::new(out), report.to_json()).map_err(|e| format!("{out}: {e}"))?;
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_validate(argv: &[String]) -> Result<ExitCode, String> {
    let (positionals, _flags) = split_args(argv)?;
    if positionals.is_empty() {
        return Err("validate needs at least one file".to_string());
    }
    let mut failures = 0usize;
    for path in &positionals {
        match load(path) {
            Ok(report) => println!("{path}: ok ({}, schema {})", report.workload, report.schema),
            Err(e) => {
                eprintln!("{e}");
                failures += 1;
            }
        }
    }
    Ok(if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_validate_trace(argv: &[String]) -> Result<ExitCode, String> {
    let (positionals, _flags) = split_args(argv)?;
    if positionals.is_empty() {
        return Err("validate-trace needs at least one file".to_string());
    }
    let mut failures = 0usize;
    for path in &positionals {
        let text = match std::fs::read_to_string(Path::new(path)) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("{path}: {e}");
                failures += 1;
                continue;
            }
        };
        match gepeto_bench::trace::validate(&text) {
            Ok(report) => println!(
                "{path}: ok ({} events, {} processes, {} lanes)",
                report.events, report.processes, report.lanes
            ),
            Err(e) => {
                eprintln!("{path}: {e}");
                failures += 1;
            }
        }
    }
    Ok(if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_validate_prom(argv: &[String]) -> Result<ExitCode, String> {
    let (positionals, _flags) = split_args(argv)?;
    if positionals.is_empty() {
        return Err("validate-prom needs at least one file".to_string());
    }
    let mut failures = 0usize;
    for path in &positionals {
        let text = match std::fs::read_to_string(Path::new(path)) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("{path}: {e}");
                failures += 1;
                continue;
            }
        };
        match gepeto_bench::prom::validate(&text) {
            Ok(report) => println!(
                "{path}: ok ({} families, {} samples)",
                report.families.len(),
                report.samples
            ),
            Err(e) => {
                eprintln!("{path}: {e}");
                failures += 1;
            }
        }
    }
    Ok(if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}
