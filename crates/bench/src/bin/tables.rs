//! `tables` — regenerates every table and figure of the paper's
//! evaluation section, printing the paper's numbers next to ours.
//!
//! ```text
//! cargo run --release -p gepeto-bench --bin tables -- all
//! cargo run --release -p gepeto-bench --bin tables -- table1 table3
//! GEPETO_SCALE=1.0 cargo run --release -p gepeto-bench --bin tables -- table1
//! ```
//!
//! Everything runs on the synthetic GeoLife-calibrated dataset at
//! `GEPETO_SCALE` (default 0.05); both the dataset and the chunk sizes
//! scale, so chunk/map-task counts match the paper's proportions. The
//! cluster times are simulated replays on the virtual 7-node Parapluie
//! profile (see DESIGN.md §6) — shape, not absolute wall-clock, is the
//! reproduction claim.

use gepeto::prelude::*;
use gepeto_bench::*;
use gepeto_geo::DistanceMetric;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmds: Vec<&str> = args.iter().map(String::as_str).collect();
    if cmds.is_empty() || cmds == ["all"] {
        cmds = vec![
            "table1",
            "table2",
            "table3",
            "table4",
            "fig1",
            "fig23",
            "fig4",
            "fig5",
            "fig6",
            "overhead",
            "djcluster",
            "ablation",
            "scalability",
        ];
    }
    println!(
        "GEPETO paper-reproduction harness | scale = {} (set GEPETO_SCALE to change)",
        scale()
    );
    for cmd in cmds {
        match cmd {
            "table1" => table1(),
            "table2" => table2(),
            "table3" => table3(),
            "table4" => table4(),
            "fig1" => fig1(),
            "fig23" => fig23(),
            "fig4" => fig4(),
            "fig5" => fig5(),
            "fig6" => fig6(),
            "overhead" => overhead(),
            "djcluster" => djcluster_cmd(),
            "ablation" => ablation(),
            "scalability" => scalability(),
            other => eprintln!("unknown table/figure '{other}'"),
        }
    }
}

/// Table I: trace counts under sampling rates of 1, 5 and 10 minutes.
fn table1() {
    let paper = [2_033_686usize, 155_260, 41_263, 23_596];
    let ds = full_dataset();
    let cluster = parapluie();
    let dfs = dfs_for(&cluster, &ds, scaled_chunk_bytes(64));
    let mut rows = vec![vec![
        "initial dataset".to_string(),
        format!("{}", ds.num_traces()),
        format!("{:.0}", ds.num_traces() as f64 / scale()),
        format!("{}", paper[0]),
        "-".into(),
    ]];
    for (i, window) in [60i64, 300, 600].iter().enumerate() {
        let cfg = sampling::SamplingConfig::new(*window, sampling::Technique::ClosestToUpperLimit);
        let (sampled, stats) = sampling::mapreduce_sample(&cluster, &dfs, "input", &cfg).unwrap();
        rows.push(vec![
            format!("{} min sampling", window / 60),
            format!("{}", sampled.num_traces()),
            format!("{:.0}", sampled.num_traces() as f64 / scale()),
            format!("{}", paper[i + 1]),
            format!("{:.1} s sim", stats.sim.makespan_s),
        ]);
    }
    print_table(
        "Table I — GeoLife trace counts under sampling (upper-limit technique)",
        &[
            "condition",
            "measured",
            "scaled to 1.0",
            "paper",
            "job time",
        ],
        &rows,
    );
    println!(
        "note: 'scaled to 1.0' = measured / GEPETO_SCALE, comparable to the paper column.\n\
         The paper also reports the 60 s sampling job completing in ~1.5 min on 7 nodes."
    );
}

/// Table II: the runtime arguments of the MapReduced k-means.
fn table2() {
    let rows = vec![
        vec![
            "input path".into(),
            "DFS file of mobility traces".into(),
            "MapReduceJob input".into(),
        ],
        vec![
            "output path".into(),
            "DFS directory per iteration".into(),
            "JobResult / Dfs::put".into(),
        ],
        vec![
            "input file (centroids)".into(),
            "k random traces, single node".into(),
            "kmeans::initial_centroids".into(),
        ],
        vec![
            "clusters path".into(),
            "current centroids per iteration".into(),
            "DistributedCache 'kmeans.centroids'".into(),
        ],
        vec![
            "k".into(),
            "number of clusters (paper: 11)".into(),
            "KMeansConfig::k".into(),
        ],
        vec![
            "distanceMeasure".into(),
            "squared Euclidean | Haversine".into(),
            "KMeansConfig::distance".into(),
        ],
        vec![
            "convergencedelta".into(),
            "0.5 (metric units)".into(),
            "KMeansConfig::convergence_delta".into(),
        ],
        vec![
            "maxIter".into(),
            "150".into(),
            "KMeansConfig::max_iterations".into(),
        ],
    ];
    print_table(
        "Table II — runtime arguments of MapReduced k-means",
        &["argument", "role (paper)", "our API"],
        &rows,
    );
}

/// Table III: k-means iteration time across dataset size, distance
/// metric and chunk size.
fn table3() {
    // (label, paper traces, metric, chunk MB, paper iter secs, paper #iter)
    let paper_rows = [
        ("66 MB", DistanceMetric::Haversine, 64, 57, 73),
        ("66 MB", DistanceMetric::SquaredEuclidean, 64, 48, 72),
        ("66 MB", DistanceMetric::SquaredEuclidean, 32, 41, 70),
        ("66 MB", DistanceMetric::Haversine, 32, 45, 73),
        ("128 MB", DistanceMetric::SquaredEuclidean, 64, 51, 85),
        ("128 MB", DistanceMetric::SquaredEuclidean, 32, 45, 83),
        ("128 MB", DistanceMetric::Haversine, 32, 48, 89),
        ("128 MB", DistanceMetric::Haversine, 64, 60, 93),
    ];
    let cluster = parapluie();
    let mut rows = Vec::new();
    for (label, metric, chunk_mb, paper_secs, paper_iters) in paper_rows {
        let ds = if label == "66 MB" {
            small_dataset()
        } else {
            full_dataset()
        };
        let dfs = dfs_for(&cluster, &ds, scaled_chunk_bytes(chunk_mb));
        let cfg = kmeans::KMeansConfig {
            k: 11,
            distance: metric,
            convergence_delta: convergence_delta_for(metric),
            max_iterations: 150,
            seed: 1,
            use_combiner: false,
            memory_budget: None,
        };
        let result = kmeans::mapreduce_kmeans(&cluster, &dfs, "input", &cfg).unwrap();
        let mean_iter = result
            .per_iteration
            .iter()
            .map(|i| i.job.sim.makespan_s)
            .sum::<f64>()
            / result.iterations.max(1) as f64;
        rows.push(vec![
            label.to_string(),
            format!("{}", ds.num_traces()),
            metric.name().to_string(),
            format!("{chunk_mb}"),
            format!("{:.1}", mean_iter),
            format!("{paper_secs}"),
            format!("{}", result.iterations),
            format!("{paper_iters}"),
            format!("{}", result.per_iteration[0].job.map_tasks),
        ]);
    }
    print_table(
        "Table III — MapReduced k-means (k=11, delta=0.5 m-equivalent, maxIter=150; simulated Parapluie)",
        &[
            "data", "traces", "distance", "chunk MB", "iter s (sim)", "paper s", "iters",
            "paper iters", "map tasks",
        ],
        &rows,
    );
    println!(
        "shape checks: chunk 32 MB ≤ chunk 64 MB time; Haversine ≥ squared Euclidean time \
         at equal chunk; 128 MB ≥ 66 MB."
    );
}

/// Table IV: traces surviving the DJ-Cluster preprocessing phase.
fn table4() {
    let paper = [
        ("1 min", 155_260usize, 86_416usize, 85_743usize),
        ("5 min", 41_263, 23_996, 23_894),
        ("10 min", 23_596, 14_207, 14_174),
    ];
    let ds = full_dataset();
    let cluster = parapluie();
    let mut dfs = dfs_for(&cluster, &ds, scaled_chunk_bytes(64));
    let mut rows = Vec::new();
    for (i, window) in [60i64, 300, 600].iter().enumerate() {
        let scfg = sampling::SamplingConfig::new(*window, sampling::Technique::ClosestToUpperLimit);
        let name = format!("sampled{window}");
        sampling::mapreduce_sample_to_dfs(&cluster, &mut dfs, "input", &name, &scfg).unwrap();
        let cfg = djcluster::DjConfig::default();
        let out = format!("clean{window}");
        let pre = djcluster::mapreduce_preprocess(&cluster, &mut dfs, &name, &out, &cfg).unwrap();
        let (label, p_in, p_speed, p_dedup) = paper[i];
        rows.push(vec![
            label.to_string(),
            format!("{} / {}", pre.input, p_in),
            format!("{} / {}", pre.after_speed_filter, p_speed),
            format!("{} / {}", pre.after_dedup, p_dedup),
            format!(
                "{:.0}% / {:.0}%",
                100.0 * pre.after_speed_filter as f64 / pre.input.max(1) as f64,
                100.0 * p_speed as f64 / p_in as f64
            ),
        ]);
    }
    print_table(
        "Table IV — traces after DJ preprocessing (ours / paper·full-scale)",
        &[
            "sampling",
            "unfiltered",
            "filter moving",
            "remove dup",
            "stationary share",
        ],
        &rows,
    );
    println!(
        "paper numbers are full-scale; compare the ratios (our counts are at the bench scale)."
    );
}

/// Figure 1: the GeoLife PLT line structure.
fn fig1() {
    let ds = dataset(1, 0.001);
    let t = ds.iter_traces().next().unwrap();
    let line = gepeto_model::plt::format_line(t);
    println!("\n=== Figure 1 — GeoLife PLT line ===");
    println!("paper example: 39.906631,116.385564,0,492,40097.5864583333,2009-10-11,14:04:30");
    println!("generated:     {line}");
    let parsed = gepeto_model::plt::parse_line(t.user, &line).unwrap();
    assert_eq!(parsed.timestamp, t.timestamp);
    println!("round-trip:    ok (timestamp and coordinates preserved)");
}

/// Figures 2–3: the two representative-selection techniques.
fn fig23() {
    use gepeto_model::{MobilityTrace, Timestamp};
    println!("\n=== Figures 2–3 — sampling techniques on one 60 s window ===");
    let traces: Vec<MobilityTrace> = [5i64, 12, 29, 44, 58]
        .iter()
        .map(|&s| MobilityTrace::new(1, GeoPoint::new(39.9, 116.4), Timestamp(s)))
        .collect();
    println!("window [0, 60): traces at t = 5, 12, 29, 44, 58");
    let ds = Dataset::from_traces(traces);
    for (name, technique) in [
        (
            "Fig 2 closest-to-upper-limit",
            sampling::Technique::ClosestToUpperLimit,
        ),
        (
            "Fig 3 closest-to-middle",
            sampling::Technique::ClosestToMiddle,
        ),
    ] {
        let cfg = sampling::SamplingConfig::new(60, technique);
        let out = sampling::sequential_sample(&ds, &cfg);
        let t = out.iter_traces().next().unwrap().timestamp.secs();
        println!("{name}: representative = t {t}");
    }
}

/// Figure 4: the iterative k-means workflow.
fn fig4() {
    println!("\n=== Figure 4 — MapReduced k-means workflow ===");
    let ds = dataset(20, scale().min(0.02));
    let cluster = parapluie();
    let dfs = dfs_for(&cluster, &ds, scaled_chunk_bytes(32));
    let metric = DistanceMetric::Haversine;
    let cfg = kmeans::KMeansConfig {
        k: 8,
        distance: metric,
        convergence_delta: convergence_delta_for(metric),
        max_iterations: 25,
        seed: 1,
        use_combiner: false,
        memory_budget: None,
    };
    let result = kmeans::mapreduce_kmeans(&cluster, &dfs, "input", &cfg).unwrap();
    println!("iteration | max centroid shift (m) | sim job time (s)");
    for it in &result.per_iteration {
        println!(
            "{:>9} | {:>22.2} | {:>16.1}",
            it.iteration, it.max_shift, it.job.sim.makespan_s
        );
    }
    println!(
        "converged = {} after {} iterations (driver loop: map=assign, reduce=update, repeat)",
        result.converged, result.iterations
    );
}

/// Figure 5: the two pipelined preprocessing jobs.
fn fig5() {
    println!("\n=== Figure 5 — DJ preprocessing pipeline (2 map-only jobs) ===");
    let ds = full_dataset();
    let cluster = parapluie();
    let mut dfs = dfs_for(&cluster, &ds, scaled_chunk_bytes(64));
    let scfg = sampling::SamplingConfig::new(60, sampling::Technique::ClosestToUpperLimit);
    sampling::mapreduce_sample_to_dfs(&cluster, &mut dfs, "input", "sampled", &scfg).unwrap();
    let cfg = djcluster::DjConfig::default();
    let pre =
        djcluster::mapreduce_preprocess(&cluster, &mut dfs, "sampled", "clean", &cfg).unwrap();
    for (i, stage) in pre.jobs.stages().iter().enumerate() {
        println!(
            "job {} '{}': {} map tasks, 0 reducers, sim {:.1} s",
            i + 1,
            stage.name,
            stage.map_tasks,
            stage.sim.makespan_s
        );
    }
    println!(
        "{} -> {} -> {} traces (output of job 1 is the input of job 2)",
        pre.input, pre.after_speed_filter, pre.after_dedup
    );
}

/// Figure 6: the 3-phase MapReduce R-tree construction.
fn fig6() {
    println!("\n=== Figure 6 — building an R-tree with MapReduce ===");
    let ds = dataset(40, scale().min(0.03));
    let cluster = parapluie();
    let dfs = dfs_for(&cluster, &ds, scaled_chunk_bytes(32));
    for curve in [SpaceFillingCurve::ZOrder, SpaceFillingCurve::Hilbert] {
        let cfg = gepeto::rtree_build::RTreeBuildConfig {
            curve,
            partitions: 8,
            ..Default::default()
        };
        let (tree, report) =
            gepeto::rtree_build::mapreduce_build_rtree(&cluster, &dfs, "input", &cfg).unwrap();
        println!(
            "{:<8} phase1 {:.1} s, phase2 {:.1} s ({} reducers) | {} entries, height {}, \
             partition sizes {:?} (imbalance {:.2})",
            curve.name(),
            report.phase1.sim.makespan_s,
            report.phase2.sim.makespan_s,
            report.phase2.reduce_tasks,
            tree.len(),
            tree.height(),
            report.partition_sizes,
            report.imbalance()
        );
    }
}

/// §VI: deployment overhead ≈ 25 s.
fn overhead() {
    println!("\n=== §VI — deployment overhead ===");
    let sim = gepeto_mapred::SimParams::parapluie();
    println!("paper: 'the overhead brought by these initial steps [is] approximately 25 seconds'");
    println!(
        "model: cluster startup = {:.0} s (HDFS deploy + daemons), per-job overhead = {:.0} s, \
         per-task startup = {:.1} s",
        sim.cluster_startup_s, sim.job_overhead_s, sim.task_startup_s
    );
}

/// §VII end-to-end: DJ-Cluster on the sampled dataset.
fn djcluster_cmd() {
    println!("\n=== §VII — DJ-Cluster end-to-end (sampled dataset) ===");
    let ds = full_dataset();
    let cluster = parapluie();
    let mut dfs = dfs_for(&cluster, &ds, scaled_chunk_bytes(64));
    let scfg = sampling::SamplingConfig::new(60, sampling::Technique::ClosestToUpperLimit);
    sampling::mapreduce_sample_to_dfs(&cluster, &mut dfs, "input", "sampled", &scfg).unwrap();
    let cfg = djcluster::DjConfig::default();
    let rcfg = gepeto::rtree_build::RTreeBuildConfig::default();
    let (clustering, pre, stats) =
        djcluster::mapreduce_djcluster_full(&cluster, &mut dfs, "sampled", &cfg, Some(&rcfg))
            .unwrap();
    println!(
        "preprocessing: {} -> {} -> {}",
        pre.input, pre.after_speed_filter, pre.after_dedup
    );
    println!(
        "clusters: {} (≥ {} traces each), noise: {}",
        clustering.clusters.len(),
        cfg.min_pts,
        clustering.noise
    );
    println!(
        "cluster job: {} mappers, 1 merging reducer, sim {:.1} s, shuffle {} B",
        stats.cluster_job.map_tasks,
        stats.cluster_job.sim.makespan_s,
        stats.cluster_job.sim.shuffle_bytes
    );
}

/// Ablations: combiner, chunk-size sweep, curve choice.
fn ablation() {
    let ds = full_dataset();
    let cluster = parapluie();

    // Combiner on/off (§VI related work).
    let dfs = dfs_for(&cluster, &ds, scaled_chunk_bytes(32));
    let points: Vec<GeoPoint> = ds.iter_traces().map(|t| t.point).collect();
    let centroids = kmeans::initial_centroids(&points, 11, 1);
    let mut rows = Vec::new();
    for use_combiner in [false, true] {
        let cfg = kmeans::KMeansConfig {
            k: 11,
            distance: DistanceMetric::SquaredEuclidean,
            convergence_delta: convergence_delta_for(DistanceMetric::SquaredEuclidean),
            max_iterations: 150,
            seed: 1,
            use_combiner,
            memory_budget: None,
        };
        let (_, stats) =
            kmeans::mapreduce_iteration(&cluster, &dfs, "input", &centroids, &cfg).unwrap();
        rows.push(vec![
            if use_combiner {
                "with combiner"
            } else {
                "no combiner"
            }
            .into(),
            format!("{}", stats.sim.shuffle_bytes),
            format!("{:.2}", stats.sim.makespan_s),
        ]);
    }
    print_table(
        "Ablation — k-means combiner (§VI related work)",
        &["variant", "shuffle bytes", "sim iter s"],
        &rows,
    );

    // Chunk-size sweep.
    let mut rows = Vec::new();
    for chunk_mb in [16usize, 32, 64, 128] {
        let dfs = dfs_for(&cluster, &ds, scaled_chunk_bytes(chunk_mb));
        let cfg = kmeans::KMeansConfig {
            k: 11,
            distance: DistanceMetric::SquaredEuclidean,
            convergence_delta: convergence_delta_for(DistanceMetric::SquaredEuclidean),
            max_iterations: 150,
            seed: 1,
            use_combiner: false,
            memory_budget: None,
        };
        let (_, stats) =
            kmeans::mapreduce_iteration(&cluster, &dfs, "input", &centroids, &cfg).unwrap();
        rows.push(vec![
            format!("{chunk_mb}"),
            format!("{}", stats.map_tasks),
            format!("{:.2}", stats.sim.makespan_s),
            format!(
                "{}/{}/{}",
                stats.sim.data_local, stats.sim.rack_local, stats.sim.remote
            ),
        ]);
    }
    print_table(
        "Ablation — chunk size (the Table III lever)",
        &["chunk MB", "map tasks", "sim iter s", "locality d/r/r"],
        &rows,
    );

    // Mean vs median update rule (§VI's outlier remark): the median
    // cannot use a combiner, so its shuffle scales with the data.
    let dfs = dfs_for(&cluster, &ds, scaled_chunk_bytes(32));
    let mean_cfg = kmeans::KMeansConfig {
        k: 11,
        distance: DistanceMetric::SquaredEuclidean,
        convergence_delta: convergence_delta_for(DistanceMetric::SquaredEuclidean),
        max_iterations: 150,
        seed: 1,
        use_combiner: true,
        memory_budget: None,
    };
    let (_, mean_stats) =
        kmeans::mapreduce_iteration(&cluster, &dfs, "input", &centroids, &mean_cfg).unwrap();
    let (_, median_stats) =
        kmeans::mapreduce_median_iteration(&cluster, &dfs, "input", &centroids, &mean_cfg).unwrap();
    print_table(
        "Ablation — mean (combinable) vs median (not combinable) update rule",
        &["update rule", "shuffle bytes", "sim iter s"],
        &[
            vec![
                "mean + combiner".into(),
                format!("{}", mean_stats.sim.shuffle_bytes),
                format!("{:.2}", mean_stats.sim.makespan_s),
            ],
            vec![
                "median".into(),
                format!("{}", median_stats.sim.shuffle_bytes),
                format!("{:.2}", median_stats.sim.makespan_s),
            ],
        ],
    );

    // Speculative execution vs stragglers (the jobtracker's backup
    // tasks; Hadoop default on).
    let mut rows = Vec::new();
    for (label, speculative, prob) in [
        ("no stragglers", false, 0.0),
        ("stragglers, no speculation", false, 0.10),
        ("stragglers + speculation", true, 0.10),
    ] {
        let mut c = Cluster::parapluie();
        c.sim.straggler_prob = prob;
        c.sim.speculative_execution = speculative;
        let dfs = dfs_for(&c, &ds, scaled_chunk_bytes(16));
        let (_, stats) =
            kmeans::mapreduce_iteration(&c, &dfs, "input", &centroids, &mean_cfg).unwrap();
        rows.push(vec![
            label.into(),
            format!("{:.2}", stats.sim.makespan_s),
            format!("{}", stats.sim.stragglers),
            format!("{}", stats.sim.speculated),
        ]);
    }
    print_table(
        "Ablation — speculative execution under injected stragglers",
        &["scenario", "sim iter s", "stragglers", "speculated"],
        &rows,
    );

    // Typed vs text input (§VI related work: Mahout requires converting
    // input to SequenceFile; our typed DFS plays that role, the text path
    // parses PLT lines inside the mappers like the paper's own jobs).
    let scfg = sampling::SamplingConfig::new(60, sampling::Technique::ClosestToUpperLimit);
    let typed_dfs = dfs_for(&cluster, &ds, scaled_chunk_bytes(64));
    let t0 = std::time::Instant::now();
    let (_, typed_stats) =
        sampling::mapreduce_sample(&cluster, &typed_dfs, "input", &scfg).unwrap();
    let typed_real = t0.elapsed();
    let mut text_dfs = gepeto::textio::text_dfs(&cluster, scaled_chunk_bytes(64));
    gepeto::textio::put_dataset_as_text(&mut text_dfs, "input", &ds).unwrap();
    let t0 = std::time::Instant::now();
    let text_result = gepeto_mapred::MapOnlyJob::new(
        "text-sampling",
        &cluster,
        &text_dfs,
        "input",
        gepeto::textio::ParsingMapper::new(sampling::SamplingMapper::new(scfg)),
    )
    .run()
    .unwrap();
    let text_real = t0.elapsed();
    print_table(
        "Ablation — typed records vs text parsing in the mappers",
        &["input format", "real wall", "sim job s", "map tasks"],
        &[
            vec![
                "typed (SequenceFile-like)".into(),
                format!("{typed_real:.2?}"),
                format!("{:.1}", typed_stats.sim.makespan_s),
                format!("{}", typed_stats.map_tasks),
            ],
            vec![
                "text (PLT lines)".into(),
                format!("{text_real:.2?}"),
                format!("{:.1}", text_result.stats.sim.makespan_s),
                format!("{}", text_result.stats.map_tasks),
            ],
        ],
    );

    // Space-filling-curve choice for the R-tree build.
    let dfs = dfs_for(&cluster, &ds, scaled_chunk_bytes(32));
    let mut rows = Vec::new();
    for curve in [SpaceFillingCurve::ZOrder, SpaceFillingCurve::Hilbert] {
        let cfg = gepeto::rtree_build::RTreeBuildConfig {
            curve,
            partitions: 8,
            ..Default::default()
        };
        let t0 = std::time::Instant::now();
        let (_, report) =
            gepeto::rtree_build::mapreduce_build_rtree(&cluster, &dfs, "input", &cfg).unwrap();
        rows.push(vec![
            curve.name().into(),
            format!("{:.2}", report.imbalance()),
            format!("{:.1}", report.phase2.sim.makespan_s),
            format!("{:.2?}", t0.elapsed()),
        ]);
    }
    print_table(
        "Ablation — partitioning curve for the MapReduce R-tree build (§VII-C)",
        &["curve", "partition imbalance", "phase2 sim s", "real build"],
        &rows,
    );
}

/// Worker-count sweep: the "distribution and parallelization" motivation
/// of §IV, shown on one k-means iteration.
fn scalability() {
    let ds = full_dataset();
    let points: Vec<GeoPoint> = ds.iter_traces().map(|t| t.point).collect();
    let centroids = kmeans::initial_centroids(&points, 11, 1);
    let cfg = kmeans::KMeansConfig {
        k: 11,
        distance: DistanceMetric::SquaredEuclidean,
        convergence_delta: convergence_delta_for(DistanceMetric::SquaredEuclidean),
        max_iterations: 150,
        seed: 1,
        use_combiner: true,
        memory_budget: None,
    };
    let mut rows = Vec::new();
    let mut base = None;
    for nodes in [1usize, 2, 5, 10, 20] {
        let mut cluster = Cluster::parapluie();
        // 4 slots per node so small clusters are genuinely oversubscribed.
        cluster.topology = gepeto_mapred::Topology::new(nodes, 2.min(nodes), 4);
        let dfs = dfs_for(&cluster, &ds, scaled_chunk_bytes(4)); // many chunks
        let (_, stats) =
            kmeans::mapreduce_iteration(&cluster, &dfs, "input", &centroids, &cfg).unwrap();
        let wave = stats.sim.map_phase_s;
        let speedup = *base.get_or_insert(wave) / wave.max(1e-9);
        rows.push(vec![
            format!("{nodes}"),
            format!("{}", stats.map_tasks),
            format!("{wave:.1}"),
            format!("{:.1}", stats.sim.makespan_s),
            format!("{speedup:.2}x"),
            format!(
                "{}/{}/{}",
                stats.sim.data_local, stats.sim.rack_local, stats.sim.remote
            ),
        ]);
    }
    print_table(
        "Scalability — one k-means iteration vs worker-node count (4 MB chunks, 4 slots/node)",
        &[
            "nodes",
            "map tasks",
            "map wave s",
            "sim iter s",
            "wave speedup",
            "locality d/r/r",
        ],
        &rows,
    );
    println!(
        "the map wave scales with nodes until tasks no longer cover the slots; the \
         fixed per-job overhead bounds end-to-end speedup (Amdahl)."
    );
}
