//! Structural validation for Chrome trace-event (Perfetto) JSON files.
//!
//! The `--trace-out` flag of the `gepeto` CLI exports a run's span tree
//! and virtual-cluster timeline in the Chrome `trace_event` format.
//! This module checks such a file without a browser: every event must
//! carry a known phase, duration events must be well-formed, and
//! `B`/`E` pairs must nest with stack discipline per `(pid, tid)` lane.
//! `gepeto-bench validate-trace` and `scripts/check.sh` use it as a
//! smoke gate so a malformed export fails CI instead of silently
//! rendering as garbage in ui.perfetto.dev.

use crate::json::Json;
use std::collections::{BTreeMap, BTreeSet};

/// Summary of a successfully validated trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceReport {
    /// Total trace events (metadata included).
    pub events: usize,
    /// Distinct process ids.
    pub processes: usize,
    /// Distinct `(pid, tid)` lanes carrying non-metadata events.
    pub lanes: usize,
    /// Thread names declared by `M`/`thread_name` metadata, sorted.
    pub thread_names: Vec<String>,
}

/// Validates a Chrome trace-event JSON document.
///
/// Accepts either the object form (`{"traceEvents": [...]}`) or a bare
/// event array. Returns a [`TraceReport`] when the document is
/// well-formed, or a human-readable description of the first problem:
///
/// - every event is an object with a known `ph` and a string `name`;
/// - non-metadata events carry numeric `ts`, `pid` and `tid`;
/// - `X` events carry a non-negative `dur`;
/// - `B`/`E` events balance with stack discipline per `(pid, tid)`,
///   and each `E` matches the name of the `B` it closes;
/// - `C` events carry an `args` object with the counter series;
/// - `M` events are `process_name`/`thread_name` records with a `pid`.
pub fn validate(text: &str) -> Result<TraceReport, String> {
    let doc = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = match doc.get("traceEvents") {
        Some(arr) => arr
            .as_arr()
            .ok_or_else(|| "'traceEvents' is not an array".to_string())?,
        None => doc.as_arr().ok_or_else(|| {
            "top level is neither an object with 'traceEvents' nor an array".to_string()
        })?,
    };

    let mut pids: BTreeSet<u64> = BTreeSet::new();
    let mut lanes: BTreeSet<(u64, u64)> = BTreeSet::new();
    let mut thread_names: BTreeSet<String> = BTreeSet::new();
    // Open B spans per (pid, tid), as a name stack.
    let mut open: BTreeMap<(u64, u64), Vec<String>> = BTreeMap::new();

    for (i, e) in events.iter().enumerate() {
        let at = |msg: String| format!("event {i}: {msg}");
        if e.as_obj().is_none() {
            return Err(at("not an object".into()));
        }
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| at("missing 'ph'".into()))?;
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| at(format!("ph={ph} event has no string 'name'")))?;
        if ph == "M" {
            let pid = e
                .get("pid")
                .and_then(Json::as_u64)
                .ok_or_else(|| at("metadata event has no 'pid'".into()))?;
            pids.insert(pid);
            if !matches!(name, "process_name" | "thread_name") {
                return Err(at(format!("unknown metadata record '{name}'")));
            }
            let label = e
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str)
                .ok_or_else(|| at(format!("{name} metadata has no args.name string")))?;
            if name == "thread_name" {
                thread_names.insert(label.to_string());
            }
            continue;
        }
        if !matches!(ph, "X" | "B" | "E" | "i" | "I" | "C") {
            return Err(at(format!("unknown phase '{ph}'")));
        }
        let num = |key: &str| {
            e.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| at(format!("ph={ph} '{name}' has no numeric '{key}'")))
        };
        num("ts")?;
        let pid = num("pid")? as u64;
        let tid = num("tid")? as u64;
        pids.insert(pid);
        lanes.insert((pid, tid));
        match ph {
            "X" => {
                let dur = num("dur")?;
                if dur < 0.0 {
                    return Err(at(format!("X '{name}' has negative dur {dur}")));
                }
            }
            "B" => open.entry((pid, tid)).or_default().push(name.to_string()),
            "E" => {
                let stack = open.entry((pid, tid)).or_default();
                let opened = stack.pop().ok_or_else(|| {
                    at(format!("E '{name}' on pid {pid} tid {tid} closes nothing"))
                })?;
                if opened != name {
                    return Err(at(format!(
                        "E '{name}' closes B '{opened}' on pid {pid} tid {tid} — \
                         span stack discipline violated"
                    )));
                }
            }
            "C" if e.get("args").and_then(Json::as_obj).is_none() => {
                return Err(at(format!("C '{name}' has no args object")));
            }
            _ => {}
        }
    }

    for ((pid, tid), stack) in &open {
        if let Some(name) = stack.last() {
            return Err(format!(
                "B '{name}' on pid {pid} tid {tid} is never closed ({} open span{})",
                stack.len(),
                if stack.len() == 1 { "" } else { "s" }
            ));
        }
    }

    Ok(TraceReport {
        events: events.len(),
        processes: pids.len(),
        lanes: lanes.len(),
        thread_names: thread_names.into_iter().collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{"traceEvents":[
{"name":"process_name","ph":"M","pid":1,"args":{"name":"host"}},
{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"attempt 0"}},
{"name":"job","ph":"B","ts":0,"pid":1,"tid":1},
{"name":"phase.map","ph":"B","ts":10,"pid":1,"tid":1},
{"name":"phase.map","ph":"E","ts":400,"pid":1,"tid":1},
{"name":"job","ph":"E","ts":500,"pid":1,"tid":1},
{"name":"map","ph":"X","ts":5,"dur":90,"pid":2,"tid":3,"args":{"task":"0"}},
{"name":"chaos.crash","ph":"i","ts":60,"pid":2,"tid":3,"s":"t"},
{"name":"io.retries","ph":"C","ts":500,"pid":1,"tid":1,"args":{"io.retries":3}}
],"displayTimeUnit":"ms"}
"#;

    #[test]
    fn accepts_a_well_formed_trace() {
        let r = validate(GOOD).unwrap();
        assert_eq!(r.events, 9);
        assert_eq!(r.processes, 2);
        assert!(r.lanes >= 2);
        assert_eq!(r.thread_names, vec!["attempt 0"]);
    }

    #[test]
    fn accepts_a_bare_event_array() {
        let r = validate(r#"[{"name":"x","ph":"X","ts":0,"dur":1,"pid":1,"tid":1}]"#).unwrap();
        assert_eq!(r.events, 1);
    }

    #[test]
    fn rejects_unbalanced_and_misnested_spans() {
        let err = validate(r#"[{"name":"a","ph":"B","ts":0,"pid":1,"tid":1}]"#).unwrap_err();
        assert!(err.contains("never closed"), "{err}");
        let err = validate(
            r#"[{"name":"a","ph":"B","ts":0,"pid":1,"tid":1},
                {"name":"b","ph":"E","ts":1,"pid":1,"tid":1}]"#,
        )
        .unwrap_err();
        assert!(err.contains("stack discipline"), "{err}");
        let err = validate(r#"[{"name":"a","ph":"E","ts":0,"pid":1,"tid":1}]"#).unwrap_err();
        assert!(err.contains("closes nothing"), "{err}");
        // Same names on different lanes do not interfere.
        validate(
            r#"[{"name":"a","ph":"B","ts":0,"pid":1,"tid":1},
                {"name":"a","ph":"B","ts":0,"pid":1,"tid":2},
                {"name":"a","ph":"E","ts":1,"pid":1,"tid":2},
                {"name":"a","ph":"E","ts":1,"pid":1,"tid":1}]"#,
        )
        .unwrap();
    }

    #[test]
    fn rejects_malformed_events() {
        let err = validate("not json").unwrap_err();
        assert!(err.contains("not valid JSON"), "{err}");
        let err = validate(r#"{"traceEvents":{}}"#).unwrap_err();
        assert!(err.contains("not an array"), "{err}");
        let err = validate(r#"[{"name":"x","ph":"Z","ts":0,"pid":1,"tid":1}]"#).unwrap_err();
        assert!(err.contains("unknown phase"), "{err}");
        let err = validate(r#"[{"name":"x","ph":"X","ts":0,"pid":1,"tid":1}]"#).unwrap_err();
        assert!(err.contains("no numeric 'dur'"), "{err}");
        let err =
            validate(r#"[{"name":"x","ph":"X","ts":0,"dur":-5,"pid":1,"tid":1}]"#).unwrap_err();
        assert!(err.contains("negative dur"), "{err}");
        let err = validate(r#"[{"ph":"X","ts":0,"dur":1,"pid":1,"tid":1}]"#).unwrap_err();
        assert!(err.contains("no string 'name'"), "{err}");
        let err = validate(r#"[{"name":"c","ph":"C","ts":0,"pid":1,"tid":1}]"#).unwrap_err();
        assert!(err.contains("no args object"), "{err}");
    }

    #[test]
    fn validates_the_live_exporter_output() {
        // End-to-end: the telemetry exporter's own output must pass.
        let recorder = gepeto_telemetry::Recorder::enabled();
        {
            let job = recorder.span("job", &[]);
            let _phase = job.child("phase.map", &[]);
        }
        let text = gepeto_telemetry::write_chrome_trace(&recorder.events());
        let r = validate(&text).unwrap();
        assert!(r.events >= 4, "{r:?}");
        assert!(r.thread_names.iter().any(|t| t.contains("attempt 0")));
    }
}
