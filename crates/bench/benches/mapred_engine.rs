//! Engine benchmarks: the MapReduce substrate itself — chunk-size
//! scaling of map-only jobs, shuffle-heavy jobs, combiner effect, DFS
//! ingestion, and failure-injection overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gepeto_mapred::{
    Cluster, Combiner, Dfs, Emitter, FailurePlan, FnMapper, MapOnlyJob, MapReduceJob, Reducer,
};
use std::hint::black_box;

#[derive(Clone)]
struct SumReducer;
impl Reducer<u64, u64> for SumReducer {
    type KOut = u64;
    type VOut = u64;
    fn reduce(&mut self, key: &u64, values: &[u64], out: &mut Emitter<u64, u64>) {
        out.emit(*key, values.iter().sum());
    }
}

#[derive(Clone)]
struct SumCombiner;
impl Combiner<u64, u64> for SumCombiner {
    fn combine(&mut self, _key: &u64, values: &[u64]) -> Vec<u64> {
        vec![values.iter().sum()]
    }
}

fn records() -> Vec<u64> {
    (0..200_000u64).collect()
}

fn mapper() -> impl gepeto_mapred::Mapper<u64, KOut = u64, VOut = u64> {
    FnMapper::new(|_o: u64, v: &u64, out: &mut Emitter<u64, u64>| out.emit(v % 1024, *v))
}

fn bench_engine(c: &mut Criterion) {
    let cluster = Cluster::local(5, 4);
    let mut group = c.benchmark_group("mapred-engine");
    group.sample_size(20);

    group.bench_function("dfs-ingest-200k", |b| {
        b.iter(|| {
            let mut dfs = Dfs::new(cluster.topology.clone(), 64 * 1024, 3);
            dfs.put_fixed("r", records(), 8).unwrap();
            black_box(dfs.num_blocks("r").unwrap())
        })
    });

    for chunk_kb in [16usize, 64, 256] {
        let mut dfs = Dfs::new(cluster.topology.clone(), chunk_kb * 1024, 3);
        dfs.put_fixed("r", records(), 8).unwrap();
        group.bench_with_input(BenchmarkId::new("map-only", chunk_kb), &chunk_kb, |b, _| {
            b.iter(|| {
                let m = FnMapper::new(|o: u64, v: &u64, out: &mut Emitter<u64, u64>| {
                    if v.is_multiple_of(7) {
                        out.emit(o, *v);
                    }
                });
                let r = MapOnlyJob::new("filter", &cluster, &dfs, "r", m)
                    .run()
                    .unwrap();
                black_box(r.output.len())
            })
        });
    }

    let mut dfs = Dfs::new(cluster.topology.clone(), 64 * 1024, 3);
    dfs.put_fixed("r", records(), 8).unwrap();
    group.bench_function("shuffle-heavy", |b| {
        b.iter(|| {
            let r = MapReduceJob::new("sum", &cluster, &dfs, "r", mapper(), SumReducer)
                .reducers(5)
                .run()
                .unwrap();
            black_box(r.output.len())
        })
    });
    group.bench_function("shuffle-heavy-combined", |b| {
        b.iter(|| {
            let r = MapReduceJob::new("sum", &cluster, &dfs, "r", mapper(), SumReducer)
                .with_combiner(SumCombiner)
                .reducers(5)
                .run()
                .unwrap();
            black_box(r.output.len())
        })
    });

    let flaky = Cluster::local(5, 4).with_failures(FailurePlan {
        map_fail_prob: 0.2,
        reduce_fail_prob: 0.2,
        seed: 11,
        max_attempts: 100,
    });
    group.bench_function("shuffle-heavy-20pct-failures", |b| {
        b.iter(|| {
            let r = MapReduceJob::new("sum", &flaky, &dfs, "r", mapper(), SumReducer)
                .reducers(5)
                .run()
                .unwrap();
            black_box(r.output.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
