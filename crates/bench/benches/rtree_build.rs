//! Figure 6 / §VII-C benchmarks: the 3-phase MapReduce R-tree build
//! under both space-filling curves, against direct STR bulk loading and
//! incremental insertion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gepeto::prelude::*;
use gepeto_bench::{dfs_for, parapluie, scaled_chunk_bytes};
use gepeto_geo::RTree;
use std::hint::black_box;

fn bench_rtree_build(c: &mut Criterion) {
    let ds = gepeto_bench::dataset(178, 0.01);
    let cluster = parapluie();
    let dfs = dfs_for(&cluster, &ds, scaled_chunk_bytes(32));
    let items: Vec<(GeoPoint, u64)> = ds
        .iter_traces()
        .enumerate()
        .map(|(i, t)| (t.point, i as u64))
        .collect();

    let mut group = c.benchmark_group("rtree-build");
    group.sample_size(10);
    for curve in [SpaceFillingCurve::ZOrder, SpaceFillingCurve::Hilbert] {
        let cfg = gepeto::rtree_build::RTreeBuildConfig {
            curve,
            partitions: 8,
            ..Default::default()
        };
        group.bench_function(BenchmarkId::new("mapreduce", curve.name()), |b| {
            b.iter(|| {
                let (tree, _) =
                    gepeto::rtree_build::mapreduce_build_rtree(&cluster, &dfs, "input", &cfg)
                        .unwrap();
                black_box(tree.len())
            })
        });
    }
    group.bench_function("direct-str-bulk", |b| {
        b.iter(|| black_box(RTree::bulk_load(items.clone()).len()))
    });
    group.bench_function("incremental-insert", |b| {
        b.iter(|| {
            let mut t = RTree::new();
            for &(p, i) in items.iter().take(20_000) {
                t.insert(p, i);
            }
            black_box(t.len())
        })
    });

    // Query cost on the built tree (what DJ-Cluster's mappers pay).
    let tree = RTree::bulk_load(items.clone());
    let center = GeneratorConfig::paper().city_center;
    for radius in [60.0, 300.0, 1_500.0] {
        group.bench_with_input(
            BenchmarkId::new("radius-query", radius as u64),
            &radius,
            |b, &r| b.iter(|| black_box(tree.within_radius_m(center, r).len())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rtree_build);
criterion_main!(benches);
