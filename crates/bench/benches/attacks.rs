//! §VIII benchmarks: the inference attacks and sanitizers integrated
//! into the MapReduce framework — per-user POI extraction and MMC
//! learning as user-keyed jobs, and per-trace sanitization as map-only
//! jobs, against their sequential counterparts.

use criterion::{criterion_group, criterion_main, Criterion};
use gepeto::prelude::*;
use gepeto::sanitize::{GaussianMask, PerTraceMechanism, Sanitizer};
use gepeto_bench::{dfs_for, parapluie, scaled_chunk_bytes};
use std::hint::black_box;

fn bench_attacks(c: &mut Criterion) {
    let ds = gepeto_bench::dataset(30, 0.01);
    let cluster = parapluie();
    let dfs = dfs_for(&cluster, &ds, scaled_chunk_bytes(16));
    let cfg = djcluster::DjConfig::default();

    let mut group = c.benchmark_group("attacks");
    group.sample_size(10);
    group.bench_function("poi-extraction/mapreduce", |b| {
        b.iter(|| {
            let (pois, _) = attacks::mapreduce_extract_pois(&cluster, &dfs, "input", &cfg).unwrap();
            black_box(pois.len())
        })
    });
    group.bench_function("poi-extraction/sequential", |b| {
        b.iter(|| black_box(attacks::extract_pois_dataset(&ds, &cfg).len()))
    });
    group.bench_function("mmc-learning/mapreduce", |b| {
        b.iter(|| {
            let (mmcs, _) = attacks::mapreduce_learn_mmcs(&cluster, &dfs, "input", &cfg).unwrap();
            black_box(mmcs.len())
        })
    });
    group.finish();

    let mut group = c.benchmark_group("sanitize");
    group.sample_size(20);
    let mask = GaussianMask {
        sigma_m: 100.0,
        seed: 1,
    };
    group.bench_function("gaussian/mapreduce", |b| {
        b.iter(|| {
            let (out, _) = gepeto::sanitize::mapreduce_sanitize(
                &cluster,
                &dfs,
                "input",
                PerTraceMechanism::Gaussian(mask),
            )
            .unwrap();
            black_box(out.num_traces())
        })
    });
    group.bench_function("gaussian/sequential", |b| {
        b.iter(|| black_box(mask.apply(&ds).num_traces()))
    });
    group.finish();
}

criterion_group!(benches, bench_attacks);
criterion_main!(benches);
