//! Micro-benchmarks of the hot kernels behind the columnar/shuffle fast
//! paths: SoA fused assignment vs the scalar AoS loop, hash grouping vs
//! sort-then-group, and varint-delta neighborhood payloads vs raw ids.
//!
//! These isolate the three optimizations gated end-to-end by
//! `gepeto-bench compare`; run them with
//! `cargo bench --bench kernels -- --measure`.

use criterion::{criterion_group, criterion_main, Criterion};
use gepeto::djcluster::EncodedNeighborhood;
use gepeto::kmeans::nearest_centroid;
use gepeto_geo::{CentroidsSoa, ClusterSum, DistanceMetric, PointsSoa};
use gepeto_mapred::{group_sorted, group_unsorted};
use gepeto_model::GeoPoint;
use std::hint::black_box;

fn points(n: usize) -> Vec<GeoPoint> {
    (0..n)
        .map(|i| {
            GeoPoint::new(
                39.5 + (i % 1000) as f64 * 1e-3,
                116.0 + (i / 1000) as f64 * 1e-2,
            )
        })
        .collect()
}

fn centroids(k: usize) -> Vec<GeoPoint> {
    (0..k)
        .map(|i| GeoPoint::new(39.5 + i as f64 * 0.1, 116.0 + i as f64 * 0.07))
        .collect()
}

fn bench_assignment(c: &mut Criterion) {
    let pts = points(100_000);
    let cents = centroids(8);
    let cols = PointsSoa::from_points(&pts);

    let mut group = c.benchmark_group("kmeans-assign-100k-k8");
    for metric in [DistanceMetric::SquaredEuclidean, DistanceMetric::Haversine] {
        let soa = CentroidsSoa::new(&cents, metric);
        group.bench_function(format!("scalar-two-pass/{}", metric.name()), |b| {
            b.iter(|| {
                // The pre-optimization shape: argmin pass, then sum pass.
                let assign: Vec<u32> = pts
                    .iter()
                    .map(|&p| nearest_centroid(p, &cents, metric))
                    .collect();
                let mut sums = vec![ClusterSum::default(); cents.len()];
                for (&p, &cid) in pts.iter().zip(&assign) {
                    let s = &mut sums[cid as usize];
                    s.lat_sum += p.lat;
                    s.lon_sum += p.lon;
                    s.count += 1;
                }
                black_box(sums)
            })
        });
        // The dispatching entry point: 4-wide lanes for planar metrics,
        // scalar for Haversine.
        group.bench_function(format!("soa-fused/{}", metric.name()), |b| {
            b.iter(|| {
                let mut sums = vec![ClusterSum::default(); cents.len()];
                let evals = soa.assign_sum(&cols.lat, &cols.lon, &mut sums);
                black_box((evals, sums))
            })
        });
        // The bit-exactness reference the lanes are property-tested
        // against — the lanes-vs-scalar delta is this row vs soa-fused.
        group.bench_function(format!("soa-scalar-reference/{}", metric.name()), |b| {
            b.iter(|| {
                let mut sums = vec![ClusterSum::default(); cents.len()];
                let evals = soa.assign_sum_scalar(&cols.lat, &cols.lon, &mut sums);
                black_box((evals, sums))
            })
        });
    }
    group.finish();
}

fn bench_pooled_assignment(c: &mut Criterion) {
    // Chunked point assignment on the work-stealing pool vs the same
    // scan on one thread — the `assign_points` path of every k-means
    // iteration. Speedup here is the host-parallelism headline.
    let pts = points(200_000);
    let cents = centroids(8);
    let soa = CentroidsSoa::new(&cents, DistanceMetric::SquaredEuclidean);

    let mut group = c.benchmark_group("kmeans-assign-points-200k-k8");
    group.sample_size(20);
    group.bench_function("sequential-scan", |b| {
        b.iter(|| {
            let assign: Vec<u32> = pts.iter().map(|&p| soa.nearest(p)).collect();
            black_box(assign)
        })
    });
    group.bench_function("pooled-chunks", |b| {
        b.iter(|| black_box(gepeto_geo::assign_points_pooled(&pts, &soa)))
    });
    group.finish();
}

fn bench_grouping(c: &mut Criterion) {
    // 200k pairs over 1k keys, emitted in hash-scattered order — the
    // shape of a concatenated reduce partition before grouping.
    let pairs: Vec<(u64, u64)> = (0..200_000u64)
        .map(|i| (i.wrapping_mul(2_654_435_761) % 1_000, i))
        .collect();

    let mut group = c.benchmark_group("reduce-grouping-200k");
    group.sample_size(20);
    group.bench_function("sort-then-group", |b| {
        b.iter(|| {
            let mut p = pairs.clone();
            p.sort_by_key(|a| a.0);
            black_box(group_sorted(p).len())
        })
    });
    group.bench_function("hash-group", |b| {
        b.iter(|| black_box(group_unsorted(pairs.clone()).len()))
    });
    group.finish();
}

fn bench_neighborhood_codec(c: &mut Criterion) {
    // 100 dense neighborhoods of 500 sorted ids — DJ-Cluster's shuffle.
    let hoods: Vec<Vec<u64>> = (0..100u64)
        .map(|h| (h * 37..h * 37 + 500).collect())
        .collect();
    let encoded: Vec<EncodedNeighborhood> = hoods
        .iter()
        .map(|h| EncodedNeighborhood::encode_sorted(h))
        .collect();

    let mut group = c.benchmark_group("neighborhood-codec-100x500");
    group.bench_function("raw-clone-and-sum", |b| {
        b.iter(|| {
            // The old shuffle moved raw id vectors; reading = slice scan.
            let total: u64 = hoods.iter().map(|h| h.clone().iter().sum::<u64>()).sum();
            black_box(total)
        })
    });
    group.bench_function("varint-encode", |b| {
        b.iter(|| {
            let bytes: usize = hoods
                .iter()
                .map(|h| EncodedNeighborhood::encode_sorted(h).encoded_len())
                .sum();
            black_box(bytes)
        })
    });
    group.bench_function("varint-stream-decode", |b| {
        b.iter(|| {
            let total: u64 = encoded.iter().map(|e| e.iter().sum::<u64>()).sum();
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(
    kernels,
    bench_assignment,
    bench_pooled_assignment,
    bench_grouping,
    bench_neighborhood_codec
);
criterion_main!(kernels);
