//! Table I / §V benchmarks: MapReduce down-sampling throughput across
//! window sizes and techniques, against the sequential baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gepeto::prelude::*;
use gepeto_bench::{dfs_for, parapluie, scaled_chunk_bytes};
use std::hint::black_box;

fn bench_sampling(c: &mut Criterion) {
    let ds = gepeto_bench::dataset(178, 0.01);
    let cluster = parapluie();
    let dfs = dfs_for(&cluster, &ds, scaled_chunk_bytes(64));

    let mut group = c.benchmark_group("sampling");
    group.sample_size(20);
    for window in [60i64, 300, 600] {
        let cfg = sampling::SamplingConfig::new(window, sampling::Technique::ClosestToUpperLimit);
        group.bench_with_input(BenchmarkId::new("mapreduce", window), &window, |b, _| {
            b.iter(|| {
                let (out, _) = sampling::mapreduce_sample(&cluster, &dfs, "input", &cfg).unwrap();
                black_box(out.num_traces())
            })
        });
        group.bench_with_input(BenchmarkId::new("sequential", window), &window, |b, _| {
            b.iter(|| black_box(sampling::sequential_sample(&ds, &cfg).num_traces()))
        });
    }
    // Typed vs text input at the 60 s window (the §VI SequenceFile
    // discussion: parsing text in the mappers costs real time).
    let mut text_dfs = gepeto::textio::text_dfs(&cluster, scaled_chunk_bytes(64));
    gepeto::textio::put_dataset_as_text(&mut text_dfs, "input", &ds).unwrap();
    let cfg60 = sampling::SamplingConfig::new(60, sampling::Technique::ClosestToUpperLimit);
    group.bench_function("input-format/typed", |b| {
        b.iter(|| {
            let (out, _) = sampling::mapreduce_sample(&cluster, &dfs, "input", &cfg60).unwrap();
            black_box(out.num_traces())
        })
    });
    group.bench_function("input-format/text", |b| {
        b.iter(|| {
            let r = gepeto_mapred::MapOnlyJob::new(
                "text-sampling",
                &cluster,
                &text_dfs,
                "input",
                gepeto::textio::ParsingMapper::new(sampling::SamplingMapper::new(cfg60)),
            )
            .run()
            .unwrap();
            black_box(r.output.len())
        })
    });

    // Technique comparison (Figures 2 vs 3) at the 60 s window.
    for (name, technique) in [
        ("upper-limit", sampling::Technique::ClosestToUpperLimit),
        ("middle", sampling::Technique::ClosestToMiddle),
    ] {
        let cfg = sampling::SamplingConfig::new(60, technique);
        group.bench_function(BenchmarkId::new("technique", name), |b| {
            b.iter(|| {
                let (out, _) = sampling::mapreduce_sample(&cluster, &dfs, "input", &cfg).unwrap();
                black_box(out.num_traces())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
