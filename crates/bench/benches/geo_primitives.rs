//! Micro-benchmarks of the geometric substrate: the §VI observation that
//! "the Haversine distance increases the execution time … compared to
//! the squared Euclidean distance", plus curve encoding and R-tree
//! queries against brute force.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gepeto_geo::sfc::{hilbert_xy_to_d, morton_encode};
use gepeto_geo::{haversine_m, DistanceMetric, RTree};
use gepeto_model::GeoPoint;
use std::hint::black_box;

fn points(n: usize) -> Vec<GeoPoint> {
    (0..n)
        .map(|i| {
            GeoPoint::new(
                39.5 + (i % 1000) as f64 * 1e-3,
                116.0 + (i / 1000) as f64 * 1e-2,
            )
        })
        .collect()
}

fn bench_geo(c: &mut Criterion) {
    let pts = points(100_000);
    let center = GeoPoint::new(39.9, 116.4);

    let mut group = c.benchmark_group("distances");
    for metric in [
        DistanceMetric::SquaredEuclidean,
        DistanceMetric::Euclidean,
        DistanceMetric::Manhattan,
        DistanceMetric::Haversine,
    ] {
        group.bench_function(BenchmarkId::new("100k", metric.name()), |b| {
            b.iter(|| {
                let s: f64 = pts.iter().map(|&p| metric.between(center, p)).sum();
                black_box(s)
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("space-filling-curves");
    group.bench_function("morton-1M", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1_000_000u32 {
                acc ^= morton_encode(i, i.wrapping_mul(2_654_435_761));
            }
            black_box(acc)
        })
    });
    group.bench_function("hilbert-1M", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1_000_000u32 {
                acc ^= hilbert_xy_to_d(16, i & 0xFFFF, i.wrapping_mul(2_654_435_761) & 0xFFFF);
            }
            black_box(acc)
        })
    });
    group.finish();

    let mut group = c.benchmark_group("rtree");
    group.sample_size(20);
    let items: Vec<(GeoPoint, usize)> = pts
        .iter()
        .copied()
        .enumerate()
        .map(|(i, p)| (p, i))
        .collect();
    group.bench_function("bulk-load-100k", |b| {
        b.iter(|| black_box(RTree::bulk_load(items.clone()).len()))
    });
    let tree = RTree::bulk_load(items);
    group.bench_function("radius-query-60m", |b| {
        b.iter(|| black_box(tree.within_radius_m(center, 60.0).len()))
    });
    group.bench_function("radius-bruteforce-60m", |b| {
        b.iter(|| {
            black_box(
                pts.iter()
                    .filter(|&&p| haversine_m(center, p) <= 60.0)
                    .count(),
            )
        })
    });
    group.bench_function("knn-10", |b| {
        b.iter(|| black_box(tree.nearest_k(center, 10).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_geo);
criterion_main!(benches);
