//! Table IV / §VII benchmarks: the two preprocessing jobs, the
//! neighborhood+merge clustering job, and the end-to-end pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gepeto::prelude::*;
use gepeto_bench::{dfs_for, parapluie, scaled_chunk_bytes};
use std::hint::black_box;

fn bench_djcluster(c: &mut Criterion) {
    let ds = gepeto_bench::dataset(178, 0.01);
    let cluster = parapluie();
    let cfg = djcluster::DjConfig::default();

    let mut group = c.benchmark_group("djcluster");
    group.sample_size(10);

    // Preprocessing at each Table IV sampling rate.
    for window in [60i64, 300, 600] {
        let scfg = sampling::SamplingConfig::new(window, sampling::Technique::ClosestToUpperLimit);
        let sampled = sampling::sequential_sample(&ds, &scfg);
        group.bench_with_input(BenchmarkId::new("preprocess", window), &window, |b, _| {
            b.iter(|| {
                let mut dfs = dfs_for(&cluster, &sampled, scaled_chunk_bytes(64));
                let pre =
                    djcluster::mapreduce_preprocess(&cluster, &mut dfs, "input", "clean", &cfg)
                        .unwrap();
                black_box(pre.after_dedup)
            })
        });
    }

    // The clustering job on the 1-min preprocessed data: direct R-tree vs
    // the MapReduce-built R-tree.
    let scfg = sampling::SamplingConfig::new(60, sampling::Technique::ClosestToUpperLimit);
    let pre = djcluster::sequential_preprocess(&sampling::sequential_sample(&ds, &scfg), &cfg);
    let dfs = dfs_for(&cluster, &pre, scaled_chunk_bytes(32));
    group.bench_function("cluster/direct-rtree", |b| {
        b.iter(|| {
            let (clustering, _) =
                djcluster::mapreduce_djcluster(&cluster, &dfs, "input", &cfg, None).unwrap();
            black_box(clustering.clusters.len())
        })
    });
    let rcfg = gepeto::rtree_build::RTreeBuildConfig::default();
    group.bench_function("cluster/mapreduce-rtree", |b| {
        b.iter(|| {
            let (clustering, _) =
                djcluster::mapreduce_djcluster(&cluster, &dfs, "input", &cfg, Some(&rcfg)).unwrap();
            black_box(clustering.clusters.len())
        })
    });

    // Sequential baseline on the same preprocessed traces.
    let traces = pre.to_traces();
    group.bench_function("cluster/sequential", |b| {
        b.iter(|| {
            black_box(
                djcluster::sequential_djcluster(&traces, &cfg)
                    .clusters
                    .len(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_djcluster);
criterion_main!(benches);
