//! Table III / §VI benchmarks: one MapReduced k-means iteration across
//! the paper's grid — distance metric × chunk size × dataset size — plus
//! the combiner ablation and the sequential baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gepeto::prelude::*;
use gepeto_bench::{convergence_delta_for, dfs_for, parapluie, scaled_chunk_bytes};
use gepeto_geo::DistanceMetric;
use std::hint::black_box;

fn cfg(metric: DistanceMetric, use_combiner: bool) -> kmeans::KMeansConfig {
    kmeans::KMeansConfig {
        k: 11,
        distance: metric,
        convergence_delta: convergence_delta_for(metric),
        max_iterations: 150,
        seed: 1,
        use_combiner,
        memory_budget: None,
    }
}

fn bench_kmeans(c: &mut Criterion) {
    let cluster = parapluie();
    let small = gepeto_bench::dataset(90, 0.005);
    let full = gepeto_bench::dataset(178, 0.01);
    let points_full: Vec<GeoPoint> = full.iter_traces().map(|t| t.point).collect();
    let centroids = kmeans::initial_centroids(&points_full, 11, 1);

    let mut group = c.benchmark_group("kmeans-iteration");
    group.sample_size(15);
    // The Table III grid.
    for (label, ds) in [("66MB", &small), ("128MB", &full)] {
        for metric in [DistanceMetric::SquaredEuclidean, DistanceMetric::Haversine] {
            for chunk_mb in [32usize, 64] {
                let dfs = dfs_for(&cluster, ds, scaled_chunk_bytes(chunk_mb));
                let id = format!("{label}/{}/{}MB", metric.name(), chunk_mb);
                let c = cfg(metric, false);
                group.bench_function(BenchmarkId::new("table3", id), |b| {
                    b.iter(|| {
                        let (next, _) =
                            kmeans::mapreduce_iteration(&cluster, &dfs, "input", &centroids, &c)
                                .unwrap();
                        black_box(next)
                    })
                });
            }
        }
    }
    // Combiner ablation.
    let dfs = dfs_for(&cluster, &full, scaled_chunk_bytes(32));
    for use_combiner in [false, true] {
        let c2 = cfg(DistanceMetric::SquaredEuclidean, use_combiner);
        let name = if use_combiner { "with" } else { "without" };
        group.bench_function(BenchmarkId::new("combiner", name), |b| {
            b.iter(|| {
                let (next, _) =
                    kmeans::mapreduce_iteration(&cluster, &dfs, "input", &centroids, &c2).unwrap();
                black_box(next)
            })
        });
    }
    // Mean vs median update rule.
    group.bench_function("median-iteration", |b| {
        b.iter(|| {
            let c2 = cfg(DistanceMetric::SquaredEuclidean, false);
            let (next, _) =
                kmeans::mapreduce_median_iteration(&cluster, &dfs, "input", &centroids, &c2)
                    .unwrap();
            black_box(next)
        })
    });
    // Sequential baseline.
    group.bench_function("sequential-iteration", |b| {
        b.iter(|| {
            black_box(kmeans::sequential_iteration(
                &points_full,
                &centroids,
                DistanceMetric::SquaredEuclidean,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kmeans);
criterion_main!(benches);
