//! A small, real work-stealing thread pool for host-side execution.
//!
//! The offline rayon shim (`crates/shims/rayon`) splits work eagerly into
//! one chunk per thread and joins — no stealing, no load balancing, and a
//! fresh `std::thread::spawn` per chunk per call. This crate is the real
//! substrate the hot paths run on:
//!
//! - **persistent workers** — `threads - 1` worker threads plus the
//!   submitting thread itself (so `--threads N` means N executors, and
//!   `--threads 1` runs inline on the caller with zero pool overhead);
//! - **global injector** — batches are pushed FIFO into a shared queue;
//!   idle workers move up to half of it into their own deque at a time;
//! - **per-worker deques** — owners pop LIFO (cache-warm), thieves steal
//!   half from the FIFO end (oldest first, classic steal-half);
//! - **scoped batches** — [`Pool::run`] borrows the task closure for the
//!   duration of the call; the caller participates in draining tasks and
//!   does not return until every task has executed, so the closure may
//!   capture non-`'static` references;
//! - **panic propagation** — the first worker panic is captured and
//!   re-raised on the submitting thread via `resume_unwind`, like rayon.
//!
//! # Determinism contract
//!
//! The pool schedules *when* a task runs, never *what it observes*:
//! [`Pool::map_indexed`] writes each result into a preallocated slot by
//! index, so results always come back in input order regardless of which
//! worker ran what. Combined with the fixed-size chunk folds used by the
//! callers (k-means' 16 384-point chunks, per-partition reduce tasks),
//! every output is byte-identical at any thread count, and `--threads 1`
//! reproduces the pre-pool sequential outputs exactly.

use std::any::Any;
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// How long an idle worker sleeps before rescanning the queues. The
/// timed wait doubles as the backstop for the (benign) race where work
/// lands in a victim's deque between a thief's scan and its sleep.
const IDLE_WAIT: Duration = Duration::from_millis(1);

/// How long a submitting thread waits for batch completion before
/// rescanning for tasks it could help with (nested batches create new
/// work after the caller last looked).
const CALLER_WAIT: Duration = Duration::from_micros(200);

// ---------------------------------------------------------------------------
// Batches and tasks
// ---------------------------------------------------------------------------

/// One in-flight `run` call: the (lifetime-erased) task body plus the
/// completion latch. Safety: `Pool::run` blocks until `remaining == 0`,
/// so the erased borrow outlives every dereference.
struct Batch {
    f: &'static (dyn Fn(usize) + Sync),
    remaining: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    done: Mutex<bool>,
    done_cv: Condvar,
}

/// One unit of work: run index `index` of `batch`.
struct Task {
    batch: Arc<Batch>,
    index: usize,
}

/// Where to charge a task's execution time.
enum Executor {
    Worker(usize),
    Caller,
}

// ---------------------------------------------------------------------------
// Shared pool state
// ---------------------------------------------------------------------------

struct Shared {
    /// Global FIFO all batches are submitted to.
    injector: Mutex<VecDeque<Task>>,
    /// Signalled when the injector gains work or the pool shuts down.
    idle_cv: Condvar,
    /// Per-worker deques: owner pops LIFO from the back, thieves drain
    /// FIFO from the front.
    locals: Vec<Mutex<VecDeque<Task>>>,
    shutdown: AtomicBool,
    stats: StatsCells,
}

struct StatsCells {
    tasks: AtomicU64,
    steals: AtomicU64,
    batches: AtomicU64,
    worker_busy_ns: Vec<AtomicU64>,
    caller_busy_ns: AtomicU64,
}

/// A point-in-time snapshot of the pool's cumulative counters, read by
/// the telemetry `Monitor` and exported as the `gepeto_pool_*`
/// Prometheus families.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PoolStats {
    /// Total parallelism: spawned workers + the submitting thread.
    pub threads: usize,
    /// Tasks executed (across workers and submitting threads).
    pub tasks: u64,
    /// Steal-half operations against another worker's deque.
    pub steals: u64,
    /// `run` batches submitted.
    pub batches: u64,
    /// Busy nanoseconds per spawned worker (length `threads - 1`).
    pub worker_busy_ns: Vec<u64>,
    /// Busy nanoseconds accrued by submitting threads while helping.
    pub caller_busy_ns: u64,
}

impl PoolStats {
    /// Total busy nanoseconds across every executor.
    pub fn busy_ns(&self) -> u64 {
        self.worker_busy_ns.iter().sum::<u64>() + self.caller_busy_ns
    }
}

// ---------------------------------------------------------------------------
// The pool
// ---------------------------------------------------------------------------

/// A work-stealing pool of `threads - 1` persistent workers; the
/// submitting thread is the final executor. See the crate docs for the
/// scheduling and determinism contract.
pub struct Pool {
    shared: Arc<Shared>,
    threads: usize,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Pool {
    /// A pool with `threads` total executors (clamped to at least 1).
    /// `threads == 1` spawns nothing; every `run` executes inline.
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let workers = threads - 1;
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            idle_cv: Condvar::new(),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            shutdown: AtomicBool::new(false),
            stats: StatsCells {
                tasks: AtomicU64::new(0),
                steals: AtomicU64::new(0),
                batches: AtomicU64::new(0),
                worker_busy_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
                caller_busy_ns: AtomicU64::new(0),
            },
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gepeto-pool-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool {
            shared,
            threads,
            handles: Mutex::new(handles),
        }
    }

    /// Total parallelism (spawned workers + the submitting thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(0), f(1), …, f(n - 1)`, each exactly once, across the
    /// pool; returns once all have finished. With one thread (or one
    /// task) execution is inline on the caller in index order. A panic
    /// in any task resurfaces here after the batch drains.
    pub fn run(&self, n: usize, f: &(dyn Fn(usize) + Sync)) {
        if n == 0 {
            return;
        }
        self.shared.stats.batches.fetch_add(1, Ordering::Relaxed);
        if self.threads == 1 || n == 1 {
            for i in 0..n {
                f(i);
            }
            self.shared
                .stats
                .tasks
                .fetch_add(n as u64, Ordering::Relaxed);
            return;
        }
        // Erase the borrow's lifetime: sound because this call does not
        // return until `remaining` hits zero, i.e. after the last use.
        let f: &'static (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(f) };
        let batch = Arc::new(Batch {
            f,
            remaining: AtomicUsize::new(n),
            panic: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        {
            let mut injector = self.shared.injector.lock().unwrap();
            for index in 0..n {
                injector.push_back(Task {
                    batch: Arc::clone(&batch),
                    index,
                });
            }
        }
        self.shared.idle_cv.notify_all();
        // The caller is an executor too: drain tasks (any batch — nested
        // calls inject sub-batches this thread may as well help with)
        // until this batch completes.
        while batch.remaining.load(Ordering::Acquire) > 0 {
            match find_task(&self.shared, None) {
                Some(task) => execute(&self.shared, task, Executor::Caller),
                None => {
                    let guard = batch.done.lock().unwrap();
                    if !*guard {
                        drop(batch.done_cv.wait_timeout(guard, CALLER_WAIT).unwrap());
                    }
                }
            }
        }
        let payload = batch.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Runs `f` over `0..n` and collects the results **in index order**
    /// (each result is written into its preallocated slot, so execution
    /// order never shows). On panic the already-produced results leak
    /// rather than drop; the panic itself propagates.
    pub fn map_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        /// Shares the slot array across workers; each index is written
        /// exactly once by the task that owns it. (Accessed only through
        /// the method so closures capture the `Sync` wrapper, not the
        /// raw cell slice.)
        struct Slots<'a, R>(&'a [UnsafeCell<MaybeUninit<R>>]);
        unsafe impl<R: Send> Sync for Slots<'_, R> {}
        impl<R> Slots<'_, R> {
            fn write(&self, i: usize, value: R) {
                unsafe { (*self.0[i].get()).write(value) };
            }
        }

        let slots: Vec<UnsafeCell<MaybeUninit<R>>> = (0..n)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        let shared = Slots(&slots);
        self.run(n, &|i| shared.write(i, f(i)));
        // `run` returned without panicking, so all n slots are written.
        slots
            .into_iter()
            .map(|cell| unsafe { cell.into_inner().assume_init() })
            .collect()
    }

    /// Maps `f` over an owned `Vec`, returning results in input order.
    /// Each item is moved out of its slot by the one task that owns its
    /// index (on panic, untaken items leak rather than drop).
    pub fn map_vec<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        struct Cells<'a, T>(&'a [UnsafeCell<Option<T>>]);
        unsafe impl<T: Send> Sync for Cells<'_, T> {}
        impl<T> Cells<'_, T> {
            fn take(&self, i: usize) -> Option<T> {
                unsafe { (*self.0[i].get()).take() }
            }
        }

        let n = items.len();
        let cells: Vec<UnsafeCell<Option<T>>> = items
            .into_iter()
            .map(|t| UnsafeCell::new(Some(t)))
            .collect();
        let shared = Cells(&cells);
        self.map_indexed(n, |i| {
            let item = shared.take(i).expect("index taken once");
            f(item)
        })
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> PoolStats {
        let cells = &self.shared.stats;
        PoolStats {
            threads: self.threads,
            tasks: cells.tasks.load(Ordering::Relaxed),
            steals: cells.steals.load(Ordering::Relaxed),
            batches: cells.batches.load(Ordering::Relaxed),
            worker_busy_ns: cells
                .worker_busy_ns
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            caller_busy_ns: cells.caller_busy_ns.load(Ordering::Relaxed),
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.idle_cv.notify_all();
        for handle in self.handles.lock().unwrap().drain(..) {
            let _ = handle.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Shared, w: usize) {
    loop {
        if let Some(task) = find_task(shared, Some(w)) {
            execute(shared, task, Executor::Worker(w));
            continue;
        }
        let injector = shared.injector.lock().unwrap();
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if injector.is_empty() {
            // Timed: stealable work may appear in a sibling deque
            // without an injector notification.
            drop(shared.idle_cv.wait_timeout(injector, IDLE_WAIT).unwrap());
        }
    }
}

/// Finds the next task for executor `me` (`None` = a submitting thread,
/// which takes one task at a time and never keeps a deque):
/// own deque LIFO → injector (move up to half into own deque) →
/// steal-half from a sibling, scanning from `me + 1`.
fn find_task(shared: &Shared, me: Option<usize>) -> Option<Task> {
    if let Some(w) = me {
        if let Some(task) = shared.locals[w].lock().unwrap().pop_back() {
            return Some(task);
        }
    }
    {
        let mut injector = shared.injector.lock().unwrap();
        if let Some(first) = injector.pop_front() {
            let extra = match me {
                Some(_) => (injector.len() + 1).div_ceil(2) - 1,
                None => 0,
            };
            let grabbed: Vec<Task> = injector.drain(..extra).collect();
            let more = !injector.is_empty();
            drop(injector);
            if more {
                shared.idle_cv.notify_all();
            }
            if let Some(w) = me {
                if !grabbed.is_empty() {
                    shared.locals[w].lock().unwrap().extend(grabbed);
                }
            }
            return Some(first);
        }
    }
    let workers = shared.locals.len();
    let start = me.map_or(0, |w| w + 1);
    for offset in 0..workers {
        let victim = (start + offset) % workers;
        if Some(victim) == me {
            continue;
        }
        let mut deque = shared.locals[victim].lock().unwrap();
        let Some(first) = deque.pop_front() else {
            continue;
        };
        let extra = match me {
            Some(_) => (deque.len() + 1).div_ceil(2) - 1,
            None => 0,
        };
        let grabbed: Vec<Task> = deque.drain(..extra).collect();
        drop(deque);
        shared.stats.steals.fetch_add(1, Ordering::Relaxed);
        if let Some(w) = me {
            if !grabbed.is_empty() {
                shared.locals[w].lock().unwrap().extend(grabbed);
            }
        }
        return Some(first);
    }
    None
}

fn execute(shared: &Shared, task: Task, executor: Executor) {
    let started = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| (task.batch.f)(task.index)));
    let busy_ns = started.elapsed().as_nanos() as u64;
    match executor {
        Executor::Worker(w) => {
            shared.stats.worker_busy_ns[w].fetch_add(busy_ns, Ordering::Relaxed);
        }
        Executor::Caller => {
            shared
                .stats
                .caller_busy_ns
                .fetch_add(busy_ns, Ordering::Relaxed);
        }
    }
    shared.stats.tasks.fetch_add(1, Ordering::Relaxed);
    if let Err(payload) = outcome {
        let mut slot = task.batch.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
    if task.batch.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        let mut done = task.batch.done.lock().unwrap();
        *done = true;
        task.batch.done_cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// The process-wide pool
// ---------------------------------------------------------------------------

static CONFIGURED_THREADS: AtomicUsize = AtomicUsize::new(0);
static GLOBAL: OnceLock<Pool> = OnceLock::new();

/// Configures the global pool's thread count. Must run before the first
/// [`global`] call (the CLI does this while parsing `--threads`); once
/// the pool exists the setting is inert. Returns whether it took effect.
pub fn set_threads(threads: usize) -> bool {
    CONFIGURED_THREADS.store(threads.max(1), Ordering::SeqCst);
    GLOBAL.get().is_none()
}

/// The process-wide pool, created on first use with the configured
/// thread count (default: `available_parallelism`).
pub fn global() -> &'static Pool {
    GLOBAL.get_or_init(|| {
        let threads = match CONFIGURED_THREADS.load(Ordering::SeqCst) {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            configured => configured,
        };
        Pool::new(threads)
    })
}

/// Stats of the global pool — all zeros (and `threads == 0`) if nothing
/// has created it yet. Never forces pool creation: telemetry snapshots
/// must stay read-only.
pub fn global_stats() -> PoolStats {
    GLOBAL.get().map(Pool::stats).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn map_indexed_returns_results_in_input_order() {
        let pool = Pool::new(4);
        let out = pool.map_indexed(1000, |i| i * i);
        assert_eq!(out, (0..1000).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn map_vec_moves_each_item_exactly_once() {
        let pool = Pool::new(3);
        let items: Vec<String> = (0..257).map(|i| format!("item-{i}")).collect();
        let out = pool.map_vec(items, |s| s.len());
        let expected: Vec<usize> = (0..257).map(|i| format!("item-{i}").len()).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let pool = Pool::new(4);
        let n = 4096;
        let counters: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        pool.run(n, &|i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn single_thread_pool_runs_inline_in_index_order() {
        let pool = Pool::new(1);
        let order = Mutex::new(Vec::new());
        pool.run(64, &|i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), (0..64).collect::<Vec<_>>());
        assert!(pool.stats().worker_busy_ns.is_empty());
    }

    #[test]
    #[should_panic(expected = "boom at 17")]
    fn worker_panic_propagates_to_the_caller() {
        let pool = Pool::new(4);
        pool.run(64, &|i| {
            if i == 17 {
                panic!("boom at 17");
            }
        });
    }

    #[test]
    fn pool_survives_a_panicked_batch() {
        let pool = Pool::new(4);
        let poisoned = catch_unwind(AssertUnwindSafe(|| {
            pool.run(32, &|i| {
                if i % 2 == 0 {
                    panic!("even index");
                }
            });
        }));
        assert!(poisoned.is_err());
        let out = pool.map_indexed(128, |i| i + 1);
        assert_eq!(out[127], 128);
    }

    #[test]
    fn nested_run_from_a_worker_does_not_deadlock() {
        let pool = Arc::new(Pool::new(4));
        let inner_total = AtomicU32::new(0);
        let p = Arc::clone(&pool);
        pool.run(8, &|_| {
            p.run(16, &|_| {
                inner_total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(inner_total.load(Ordering::Relaxed), 8 * 16);
    }

    #[test]
    fn stats_count_tasks_and_batches() {
        let pool = Pool::new(2);
        pool.map_indexed(100, |i| i);
        pool.map_indexed(50, |i| i);
        let stats = pool.stats();
        assert_eq!(stats.threads, 2);
        assert_eq!(stats.tasks, 150);
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.worker_busy_ns.len(), 1);
    }

    #[test]
    fn uneven_load_triggers_steal_half() {
        // Slow tasks: the first worker gulps half the injector into its
        // deque and sits on a task, so executors that come up empty must
        // steal from it before the batch can finish promptly.
        let pool = Pool::new(4);
        let deadline = Instant::now() + Duration::from_secs(20);
        while pool.stats().steals == 0 && Instant::now() < deadline {
            pool.run(16, &|_| std::thread::sleep(Duration::from_millis(2)));
        }
        let stats = pool.stats();
        assert!(
            stats.steals > 0,
            "expected steal-half traffic under uneven load, got {stats:?}"
        );
    }

    #[test]
    fn global_pool_respects_configured_threads() {
        // Runs in-process alongside other tests: only assert invariants
        // that hold whether or not the global pool already exists.
        let stats = global_stats();
        assert!(stats.threads == 0 || stats.threads >= 1);
        let pool = global();
        assert!(pool.threads() >= 1);
        assert_eq!(global_stats().threads, pool.threads());
    }

    #[test]
    fn zero_tasks_is_a_no_op() {
        let pool = Pool::new(4);
        pool.run(0, &|_| panic!("must not run"));
        let out: Vec<u8> = pool.map_indexed(0, |_| unreachable!());
        assert!(out.is_empty());
    }
}
