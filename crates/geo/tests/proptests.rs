//! Property-based tests for the geometric substrate: curve bijectivity,
//! metric axioms, and R-tree query equivalence against brute force.

use gepeto_geo::distance::equirectangular_m;
use gepeto_geo::rtree::radius_bounding_rect;
use gepeto_geo::sfc::{hilbert_d_to_xy, hilbert_xy_to_d, morton_decode, morton_encode, GridMapper};
use gepeto_geo::{haversine_m, DistanceMetric, RTree, Rect, SpaceFillingCurve};
use gepeto_model::GeoPoint;
use proptest::prelude::*;

fn small_point() -> impl Strategy<Value = GeoPoint> {
    // A city-sized box (Beijing-ish), the regime GeoLife lives in.
    (39.0f64..41.0, 115.0f64..117.0).prop_map(|(lat, lon)| GeoPoint::new(lat, lon))
}

fn any_point() -> impl Strategy<Value = GeoPoint> {
    (-85.0f64..85.0, -179.0f64..179.0).prop_map(|(lat, lon)| GeoPoint::new(lat, lon))
}

proptest! {
    #[test]
    fn morton_round_trips(x in any::<u32>(), y in any::<u32>()) {
        prop_assert_eq!(morton_decode(morton_encode(x, y)), (x, y));
    }

    #[test]
    fn hilbert_round_trips(order in 1u32..=16, xy in any::<(u32, u32)>()) {
        let mask = (1u32 << order) - 1;
        let (x, y) = (xy.0 & mask, xy.1 & mask);
        let d = hilbert_xy_to_d(order, x, y);
        prop_assert!(d < 1u64 << (2 * order));
        prop_assert_eq!(hilbert_d_to_xy(order, d), (x, y));
    }

    #[test]
    fn hilbert_neighbors_on_curve_are_grid_neighbors(order in 2u32..=8, seed in any::<u64>()) {
        let cells = 1u64 << (2 * order);
        let d = seed % (cells - 1);
        let (x1, y1) = hilbert_d_to_xy(order, d);
        let (x2, y2) = hilbert_d_to_xy(order, d + 1);
        prop_assert_eq!(x1.abs_diff(x2) + y1.abs_diff(y2), 1);
    }

    #[test]
    fn haversine_metric_axioms(a in any_point(), b in any_point()) {
        let ab = haversine_m(a, b);
        let ba = haversine_m(b, a);
        prop_assert!(ab >= 0.0);
        prop_assert!((ab - ba).abs() < 1e-6);
        prop_assert!(haversine_m(a, a) < 1e-9);
    }

    #[test]
    fn haversine_triangle_inequality(a in any_point(), b in any_point(), c in any_point()) {
        let slack = 1e-6; // float tolerance
        prop_assert!(haversine_m(a, c) <= haversine_m(a, b) + haversine_m(b, c) + slack);
    }

    #[test]
    fn squared_euclidean_orders_like_euclidean(
        a in any_point(), b in any_point(), c in any_point()
    ) {
        let e = DistanceMetric::Euclidean;
        let s = DistanceMetric::SquaredEuclidean;
        let cmp_e = e.between(a, b).partial_cmp(&e.between(a, c)).unwrap();
        let cmp_s = s.between(a, b).partial_cmp(&s.between(a, c)).unwrap();
        prop_assert_eq!(cmp_e, cmp_s);
    }

    #[test]
    fn equirectangular_close_to_haversine_within_city(a in small_point(), b in small_point()) {
        let h = haversine_m(a, b);
        let e = equirectangular_m(a, b);
        // Within a 2-degree box the approximation stays within 1%.
        prop_assert!((h - e).abs() <= h * 0.01 + 0.5, "h={} e={}", h, e);
    }

    #[test]
    fn grid_mapper_scalar_in_range(
        p in small_point(),
        order in 1u32..=20,
        hilbert in any::<bool>()
    ) {
        let g = GridMapper::new(Rect::new(39.0, 115.0, 41.0, 117.0), order);
        let curve = if hilbert { SpaceFillingCurve::Hilbert } else { SpaceFillingCurve::ZOrder };
        let s = g.scalar(curve, p);
        prop_assert!(s < 1u64 << (2 * order));
    }

    #[test]
    fn rtree_rect_query_equals_brute_force(
        pts in prop::collection::vec(small_point(), 1..200),
        q in (39.0f64..41.0, 115.0f64..117.0, 0.0f64..0.5, 0.0f64..0.5),
        bulk in any::<bool>(),
    ) {
        let items: Vec<(GeoPoint, usize)> =
            pts.iter().copied().enumerate().map(|(i, p)| (p, i)).collect();
        let tree = if bulk {
            RTree::bulk_load_with_max_entries(items, 5)
        } else {
            let mut t = RTree::with_max_entries(5);
            for (p, i) in items { t.insert(p, i); }
            t
        };
        prop_assert!(tree.check_invariants().is_none(), "{:?}", tree.check_invariants());
        let rect = Rect::new(q.0, q.1, (q.0 + q.2).min(41.0), (q.1 + q.3).min(117.0));
        let mut got: Vec<usize> = tree.query_rect(&rect).iter().map(|e| e.payload).collect();
        got.sort_unstable();
        let mut want: Vec<usize> = pts.iter().enumerate()
            .filter(|(_, p)| rect.contains_point(**p))
            .map(|(i, _)| i).collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn rtree_radius_query_equals_brute_force(
        pts in prop::collection::vec(small_point(), 1..200),
        center in small_point(),
        radius in 10.0f64..20_000.0,
    ) {
        let items: Vec<(GeoPoint, usize)> =
            pts.iter().copied().enumerate().map(|(i, p)| (p, i)).collect();
        let tree = RTree::bulk_load_with_max_entries(items, 8);
        let mut got: Vec<usize> =
            tree.within_radius_m(center, radius).iter().map(|e| e.payload).collect();
        got.sort_unstable();
        let mut want: Vec<usize> = pts.iter().enumerate()
            .filter(|(_, p)| haversine_m(center, **p) <= radius)
            .map(|(i, _)| i).collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn rtree_knn_matches_brute_force_set(
        pts in prop::collection::vec(small_point(), 1..150),
        center in small_point(),
        k in 1usize..20,
    ) {
        let items: Vec<(GeoPoint, usize)> =
            pts.iter().copied().enumerate().map(|(i, p)| (p, i)).collect();
        let tree = RTree::bulk_load_with_max_entries(items, 6);
        let got = tree.nearest_k(center, k);
        let k_eff = k.min(pts.len());
        prop_assert_eq!(got.len(), k_eff);
        let d2 = |p: GeoPoint| {
            let (a, b) = (p.lat - center.lat, p.lon - center.lon);
            a * a + b * b
        };
        // kNN result distances match the k smallest brute-force distances
        // (point sets may differ under exact ties; distances may not).
        let mut brute: Vec<f64> = pts.iter().map(|p| d2(*p)).collect();
        brute.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (i, e) in got.iter().enumerate() {
            prop_assert!((d2(e.point) - brute[i]).abs() < 1e-18);
        }
    }

    #[test]
    fn radius_rect_never_clips_the_disc(center in any_point(), radius in 1.0f64..100_000.0) {
        let rect = radius_bounding_rect(center, radius);
        // Probe points just inside the disc along 16 bearings.
        for i in 0..16 {
            let theta = (i as f64) * std::f64::consts::TAU / 16.0;
            let dlat = radius / 111_194.93 * theta.sin() * 0.999;
            let cos_lat = center.lat.to_radians().cos().max(1e-9);
            let dlon = radius / (111_194.93 * cos_lat) * theta.cos() * 0.999;
            let p = GeoPoint::new((center.lat + dlat).clamp(-90.0, 90.0), center.lon + dlon);
            if haversine_m(center, p) <= radius {
                prop_assert!(rect.contains_point(p));
            }
        }
    }

    #[test]
    fn rect_union_is_commutative_monotone(
        a in (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0),
        b in (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0),
    ) {
        let ra = Rect::new(a.0, a.1, a.0 + a.2, a.1 + a.3);
        let rb = Rect::new(b.0, b.1, b.0 + b.2, b.1 + b.3);
        prop_assert_eq!(ra.union(&rb), rb.union(&ra));
        prop_assert!(ra.union(&rb).contains_rect(&ra));
        prop_assert!(ra.union(&rb).contains_rect(&rb));
        prop_assert!(ra.union(&rb).area() + 1e-12 >= ra.area().max(rb.area()));
    }
}
