//! Distance metrics between spatial coordinates.
//!
//! The paper runs MapReduced k-means under two metrics (§VI): the *squared
//! Euclidean* distance ("faster … while preserving the order relationship
//! between different points") and the *Haversine* distance over the earth's
//! surface (Sinnott 1984). GEPETO also lets the curator pick plain
//! Euclidean or Manhattan (L1) distance, so all four are provided behind
//! one enum.
//!
//! Units: the planar metrics operate directly on decimal degrees (what the
//! paper's Hadoop implementation does on GeoLife coordinates); Haversine
//! returns meters. Within a single metric the ordering is what matters for
//! clustering.

use gepeto_model::GeoPoint;
use serde::{Deserialize, Serialize};

/// Mean earth radius in meters (IUGG), as used by the Haversine formula.
pub const EARTH_RADIUS_M: f64 = 6_371_000.8;

/// Great-circle distance between two points in meters (Haversine formula).
///
/// Numerically stable for small distances, which is exactly the regime
/// GPS traces live in; this is why the paper uses Haversine rather than the
/// spherical law of cosines.
pub fn haversine_m(a: GeoPoint, b: GeoPoint) -> f64 {
    let (lat1, lon1) = (a.lat.to_radians(), a.lon.to_radians());
    let (lat2, lon2) = (b.lat.to_radians(), b.lon.to_radians());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_M * h.sqrt().min(1.0).asin()
}

/// Fast local approximation of the distance in meters using an
/// equirectangular projection around the segment's mean latitude.
///
/// Accurate to well under 1% for the sub-kilometer hops between
/// consecutive GPS fixes; used on hot paths (speed filtering) where the
/// full Haversine trigonometry is unnecessary.
pub fn equirectangular_m(a: GeoPoint, b: GeoPoint) -> f64 {
    let mean_lat = ((a.lat + b.lat) / 2.0).to_radians();
    let dx = (b.lon - a.lon).to_radians() * mean_lat.cos();
    let dy = (b.lat - a.lat).to_radians();
    EARTH_RADIUS_M * (dx * dx + dy * dy).sqrt()
}

/// The metric used for clustering, selectable at runtime like the
/// `distanceMeasure` argument of the paper's k-means (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DistanceMetric {
    /// Straight-line distance in degree space.
    Euclidean,
    /// Euclidean without the square root — same ordering, cheaper (§VI).
    SquaredEuclidean,
    /// L1 norm in degree space.
    Manhattan,
    /// Great-circle distance over the earth's surface, in meters (§VI).
    Haversine,
}

impl DistanceMetric {
    /// Distance between two points under this metric. See the module docs
    /// for units.
    pub fn between(self, a: GeoPoint, b: GeoPoint) -> f64 {
        let dlat = a.lat - b.lat;
        let dlon = a.lon - b.lon;
        match self {
            DistanceMetric::Euclidean => (dlat * dlat + dlon * dlon).sqrt(),
            DistanceMetric::SquaredEuclidean => dlat * dlat + dlon * dlon,
            DistanceMetric::Manhattan => dlat.abs() + dlon.abs(),
            DistanceMetric::Haversine => haversine_m(a, b),
        }
    }

    /// Parses the CLI spelling of a metric name.
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "euclidean" => Some(Self::Euclidean),
            "squared-euclidean" | "squaredeuclidean" | "sqeuclidean" => {
                Some(Self::SquaredEuclidean)
            }
            "manhattan" => Some(Self::Manhattan),
            "haversine" => Some(Self::Haversine),
            _ => None,
        }
    }

    /// Canonical display name.
    pub fn name(self) -> &'static str {
        match self {
            DistanceMetric::Euclidean => "Euclidean",
            DistanceMetric::SquaredEuclidean => "Squared Euclidean",
            DistanceMetric::Manhattan => "Manhattan",
            DistanceMetric::Haversine => "Haversine",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BEIJING: GeoPoint = GeoPoint::new(39.906631, 116.385564);
    const SHANGHAI: GeoPoint = GeoPoint::new(31.230416, 121.473701);

    #[test]
    fn haversine_known_distance() {
        // Beijing <-> Shanghai is ~1065-1070 km great-circle.
        let d = haversine_m(BEIJING, SHANGHAI);
        assert!((1.05e6..1.09e6).contains(&d), "{d}");
    }

    #[test]
    fn haversine_is_symmetric_and_zero_on_identity() {
        assert_eq!(haversine_m(BEIJING, BEIJING), 0.0);
        let ab = haversine_m(BEIJING, SHANGHAI);
        let ba = haversine_m(SHANGHAI, BEIJING);
        assert!((ab - ba).abs() < 1e-6);
    }

    #[test]
    fn haversine_one_degree_latitude() {
        // One degree of latitude is ~111.2 km everywhere.
        let a = GeoPoint::new(40.0, 116.0);
        let b = GeoPoint::new(41.0, 116.0);
        let d = haversine_m(a, b);
        assert!((d - 111_195.0).abs() < 500.0, "{d}");
    }

    #[test]
    fn equirectangular_close_to_haversine_locally() {
        let a = GeoPoint::new(39.9000, 116.4000);
        let b = GeoPoint::new(39.9050, 116.4080); // ~880 m apart
        let h = haversine_m(a, b);
        let e = equirectangular_m(a, b);
        assert!((h - e).abs() / h < 0.01, "h={h} e={e}");
    }

    #[test]
    fn squared_euclidean_preserves_ordering() {
        let origin = GeoPoint::new(0.0, 0.0);
        let near = GeoPoint::new(0.1, 0.1);
        let far = GeoPoint::new(0.5, -0.2);
        let (e1, e2) = (
            DistanceMetric::Euclidean.between(origin, near),
            DistanceMetric::Euclidean.between(origin, far),
        );
        let (s1, s2) = (
            DistanceMetric::SquaredEuclidean.between(origin, near),
            DistanceMetric::SquaredEuclidean.between(origin, far),
        );
        assert!(e1 < e2);
        assert!(s1 < s2);
        assert!((s1 - e1 * e1).abs() < 1e-12);
    }

    #[test]
    fn manhattan_distance() {
        let a = GeoPoint::new(1.0, 2.0);
        let b = GeoPoint::new(4.0, -2.0);
        assert!((DistanceMetric::Manhattan.between(a, b) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn metric_parsing() {
        assert_eq!(
            DistanceMetric::parse("haversine"),
            Some(DistanceMetric::Haversine)
        );
        assert_eq!(
            DistanceMetric::parse("Squared-Euclidean"),
            Some(DistanceMetric::SquaredEuclidean)
        );
        assert_eq!(
            DistanceMetric::parse("euclidean"),
            Some(DistanceMetric::Euclidean)
        );
        assert_eq!(
            DistanceMetric::parse("manhattan"),
            Some(DistanceMetric::Manhattan)
        );
        assert_eq!(DistanceMetric::parse("cosine"), None);
    }

    #[test]
    fn antipodal_points_do_not_panic() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 180.0);
        let d = haversine_m(a, b);
        // Half the earth's circumference.
        assert!((d - std::f64::consts::PI * EARTH_RADIUS_M).abs() < 1_000.0);
    }
}
