//! An R-tree over geographic points (Guttman 1984), the index structure
//! DJ-Cluster's neighborhood phase loads from the distributed cache
//! (§VII-B of the paper): "computing the neighborhood of a point with such
//! a structure can be done in O(log n)".
//!
//! Two construction paths are provided, matching the paper:
//! incremental insertion with quadratic splits, and **STR bulk loading**
//! (Sort-Tile-Recursive), which is what each phase-2 reducer of the
//! MapReduce R-tree construction uses to index its partition.
//!
//! Queries: rectangle range, radius-in-meters range (bounding-box
//! prefilter + exact Haversine test), and best-first k-nearest-neighbors
//! in degree space.

use crate::distance::haversine_m;
use crate::Rect;
use gepeto_model::GeoPoint;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Default maximum entries per node (Guttman's M).
pub const DEFAULT_MAX_ENTRIES: usize = 16;

/// A leaf entry: an indexed point plus its payload (typically the index of
/// a mobility trace in the dataset).
#[derive(Debug, Clone)]
pub struct Entry<T> {
    /// The indexed location.
    pub point: GeoPoint,
    /// The caller's payload (typically a record offset).
    pub payload: T,
}

#[derive(Debug, Clone)]
enum Node<T> {
    Leaf { mbr: Rect, entries: Vec<Entry<T>> },
    Internal { mbr: Rect, children: Vec<Node<T>> },
}

impl<T> Node<T> {
    fn mbr(&self) -> Rect {
        match self {
            Node::Leaf { mbr, .. } | Node::Internal { mbr, .. } => *mbr,
        }
    }

    fn height(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Internal { children, .. } => 1 + children[0].height(),
        }
    }
}

/// An R-tree mapping [`GeoPoint`]s to payloads of type `T`.
#[derive(Debug, Clone)]
pub struct RTree<T> {
    root: Node<T>,
    len: usize,
    max_entries: usize,
    min_entries: usize,
}

impl<T> Default for RTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> RTree<T> {
    /// An empty tree with the default node capacity.
    pub fn new() -> Self {
        Self::with_max_entries(DEFAULT_MAX_ENTRIES)
    }

    /// An empty tree with node capacity `max_entries` (min fill = 40%).
    ///
    /// # Panics
    /// If `max_entries < 2`.
    pub fn with_max_entries(max_entries: usize) -> Self {
        assert!(max_entries >= 2, "R-tree nodes need at least 2 entries");
        let min_entries = (max_entries * 2 / 5).max(1);
        Self {
            root: Node::Leaf {
                mbr: Rect::empty(),
                entries: Vec::new(),
            },
            len: 0,
            max_entries,
            min_entries,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree indexes no point.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (1 = a single leaf).
    pub fn height(&self) -> usize {
        self.root.height()
    }

    /// MBR of all indexed points (empty rect when the tree is empty).
    pub fn bounds(&self) -> Rect {
        self.root.mbr()
    }

    /// Maximum entries per node.
    pub fn max_entries(&self) -> usize {
        self.max_entries
    }

    /// Inserts a point with its payload (Guttman insertion with quadratic
    /// node splitting).
    pub fn insert(&mut self, point: GeoPoint, payload: T) {
        let max = self.max_entries;
        let min = self.min_entries;
        if let Some(sibling) = insert_rec(&mut self.root, Entry { point, payload }, max, min) {
            // Root split: grow the tree by one level.
            let old_root = std::mem::replace(
                &mut self.root,
                Node::Internal {
                    mbr: Rect::empty(),
                    children: Vec::new(),
                },
            );
            let mut children = vec![old_root, sibling];
            let mut mbr = Rect::empty();
            for c in &children {
                mbr = mbr.union(&c.mbr());
            }
            match &mut self.root {
                Node::Internal {
                    mbr: m,
                    children: ch,
                } => {
                    *m = mbr;
                    std::mem::swap(ch, &mut children);
                }
                Node::Leaf { .. } => unreachable!(),
            }
        }
        self.len += 1;
    }

    /// Builds a tree from a batch of points with STR (Sort-Tile-Recursive)
    /// bulk loading — the O(n log n) packed construction used by the
    /// phase-2 reducers of the MapReduce R-tree build.
    pub fn bulk_load(items: Vec<(GeoPoint, T)>) -> Self {
        Self::bulk_load_with_max_entries(items, DEFAULT_MAX_ENTRIES)
    }

    /// [`Self::bulk_load`] with an explicit node capacity.
    pub fn bulk_load_with_max_entries(items: Vec<(GeoPoint, T)>, max_entries: usize) -> Self {
        assert!(max_entries >= 2);
        let len = items.len();
        let min_entries = (max_entries * 2 / 5).max(1);
        if items.is_empty() {
            return Self::with_max_entries(max_entries);
        }
        // Build leaves by sort-tile-recursive packing.
        let mut entries: Vec<Entry<T>> = items
            .into_iter()
            .map(|(point, payload)| Entry { point, payload })
            .collect();
        let leaves = str_pack_leaves(&mut entries, max_entries);
        let mut level: Vec<Node<T>> = leaves;
        while level.len() > 1 {
            level = str_pack_internal(level, max_entries);
        }
        Self {
            root: level.into_iter().next().expect("non-empty level"),
            len,
            max_entries,
            min_entries,
        }
    }

    /// Merges several trees into one — phase 3 of the paper's MapReduce
    /// R-tree construction ("executed sequentially by a single node due to
    /// its low computational complexity"). The largest input tree is kept
    /// and the others' entries are inserted into it.
    pub fn merge(trees: Vec<RTree<T>>) -> RTree<T>
    where
        T: Clone,
    {
        let mut trees = trees;
        if trees.is_empty() {
            return RTree::new();
        }
        let largest = trees
            .iter()
            .enumerate()
            .max_by_key(|(_, t)| t.len())
            .map(|(i, _)| i)
            .unwrap();
        let mut base = trees.swap_remove(largest);
        for t in trees {
            for e in t.iter() {
                base.insert(e.point, e.payload.clone());
            }
        }
        base
    }

    /// All entries whose point falls inside `rect` (inclusive borders).
    pub fn query_rect(&self, rect: &Rect) -> Vec<&Entry<T>> {
        let mut out = Vec::new();
        if !rect.is_empty() {
            query_rect_rec(&self.root, rect, &mut out);
        }
        out
    }

    /// All entries within `radius_m` meters (Haversine) of `center`.
    ///
    /// A degree-space bounding box prefilters tree traversal; candidates
    /// are then tested with the exact great-circle distance, so the result
    /// is exact. This is the neighborhood query of DJ-Cluster's second
    /// phase.
    pub fn within_radius_m(&self, center: GeoPoint, radius_m: f64) -> Vec<&Entry<T>> {
        if radius_m < 0.0 || self.is_empty() {
            return Vec::new();
        }
        let rect = radius_bounding_rect(center, radius_m);
        let mut out = Vec::new();
        within_radius_rec(&self.root, &rect, center, radius_m, &mut out);
        out
    }

    /// The `k` nearest entries to `center` in **degree space** (Euclidean
    /// on lat/lon), ordered nearest-first. Best-first traversal using node
    /// MBR lower bounds.
    pub fn nearest_k(&self, center: GeoPoint, k: usize) -> Vec<&Entry<T>> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        enum Item<'a, T> {
            Node(&'a Node<T>),
            Entry(&'a Entry<T>),
        }
        struct HeapItem<'a, T> {
            dist2: f64,
            item: Item<'a, T>,
        }
        impl<T> PartialEq for HeapItem<'_, T> {
            fn eq(&self, other: &Self) -> bool {
                self.dist2 == other.dist2
            }
        }
        impl<T> Eq for HeapItem<'_, T> {}
        impl<T> PartialOrd for HeapItem<'_, T> {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl<T> Ord for HeapItem<'_, T> {
            fn cmp(&self, other: &Self) -> Ordering {
                // Reverse for a min-heap; NaN-free because dist2 >= 0.
                other
                    .dist2
                    .partial_cmp(&self.dist2)
                    .unwrap_or(Ordering::Equal)
            }
        }
        let mut heap: BinaryHeap<HeapItem<'_, T>> = BinaryHeap::new();
        heap.push(HeapItem {
            dist2: self.root.mbr().min_dist2(center),
            item: Item::Node(&self.root),
        });
        let mut out = Vec::with_capacity(k);
        while let Some(HeapItem { item, .. }) = heap.pop() {
            match item {
                Item::Entry(e) => {
                    out.push(e);
                    if out.len() == k {
                        break;
                    }
                }
                Item::Node(Node::Leaf { entries, .. }) => {
                    for e in entries {
                        let dlat = e.point.lat - center.lat;
                        let dlon = e.point.lon - center.lon;
                        heap.push(HeapItem {
                            dist2: dlat * dlat + dlon * dlon,
                            item: Item::Entry(e),
                        });
                    }
                }
                Item::Node(Node::Internal { children, .. }) => {
                    for c in children {
                        heap.push(HeapItem {
                            dist2: c.mbr().min_dist2(center),
                            item: Item::Node(c),
                        });
                    }
                }
            }
        }
        out
    }

    /// Iterator over every entry (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Entry<T>> {
        let mut stack = vec![&self.root];
        std::iter::from_fn(move || loop {
            match stack.pop()? {
                Node::Leaf { entries, .. } => {
                    if !entries.is_empty() {
                        // Flatten the leaf through a sub-stack trick:
                        // push nothing, return a slice iterator instead.
                        // Simpler: return entries one by one via index —
                        // handled by the outer flatten below.
                        return Some(entries.as_slice());
                    }
                }
                Node::Internal { children, .. } => {
                    stack.extend(children.iter());
                }
            }
        })
        .flatten()
    }

    /// Structural invariant check (test/debug helper): returns a violation
    /// description, or `None` when the tree is well-formed.
    pub fn check_invariants(&self) -> Option<String> {
        fn rec<T>(
            node: &Node<T>,
            is_root: bool,
            min: usize,
            max: usize,
            depth: usize,
            leaf_depth: &mut Option<usize>,
            count: &mut usize,
        ) -> Option<String> {
            match node {
                Node::Leaf { mbr, entries } => {
                    *count += entries.len();
                    if let Some(d) = *leaf_depth {
                        if d != depth {
                            return Some(format!("leaves at depths {d} and {depth}"));
                        }
                    } else {
                        *leaf_depth = Some(depth);
                    }
                    // Min fill is only guaranteed on the insertion path;
                    // STR bulk loading may leave the last page underfull,
                    // so only the upper bound and non-emptiness are hard
                    // invariants.
                    let _ = min;
                    if entries.len() > max {
                        return Some(format!("leaf overfull: {}", entries.len()));
                    }
                    if !is_root && entries.is_empty() {
                        return Some("empty non-root leaf".into());
                    }
                    for e in entries {
                        if !mbr.contains_point(e.point) {
                            return Some("leaf MBR does not contain an entry".into());
                        }
                    }
                    None
                }
                Node::Internal { mbr, children } => {
                    if children.is_empty() {
                        return Some("internal node with no children".into());
                    }
                    if children.len() > max {
                        return Some(format!("internal overfull: {}", children.len()));
                    }
                    for c in children {
                        if !mbr.contains_rect(&c.mbr()) && !c.mbr().is_empty() {
                            return Some("parent MBR does not contain child MBR".into());
                        }
                        if let Some(v) = rec(c, false, min, max, depth + 1, leaf_depth, count) {
                            return Some(v);
                        }
                    }
                    None
                }
            }
        }
        let mut leaf_depth = None;
        let mut count = 0;
        let v = rec(
            &self.root,
            true,
            self.min_entries,
            self.max_entries,
            0,
            &mut leaf_depth,
            &mut count,
        );
        if v.is_some() {
            return v;
        }
        if count != self.len {
            return Some(format!("len {} but {count} entries reachable", self.len));
        }
        None
    }
}

/// Degree-space rectangle guaranteed to contain the `radius_m`-meter disc
/// around `center` (latitude-aware longitude widening, clamped at poles).
pub fn radius_bounding_rect(center: GeoPoint, radius_m: f64) -> Rect {
    const M_PER_DEG_LAT: f64 = 111_194.93; // pi * R / 180 for R = 6371000.8
    let dlat = radius_m / M_PER_DEG_LAT;
    let cos_lat = center.lat.to_radians().cos().max(1e-9);
    let dlon = (radius_m / (M_PER_DEG_LAT * cos_lat)).min(360.0);
    Rect {
        min_lat: (center.lat - dlat).max(-90.0),
        min_lon: center.lon - dlon,
        max_lat: (center.lat + dlat).min(90.0),
        max_lon: center.lon + dlon,
    }
}

fn insert_rec<T>(node: &mut Node<T>, entry: Entry<T>, max: usize, min: usize) -> Option<Node<T>> {
    match node {
        Node::Leaf { mbr, entries } => {
            *mbr = mbr.union(&Rect::point(entry.point));
            entries.push(entry);
            if entries.len() > max {
                let (a, b) =
                    quadratic_split(std::mem::take(entries), min, |e| Rect::point(e.point));
                let (mbr_a, mbr_b) = (
                    Rect::of_points(a.iter().map(|e| e.point)),
                    Rect::of_points(b.iter().map(|e| e.point)),
                );
                *entries = a;
                *mbr = mbr_a;
                return Some(Node::Leaf {
                    mbr: mbr_b,
                    entries: b,
                });
            }
            None
        }
        Node::Internal { mbr, children } => {
            *mbr = mbr.union(&Rect::point(entry.point));
            // Choose the child needing least enlargement (ties: least area).
            let target_rect = Rect::point(entry.point);
            let idx = children
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let ea = a.mbr().enlargement(&target_rect);
                    let eb = b.mbr().enlargement(&target_rect);
                    ea.partial_cmp(&eb)
                        .unwrap_or(Ordering::Equal)
                        .then_with(|| {
                            a.mbr()
                                .area()
                                .partial_cmp(&b.mbr().area())
                                .unwrap_or(Ordering::Equal)
                        })
                })
                .map(|(i, _)| i)
                .expect("internal node has children");
            if let Some(sibling) = insert_rec(&mut children[idx], entry, max, min) {
                children.push(sibling);
                if children.len() > max {
                    let (a, b) = quadratic_split(std::mem::take(children), min, |c| c.mbr());
                    let mut mbr_a = Rect::empty();
                    for c in &a {
                        mbr_a = mbr_a.union(&c.mbr());
                    }
                    let mut mbr_b = Rect::empty();
                    for c in &b {
                        mbr_b = mbr_b.union(&c.mbr());
                    }
                    *children = a;
                    *mbr = mbr_a;
                    return Some(Node::Internal {
                        mbr: mbr_b,
                        children: b,
                    });
                }
            }
            None
        }
    }
}

/// Guttman's quadratic split: pick the two seeds wasting the most area if
/// grouped, then greedily assign the remainder by enlargement preference,
/// honoring the minimum fill on both groups.
fn quadratic_split<I>(items: Vec<I>, min: usize, rect_of: impl Fn(&I) -> Rect) -> (Vec<I>, Vec<I>) {
    debug_assert!(items.len() >= 2);
    // Seed selection.
    let (mut seed_a, mut seed_b, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..items.len() {
        for j in (i + 1)..items.len() {
            let ri = rect_of(&items[i]);
            let rj = rect_of(&items[j]);
            let dead = ri.union(&rj).area() - ri.area() - rj.area();
            if dead > worst {
                worst = dead;
                seed_a = i;
                seed_b = j;
            }
        }
    }
    let mut group_a: Vec<I> = Vec::new();
    let mut group_b: Vec<I> = Vec::new();
    let mut mbr_a = Rect::empty();
    let mut mbr_b = Rect::empty();
    let mut rest: Vec<I> = Vec::new();
    for (idx, item) in items.into_iter().enumerate() {
        if idx == seed_a {
            mbr_a = rect_of(&item);
            group_a.push(item);
        } else if idx == seed_b {
            mbr_b = rect_of(&item);
            group_b.push(item);
        } else {
            rest.push(item);
        }
    }
    let total = rest.len() + 2;
    for item in rest.into_iter() {
        let remaining_capacity_needed = |group_len: usize| min.saturating_sub(group_len);
        // Force-assign when a group must take all remaining to reach min.
        let assigned_so_far = group_a.len() + group_b.len();
        let remaining = total - assigned_so_far;
        if remaining_capacity_needed(group_a.len()) >= remaining {
            mbr_a = mbr_a.union(&rect_of(&item));
            group_a.push(item);
            continue;
        }
        if remaining_capacity_needed(group_b.len()) >= remaining {
            mbr_b = mbr_b.union(&rect_of(&item));
            group_b.push(item);
            continue;
        }
        let r = rect_of(&item);
        let ea = mbr_a.enlargement(&r);
        let eb = mbr_b.enlargement(&r);
        let to_a = match ea.partial_cmp(&eb).unwrap_or(Ordering::Equal) {
            Ordering::Less => true,
            Ordering::Greater => false,
            Ordering::Equal => group_a.len() <= group_b.len(),
        };
        if to_a {
            mbr_a = mbr_a.union(&r);
            group_a.push(item);
        } else {
            mbr_b = mbr_b.union(&r);
            group_b.push(item);
        }
    }
    (group_a, group_b)
}

fn str_pack_leaves<T>(entries: &mut Vec<Entry<T>>, max: usize) -> Vec<Node<T>> {
    let n = entries.len();
    let pages = n.div_ceil(max);
    let slices = (pages as f64).sqrt().ceil() as usize;
    let slice_size = n.div_ceil(slices);
    entries.sort_by(|a, b| {
        a.point
            .lon
            .partial_cmp(&b.point.lon)
            .unwrap_or(Ordering::Equal)
    });
    let mut leaves = Vec::with_capacity(pages);
    let mut drained: Vec<Entry<T>> = std::mem::take(entries);
    let mut slice_start = 0;
    while slice_start < drained.len() {
        let slice_end = (slice_start + slice_size).min(drained.len());
        let slice = &mut drained[slice_start..slice_end];
        slice.sort_by(|a, b| {
            a.point
                .lat
                .partial_cmp(&b.point.lat)
                .unwrap_or(Ordering::Equal)
        });
        slice_start = slice_end;
    }
    let mut iter = drained.into_iter().peekable();
    while iter.peek().is_some() {
        let chunk: Vec<Entry<T>> = iter.by_ref().take(max).collect();
        let mbr = Rect::of_points(chunk.iter().map(|e| e.point));
        leaves.push(Node::Leaf {
            mbr,
            entries: chunk,
        });
    }
    leaves
}

fn str_pack_internal<T>(mut nodes: Vec<Node<T>>, max: usize) -> Vec<Node<T>> {
    let n = nodes.len();
    let pages = n.div_ceil(max);
    let slices = (pages as f64).sqrt().ceil() as usize;
    let slice_size = n.div_ceil(slices);
    let center_lon = |n: &Node<T>| n.mbr().center().map(|c| c.lon).unwrap_or(0.0);
    let center_lat = |n: &Node<T>| n.mbr().center().map(|c| c.lat).unwrap_or(0.0);
    nodes.sort_by(|a, b| {
        center_lon(a)
            .partial_cmp(&center_lon(b))
            .unwrap_or(Ordering::Equal)
    });
    let mut slice_start = 0;
    while slice_start < nodes.len() {
        let slice_end = (slice_start + slice_size).min(nodes.len());
        nodes[slice_start..slice_end].sort_by(|a, b| {
            center_lat(a)
                .partial_cmp(&center_lat(b))
                .unwrap_or(Ordering::Equal)
        });
        slice_start = slice_end;
    }
    let mut out = Vec::with_capacity(pages);
    let mut iter = nodes.into_iter().peekable();
    while iter.peek().is_some() {
        let children: Vec<Node<T>> = iter.by_ref().take(max).collect();
        let mut mbr = Rect::empty();
        for c in &children {
            mbr = mbr.union(&c.mbr());
        }
        out.push(Node::Internal { mbr, children });
    }
    out
}

fn query_rect_rec<'a, T>(node: &'a Node<T>, rect: &Rect, out: &mut Vec<&'a Entry<T>>) {
    match node {
        Node::Leaf { mbr, entries } => {
            if rect.intersects(mbr) {
                for e in entries {
                    if rect.contains_point(e.point) {
                        out.push(e);
                    }
                }
            }
        }
        Node::Internal { mbr, children } => {
            if rect.intersects(mbr) {
                for c in children {
                    query_rect_rec(c, rect, out);
                }
            }
        }
    }
}

fn within_radius_rec<'a, T>(
    node: &'a Node<T>,
    rect: &Rect,
    center: GeoPoint,
    radius_m: f64,
    out: &mut Vec<&'a Entry<T>>,
) {
    match node {
        Node::Leaf { mbr, entries } => {
            if rect.intersects(mbr) {
                for e in entries {
                    if rect.contains_point(e.point) && haversine_m(center, e.point) <= radius_m {
                        out.push(e);
                    }
                }
            }
        }
        Node::Internal { mbr, children } => {
            if rect.intersects(mbr) {
                for c in children {
                    within_radius_rec(c, rect, center, radius_m, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(side: usize) -> Vec<(GeoPoint, usize)> {
        let mut v = Vec::new();
        for i in 0..side {
            for j in 0..side {
                v.push((
                    GeoPoint::new(40.0 + i as f64 * 0.001, 116.0 + j as f64 * 0.001),
                    i * side + j,
                ));
            }
        }
        v
    }

    #[test]
    fn empty_tree() {
        let t: RTree<usize> = RTree::new();
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert!(t.query_rect(&Rect::new(0.0, 0.0, 1.0, 1.0)).is_empty());
        assert!(t.nearest_k(GeoPoint::new(0.0, 0.0), 3).is_empty());
        assert!(t.within_radius_m(GeoPoint::new(0.0, 0.0), 100.0).is_empty());
        assert!(t.check_invariants().is_none());
    }

    #[test]
    fn insert_and_count() {
        let mut t = RTree::with_max_entries(4);
        for (p, i) in grid_points(10) {
            t.insert(p, i);
            assert!(t.check_invariants().is_none(), "after insert {i}");
        }
        assert_eq!(t.len(), 100);
        assert!(t.height() > 1);
        assert_eq!(t.iter().count(), 100);
    }

    #[test]
    fn query_rect_matches_brute_force() {
        let pts = grid_points(20);
        let mut t = RTree::with_max_entries(8);
        for (p, i) in pts.clone() {
            t.insert(p, i);
        }
        let rect = Rect::new(40.003, 116.002, 40.0105, 116.011);
        let mut got: Vec<usize> = t.query_rect(&rect).iter().map(|e| e.payload).collect();
        got.sort_unstable();
        let mut want: Vec<usize> = pts
            .iter()
            .filter(|(p, _)| rect.contains_point(*p))
            .map(|&(_, i)| i)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
        assert!(!got.is_empty());
    }

    #[test]
    fn bulk_load_matches_insert_queries() {
        let pts = grid_points(17);
        let bulk = RTree::bulk_load_with_max_entries(pts.clone(), 8);
        assert_eq!(bulk.len(), pts.len());
        assert!(
            bulk.check_invariants().is_none(),
            "{:?}",
            bulk.check_invariants()
        );
        let mut incr = RTree::with_max_entries(8);
        for (p, i) in pts {
            incr.insert(p, i);
        }
        let rect = Rect::new(40.002, 116.004, 40.009, 116.012);
        let mut a: Vec<usize> = bulk.query_rect(&rect).iter().map(|e| e.payload).collect();
        let mut b: Vec<usize> = incr.query_rect(&rect).iter().map(|e| e.payload).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn within_radius_exact() {
        let pts = grid_points(15);
        let t = RTree::bulk_load(pts.clone());
        let center = GeoPoint::new(40.007, 116.007);
        let r = 250.0;
        let mut got: Vec<usize> = t
            .within_radius_m(center, r)
            .iter()
            .map(|e| e.payload)
            .collect();
        got.sort_unstable();
        let mut want: Vec<usize> = pts
            .iter()
            .filter(|(p, _)| haversine_m(center, *p) <= r)
            .map(|&(_, i)| i)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
        assert!(!got.is_empty());
    }

    #[test]
    fn nearest_k_ordering_and_content() {
        let pts = grid_points(12);
        let t = RTree::bulk_load(pts.clone());
        let center = GeoPoint::new(40.0051, 116.0052);
        let k = 7;
        let got = t.nearest_k(center, k);
        assert_eq!(got.len(), k);
        // Nearest-first ordering in degree space.
        let d2 = |p: GeoPoint| {
            let (a, b) = (p.lat - center.lat, p.lon - center.lon);
            a * a + b * b
        };
        for w in got.windows(2) {
            assert!(d2(w[0].point) <= d2(w[1].point) + 1e-15);
        }
        // Same set as brute force.
        let mut brute: Vec<(f64, usize)> = pts.iter().map(|&(p, i)| (d2(p), i)).collect();
        brute.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let want: std::collections::BTreeSet<usize> = brute[..k].iter().map(|&(_, i)| i).collect();
        let got_set: std::collections::BTreeSet<usize> = got.iter().map(|e| e.payload).collect();
        assert_eq!(got_set, want);
    }

    #[test]
    fn nearest_k_with_k_larger_than_len() {
        let t = RTree::bulk_load(grid_points(2));
        assert_eq!(t.nearest_k(GeoPoint::new(40.0, 116.0), 100).len(), 4);
    }

    #[test]
    fn merge_preserves_all_entries() {
        let a = RTree::bulk_load(grid_points(6));
        let mut b_pts = grid_points(4);
        for (p, i) in &mut b_pts {
            p.lat += 1.0; // disjoint region
            *i += 1_000;
        }
        let b = RTree::bulk_load(b_pts);
        let merged = RTree::merge(vec![a, b]);
        assert_eq!(merged.len(), 36 + 16);
        assert!(merged.check_invariants().is_none());
        let far = merged.query_rect(&Rect::new(40.9, 115.9, 41.1, 116.1));
        assert_eq!(far.len(), 16);
    }

    #[test]
    fn merge_of_nothing_is_empty() {
        let t: RTree<usize> = RTree::merge(vec![]);
        assert!(t.is_empty());
    }

    #[test]
    fn duplicate_points_are_kept() {
        let p = GeoPoint::new(40.0, 116.0);
        let mut t = RTree::with_max_entries(4);
        for i in 0..10 {
            t.insert(p, i);
        }
        assert_eq!(t.len(), 10);
        assert_eq!(t.within_radius_m(p, 1.0).len(), 10);
        assert!(t.check_invariants().is_none());
    }

    #[test]
    fn radius_bounding_rect_contains_disc() {
        let c = GeoPoint::new(48.85, 2.35); // Paris: strong lon scaling
        let r = 5_000.0;
        let rect = radius_bounding_rect(c, r);
        // Sample the disc border; every border point must be in the rect.
        for i in 0..360 {
            let theta = (i as f64).to_radians();
            let dlat = r / 111_194.93 * theta.sin();
            let dlon = r / (111_194.93 * c.lat.to_radians().cos()) * theta.cos();
            let p = GeoPoint::new(c.lat + dlat, c.lon + dlon);
            if haversine_m(c, p) <= r {
                assert!(rect.contains_point(p), "angle {i}");
            }
        }
    }
}
