//! Space-filling curves (§VII-C of the paper).
//!
//! The MapReduce R-tree construction needs a *partitioning function* that
//! "maps multidimensional datapoints into an ordered sequence of
//! unidimensional values" while preserving data locality. The paper
//! implements and tests two curves, **Z-order** (Morton) and **Hilbert**;
//! both are provided here over a `2^order × 2^order` grid.
//!
//! Geographic points are first discretized onto the grid with a
//! [`GridMapper`] anchored at a dataset bounding rectangle.

use crate::Rect;
use gepeto_model::GeoPoint;
use serde::{Deserialize, Serialize};

/// Maximum supported curve order: 31 keeps `x`, `y` in `u32` and the scalar
/// index in `u64` without overflow.
pub const MAX_ORDER: u32 = 31;

/// Which curve to use as the R-tree partitioning function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpaceFillingCurve {
    /// Bit-interleaving Morton curve.
    ZOrder,
    /// Hilbert curve — better locality preservation, costlier to evaluate.
    Hilbert,
}

impl SpaceFillingCurve {
    /// Scalar index of grid cell `(x, y)` on a curve of the given `order`.
    ///
    /// # Panics
    /// If `order > MAX_ORDER` or a coordinate does not fit in the grid.
    pub fn index(self, x: u32, y: u32, order: u32) -> u64 {
        assert!(order <= MAX_ORDER, "curve order {order} too large");
        assert!(
            (order == 32) || (x < (1 << order) && y < (1 << order)),
            "coordinate ({x},{y}) outside 2^{order} grid"
        );
        match self {
            SpaceFillingCurve::ZOrder => morton_encode(x, y),
            SpaceFillingCurve::Hilbert => hilbert_xy_to_d(order, x, y),
        }
    }

    /// Inverse of [`Self::index`]: the grid cell of scalar `d`.
    pub fn point(self, d: u64, order: u32) -> (u32, u32) {
        assert!(order <= MAX_ORDER);
        match self {
            SpaceFillingCurve::ZOrder => morton_decode(d),
            SpaceFillingCurve::Hilbert => hilbert_d_to_xy(order, d),
        }
    }

    /// Parses the CLI spelling of a curve name.
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "z" | "zorder" | "z-order" | "morton" => Some(Self::ZOrder),
            "hilbert" => Some(Self::Hilbert),
            _ => None,
        }
    }

    /// Canonical display name.
    pub fn name(self) -> &'static str {
        match self {
            SpaceFillingCurve::ZOrder => "Z-order",
            SpaceFillingCurve::Hilbert => "Hilbert",
        }
    }
}

/// Spreads the low 32 bits of `v` so one zero bit separates each data bit.
fn spread_bits(v: u32) -> u64 {
    let mut v = u64::from(v);
    v = (v | (v << 16)) & 0x0000_FFFF_0000_FFFF;
    v = (v | (v << 8)) & 0x00FF_00FF_00FF_00FF;
    v = (v | (v << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    v = (v | (v << 2)) & 0x3333_3333_3333_3333;
    v = (v | (v << 1)) & 0x5555_5555_5555_5555;
    v
}

/// Inverse of [`spread_bits`].
fn collapse_bits(mut v: u64) -> u32 {
    v &= 0x5555_5555_5555_5555;
    v = (v | (v >> 1)) & 0x3333_3333_3333_3333;
    v = (v | (v >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    v = (v | (v >> 4)) & 0x00FF_00FF_00FF_00FF;
    v = (v | (v >> 8)) & 0x0000_FFFF_0000_FFFF;
    v = (v | (v >> 16)) & 0x0000_0000_FFFF_FFFF;
    v as u32
}

/// Z-order (Morton) index: interleaves the bits of `x` (even positions)
/// and `y` (odd positions).
pub fn morton_encode(x: u32, y: u32) -> u64 {
    spread_bits(x) | (spread_bits(y) << 1)
}

/// Inverse of [`morton_encode`].
pub fn morton_decode(d: u64) -> (u32, u32) {
    (collapse_bits(d), collapse_bits(d >> 1))
}

/// Hilbert curve distance of cell `(x, y)` on a `2^order` grid
/// (iterative algorithm, Lawder & King / Wikipedia formulation).
pub fn hilbert_xy_to_d(order: u32, mut x: u32, mut y: u32) -> u64 {
    let n: u64 = 1u64 << order; // grid side
    let mut d: u64 = 0;
    let mut s: u64 = n / 2;
    while s > 0 {
        let rx = u64::from((u64::from(x) & s) > 0);
        let ry = u64::from((u64::from(y) & s) > 0);
        d += s * s * ((3 * rx) ^ ry);
        // Rotate the quadrant (reflection within the full grid).
        if ry == 0 {
            if rx == 1 {
                x = (n - 1 - u64::from(x)) as u32;
                y = (n - 1 - u64::from(y)) as u32;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

/// Inverse of [`hilbert_xy_to_d`].
pub fn hilbert_d_to_xy(order: u32, d: u64) -> (u32, u32) {
    let (mut x, mut y): (u32, u32) = (0, 0);
    let mut t = d;
    let mut s: u64 = 1;
    while s < (1u64 << order) {
        let rx = 1 & (t / 2);
        let ry = 1 & (t ^ rx);
        // Rotate back.
        if ry == 0 {
            if rx == 1 {
                x = (s as u32).wrapping_sub(1).wrapping_sub(x);
                y = (s as u32).wrapping_sub(1).wrapping_sub(y);
            }
            std::mem::swap(&mut x, &mut y);
        }
        x += (s as u32) * (rx as u32);
        y += (s as u32) * (ry as u32);
        t /= 4;
        s *= 2;
    }
    (x, y)
}

/// Discretizes geographic points onto the `2^order` grid covering `bounds`,
/// so they can be fed to a [`SpaceFillingCurve`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GridMapper {
    bounds: Rect,
    order: u32,
}

impl GridMapper {
    /// A mapper for points inside `bounds`. Degenerate bounds (a single
    /// point) are handled by clamping.
    ///
    /// # Panics
    /// If `bounds` is empty or `order > MAX_ORDER`.
    pub fn new(bounds: Rect, order: u32) -> Self {
        assert!(!bounds.is_empty(), "grid bounds must be non-empty");
        assert!(order <= MAX_ORDER);
        Self { bounds, order }
    }

    /// Curve order of the grid.
    pub fn order(&self) -> u32 {
        self.order
    }

    /// Bounding rectangle of the grid.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Grid cell of `p`; points outside the bounds are clamped to the
    /// border cells (robustness for stragglers outside the sampled MBR).
    pub fn cell(&self, p: GeoPoint) -> (u32, u32) {
        let side = (1u64 << self.order) as f64;
        let span_lat = (self.bounds.max_lat - self.bounds.min_lat).max(f64::MIN_POSITIVE);
        let span_lon = (self.bounds.max_lon - self.bounds.min_lon).max(f64::MIN_POSITIVE);
        let fx = ((p.lon - self.bounds.min_lon) / span_lon * side).floor();
        let fy = ((p.lat - self.bounds.min_lat) / span_lat * side).floor();
        let max = side - 1.0;
        (fx.clamp(0.0, max) as u32, fy.clamp(0.0, max) as u32)
    }

    /// Scalar curve index of `p` under `curve`.
    pub fn scalar(&self, curve: SpaceFillingCurve, p: GeoPoint) -> u64 {
        let (x, y) = self.cell(p);
        curve.index(x, y, self.order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morton_known_values() {
        assert_eq!(morton_encode(0, 0), 0);
        assert_eq!(morton_encode(1, 0), 1);
        assert_eq!(morton_encode(0, 1), 2);
        assert_eq!(morton_encode(1, 1), 3);
        assert_eq!(morton_encode(2, 0), 4);
        assert_eq!(morton_encode(u32::MAX, u32::MAX), u64::MAX);
    }

    #[test]
    fn morton_round_trip() {
        for &(x, y) in &[(0, 0), (1, 2), (123, 456), (65_535, 65_535), (1 << 30, 7)] {
            assert_eq!(morton_decode(morton_encode(x, y)), (x, y));
        }
    }

    #[test]
    fn hilbert_order1_is_the_u_shape() {
        // Order-1 Hilbert curve visits (0,0), (0,1), (1,1), (1,0).
        assert_eq!(hilbert_xy_to_d(1, 0, 0), 0);
        assert_eq!(hilbert_xy_to_d(1, 0, 1), 1);
        assert_eq!(hilbert_xy_to_d(1, 1, 1), 2);
        assert_eq!(hilbert_xy_to_d(1, 1, 0), 3);
    }

    #[test]
    fn hilbert_round_trip_small_orders() {
        for order in 1..=6u32 {
            let side = 1u32 << order;
            for x in 0..side {
                for y in 0..side {
                    let d = hilbert_xy_to_d(order, x, y);
                    assert_eq!(hilbert_d_to_xy(order, d), (x, y), "order={order}");
                }
            }
        }
    }

    #[test]
    fn hilbert_is_a_bijection_onto_the_square() {
        let order = 4;
        let side = 1u64 << order;
        let mut seen = vec![false; (side * side) as usize];
        for x in 0..side as u32 {
            for y in 0..side as u32 {
                let d = hilbert_xy_to_d(order, x, y) as usize;
                assert!(!seen[d], "duplicate index {d}");
                seen[d] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn hilbert_consecutive_cells_are_adjacent() {
        // The defining locality property: consecutive curve positions are
        // 4-neighbors on the grid. (Z-order does NOT satisfy this.)
        let order = 5;
        let side = 1u64 << order;
        for d in 0..side * side - 1 {
            let (x1, y1) = hilbert_d_to_xy(order, d);
            let (x2, y2) = hilbert_d_to_xy(order, d + 1);
            let dist = x1.abs_diff(x2) + y1.abs_diff(y2);
            assert_eq!(dist, 1, "d={d}");
        }
    }

    #[test]
    fn grid_mapper_corners_and_clamping() {
        let bounds = Rect::new(0.0, 0.0, 10.0, 10.0);
        let g = GridMapper::new(bounds, 4); // 16x16
        assert_eq!(g.cell(GeoPoint::new(0.0, 0.0)), (0, 0));
        assert_eq!(g.cell(GeoPoint::new(10.0, 10.0)), (15, 15)); // clamped max edge
        assert_eq!(g.cell(GeoPoint::new(-5.0, 20.0)), (15, 0)); // outside -> clamp
                                                                // center lands mid-grid
        let (x, y) = g.cell(GeoPoint::new(5.0, 5.0));
        assert_eq!((x, y), (8, 8));
    }

    #[test]
    fn grid_mapper_scalar_monotone_under_zorder_quadrants() {
        let bounds = Rect::new(0.0, 0.0, 1.0, 1.0);
        let g = GridMapper::new(bounds, 8);
        // Points in the lower-left quadrant have smaller Z-index than the
        // upper-right quadrant.
        let lo = g.scalar(SpaceFillingCurve::ZOrder, GeoPoint::new(0.1, 0.1));
        let hi = g.scalar(SpaceFillingCurve::ZOrder, GeoPoint::new(0.9, 0.9));
        assert!(lo < hi);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn grid_mapper_rejects_empty_bounds() {
        let _ = GridMapper::new(Rect::empty(), 4);
    }

    #[test]
    fn curve_parse_and_name() {
        assert_eq!(
            SpaceFillingCurve::parse("morton"),
            Some(SpaceFillingCurve::ZOrder)
        );
        assert_eq!(
            SpaceFillingCurve::parse("Hilbert"),
            Some(SpaceFillingCurve::Hilbert)
        );
        assert_eq!(SpaceFillingCurve::parse("peano"), None);
        assert_eq!(SpaceFillingCurve::ZOrder.name(), "Z-order");
    }
}
