#![warn(missing_docs)]

//! # gepeto-geo
//!
//! Geometric substrate for the GEPETO toolkit:
//!
//! - [`distance`] — the metrics the paper evaluates k-means with
//!   (squared Euclidean and Haversine, §VI) plus Euclidean and Manhattan,
//!   which GEPETO exposes as user-selectable metrics.
//! - [`sfc`] — Z-order and Hilbert space-filling curves, used to partition
//!   datapoints when building an R-tree with MapReduce (§VII-C).
//! - [`rect`] — axis-aligned bounding rectangles (the MBRs of §VII-C).
//! - [`rtree`] — an R-tree with quadratic-split insertion (Guttman 1984),
//!   STR bulk loading, rectangle/radius range queries and best-first kNN;
//!   the index DJ-Cluster's neighborhood phase reads from the distributed
//!   cache (§VII-B).
//! - [`soa`] — columnar (structure-of-arrays) clustering kernels: fused
//!   assign + partial-sum with precomputed Haversine trigonometry,
//!   bit-identical to the scalar [`distance`] reference.
//!
//! ```
//! use gepeto_geo::{haversine_m, RTree};
//! use gepeto_model::GeoPoint;
//!
//! let items: Vec<(GeoPoint, usize)> = (0..100)
//!     .map(|i| (GeoPoint::new(39.9 + i as f64 * 1e-4, 116.4), i))
//!     .collect();
//! let tree = RTree::bulk_load(items);
//! let center = GeoPoint::new(39.9, 116.4);
//! let near = tree.within_radius_m(center, 50.0);
//! assert!(!near.is_empty());
//! for e in &near {
//!     assert!(haversine_m(center, e.point) <= 50.0);
//! }
//! ```

pub mod distance;
pub mod rect;
pub mod rtree;
pub mod sfc;
pub mod soa;

pub use distance::{haversine_m, DistanceMetric, EARTH_RADIUS_M};
pub use rect::Rect;
pub use rtree::RTree;
pub use sfc::SpaceFillingCurve;
pub use soa::{assign_points_pooled, CentroidsSoa, ClusterSum, PointsSoa};
