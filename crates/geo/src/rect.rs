//! Axis-aligned bounding rectangles in (lat, lon) degree space — the
//! *minimum bounding rectangles* (MBRs) of the paper's R-tree section.

use gepeto_model::GeoPoint;
use serde::{Deserialize, Serialize};

/// A closed axis-aligned rectangle `[min_lat, max_lat] × [min_lon, max_lon]`.
///
/// An *empty* rectangle (as returned by [`Rect::empty`]) has inverted
/// bounds and behaves as the identity for [`Rect::union`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Southern edge (inclusive), degrees latitude.
    pub min_lat: f64,
    /// Western edge (inclusive), degrees longitude.
    pub min_lon: f64,
    /// Northern edge (inclusive), degrees latitude.
    pub max_lat: f64,
    /// Eastern edge (inclusive), degrees longitude.
    pub max_lon: f64,
}

impl Rect {
    /// The empty rectangle: union identity, intersects nothing.
    pub const fn empty() -> Self {
        Self {
            min_lat: f64::INFINITY,
            min_lon: f64::INFINITY,
            max_lat: f64::NEG_INFINITY,
            max_lon: f64::NEG_INFINITY,
        }
    }

    /// Rectangle from explicit bounds. Callers must pass `min <= max`.
    pub fn new(min_lat: f64, min_lon: f64, max_lat: f64, max_lon: f64) -> Self {
        debug_assert!(min_lat <= max_lat && min_lon <= max_lon);
        Self {
            min_lat,
            min_lon,
            max_lat,
            max_lon,
        }
    }

    /// The degenerate rectangle covering a single point.
    pub fn point(p: GeoPoint) -> Self {
        Self {
            min_lat: p.lat,
            min_lon: p.lon,
            max_lat: p.lat,
            max_lon: p.lon,
        }
    }

    /// The MBR of a set of points; empty for an empty iterator.
    pub fn of_points(points: impl IntoIterator<Item = GeoPoint>) -> Self {
        let mut r = Self::empty();
        for p in points {
            r = r.union(&Self::point(p));
        }
        r
    }

    /// Whether this rectangle is the empty rectangle.
    pub fn is_empty(&self) -> bool {
        self.min_lat > self.max_lat || self.min_lon > self.max_lon
    }

    /// Smallest rectangle containing both operands.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min_lat: self.min_lat.min(other.min_lat),
            min_lon: self.min_lon.min(other.min_lon),
            max_lat: self.max_lat.max(other.max_lat),
            max_lon: self.max_lon.max(other.max_lon),
        }
    }

    /// Whether the two rectangles share at least one point.
    pub fn intersects(&self, other: &Rect) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min_lat <= other.max_lat
            && other.min_lat <= self.max_lat
            && self.min_lon <= other.max_lon
            && other.min_lon <= self.max_lon
    }

    /// Whether `p` lies inside (or on the border of) this rectangle.
    pub fn contains_point(&self, p: GeoPoint) -> bool {
        (self.min_lat..=self.max_lat).contains(&p.lat)
            && (self.min_lon..=self.max_lon).contains(&p.lon)
    }

    /// Whether `other` lies fully inside this rectangle.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        !other.is_empty()
            && self.min_lat <= other.min_lat
            && self.min_lon <= other.min_lon
            && self.max_lat >= other.max_lat
            && self.max_lon >= other.max_lon
    }

    /// Area in squared degrees (0 for empty or degenerate rectangles).
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (self.max_lat - self.min_lat) * (self.max_lon - self.min_lon)
    }

    /// Half-perimeter (the R*-tree "margin"); 0 for empty rectangles.
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (self.max_lat - self.min_lat) + (self.max_lon - self.min_lon)
    }

    /// Increase in area needed to absorb `other` — the quadratic-split and
    /// subtree-choice cost used by Guttman insertion.
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Squared degree-space distance from `p` to the nearest point of the
    /// rectangle (0 if inside). Used as the kNN best-first lower bound.
    pub fn min_dist2(&self, p: GeoPoint) -> f64 {
        if self.is_empty() {
            return f64::INFINITY;
        }
        let dlat = (self.min_lat - p.lat).max(0.0).max(p.lat - self.max_lat);
        let dlon = (self.min_lon - p.lon).max(0.0).max(p.lon - self.max_lon);
        dlat * dlat + dlon * dlon
    }

    /// Center of the rectangle; `None` when empty.
    pub fn center(&self) -> Option<GeoPoint> {
        if self.is_empty() {
            return None;
        }
        Some(GeoPoint::new(
            (self.min_lat + self.max_lat) / 2.0,
            (self.min_lon + self.max_lon) / 2.0,
        ))
    }
}

impl Default for Rect {
    fn default() -> Self {
        Self::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_rect_properties() {
        let e = Rect::empty();
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        assert_eq!(e.margin(), 0.0);
        assert!(!e.intersects(&Rect::new(0.0, 0.0, 1.0, 1.0)));
        assert!(!e.contains_point(GeoPoint::new(0.0, 0.0)));
        assert!(e.center().is_none());
        assert_eq!(e.min_dist2(GeoPoint::new(0.0, 0.0)), f64::INFINITY);
    }

    #[test]
    fn union_with_empty_is_identity() {
        let r = Rect::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(r.union(&Rect::empty()), r);
        assert_eq!(Rect::empty().union(&r), r);
    }

    #[test]
    fn union_covers_both() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(2.0, -1.0, 3.0, 0.5);
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u, Rect::new(0.0, -1.0, 3.0, 1.0));
    }

    #[test]
    fn intersection_cases() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        assert!(a.intersects(&Rect::new(1.0, 1.0, 3.0, 3.0))); // overlap
        assert!(a.intersects(&Rect::new(2.0, 2.0, 3.0, 3.0))); // corner touch
        assert!(!a.intersects(&Rect::new(2.1, 0.0, 3.0, 2.0))); // disjoint
        assert!(a.intersects(&a)); // self
    }

    #[test]
    fn containment() {
        let a = Rect::new(0.0, 0.0, 4.0, 4.0);
        assert!(a.contains_point(GeoPoint::new(0.0, 4.0))); // border
        assert!(!a.contains_point(GeoPoint::new(4.1, 0.0)));
        assert!(a.contains_rect(&Rect::new(1.0, 1.0, 2.0, 2.0)));
        assert!(!a.contains_rect(&Rect::new(1.0, 1.0, 5.0, 2.0)));
        assert!(!a.contains_rect(&Rect::empty()));
    }

    #[test]
    fn area_margin_enlargement() {
        let a = Rect::new(0.0, 0.0, 2.0, 3.0);
        assert_eq!(a.area(), 6.0);
        assert_eq!(a.margin(), 5.0);
        let p = Rect::point(GeoPoint::new(4.0, 0.0));
        // union is [0,4]x[0,3], area 12, so enlargement 6.
        assert_eq!(a.enlargement(&p), 6.0);
        assert_eq!(a.enlargement(&Rect::point(GeoPoint::new(1.0, 1.0))), 0.0);
    }

    #[test]
    fn min_dist2_inside_edge_and_corner() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        assert_eq!(a.min_dist2(GeoPoint::new(1.0, 1.0)), 0.0); // inside
        assert_eq!(a.min_dist2(GeoPoint::new(3.0, 1.0)), 1.0); // edge
        assert_eq!(a.min_dist2(GeoPoint::new(3.0, 3.0)), 2.0); // corner
    }

    #[test]
    fn of_points() {
        let r = Rect::of_points(vec![
            GeoPoint::new(1.0, 5.0),
            GeoPoint::new(-1.0, 7.0),
            GeoPoint::new(0.0, 6.0),
        ]);
        assert_eq!(r, Rect::new(-1.0, 5.0, 1.0, 7.0));
        assert!(Rect::of_points(std::iter::empty()).is_empty());
    }
}
