//! Columnar (structure-of-arrays) clustering kernels.
//!
//! The k-means hot loop evaluates `n × k` point-to-centroid distances per
//! iteration. Doing that through [`DistanceMetric::between`] on an
//! array-of-structs layout recomputes `sin`/`cos`/`to_radians` for every
//! pair and defeats auto-vectorization because the compiler cannot prove
//! the `GeoPoint` loads are independent lanes. This module keeps the same
//! arithmetic — bit for bit — but lays the data out as separate `f64`
//! columns and hoists the per-centroid (and per-point) trigonometry out of
//! the inner loop:
//!
//! - [`CentroidsSoa`] — centroids split into `lat`/`lon` columns, with
//!   `lat_rad`/`lon_rad`/`cos_lat` precomputed once for Haversine.
//! - [`PointsSoa`] — an input block split into `lat`/`lon` columns.
//! - [`CentroidsSoa::assign_sum`] — the fused *assign + partial-sum* loop:
//!   one pass that finds each point's nearest centroid **and** accumulates
//!   the per-cluster coordinate sums, so callers no longer need a second
//!   combiner pass over the assignments.
//!
//! ## Bit-identical by construction
//!
//! Every kernel reproduces the exact floating-point expressions of
//! [`DistanceMetric::between`] / [`crate::haversine_m`] with the same operand
//! order (`a` = point, `b` = centroid, matching every clustering call
//! site). Hoisting `to_radians`/`cos` is exact: the same input bits go
//! through the same operations, just once instead of `k` (or `n`) times.
//! The argmin scan is a strict `<` first-minimum-wins loop, identical to
//! the scalar reference, and the partial sums add points in slice order —
//! so centroids, assignments and sums match the scalar path bit for bit.
//! Property tests in this module and in `gepeto` assert this.
//!
//! ## Explicit SIMD lanes
//!
//! The planar metrics (Euclidean, squared Euclidean, Manhattan) run on
//! explicit [`LANES`]-wide f64 blocks — plain `[f64; 4]` arrays the
//! compiler lowers to vector registers:
//!
//! - [`CentroidsSoa::assign_sum`] vectorizes over **points**: four
//!   independent points race through the centroid scan side by side.
//!   Each lane evaluates the same expression in the same operand order
//!   as the scalar loop and keeps its own strict-`<` argmin state, and
//!   the per-cluster sums are folded lane 0→3 (= point order), so the
//!   result is `to_bits`-identical to the scalar kernel by construction.
//! - [`CentroidsSoa::nearest`] vectorizes over **centroids**: four
//!   distances per block, then an in-order lane scan that preserves the
//!   strict-`<` first-minimum-wins tie-break exactly.
//!
//! Haversine stays on the scalar path: its per-pair `sin`/`cos`/`asin`
//! calls cannot be laned without changing the libm call sequence, and
//! the bit-exactness contract outranks the speedup. The pre-lane scalar
//! kernels remain as [`CentroidsSoa::assign_sum_scalar`] /
//! [`CentroidsSoa::nearest_scalar`] — the reference the property tests
//! (and the `kernels` bench) compare against.

use crate::distance::{DistanceMetric, EARTH_RADIUS_M};
use gepeto_model::GeoPoint;

/// Lane width of the vectorized planar kernels: four f64s, one 256-bit
/// vector register on AVX2-class hosts (two 128-bit ops elsewhere).
pub const LANES: usize = 4;

/// Running coordinate sum for one cluster — the fused combiner state.
///
/// Mirrors the k-means `PointSum` (sum of latitudes, sum of longitudes,
/// member count) so partial results can be merged across chunks in order.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClusterSum {
    /// Sum of member latitudes, in the order the points were scanned.
    pub lat_sum: f64,
    /// Sum of member longitudes, in the order the points were scanned.
    pub lon_sum: f64,
    /// Number of points accumulated.
    pub count: u64,
}

impl ClusterSum {
    /// Folds another partial sum into this one (chunk merge).
    ///
    /// Addition order matters for bit-identity: fold chunk results in
    /// chunk order, exactly like the scalar reduction does.
    pub fn merge(&mut self, other: &ClusterSum) {
        self.lat_sum += other.lat_sum;
        self.lon_sum += other.lon_sum;
        self.count += other.count;
    }
}

/// An input block split into latitude and longitude columns.
#[derive(Debug, Clone, Default)]
pub struct PointsSoa {
    /// Latitude column, decimal degrees.
    pub lat: Vec<f64>,
    /// Longitude column, decimal degrees.
    pub lon: Vec<f64>,
}

impl PointsSoa {
    /// Splits an array-of-structs slice into columns.
    pub fn from_points(points: &[GeoPoint]) -> Self {
        Self {
            lat: points.iter().map(|p| p.lat).collect(),
            lon: points.iter().map(|p| p.lon).collect(),
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.lat.len()
    }

    /// Whether the block is empty.
    pub fn is_empty(&self) -> bool {
        self.lat.is_empty()
    }
}

/// Centroids in columnar layout with precomputed Haversine trigonometry.
///
/// Build once per iteration (k is small), then evaluate `nearest` /
/// `assign_sum` over millions of points without touching `sin`/`cos` for
/// the centroid side again.
#[derive(Debug, Clone)]
pub struct CentroidsSoa {
    metric: DistanceMetric,
    /// Centroid latitudes, decimal degrees.
    lat: Vec<f64>,
    /// Centroid longitudes, decimal degrees.
    lon: Vec<f64>,
    /// `lat.to_radians()` per centroid (Haversine only).
    lat_rad: Vec<f64>,
    /// `lon.to_radians()` per centroid (Haversine only).
    lon_rad: Vec<f64>,
    /// `lat.to_radians().cos()` per centroid (Haversine only).
    cos_lat: Vec<f64>,
}

impl CentroidsSoa {
    /// Splits `centroids` into columns and precomputes the trigonometry
    /// the chosen metric needs.
    pub fn new(centroids: &[GeoPoint], metric: DistanceMetric) -> Self {
        let lat: Vec<f64> = centroids.iter().map(|c| c.lat).collect();
        let lon: Vec<f64> = centroids.iter().map(|c| c.lon).collect();
        let (lat_rad, lon_rad, cos_lat) = if metric == DistanceMetric::Haversine {
            let lat_rad: Vec<f64> = lat.iter().map(|l| l.to_radians()).collect();
            let lon_rad: Vec<f64> = lon.iter().map(|l| l.to_radians()).collect();
            let cos_lat: Vec<f64> = lat_rad.iter().map(|l| l.cos()).collect();
            (lat_rad, lon_rad, cos_lat)
        } else {
            (Vec::new(), Vec::new(), Vec::new())
        };
        Self {
            metric,
            lat,
            lon,
            lat_rad,
            lon_rad,
            cos_lat,
        }
    }

    /// Number of centroids.
    pub fn len(&self) -> usize {
        self.lat.len()
    }

    /// Whether there are no centroids.
    pub fn is_empty(&self) -> bool {
        self.lat.is_empty()
    }

    /// The metric these kernels evaluate.
    pub fn metric(&self) -> DistanceMetric {
        self.metric
    }

    /// Distance from `p` to centroid `i` — bit-identical to
    /// `metric.between(p, centroids[i])`.
    pub fn distance(&self, p: GeoPoint, i: usize) -> f64 {
        match self.metric {
            DistanceMetric::Haversine => {
                let lat1 = p.lat.to_radians();
                let lon1 = p.lon.to_radians();
                self.haversine_to(lat1, lon1, lat1.cos(), i)
            }
            _ => self.planar(p.lat, p.lon, i),
        }
    }

    /// Index of the nearest centroid under strict-`<` first-minimum-wins
    /// semantics — bit-identical to the scalar argmin over
    /// `metric.between(p, c)`. Planar metrics run [`LANES`] centroids per
    /// block; Haversine stays scalar (see the module docs).
    pub fn nearest(&self, p: GeoPoint) -> u32 {
        debug_assert!(!self.is_empty());
        match self.metric {
            DistanceMetric::Haversine => self.nearest_scalar(p),
            DistanceMetric::Euclidean => self.nearest_lanes(p.lat, p.lon, |dlat, dlon| {
                (dlat * dlat + dlon * dlon).sqrt()
            }),
            DistanceMetric::SquaredEuclidean => {
                self.nearest_lanes(p.lat, p.lon, |dlat, dlon| dlat * dlat + dlon * dlon)
            }
            DistanceMetric::Manhattan => {
                self.nearest_lanes(p.lat, p.lon, |dlat, dlon| dlat.abs() + dlon.abs())
            }
        }
    }

    /// The scalar argmin — the reference the lane kernel must reproduce
    /// bit for bit (property-tested below and used directly for
    /// Haversine).
    pub fn nearest_scalar(&self, p: GeoPoint) -> u32 {
        debug_assert!(!self.is_empty());
        match self.metric {
            DistanceMetric::Haversine => {
                let lat1 = p.lat.to_radians();
                let lon1 = p.lon.to_radians();
                let cos1 = lat1.cos();
                let mut best = 0u32;
                let mut best_d = f64::INFINITY;
                for i in 0..self.len() {
                    let d = self.haversine_to(lat1, lon1, cos1, i);
                    if d < best_d {
                        best_d = d;
                        best = i as u32;
                    }
                }
                best
            }
            _ => {
                let mut best = 0u32;
                let mut best_d = f64::INFINITY;
                for i in 0..self.len() {
                    let d = self.planar(p.lat, p.lon, i);
                    if d < best_d {
                        best_d = d;
                        best = i as u32;
                    }
                }
                best
            }
        }
    }

    /// Planar argmin over [`LANES`]-wide centroid blocks. Each block
    /// evaluates four distances with the exact scalar expressions, then
    /// scans the lanes **in index order** with the same strict-`<`
    /// comparison — so the first minimum wins exactly as in the scalar
    /// loop, ties and all. The tail runs the scalar loop.
    #[inline]
    fn nearest_lanes<D>(&self, plat: f64, plon: f64, dist: D) -> u32
    where
        D: Fn(f64, f64) -> f64 + Copy,
    {
        let k = self.len();
        let mut best = 0u32;
        let mut best_d = f64::INFINITY;
        let mut i = 0;
        while i + LANES <= k {
            let mut d = [0.0f64; LANES];
            for (j, dj) in d.iter_mut().enumerate() {
                *dj = dist(plat - self.lat[i + j], plon - self.lon[i + j]);
            }
            for (j, &dj) in d.iter().enumerate() {
                if dj < best_d {
                    best_d = dj;
                    best = (i + j) as u32;
                }
            }
            i += LANES;
        }
        while i < k {
            let d = dist(plat - self.lat[i], plon - self.lon[i]);
            if d < best_d {
                best_d = d;
                best = i as u32;
            }
            i += 1;
        }
        best
    }

    /// The fused assign + partial-sum kernel over columnar points.
    ///
    /// For each point, finds the nearest centroid and accumulates the
    /// point into `sums[cid]` — one pass, no assignment buffer. `sums`
    /// must hold exactly `self.len()` entries; points are accumulated in
    /// slice order, so chunked callers that merge partials in chunk order
    /// reproduce the scalar reduction bit for bit.
    ///
    /// Returns the number of distance evaluations performed
    /// (`points × centroids`). Planar metrics run [`LANES`] points per
    /// block (see the module docs); Haversine runs the scalar reference.
    pub fn assign_sum(&self, lat: &[f64], lon: &[f64], sums: &mut [ClusterSum]) -> u64 {
        assert_eq!(lat.len(), lon.len());
        assert_eq!(sums.len(), self.len());
        match self.metric {
            DistanceMetric::Haversine => {
                self.assign_sum_haversine(lat, lon, sums);
            }
            DistanceMetric::Euclidean => {
                self.assign_sum_lanes(lat, lon, sums, |dlat, dlon| {
                    (dlat * dlat + dlon * dlon).sqrt()
                });
            }
            DistanceMetric::SquaredEuclidean => {
                self.assign_sum_lanes(lat, lon, sums, |dlat, dlon| dlat * dlat + dlon * dlon);
            }
            DistanceMetric::Manhattan => {
                self.assign_sum_lanes(lat, lon, sums, |dlat, dlon| dlat.abs() + dlon.abs());
            }
        }
        lat.len() as u64 * self.len() as u64
    }

    /// The pre-lane scalar kernel, kept verbatim as the bit-exactness
    /// reference for [`assign_sum`](Self::assign_sum) (property-tested
    /// below, raced against the lane kernel in the `kernels` bench).
    pub fn assign_sum_scalar(&self, lat: &[f64], lon: &[f64], sums: &mut [ClusterSum]) -> u64 {
        assert_eq!(lat.len(), lon.len());
        assert_eq!(sums.len(), self.len());
        match self.metric {
            DistanceMetric::Haversine => self.assign_sum_haversine(lat, lon, sums),
            _ => {
                for (&plat, &plon) in lat.iter().zip(lon) {
                    let mut best = 0usize;
                    let mut best_d = f64::INFINITY;
                    for i in 0..self.len() {
                        let d = self.planar(plat, plon, i);
                        if d < best_d {
                            best_d = d;
                            best = i;
                        }
                    }
                    let s = &mut sums[best];
                    s.lat_sum += plat;
                    s.lon_sum += plon;
                    s.count += 1;
                }
            }
        }
        lat.len() as u64 * self.len() as u64
    }

    /// The Haversine assign+sum loop — scalar by contract (laning would
    /// reorder the libm `sin`/`cos`/`asin` sequence).
    fn assign_sum_haversine(&self, lat: &[f64], lon: &[f64], sums: &mut [ClusterSum]) {
        for (&plat, &plon) in lat.iter().zip(lon) {
            let lat1 = plat.to_radians();
            let lon1 = plon.to_radians();
            let cos1 = lat1.cos();
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for i in 0..self.len() {
                let d = self.haversine_to(lat1, lon1, cos1, i);
                if d < best_d {
                    best_d = d;
                    best = i;
                }
            }
            let s = &mut sums[best];
            s.lat_sum += plat;
            s.lon_sum += plon;
            s.count += 1;
        }
    }

    /// The laned planar assign+sum core: [`LANES`] points per block, one
    /// strict-`<` argmin state per lane, sums folded lane 0→3 (= point
    /// order) after the centroid scan, scalar tail for `n % LANES`
    /// points. Bit-identical to the scalar kernel by construction — each
    /// lane runs the same expressions on the same operands in the same
    /// order; only *independent* points run side by side.
    #[inline]
    fn assign_sum_lanes<D>(&self, lat: &[f64], lon: &[f64], sums: &mut [ClusterSum], dist: D)
    where
        D: Fn(f64, f64) -> f64 + Copy,
    {
        let k = self.len();
        let lat_blocks = lat.chunks_exact(LANES);
        let lon_blocks = lon.chunks_exact(LANES);
        let lat_tail = lat_blocks.remainder();
        let lon_tail = lon_blocks.remainder();
        for (lat_block, lon_block) in lat_blocks.zip(lon_blocks) {
            let plat: &[f64; LANES] = lat_block.try_into().expect("exact chunk");
            let plon: &[f64; LANES] = lon_block.try_into().expect("exact chunk");
            let mut best = [0usize; LANES];
            let mut best_d = [f64::INFINITY; LANES];
            for i in 0..k {
                let clat = self.lat[i];
                let clon = self.lon[i];
                for j in 0..LANES {
                    let d = dist(plat[j] - clat, plon[j] - clon);
                    if d < best_d[j] {
                        best_d[j] = d;
                        best[j] = i;
                    }
                }
            }
            for j in 0..LANES {
                let s = &mut sums[best[j]];
                s.lat_sum += plat[j];
                s.lon_sum += plon[j];
                s.count += 1;
            }
        }
        for (&plat, &plon) in lat_tail.iter().zip(lon_tail) {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for i in 0..k {
                let d = dist(plat - self.lat[i], plon - self.lon[i]);
                if d < best_d {
                    best_d = d;
                    best = i;
                }
            }
            let s = &mut sums[best];
            s.lat_sum += plat;
            s.lon_sum += plon;
            s.count += 1;
        }
    }

    /// [`assign_sum`](Self::assign_sum) over an array-of-structs slice —
    /// same lane/scalar split, reading `GeoPoint`s directly (the lat/lon
    /// columns of each block are gathered into lane arrays on the fly).
    pub fn assign_sum_points(&self, points: &[GeoPoint], sums: &mut [ClusterSum]) -> u64 {
        assert_eq!(sums.len(), self.len());
        match self.metric {
            DistanceMetric::Haversine => {
                for p in points {
                    let lat1 = p.lat.to_radians();
                    let lon1 = p.lon.to_radians();
                    let cos1 = lat1.cos();
                    let mut best = 0usize;
                    let mut best_d = f64::INFINITY;
                    for i in 0..self.len() {
                        let d = self.haversine_to(lat1, lon1, cos1, i);
                        if d < best_d {
                            best_d = d;
                            best = i;
                        }
                    }
                    let s = &mut sums[best];
                    s.lat_sum += p.lat;
                    s.lon_sum += p.lon;
                    s.count += 1;
                }
            }
            DistanceMetric::Euclidean => {
                self.assign_sum_points_lanes(points, sums, |dlat, dlon| {
                    (dlat * dlat + dlon * dlon).sqrt()
                });
            }
            DistanceMetric::SquaredEuclidean => {
                self.assign_sum_points_lanes(points, sums, |dlat, dlon| dlat * dlat + dlon * dlon);
            }
            DistanceMetric::Manhattan => {
                self.assign_sum_points_lanes(points, sums, |dlat, dlon| dlat.abs() + dlon.abs());
            }
        }
        points.len() as u64 * self.len() as u64
    }

    /// AoS front-end of [`assign_sum_lanes`](Self::assign_sum_lanes).
    #[inline]
    fn assign_sum_points_lanes<D>(&self, points: &[GeoPoint], sums: &mut [ClusterSum], dist: D)
    where
        D: Fn(f64, f64) -> f64 + Copy,
    {
        let k = self.len();
        let blocks = points.chunks_exact(LANES);
        let tail = blocks.remainder();
        for block in blocks {
            let plat: [f64; LANES] = std::array::from_fn(|j| block[j].lat);
            let plon: [f64; LANES] = std::array::from_fn(|j| block[j].lon);
            let mut best = [0usize; LANES];
            let mut best_d = [f64::INFINITY; LANES];
            for i in 0..k {
                let clat = self.lat[i];
                let clon = self.lon[i];
                for j in 0..LANES {
                    let d = dist(plat[j] - clat, plon[j] - clon);
                    if d < best_d[j] {
                        best_d[j] = d;
                        best[j] = i;
                    }
                }
            }
            for j in 0..LANES {
                let s = &mut sums[best[j]];
                s.lat_sum += plat[j];
                s.lon_sum += plon[j];
                s.count += 1;
            }
        }
        for p in tail {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for i in 0..k {
                let d = dist(p.lat - self.lat[i], p.lon - self.lon[i]);
                if d < best_d {
                    best_d = d;
                    best = i;
                }
            }
            let s = &mut sums[best];
            s.lat_sum += p.lat;
            s.lon_sum += p.lon;
            s.count += 1;
        }
    }

    /// Planar metrics — the exact expressions of `DistanceMetric::between`
    /// with `a` = point, `b` = centroid.
    #[inline]
    fn planar(&self, plat: f64, plon: f64, i: usize) -> f64 {
        let dlat = plat - self.lat[i];
        let dlon = plon - self.lon[i];
        match self.metric {
            DistanceMetric::Euclidean => (dlat * dlat + dlon * dlon).sqrt(),
            DistanceMetric::SquaredEuclidean => dlat * dlat + dlon * dlon,
            DistanceMetric::Manhattan => dlat.abs() + dlon.abs(),
            DistanceMetric::Haversine => unreachable!("haversine uses the precomputed path"),
        }
    }

    /// Haversine core with the point-side trig (`lat1`/`lon1` in radians,
    /// `cos1 = lat1.cos()`) hoisted by the caller — the exact per-pair
    /// expression of [`crate::haversine_m`], operand order preserved.
    #[inline]
    fn haversine_to(&self, lat1: f64, lon1: f64, cos1: f64, i: usize) -> f64 {
        let dlat = self.lat_rad[i] - lat1;
        let dlon = self.lon_rad[i] - lon1;
        let h = (dlat / 2.0).sin().powi(2) + cos1 * self.cos_lat[i] * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * h.sqrt().min(1.0).asin()
    }
}

/// Chunk size of the pooled labeling pass — matches the k-means
/// `SEQ_CHUNK`, so the work granularity is identical across kernels.
const POOL_CHUNK: usize = 16_384;

/// Labels every point with its nearest centroid, fanning fixed-size
/// chunks out over the global work-stealing pool.
///
/// Each chunk's labels land in their own slot and the slots are
/// concatenated in chunk order, so the output is identical to the
/// sequential `points.iter().map(|&p| soa.nearest(p))` scan at any
/// thread count.
pub fn assign_points_pooled(points: &[GeoPoint], soa: &CentroidsSoa) -> Vec<u32> {
    let chunks: Vec<&[GeoPoint]> = points.chunks(POOL_CHUNK).collect();
    let labeled: Vec<Vec<u32>> = gepeto_pool::global().map_indexed(chunks.len(), |c| {
        chunks[c].iter().map(|&p| soa.nearest(p)).collect()
    });
    labeled.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::haversine_m;

    /// Deterministic pseudo-random point cloud (no `rand` dependency).
    fn cloud(n: usize, seed: u64) -> Vec<GeoPoint> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| GeoPoint::new(39.0 + 2.0 * next(), 115.0 + 3.0 * next()))
            .collect()
    }

    fn scalar_nearest(p: GeoPoint, centroids: &[GeoPoint], metric: DistanceMetric) -> u32 {
        let mut best = 0u32;
        let mut best_d = f64::INFINITY;
        for (i, c) in centroids.iter().enumerate() {
            let d = metric.between(p, *c);
            if d < best_d {
                best_d = d;
                best = i as u32;
            }
        }
        best
    }

    const ALL_METRICS: [DistanceMetric; 4] = [
        DistanceMetric::Euclidean,
        DistanceMetric::SquaredEuclidean,
        DistanceMetric::Manhattan,
        DistanceMetric::Haversine,
    ];

    #[test]
    fn squared_euclidean_distance_is_bit_identical_to_scalar() {
        let points = cloud(500, 7);
        let centroids = cloud(9, 42);
        let soa = CentroidsSoa::new(&centroids, DistanceMetric::SquaredEuclidean);
        for p in &points {
            for (i, c) in centroids.iter().enumerate() {
                let reference = DistanceMetric::SquaredEuclidean.between(*p, *c);
                assert_eq!(soa.distance(*p, i).to_bits(), reference.to_bits());
            }
        }
    }

    #[test]
    fn haversine_distance_matches_scalar_within_1e9_relative() {
        let points = cloud(500, 11);
        let centroids = cloud(9, 43);
        let soa = CentroidsSoa::new(&centroids, DistanceMetric::Haversine);
        for p in &points {
            for (i, c) in centroids.iter().enumerate() {
                let reference = haversine_m(*p, *c);
                let got = soa.distance(*p, i);
                if reference == 0.0 {
                    assert_eq!(got, 0.0);
                } else {
                    assert!(
                        ((got - reference) / reference).abs() < 1e-9,
                        "got={got} want={reference}"
                    );
                }
            }
        }
    }

    #[test]
    fn haversine_distance_is_in_fact_bit_identical() {
        // Hoisting to_radians/cos is exact, so the guarantee is stronger
        // than the 1e-9 contract: the bits match.
        let points = cloud(300, 23);
        let centroids = cloud(7, 29);
        let soa = CentroidsSoa::new(&centroids, DistanceMetric::Haversine);
        for p in &points {
            for (i, c) in centroids.iter().enumerate() {
                assert_eq!(soa.distance(*p, i).to_bits(), haversine_m(*p, *c).to_bits());
            }
        }
    }

    #[test]
    fn nearest_matches_scalar_argmin_for_all_metrics() {
        let points = cloud(1000, 3);
        let centroids = cloud(11, 77);
        for metric in ALL_METRICS {
            let soa = CentroidsSoa::new(&centroids, metric);
            for p in &points {
                assert_eq!(
                    soa.nearest(*p),
                    scalar_nearest(*p, &centroids, metric),
                    "{metric:?}"
                );
            }
        }
    }

    #[test]
    fn fused_assign_sum_matches_scalar_two_pass() {
        let points = cloud(2000, 5);
        let centroids = cloud(8, 13);
        for metric in ALL_METRICS {
            let soa = CentroidsSoa::new(&centroids, metric);
            // Scalar reference: assign, then sum in slice order.
            let mut want = vec![ClusterSum::default(); centroids.len()];
            for p in &points {
                let cid = scalar_nearest(*p, &centroids, metric) as usize;
                want[cid].lat_sum += p.lat;
                want[cid].lon_sum += p.lon;
                want[cid].count += 1;
            }
            let cols = PointsSoa::from_points(&points);
            let mut got = vec![ClusterSum::default(); centroids.len()];
            let evals = soa.assign_sum(&cols.lat, &cols.lon, &mut got);
            assert_eq!(evals, (points.len() * centroids.len()) as u64);
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.count, w.count, "{metric:?}");
                assert_eq!(g.lat_sum.to_bits(), w.lat_sum.to_bits(), "{metric:?}");
                assert_eq!(g.lon_sum.to_bits(), w.lon_sum.to_bits(), "{metric:?}");
            }
            // The AoS variant runs the same kernel.
            let mut aos = vec![ClusterSum::default(); centroids.len()];
            soa.assign_sum_points(&points, &mut aos);
            assert_eq!(aos, got);
        }
    }

    #[test]
    fn chunked_merge_reproduces_whole_slice_sums() {
        let points = cloud(1000, 17);
        let centroids = cloud(5, 19);
        let soa = CentroidsSoa::new(&centroids, DistanceMetric::SquaredEuclidean);
        let cols = PointsSoa::from_points(&points);
        let mut whole = vec![ClusterSum::default(); centroids.len()];
        soa.assign_sum(&cols.lat, &cols.lon, &mut whole);

        let mut merged = vec![ClusterSum::default(); centroids.len()];
        for (lat_chunk, lon_chunk) in cols.lat.chunks(97).zip(cols.lon.chunks(97)) {
            let mut partial = vec![ClusterSum::default(); centroids.len()];
            soa.assign_sum(lat_chunk, lon_chunk, &mut partial);
            for (m, p) in merged.iter_mut().zip(&partial) {
                m.merge(p);
            }
        }
        // Same chunking as a scalar chunked fold ⇒ same bits.
        for (m, w) in merged.iter().zip(&whole) {
            assert_eq!(m.count, w.count);
            // Chunked addition reassociates ⇒ compare within fp tolerance.
            assert!((m.lat_sum - w.lat_sum).abs() < 1e-9);
            assert!((m.lon_sum - w.lon_sum).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_and_single_point_edge_cases() {
        let centroids = cloud(3, 1);
        let soa = CentroidsSoa::new(&centroids, DistanceMetric::Haversine);
        let mut sums = vec![ClusterSum::default(); 3];
        assert_eq!(soa.assign_sum(&[], &[], &mut sums), 0);
        assert!(sums.iter().all(|s| s.count == 0));
        let p = centroids[1];
        assert_eq!(soa.nearest(p), 1);
    }

    #[test]
    fn exact_tie_centroids_prefer_the_lower_index_in_lanes() {
        // Four centroids exactly equidistant from the probe (and a
        // duplicate pair), at k values that place the tie inside one
        // lane block, across the block boundary, and in the scalar tail.
        let probe = GeoPoint::new(40.0, 116.0);
        for metric in [
            DistanceMetric::Euclidean,
            DistanceMetric::SquaredEuclidean,
            DistanceMetric::Manhattan,
        ] {
            for k in 4..=9 {
                let ring = [
                    GeoPoint::new(40.5, 116.0),
                    GeoPoint::new(39.5, 116.0),
                    GeoPoint::new(40.0, 116.5),
                    GeoPoint::new(40.0, 115.5),
                ];
                let centroids: Vec<GeoPoint> = (0..k).map(|i| ring[i % ring.len()]).collect();
                let soa = CentroidsSoa::new(&centroids, metric);
                assert_eq!(soa.nearest(probe), 0, "{metric:?} k={k}");
                assert_eq!(
                    soa.nearest(probe),
                    soa.nearest_scalar(probe),
                    "{metric:?} k={k}"
                );
            }
        }
    }

    #[test]
    fn pooled_assignment_matches_the_sequential_scan() {
        let points = cloud(40_000, 31);
        let centroids = cloud(7, 37);
        for metric in ALL_METRICS {
            let soa = CentroidsSoa::new(&centroids, metric);
            let sequential: Vec<u32> = points.iter().map(|&p| soa.nearest(p)).collect();
            assert_eq!(
                assign_points_pooled(&points, &soa),
                sequential,
                "{metric:?}"
            );
        }
    }
}

#[cfg(test)]
mod lane_props {
    use super::*;
    use proptest::prelude::*;

    /// Deterministic point cloud, same generator as the unit tests.
    fn cloud(n: usize, seed: u64) -> Vec<GeoPoint> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| GeoPoint::new(39.0 + 2.0 * next(), 115.0 + 3.0 * next()))
            .collect()
    }

    const LANE_METRICS: [DistanceMetric; 3] = [
        DistanceMetric::Euclidean,
        DistanceMetric::SquaredEuclidean,
        DistanceMetric::Manhattan,
    ];

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The lane kernels match the scalar references bit for bit for
        /// arbitrary clouds, every lane-remainder length (`n % LANES`
        /// and `k % LANES` both sweep 0..LANES), and adversarial
        /// near-tie centroid sets (`dup` duplicates centroid 0 at the
        /// highest index, forcing exact distance ties the strict-<
        /// first-win scan must resolve toward the lower index).
        #[test]
        fn laned_kernels_are_bit_identical_to_scalar(
            seed in any::<u64>(),
            blocks in 0usize..24,
            rem in 0usize..LANES,
            k in 1usize..18,
            dup in 0usize..2,
        ) {
            let n = blocks * LANES + rem;
            let points = cloud(n, seed);
            let mut centroids = cloud(k, seed ^ 0x5bd1_e995);
            if dup == 1 && k >= 2 {
                centroids[k - 1] = centroids[0];
            }
            for metric in LANE_METRICS {
                let soa = CentroidsSoa::new(&centroids, metric);
                for p in &points {
                    prop_assert_eq!(soa.nearest(*p), soa.nearest_scalar(*p));
                }
                let cols = PointsSoa::from_points(&points);
                let mut laned = vec![ClusterSum::default(); k];
                let mut scalar = vec![ClusterSum::default(); k];
                soa.assign_sum(&cols.lat, &cols.lon, &mut laned);
                soa.assign_sum_scalar(&cols.lat, &cols.lon, &mut scalar);
                for (l, s) in laned.iter().zip(&scalar) {
                    prop_assert_eq!(l.count, s.count);
                    prop_assert_eq!(l.lat_sum.to_bits(), s.lat_sum.to_bits());
                    prop_assert_eq!(l.lon_sum.to_bits(), s.lon_sum.to_bits());
                }
                // The AoS front-end gathers lanes on the fly but must
                // land on the same bits.
                let mut aos = vec![ClusterSum::default(); k];
                soa.assign_sum_points(&points, &mut aos);
                prop_assert_eq!(aos, laned);
            }
        }
    }
}
