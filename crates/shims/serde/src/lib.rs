//! Offline stand-in for `serde`: marker traits and no-op derive macros.
//!
//! The workspace annotates its model types with
//! `#[derive(Serialize, Deserialize)]` so a real serde can be swapped in
//! when a wire format is needed, but nothing currently serializes
//! through serde (the telemetry exporter writes JSON by hand). The
//! derives (from the sibling `serde_derive` shim) therefore expand to
//! nothing, and these traits carry no methods.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de> {}
