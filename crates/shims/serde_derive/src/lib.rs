//! Offline stand-in for `serde_derive`: the `Serialize` / `Deserialize`
//! derives expand to nothing. The workspace derives these traits on its
//! model types for forward compatibility with wire formats, but no code
//! path serializes through serde yet (the telemetry JSONL exporter
//! hand-writes its JSON), so empty expansions are sufficient. The
//! `serde(...)` helper attribute is accepted and ignored.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
