//! Offline stand-in for `proptest`: the subset of the API this
//! workspace's property tests use, with deterministic generation and
//! **no shrinking**. Each `proptest!`-generated test derives its RNG
//! seed from the test's module path + name, so failures reproduce
//! exactly on re-run; a failing case panics with the offending
//! assertion rather than a minimised counterexample.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator backing all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test's fully-qualified name (FNV-1a of the bytes),
    /// so every test gets an independent, stable stream.
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in name.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)` via multiply-shift.
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator (`proptest::strategy::Strategy`, minus shrinking).
pub trait Strategy {
    /// The type of values produced.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.bounded(span) as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a canonical "anything goes" strategy (`any::<T>()`).
pub trait Arb: Sized {
    /// Draws an arbitrary value.
    fn arb(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arb for $t {
            fn arb(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arb for bool {
    fn arb(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arb for f64 {
    fn arb(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

impl<A: Arb, B: Arb> Arb for (A, B) {
    fn arb(rng: &mut TestRng) -> Self {
        (A::arb(rng), B::arb(rng))
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The full-range strategy for `T` (`proptest::arbitrary::any`).
pub fn any<T: Arb>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arb> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arb(rng)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `Vec`s of `elem`-generated values with length drawn from `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Per-test-suite knobs (`proptest::test_runner::Config` subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Declares `#[test]` functions whose arguments are drawn from
/// strategies; each runs `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` under a name the proptest API exposes (no shrinking, so
/// failures panic directly).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under the proptest name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under the proptest name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The usual `use proptest::prelude::*` import surface.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };

    /// Namespace mirror so `prop::collection::vec(..)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn ranges_stay_in_bounds(x in 3u32..10, y in -5i64..=5, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        fn vec_lengths_respect_range(v in prop::collection::vec(0u64..100, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        fn tuples_and_maps_compose(
            p in (0.0f64..1.0, 10u32..20).prop_map(|(a, b)| (a * 2.0, b + 1)),
            any_pair in any::<(u32, u32)>(),
        ) {
            prop_assert!(p.0 < 2.0 && (11..21).contains(&p.1));
            let _ = any_pair;
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = super::TestRng::for_test("suite::case");
        let mut b = super::TestRng::for_test("suite::case");
        assert_eq!(
            (0..16).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..16).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
        let mut c = super::TestRng::for_test("suite::other");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
