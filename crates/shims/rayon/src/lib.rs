//! Offline stand-in for `rayon`: the subset of the parallel-iterator
//! API this workspace uses, built on `std::thread::scope`.
//!
//! Unlike rayon this implementation is *eager*: `map`/`filter_map` run
//! their closure immediately (chunked across
//! `std::thread::available_parallelism()` threads, order-preserving),
//! and the adapters after them (`zip`, `enumerate`, `collect`, `sum`,
//! `reduce`) are cheap sequential folds over the materialised results.
//! Every chain in this workspace is `source → map → sink`, so eagerness
//! changes nothing observable. Worker panics are re-raised on the
//! calling thread with their original payload (`resume_unwind`), so
//! `#[should_panic(expected = ...)]` tests behave as with rayon.
//!
//! The workspace's hot paths (mapred task execution, k-means kernels,
//! spill merges) no longer go through this shim — they run on the
//! `gepeto-pool` work-stealing pool. The shim remains for cold callers
//! (dataset generation, examples); see `crates/shims/README.md`.

use std::panic::resume_unwind;

/// Splits `items` into per-thread chunks of at least `min_len` elements
/// each (rayon's `with_min_len` floor — spawning a thread for a handful
/// of cheap items costs more than the work), applies `f` in parallel,
/// and reassembles results in input order.
fn parallel_map<T, U, F>(items: Vec<T>, min_len: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let min_len = min_len.max(1);
    if threads <= 1 || items.len() <= min_len {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads).max(min_len);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    if chunks.len() <= 1 {
        return chunks
            .into_iter()
            .flat_map(|chunk| chunk.into_iter().map(&f).collect::<Vec<U>>())
            .collect();
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        let mut out = Vec::new();
        for handle in handles {
            match handle.join() {
                Ok(part) => out.extend(part),
                Err(payload) => resume_unwind(payload),
            }
        }
        out
    })
}

/// An eager "parallel iterator": the work happens in the adapter that
/// takes a closure; everything downstream folds the materialised `Vec`.
pub struct ParIter<T> {
    items: Vec<T>,
    /// Minimum items per parallel chunk ([`ParIter::with_min_len`]).
    min_len: usize,
}

impl<T> ParIter<T> {
    fn from_items(items: Vec<T>) -> Self {
        ParIter { items, min_len: 1 }
    }
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item in parallel, preserving order.
    pub fn map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> U + Sync + Send,
    {
        ParIter {
            items: parallel_map(self.items, self.min_len, f),
            min_len: self.min_len,
        }
    }

    /// Parallel `map` + filter, preserving the order of kept items.
    pub fn filter_map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> Option<U> + Sync + Send,
    {
        ParIter {
            items: parallel_map(self.items, self.min_len, f)
                .into_iter()
                .flatten()
                .collect(),
            min_len: self.min_len,
        }
    }

    /// Pairs this iterator with another, truncating to the shorter.
    pub fn zip<Z>(self, other: Z) -> ParIter<(T, Z::Item)>
    where
        Z: IntoParallelIterator,
    {
        ParIter {
            items: self
                .items
                .into_iter()
                .zip(other.into_par_iter().items)
                .collect(),
            min_len: self.min_len,
        }
    }

    /// Attaches each item's index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
            min_len: self.min_len,
        }
    }

    /// Collects the (already computed) items.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sums the items.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Folds items with `op`, starting from `identity()` (rayon's
    /// parallel reduce contract: `identity` must be a neutral element).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T + Sync + Send,
        OP: Fn(T, T) -> T + Sync + Send,
    {
        self.items.into_iter().fold(identity(), op)
    }

    /// Rayon's `fold`: folds each parallel split into an accumulator
    /// seeded from `identity()`, yielding one accumulator per split (in
    /// input order — one split per worker thread here). As with rayon,
    /// the number of splits is an implementation detail, so downstream
    /// consumers must combine accumulators with an operation for which
    /// `identity` is neutral.
    pub fn fold<Acc, ID, F>(self, identity: ID, fold_op: F) -> ParIter<Acc>
    where
        Acc: Send,
        ID: Fn() -> Acc + Sync + Send,
        F: Fn(Acc, T) -> Acc + Sync + Send,
    {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let chunk_len = self.items.len().div_ceil(threads).max(self.min_len).max(1);
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
        let mut it = self.items.into_iter();
        loop {
            let chunk: Vec<T> = it.by_ref().take(chunk_len).collect();
            if chunk.is_empty() {
                break;
            }
            chunks.push(chunk);
        }
        ParIter {
            items: parallel_map(chunks, 1, |chunk| {
                chunk.into_iter().fold(identity(), &fold_op)
            }),
            min_len: 1,
        }
    }

    /// Rayon's `with_min_len` splitting hint: no parallel chunk will
    /// hold fewer than `min` items, and inputs of at most `min` items
    /// run inline on the calling thread — tiny workloads stop paying a
    /// thread-spawn per handful of elements.
    pub fn with_min_len(self, min: usize) -> Self {
        ParIter {
            items: self.items,
            min_len: min.max(1),
        }
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.items.len()
    }
}

/// Conversion into a [`ParIter`] (rayon's `IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Element type.
    type Item;
    /// Materialises the source as a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter::from_items(self)
    }
}

impl<T> IntoParallelIterator for ParIter<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        self
    }
}

macro_rules! range_into_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter::from_items(self.collect())
            }
        }
    )*};
}

range_into_par_iter!(u8, u16, u32, u64, usize, i32, i64);

/// Borrowing parallel access to slices (`par_iter` / `par_chunks`).
pub trait ParallelSlice<T> {
    /// A [`ParIter`] over `&T`.
    fn par_iter(&self) -> ParIter<&T>;
    /// A [`ParIter`] over non-overlapping `&[T]` chunks of length
    /// `chunk_size` (last may be shorter).
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter::from_items(self.iter().collect())
    }

    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0, "chunk_size must be non-zero");
        ParIter::from_items(self.chunks(chunk_size).collect())
    }
}

/// The usual `use rayon::prelude::*` import surface.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0u64..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zip_enumerate_matches_std() {
        let a = [10, 20, 30];
        let b = vec!["x", "y", "z"];
        let got: Vec<(usize, (&i32, &str))> = a.par_iter().zip(b).enumerate().map(|p| p).collect();
        assert_eq!(got, vec![(0, (&10, "x")), (1, (&20, "y")), (2, (&30, "z"))]);
    }

    #[test]
    fn chunked_reduce() {
        let data: Vec<u64> = (1..=100).collect();
        let total: u64 = data
            .par_chunks(7)
            .map(|c| c.iter().sum::<u64>())
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 5050);
    }

    #[test]
    fn filter_map_keeps_order() {
        let v: Vec<u32> = (0u32..20)
            .into_par_iter()
            .filter_map(|x| (x % 3 == 0).then_some(x))
            .collect();
        assert_eq!(v, vec![0, 3, 6, 9, 12, 15, 18]);
    }

    #[test]
    fn fold_then_reduce_matches_sequential_sum() {
        let data: Vec<u64> = (1..=1000).collect();
        let total: u64 = data
            .par_chunks(64)
            .with_min_len(4)
            .fold(|| 0u64, |acc, c| acc + c.iter().sum::<u64>())
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 500_500);
    }

    #[test]
    fn fold_of_empty_input_reduces_to_identity() {
        let data: Vec<u64> = Vec::new();
        let total: u64 = data
            .par_iter()
            .fold(|| 0u64, |acc, &x| acc + x)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 0);
    }

    #[test]
    fn min_len_floors_chunk_sizes_without_changing_results() {
        // 100 items with a floor of 64: at most two chunks, same output.
        let v: Vec<u64> = (0u64..100)
            .into_par_iter()
            .with_min_len(64)
            .map(|x| x * 3)
            .collect();
        assert_eq!(v, (0u64..100).map(|x| x * 3).collect::<Vec<_>>());
        // A floor larger than the input runs inline — still correct.
        let v: Vec<u64> = (0u64..10)
            .into_par_iter()
            .with_min_len(1_000_000)
            .map(|x| x + 1)
            .collect();
        assert_eq!(v, (1u64..11).collect::<Vec<_>>());
    }

    #[test]
    fn min_len_survives_adapters() {
        // enumerate/zip keep the hint; the map after them still floors.
        let v: Vec<usize> = (0usize..50)
            .into_par_iter()
            .with_min_len(25)
            .enumerate()
            .map(|(i, x)| i + x)
            .collect();
        assert_eq!(v, (0usize..50).map(|x| 2 * x).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "boom at 3")]
    fn worker_panics_propagate_payload() {
        let _: Vec<u32> = (0u32..8)
            .into_par_iter()
            .map(|x| {
                if x == 3 {
                    panic!("boom at {x}");
                }
                x
            })
            .collect();
    }
}
