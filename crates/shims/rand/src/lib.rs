//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment resolves every dependency from the workspace, so
//! this crate re-implements exactly what the toolkit uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), the [`Rng`] extension
//! methods `random` / `random_range` / `random_bool`, and the
//! [`SeedableRng::seed_from_u64`] constructor. The generator is
//! xoshiro256++ seeded through SplitMix64 — the same construction the
//! `rand` ecosystem's small RNGs use — which passes the statistical
//! checks in this workspace's test suites (moment tests, uniformity
//! tests) while staying a few dozen lines.
//!
//! Streams differ from upstream `rand` (which uses ChaCha12 for
//! `StdRng`), so seeds that were cherry-picked against upstream streams
//! may land elsewhere; the workspace's tests were re-calibrated against
//! this generator.

/// Seedable construction, as in `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's raw output
/// (the role of `rand`'s `StandardUniform` distribution).
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Element types [`Rng::random_range`] can produce, mirroring
/// `rand::distr::uniform::SampleUniform`. Split from [`SampleRange`] so
/// type inference can flow from the expected output type into the range
/// literal (exactly as upstream rand's two-parameter signature does).
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_between<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: Rng + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let (lo_i, hi_i) = (lo as i128, hi as i128);
                if inclusive {
                    assert!(lo_i <= hi_i, "empty range in random_range");
                } else {
                    assert!(lo_i < hi_i, "empty range in random_range");
                }
                let span = (hi_i - lo_i) as u128 + u128::from(inclusive);
                let v = bounded_u128(rng, span);
                (lo_i + v as i128) as $t
            }
        }
    )*};
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw in `[0, span)` by 128-bit multiply-shift (Lemire-style,
/// without the rejection step: the bias is < 2^-64, irrelevant here).
fn bounded_u128<R: Rng + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        (rng.next_u64() as u128 * span) >> 64
    } else {
        // Only reachable for full-width i128-span ranges, unused here.
        rng.next_u64() as u128 | ((rng.next_u64() as u128) << 64)
    }
}

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: Rng + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo < hi, "empty range in random_range");
                let unit: $t = Standard::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

float_uniform!(f32, f64);

/// Ranges that [`Rng::random_range`] accepts, mirroring
/// `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(rng, lo, hi, true)
    }
}

/// The user-facing generator interface (`rand::Rng` subset).
pub trait Rng {
    /// The next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample of `T` (`f64`/`f32` in [0,1), full-range ints,
    /// fair `bool`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    fn random_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to [0, 1]).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++, seeded via SplitMix64 — deterministic, `Clone`,
    /// and statistically solid for simulation workloads.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream to fill the state, as recommended by the
            // xoshiro authors (never all-zero).
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range_and_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "{mean}");
    }

    #[test]
    fn ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.random_range(3i64..=6);
            assert!((3..=6).contains(&v));
        }
        for _ in 0..1000 {
            let v = rng.random_range(0.25f64..0.45);
            assert!((0.25..0.45).contains(&v));
        }
    }

    #[test]
    fn bool_probability_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
    }
}
