//! Offline stand-in for `parking_lot`: wraps `std::sync` primitives
//! behind parking_lot's API, whose `lock()` returns the guard directly
//! (no `Result`). Poisoning is transparently ignored — parking_lot has
//! no poisoning, so a lock held across a panic stays usable, and this
//! shim recovers the inner guard on poison to match.

use std::sync::TryLockError;

/// A mutual-exclusion lock with parking_lot's panic-free interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never panics on
    /// poison: a previous panic while holding the lock is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves unique
    /// ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock with parking_lot's panic-free interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
