//! Offline stand-in for `criterion`: the macro/builder surface the
//! bench targets use, with two modes.
//!
//! - **Smoke mode** (default, and what `cargo test` triggers): every
//!   benchmark body runs exactly once, so bench targets double as
//!   compile-and-run smoke tests without burning minutes of CI time.
//! - **Measure mode** (`--bench` on the command line, as passed by
//!   `cargo bench`): each benchmark is warmed up, then timed for
//!   `sample_size` samples; median / min / max wall time is printed per
//!   benchmark id.
//!
//! No statistical analysis, plots, or saved baselines — compare medians
//! across runs by hand or in scripts.

use std::time::{Duration, Instant};

/// Identity function that defeats constant-folding (`criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark's display identity: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function_name/parameter`.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Harness entry point handed to each `criterion_group!` target.
pub struct Criterion {
    measure: bool,
}

impl Criterion {
    /// Reads the command line: `--bench` (what `cargo bench` passes)
    /// selects measure mode, anything else stays in smoke mode.
    pub fn from_args() -> Self {
        Self {
            measure: std::env::args().any(|a| a == "--bench"),
        }
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_owned(),
            measure: self.measure,
            sample_size: 10,
        }
    }
}

impl Default for Criterion {
    fn default() -> Self {
        Self::from_args()
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup {
    name: String,
    measure: bool,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark (measure mode).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            measure: self.measure,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.id);
        self
    }

    /// Like [`Self::bench_function`] with an explicit input handed to
    /// the closure (criterion's parameterised-benchmark entry point).
    pub fn bench_with_input<I, In, F>(&mut self, id: I, input: &In, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        In: ?Sized,
        F: FnMut(&mut Bencher, &In),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API fidelity; nothing is deferred).
    pub fn finish(&mut self) {}
}

/// Runs and times the benchmark body.
pub struct Bencher {
    measure: bool,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` once (smoke mode) or `sample_size` timed times after a
    /// short warmup (measure mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if !self.measure {
            black_box(f());
            return;
        }
        for _ in 0..2 {
            black_box(f());
        }
        self.samples = (0..self.sample_size)
            .map(|_| {
                let t0 = Instant::now();
                black_box(f());
                t0.elapsed()
            })
            .collect();
    }

    fn report(&self, group: &str, id: &str) {
        if !self.measure {
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let fmt = |d: Duration| {
            let us = d.as_secs_f64() * 1e6;
            if us >= 1e6 {
                format!("{:.3} s", us / 1e6)
            } else if us >= 1e3 {
                format!("{:.3} ms", us / 1e3)
            } else {
                format!("{us:.3} µs")
            }
        };
        match sorted.as_slice() {
            [] => println!("{group}/{id}: no samples"),
            s => println!(
                "{group}/{id}: median {} (min {}, max {}, n={})",
                fmt(s[s.len() / 2]),
                fmt(s[0]),
                fmt(s[s.len() - 1]),
                s.len()
            ),
        }
    }
}

/// Declares a function running each listed benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_body_once() {
        let mut c = Criterion { measure: false };
        let mut group = c.benchmark_group("g");
        let mut runs = 0;
        group.bench_function("once", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn measure_mode_collects_samples() {
        let mut c = Criterion { measure: true };
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::new("n", 5), &3u32, |b, &x| {
            b.iter(|| {
                runs += x;
            })
        });
        // 2 warmup + 5 samples, each adding 3.
        assert_eq!(runs, 21);
    }
}
