//! Property-based tests on the toolkit's algorithmic invariants.

use gepeto::djcluster::{sequential_djcluster, sequential_preprocess, DjConfig};
use gepeto::kmeans::{assign_points, initial_centroids, sequential_iteration, within_cluster_cost};
use gepeto::sampling::{sample_trail, SamplingConfig, Technique};
use gepeto::sanitize::{GaussianMask, Sanitizer, SpatialAggregation, UniformMask};
use gepeto_geo::{haversine_m, DistanceMetric};
use gepeto_model::{Dataset, GeoPoint, MobilityTrace, Timestamp, Trail};
use proptest::prelude::*;

fn trace_strategy() -> impl Strategy<Value = MobilityTrace> {
    (0u32..4, 39.5f64..40.5, 115.5f64..117.0, 0i64..100_000)
        .prop_map(|(u, lat, lon, ts)| MobilityTrace::new(u, GeoPoint::new(lat, lon), Timestamp(ts)))
}

fn dataset_strategy(max: usize) -> impl Strategy<Value = Dataset> {
    prop::collection::vec(trace_strategy(), 0..max).prop_map(Dataset::from_traces)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sampling_keeps_at_most_one_trace_per_window(
        traces in prop::collection::vec(trace_strategy(), 0..300),
        window in 1i64..2_000,
        middle in any::<bool>(),
    ) {
        let technique = if middle { Technique::ClosestToMiddle } else { Technique::ClosestToUpperLimit };
        let cfg = SamplingConfig::new(window, technique);
        let ds = Dataset::from_traces(traces);
        for trail in ds.trails() {
            let sampled = sample_trail(trail, &cfg);
            // ≤ 1 representative per window, each from the original trail,
            // inside its own window.
            let mut seen = std::collections::HashSet::new();
            for t in sampled.traces() {
                let w = t.timestamp.secs().div_euclid(window);
                prop_assert!(seen.insert(w), "two representatives in window {}", w);
                prop_assert!(trail.traces().iter().any(|o| o == t));
            }
            // Every non-empty window is represented.
            let windows: std::collections::HashSet<i64> = trail
                .traces().iter().map(|t| t.timestamp.secs().div_euclid(window)).collect();
            prop_assert_eq!(seen.len(), windows.len());
        }
    }

    #[test]
    fn sampling_upper_limit_picks_window_maximum(
        traces in prop::collection::vec(trace_strategy(), 1..200),
        window in 1i64..1_000,
    ) {
        let cfg = SamplingConfig::new(window, Technique::ClosestToUpperLimit);
        let ds = Dataset::from_traces(traces);
        for trail in ds.trails() {
            let sampled = sample_trail(trail, &cfg);
            for t in sampled.traces() {
                let w = t.timestamp.secs().div_euclid(window);
                let max_in_window = trail.traces().iter()
                    .filter(|o| o.timestamp.secs().div_euclid(window) == w)
                    .map(|o| o.timestamp.secs())
                    .max().unwrap();
                prop_assert_eq!(t.timestamp.secs(), max_in_window);
            }
        }
    }

    #[test]
    fn preprocessing_never_grows_and_output_is_subset(ds in dataset_strategy(200)) {
        let cfg = DjConfig::default();
        let pre = sequential_preprocess(&ds, &cfg);
        prop_assert!(pre.num_traces() <= ds.num_traces());
        let originals: std::collections::HashSet<(u32, i64)> =
            ds.iter_traces().map(|t| (t.user, t.timestamp.secs())).collect();
        for t in pre.iter_traces() {
            prop_assert!(originals.contains(&(t.user, t.timestamp.secs())));
        }
    }

    #[test]
    fn djcluster_partitions_input(ds in dataset_strategy(150), radius in 20.0f64..500.0, min_pts in 2usize..6) {
        let cfg = DjConfig { radius_m: radius, min_pts, ..DjConfig::default() };
        let traces = ds.to_traces();
        let clustering = sequential_djcluster(&traces, &cfg);
        // Clusters + noise = input; clusters disjoint; each ≥ min_pts.
        let clustered: usize = clustering.clusters.iter().map(Vec::len).sum();
        prop_assert_eq!(clustered + clustering.noise, traces.len());
        let mut seen = std::collections::HashSet::new();
        for c in &clustering.clusters {
            prop_assert!(c.len() >= min_pts);
            for t in c {
                prop_assert!(seen.insert((t.user, t.timestamp.secs(), t.point.lat.to_bits(), t.point.lon.to_bits())));
            }
        }
    }

    #[test]
    fn kmeans_iteration_never_increases_cost(
        pts in prop::collection::vec((39.5f64..40.5, 115.5f64..117.0), 10..200),
        k in 1usize..8,
        seed in any::<u64>(),
    ) {
        let points: Vec<GeoPoint> = pts.into_iter().map(|(a, b)| GeoPoint::new(a, b)).collect();
        let metric = DistanceMetric::SquaredEuclidean;
        let c0 = initial_centroids(&points, k, seed);
        let cost0 = within_cluster_cost(&points, &c0, metric);
        let c1 = sequential_iteration(&points, &c0, metric);
        let cost1 = within_cluster_cost(&points, &c1, metric);
        prop_assert!(cost1 <= cost0 + 1e-12, "{} -> {}", cost0, cost1);
        // And assignment is a valid labeling.
        let labels = assign_points(&points, &c1, metric);
        prop_assert!(labels.iter().all(|&l| (l as usize) < c1.len()));
    }

    #[test]
    fn gaussian_mask_statistics(ds in dataset_strategy(150), sigma in 1.0f64..300.0, seed in any::<u64>()) {
        let mask = GaussianMask { sigma_m: sigma, seed };
        let out = mask.apply(&ds);
        prop_assert_eq!(out.num_traces(), ds.num_traces());
        for (a, b) in ds.iter_traces().zip(out.iter_traces()) {
            prop_assert_eq!(a.user, b.user);
            prop_assert_eq!(a.timestamp, b.timestamp);
            // 6-sigma displacement bound (holds with overwhelming margin
            // per axis; 8.5x the per-axis sigma across both).
            prop_assert!(haversine_m(a.point, b.point) < sigma * 12.0 + 1.0);
        }
        // Determinism.
        prop_assert_eq!(out, mask.apply(&ds));
    }

    #[test]
    fn uniform_mask_respects_radius(ds in dataset_strategy(100), r in 1.0f64..500.0, seed in any::<u64>()) {
        let out = UniformMask { radius_m: r, seed }.apply(&ds);
        for (a, b) in ds.iter_traces().zip(out.iter_traces()) {
            prop_assert!(haversine_m(a.point, b.point) <= r * 1.01 + 0.1);
        }
    }

    #[test]
    fn aggregation_is_idempotent_and_bounded(ds in dataset_strategy(100), cell in 10.0f64..2_000.0) {
        let agg = SpatialAggregation { cell_m: cell };
        let once = agg.apply(&ds);
        let twice = agg.apply(&once);
        prop_assert_eq!(&once, &twice);
        for (a, b) in ds.iter_traces().zip(once.iter_traces()) {
            // Half-diagonal bound (plus slack for the lat-band longitude).
            prop_assert!(haversine_m(a.point, b.point) <= cell * 0.75 + 1.0);
        }
    }

    #[test]
    fn trail_sampling_is_idempotent(
        traces in prop::collection::vec(trace_strategy(), 0..150),
        window in 1i64..500,
    ) {
        // Sampling an already-sampled trail changes nothing: one trace per
        // window stays one trace per window.
        let cfg = SamplingConfig::new(window, Technique::ClosestToUpperLimit);
        let ds = Dataset::from_traces(traces);
        for trail in ds.trails() {
            let once = sample_trail(trail, &cfg);
            let twice = sample_trail(&once, &cfg);
            prop_assert_eq!(once, twice);
        }
    }

    #[test]
    fn sampled_trail_respects_user(ds in dataset_strategy(150), window in 1i64..500) {
        let cfg = SamplingConfig::new(window, Technique::ClosestToMiddle);
        let sampled = gepeto::sampling::sequential_sample(&ds, &cfg);
        prop_assert!(sampled.num_users() <= ds.num_users());
        for trail in sampled.trails() {
            let _ = Trail::new(trail.user, trail.traces().to_vec());
            for t in trail.traces() {
                prop_assert_eq!(t.user, trail.user);
            }
        }
    }
}
