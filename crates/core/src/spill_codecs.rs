//! [`SpillCodec`] constructors for the toolkit's shuffle pair types.
//!
//! The out-of-core shuffle needs to serialize intermediate `(key,
//! value)` pairs to spill runs and read them back bit-identically. The
//! engine's [`SpillCodec`] is closure-based precisely so that this crate
//! can provide codecs for its own types without an orphan-rule fight;
//! the encodings below are fixed-width little-endian (floats via their
//! IEEE-754 bit patterns), so a decoded trace is the *same bits* as the
//! encoded one and spilled job output cannot drift from the in-memory
//! path.

use crate::kmeans::PointSum;
use gepeto_mapred::{SpillCodec, SpillEncode};
use gepeto_model::{GeoPoint, MobilityTrace, Timestamp, UserId};

/// Codec for `(UserId, MobilityTrace)` — the shuffle pair of the
/// sampling and regrouping jobs. 36 bytes per pair.
pub fn trace_codec() -> SpillCodec<UserId, MobilityTrace> {
    SpillCodec::new(
        |k: &UserId, v: &MobilityTrace, out: &mut Vec<u8>| {
            k.encode(out);
            v.user.encode(out);
            v.point.lat.encode(out);
            v.point.lon.encode(out);
            v.timestamp.0.encode(out);
            v.altitude.encode(out);
        },
        |input: &mut &[u8]| {
            let k = u32::decode(input)?;
            let user = u32::decode(input)?;
            let lat = f64::decode(input)?;
            let lon = f64::decode(input)?;
            let secs = i64::decode(input)?;
            let altitude = f32::decode(input)?;
            Some((
                k,
                MobilityTrace::with_altitude(
                    user,
                    GeoPoint::new(lat, lon),
                    Timestamp(secs),
                    altitude,
                ),
            ))
        },
    )
}

/// Codec for `(u32, PointSum)` — the k-means iteration shuffle pair.
pub fn point_sum_codec() -> SpillCodec<u32, PointSum> {
    SpillCodec::new(
        |k: &u32, v: &PointSum, out: &mut Vec<u8>| {
            k.encode(out);
            v.lat_sum.encode(out);
            v.lon_sum.encode(out);
            v.count.encode(out);
        },
        |input: &mut &[u8]| {
            let k = u32::decode(input)?;
            let lat_sum = f64::decode(input)?;
            let lon_sum = f64::decode(input)?;
            let count = u64::decode(input)?;
            Some((
                k,
                PointSum {
                    lat_sum,
                    lon_sum,
                    count,
                },
            ))
        },
    )
}

/// Codec for `(u32, GeoPoint)` — the k-means reduce output (cluster id
/// to updated centroid), used when iteration jobs commit their reduce
/// partitions into a run journal.
pub fn centroid_codec() -> SpillCodec<u32, GeoPoint> {
    SpillCodec::new(
        |k: &u32, v: &GeoPoint, out: &mut Vec<u8>| {
            k.encode(out);
            v.lat.encode(out);
            v.lon.encode(out);
        },
        |input: &mut &[u8]| {
            let k = u32::decode(input)?;
            let lat = f64::decode(input)?;
            let lon = f64::decode(input)?;
            Some((k, GeoPoint::new(lat, lon)))
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_codec_round_trips_bit_exactly() {
        let codec = trace_codec();
        let t = MobilityTrace::with_altitude(
            42,
            GeoPoint::new(39.906631, 116.385564),
            Timestamp(1_234_567_890),
            492.25,
        );
        let mut buf = Vec::new();
        codec.encode(&7u32, &t, &mut buf);
        let mut input = buf.as_slice();
        let (k, back) = codec.decode(&mut input).unwrap();
        assert_eq!(k, 7);
        assert_eq!(back.user, t.user);
        assert_eq!(back.point.lat.to_bits(), t.point.lat.to_bits());
        assert_eq!(back.point.lon.to_bits(), t.point.lon.to_bits());
        assert_eq!(back.timestamp, t.timestamp);
        assert_eq!(back.altitude.to_bits(), t.altitude.to_bits());
        assert!(input.is_empty());
    }

    #[test]
    fn point_sum_codec_round_trips() {
        let codec = point_sum_codec();
        let v = PointSum {
            lat_sum: 123.456,
            lon_sum: -78.9,
            count: 1_000_000,
        };
        let mut buf = Vec::new();
        codec.encode(&3u32, &v, &mut buf);
        let mut input = buf.as_slice();
        let (k, back) = codec.decode(&mut input).unwrap();
        assert_eq!(k, 3);
        assert_eq!(back.lat_sum.to_bits(), v.lat_sum.to_bits());
        assert_eq!(back.lon_sum.to_bits(), v.lon_sum.to_bits());
        assert_eq!(back.count, v.count);
    }

    #[test]
    fn truncated_input_decodes_to_none() {
        let codec = trace_codec();
        let t = MobilityTrace::new(1, GeoPoint::new(1.0, 2.0), Timestamp(3));
        let mut buf = Vec::new();
        codec.encode(&1u32, &t, &mut buf);
        let mut short = &buf[..buf.len() - 1];
        assert!(codec.decode(&mut short).is_none());
    }
}
