//! Moving datasets in and out of the DFS.
//!
//! Records are stored as typed [`MobilityTrace`]s but *sized* as their PLT
//! text lines (≈ 64 bytes each), so chunk counts — and therefore map task
//! counts — match what Hadoop would see for the same file (§V: "the
//! initial GeoLife dataset … is split into chunks").

use gepeto_mapred::{Cluster, Dfs, DfsError};
use gepeto_model::{Dataset, MobilityTrace};

/// A trace-typed DFS over `cluster`'s topology with the given chunk size
/// in bytes and replication 3 (HDFS default).
pub fn trace_dfs(cluster: &Cluster, block_bytes: usize) -> Dfs<MobilityTrace> {
    Dfs::new(cluster.topology.clone(), block_bytes, 3)
}

/// Writes `dataset` to `dfs` under `name`, user-by-user in time order —
/// the layout of concatenated GeoLife trajectory files.
pub fn put_dataset(
    dfs: &mut Dfs<MobilityTrace>,
    name: &str,
    dataset: &Dataset,
) -> Result<(), DfsError> {
    dfs.put_with_sizer(name, dataset.to_traces(), |t| t.approx_plt_bytes())
}

/// Reads a file of traces back into a [`Dataset`] (regrouping by user).
///
/// Streams chunk by chunk instead of materializing the whole file as one
/// `Vec`: peak extra memory is a single DFS chunk, so million-user files
/// reload under the same budget they were written under.
pub fn read_dataset(dfs: &Dfs<MobilityTrace>, name: &str) -> Result<Dataset, DfsError> {
    let mut dataset = Dataset::new();
    for chunk in dfs.stream(name)? {
        for trace in chunk?.iter() {
            dataset.push_trace(*trace);
        }
    }
    Ok(dataset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gepeto_model::{GeoPoint, Timestamp};

    fn tiny_dataset() -> Dataset {
        let mk = |u, s| MobilityTrace::new(u, GeoPoint::new(40.0, 116.0), Timestamp(s));
        Dataset::from_traces(vec![mk(1, 10), mk(1, 20), mk(2, 5), mk(2, 15)])
    }

    #[test]
    fn round_trip() {
        let cluster = Cluster::local(3, 2);
        let mut dfs = trace_dfs(&cluster, 1 << 20);
        let ds = tiny_dataset();
        put_dataset(&mut dfs, "d", &ds).unwrap();
        assert_eq!(read_dataset(&dfs, "d").unwrap(), ds);
    }

    #[test]
    fn chunk_count_uses_plt_sizing() {
        let cluster = Cluster::local(3, 2);
        // 4 traces × 64 B = 256 B; 128 B chunks → 2 chunks.
        let mut dfs = trace_dfs(&cluster, 128);
        put_dataset(&mut dfs, "d", &tiny_dataset()).unwrap();
        assert_eq!(dfs.num_blocks("d").unwrap(), 2);
    }

    #[test]
    fn missing_file_errors() {
        let cluster = Cluster::local(2, 1);
        let dfs = trace_dfs(&cluster, 1024);
        assert!(read_dataset(&dfs, "missing").is_err());
    }
}
