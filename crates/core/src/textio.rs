//! Text-mode processing: store the dataset as GeoLife **text lines** in
//! the DFS and parse inside the mappers — exactly what the paper's Hadoop
//! jobs do ("each map task reads its input chunk and processes each line
//! of the chunk corresponding to a mobility trace", §V).
//!
//! The typed pipeline (`gepeto::dfs_io`) skips re-parsing, like Mahout's
//! `SequenceFile` input the paper discusses in §VI's related work; this
//! module is the plain-text counterpart, so the parsing overhead is
//! measurable (see the `mapred_engine` bench) and malformed lines are
//! handled the Hadoop way: counted and skipped, never fatal.
//!
//! Line format: `user<TAB>plt-line` — the flattened form of GeoLife's
//! per-user directory layout (the user id lives in the path there).

use gepeto_mapred::{Cluster, Dfs, DfsError, Emitter, Mapper, RecordStream, TaskContext};
use gepeto_model::{plt, Dataset, MobilityTrace};

/// Counter bumped for every unparseable input line.
pub const CORRUPT_RECORDS: &str = "textio.corrupt.records";

/// A text-typed DFS over `cluster`'s topology (replication 3).
pub fn text_dfs(cluster: &Cluster, block_bytes: usize) -> Dfs<String> {
    Dfs::new(cluster.topology.clone(), block_bytes, 3)
}

/// Serializes one trace as a text record.
pub fn format_record(t: &MobilityTrace) -> String {
    format!("{}\t{}", t.user, plt::format_line(t))
}

/// Parses a text record back into a trace.
pub fn parse_record(line: &str) -> Option<MobilityTrace> {
    let (user, rest) = line.split_once('\t')?;
    let user = user.parse().ok()?;
    plt::parse_line(user, rest).ok()
}

/// Writes `dataset` to `dfs` as text lines under `name`, sized by their
/// real byte length (so chunk counts match genuine text files).
pub fn put_dataset_as_text(
    dfs: &mut Dfs<String>,
    name: &str,
    dataset: &Dataset,
) -> Result<(), gepeto_mapred::DfsError> {
    let lines: Vec<String> = dataset.iter_traces().map(format_record).collect();
    dfs.put_with_sizer(name, lines, |l| l.len() + 1)
}

/// Streams the lines of a text file one at a time, holding at most one
/// DFS chunk in memory — the iterator-based counterpart of reading the
/// whole file into a `Vec<String>`.
pub fn read_lines<'d>(
    dfs: &'d Dfs<String>,
    name: &str,
) -> Result<RecordStream<'d, String>, DfsError> {
    dfs.iter_records(name)
}

/// Streams a text file back into a [`Dataset`], parsing line by line and
/// skipping corrupt lines the Hadoop way. Returns the dataset and the
/// number of lines dropped.
pub fn read_dataset_from_text(dfs: &Dfs<String>, name: &str) -> Result<(Dataset, u64), DfsError> {
    let mut dataset = Dataset::new();
    let mut corrupt = 0u64;
    for line in read_lines(dfs, name)? {
        match parse_record(&line?) {
            Some(trace) => dataset.push_trace(trace),
            None => corrupt += 1,
        }
    }
    Ok((dataset, corrupt))
}

/// Adapts any trace-level [`Mapper`] to text input: each line is parsed,
/// corrupt lines are counted under [`CORRUPT_RECORDS`] and skipped.
#[derive(Clone)]
pub struct ParsingMapper<M> {
    inner: M,
    corrupt_counter: Option<gepeto_mapred::Counters>,
}

impl<M> ParsingMapper<M> {
    /// Wraps `inner`.
    pub fn new(inner: M) -> Self {
        Self {
            inner,
            corrupt_counter: None,
        }
    }
}

impl<M> Mapper<String> for ParsingMapper<M>
where
    M: Mapper<MobilityTrace>,
{
    type KOut = M::KOut;
    type VOut = M::VOut;

    fn setup(&mut self, ctx: &TaskContext<'_>) {
        self.inner.setup(ctx);
        self.corrupt_counter = Some(ctx.counters.clone());
    }

    fn map(&mut self, offset: u64, value: &String, out: &mut Emitter<Self::KOut, Self::VOut>) {
        match parse_record(value) {
            Some(trace) => self.inner.map(offset, &trace, out),
            None => {
                if let Some(c) = &self.corrupt_counter {
                    c.inc(CORRUPT_RECORDS, 1);
                }
            }
        }
    }

    fn cleanup(&mut self, out: &mut Emitter<Self::KOut, Self::VOut>) {
        self.inner.cleanup(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::{SamplingConfig, SamplingMapper, Technique};
    use gepeto_mapred::MapOnlyJob;
    use gepeto_model::{GeoPoint, Timestamp};

    fn dataset() -> Dataset {
        let mut traces = Vec::new();
        for u in 1..=3u32 {
            for i in 0..100i64 {
                traces.push(MobilityTrace::new(
                    u,
                    GeoPoint::new(39.9 + f64::from(u) * 0.01, 116.4 + i as f64 * 1e-5),
                    Timestamp(i * 7),
                ));
            }
        }
        Dataset::from_traces(traces)
    }

    #[test]
    fn record_round_trip() {
        let t = MobilityTrace::with_altitude(
            42,
            GeoPoint::new(39.906631, 116.385564),
            Timestamp::from_civil(2009, 10, 11, 14, 4, 30).unwrap(),
            492.0,
        );
        let rec = format_record(&t);
        let back = parse_record(&rec).unwrap();
        assert_eq!(back.user, 42);
        assert_eq!(back.timestamp, t.timestamp);
        assert!((back.point.lat - t.point.lat).abs() < 1e-6);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_record("not a record").is_none());
        assert!(parse_record("12\tgarbage,line").is_none());
        assert!(parse_record("abc\t39.9,116.4,0,0,0,2009-10-11,14:04:30").is_none());
        assert!(parse_record("").is_none());
    }

    #[test]
    fn text_pipeline_equals_typed_pipeline() {
        let ds = dataset();
        let cluster = Cluster::local(3, 2);
        let cfg = SamplingConfig::new(60, Technique::ClosestToUpperLimit);

        // Typed path.
        let mut typed = crate::dfs_io::trace_dfs(&cluster, 1 << 20);
        crate::dfs_io::put_dataset(&mut typed, "d", &ds).unwrap();
        let (typed_out, _) =
            crate::sampling::mapreduce_sample(&cluster, &typed, "d", &cfg).unwrap();

        // Text path: same sampling mapper behind the parsing adapter.
        let mut text = text_dfs(&cluster, 1 << 20);
        put_dataset_as_text(&mut text, "d", &ds).unwrap();
        let mapper = ParsingMapper::new(SamplingMapper::new(cfg));
        let result = MapOnlyJob::new("text-sampling", &cluster, &text, "d", mapper)
            .run()
            .unwrap();
        let text_out = Dataset::from_traces(result.output.into_iter().map(|(_, t)| t));
        assert_eq!(text_out.num_traces(), typed_out.num_traces());
        assert_eq!(text_out.num_users(), typed_out.num_users());
        // Timestamps survive the text round trip exactly.
        let a: Vec<i64> = typed_out
            .iter_traces()
            .map(|t| t.timestamp.secs())
            .collect();
        let b: Vec<i64> = text_out.iter_traces().map(|t| t.timestamp.secs()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn corrupt_lines_are_counted_and_skipped() {
        let ds = dataset();
        let cluster = Cluster::local(2, 2);
        let mut lines: Vec<String> = ds.iter_traces().map(format_record).collect();
        lines.insert(5, "CORRUPT LINE".to_string());
        lines.insert(50, "another\tbad,one".to_string());
        let mut dfs = text_dfs(&cluster, 1 << 20);
        dfs.put_with_sizer("d", lines, |l| l.len() + 1).unwrap();

        let cfg = SamplingConfig::new(60, Technique::ClosestToUpperLimit);
        let mapper = ParsingMapper::new(SamplingMapper::new(cfg));
        let result = MapOnlyJob::new("text-sampling", &cluster, &dfs, "d", mapper)
            .run()
            .unwrap();
        assert_eq!(result.stats.counters[CORRUPT_RECORDS], 2);
        assert!(!result.output.is_empty());
    }

    #[test]
    fn streamed_text_read_matches_dataset() {
        let ds = dataset();
        let cluster = Cluster::local(2, 2);
        let mut dfs = text_dfs(&cluster, 4_096);
        put_dataset_as_text(&mut dfs, "d", &ds).unwrap();
        let (back, corrupt) = read_dataset_from_text(&dfs, "d").unwrap();
        assert_eq!(corrupt, 0);
        assert_eq!(back.num_users(), ds.num_users());
        assert_eq!(back.num_traces(), ds.num_traces());
        for (a, b) in back.iter_traces().zip(ds.iter_traces()) {
            assert_eq!(a.user, b.user);
            assert_eq!(a.timestamp, b.timestamp);
            // PLT text keeps 6 decimal places.
            assert!((a.point.lat - b.point.lat).abs() < 1e-6);
            assert!((a.point.lon - b.point.lon).abs() < 1e-6);
        }
        // Line iterator sees every record without whole-file materialization.
        assert_eq!(read_lines(&dfs, "d").unwrap().count(), ds.num_traces());
        assert!(read_lines(&dfs, "missing").is_err());
    }

    #[test]
    fn streamed_text_read_counts_corrupt_lines() {
        let cluster = Cluster::local(2, 2);
        let mut lines: Vec<String> = dataset().iter_traces().map(format_record).collect();
        lines.insert(3, "CORRUPT".into());
        let mut dfs = text_dfs(&cluster, 4_096);
        dfs.put_with_sizer("d", lines, |l| l.len() + 1).unwrap();
        let (back, corrupt) = read_dataset_from_text(&dfs, "d").unwrap();
        assert_eq!(corrupt, 1);
        assert_eq!(back.num_traces(), dataset().num_traces());
    }

    #[test]
    fn text_chunks_match_byte_sizes() {
        let ds = dataset();
        let cluster = Cluster::local(2, 2);
        let mut dfs = text_dfs(&cluster, 4_096);
        put_dataset_as_text(&mut dfs, "d", &ds).unwrap();
        let total: usize = dfs.file_bytes("d").unwrap();
        let expected: usize = ds.iter_traces().map(|t| format_record(t).len() + 1).sum();
        assert_eq!(total, expected);
        // Greedy chunking overshoots each block by at most one record, so
        // the count sits just below the exact byte quotient.
        let blocks = dfs.num_blocks("d").unwrap();
        let upper = total.div_ceil(4_096).max(1);
        assert!(
            blocks <= upper && blocks + 2 >= upper,
            "{blocks} vs {upper}"
        );
    }
}
