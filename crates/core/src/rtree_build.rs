//! Constructing an R-tree with MapReduce (§VII-C, Figure 6,
//! Algorithms 6–9, after Cary et al.).
//!
//! Three phases, exactly as the paper stages them:
//!
//! 1. **Partitioning function** — mappers sample objects from their
//!    chunks and emit the single-dimensional values obtained by a
//!    space-filling curve (Z-order or Hilbert, both implemented); a
//!    single reducer sorts the sample and picks `p − 1` partition
//!    boundaries (Algorithms 6–7).
//! 2. **Small R-trees** — mappers route every datapoint to its partition
//!    id; each of the `p` reducers bulk-loads the R-tree of its
//!    partition (Algorithms 8–9).
//! 3. **Merge** — the small R-trees are merged sequentially by a single
//!    node "due to its low computational complexity".
//!
//! A preliminary map-only job computes the dataset MBR that anchors the
//! curve's grid (the paper assumes a known spatial domain).
//!
//! The resulting tree indexes each trace's **global record offset** in
//! the input file — the unique identifier Cary et al. require.

use gepeto_geo::sfc::GridMapper;
use gepeto_geo::{RTree, Rect, SpaceFillingCurve};
use gepeto_mapred::{
    Cluster, Dfs, DistributedCache, Emitter, JobError, JobStats, MapOnlyJob, MapReduceJob, Mapper,
    Reducer, TaskContext,
};
use gepeto_model::MobilityTrace;
use std::sync::Arc;

const GRID_CACHE_KEY: &str = "rtree.grid";
const BOUNDARIES_CACHE_KEY: &str = "rtree.boundaries";

/// Parameters of the MapReduce R-tree construction.
#[derive(Debug, Clone)]
pub struct RTreeBuildConfig {
    /// The partitioning curve (§VII-C implements Z-order and Hilbert).
    pub curve: SpaceFillingCurve,
    /// Curve grid resolution: a `2^order × 2^order` grid.
    pub grid_order: u32,
    /// Number of partitions `p` (= phase-2 reducers = small R-trees).
    pub partitions: usize,
    /// Objects each phase-1 mapper samples from its chunk.
    pub samples_per_chunk: usize,
    /// Node capacity of the built R-trees.
    pub max_entries: usize,
}

impl Default for RTreeBuildConfig {
    fn default() -> Self {
        Self {
            curve: SpaceFillingCurve::Hilbert,
            grid_order: 16,
            partitions: 8,
            samples_per_chunk: 64,
            max_entries: 16,
        }
    }
}

/// What the driver learns from a build besides the tree itself.
#[derive(Debug, Clone)]
pub struct RTreeBuildReport {
    /// The bounds-scan job.
    pub bounds_job: JobStats,
    /// Phase 1 (sampling + boundary selection).
    pub phase1: JobStats,
    /// Phase 2 (partitioning + small-tree building).
    pub phase2: JobStats,
    /// Entry count of each small R-tree — the partition-balance metric
    /// the space-filling curve is responsible for.
    pub partition_sizes: Vec<usize>,
}

impl RTreeBuildReport {
    /// Max/mean partition-size ratio (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        if self.partition_sizes.is_empty() {
            return 1.0;
        }
        let max = *self.partition_sizes.iter().max().unwrap() as f64;
        let mean =
            self.partition_sizes.iter().sum::<usize>() as f64 / self.partition_sizes.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Phase-0 mapper: per-chunk MBR, emitted once in `cleanup`.
#[derive(Clone, Default)]
struct BoundsMapper {
    rect: Rect,
}

impl Mapper<MobilityTrace> for BoundsMapper {
    type KOut = u8;
    type VOut = Rect;

    fn map(&mut self, _offset: u64, value: &MobilityTrace, _out: &mut Emitter<u8, Rect>) {
        self.rect = self.rect.union(&Rect::point(value.point));
    }

    fn cleanup(&mut self, out: &mut Emitter<u8, Rect>) {
        if !self.rect.is_empty() {
            out.emit(0, self.rect);
        }
    }
}

/// Algorithm 6: sample objects from the chunk and emit their scalar
/// curve values. Deterministic striding stands in for random sampling so
/// runs are reproducible.
#[derive(Clone)]
struct SampleMapper {
    grid: Option<Arc<(GridMapper, SpaceFillingCurve)>>,
    stride: u64,
}

impl Mapper<MobilityTrace> for SampleMapper {
    type KOut = u8;
    type VOut = u64;

    fn setup(&mut self, ctx: &TaskContext<'_>) {
        self.grid = Some(ctx.cache.expect(GRID_CACHE_KEY));
    }

    fn map(&mut self, offset: u64, value: &MobilityTrace, out: &mut Emitter<u8, u64>) {
        if offset.is_multiple_of(self.stride) {
            let g = self.grid.as_ref().expect("setup ran");
            out.emit(0, g.0.scalar(g.1, value.point));
        }
    }
}

/// Algorithm 7: a single reducer orders the sampled scalars and emits the
/// `p − 1` partition boundaries at the sample quantiles.
#[derive(Clone)]
struct BoundaryReducer {
    partitions: usize,
}

impl Reducer<u8, u64> for BoundaryReducer {
    type KOut = u8;
    type VOut = Vec<u64>;

    fn reduce(&mut self, _key: &u8, values: &[u64], out: &mut Emitter<u8, Vec<u64>>) {
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let p = self.partitions;
        let mut boundaries = Vec::with_capacity(p.saturating_sub(1));
        for i in 1..p {
            let idx = i * sorted.len() / p;
            boundaries.push(sorted[idx.min(sorted.len() - 1)]);
        }
        boundaries.dedup();
        out.emit(0, boundaries);
    }
}

/// Algorithm 8: route each datapoint to the partition its scalar value
/// falls in.
#[derive(Clone)]
struct PartitionMapper {
    grid: Option<Arc<(GridMapper, SpaceFillingCurve)>>,
    boundaries: Arc<Vec<u64>>,
}

impl Mapper<MobilityTrace> for PartitionMapper {
    type KOut = u32;
    type VOut = (u64, f64, f64);

    fn setup(&mut self, ctx: &TaskContext<'_>) {
        self.grid = Some(ctx.cache.expect(GRID_CACHE_KEY));
        self.boundaries = ctx.cache.expect::<Vec<u64>>(BOUNDARIES_CACHE_KEY);
    }

    fn map(&mut self, offset: u64, value: &MobilityTrace, out: &mut Emitter<u32, (u64, f64, f64)>) {
        let g = self.grid.as_ref().expect("setup ran");
        let scalar = g.0.scalar(g.1, value.point);
        let pid = self.boundaries.partition_point(|&b| b <= scalar) as u32;
        out.emit(pid, (offset, value.point.lat, value.point.lon));
    }
}

/// Algorithm 9: each reducer bulk-loads the R-tree of its partition.
#[derive(Clone)]
struct TreeBuildReducer {
    max_entries: usize,
}

impl Reducer<u32, (u64, f64, f64)> for TreeBuildReducer {
    type KOut = u32;
    type VOut = RTree<u64>;

    fn reduce(
        &mut self,
        key: &u32,
        values: &[(u64, f64, f64)],
        out: &mut Emitter<u32, RTree<u64>>,
    ) {
        let items: Vec<(gepeto_model::GeoPoint, u64)> = values
            .iter()
            .map(|&(off, lat, lon)| (gepeto_model::GeoPoint::new(lat, lon), off))
            .collect();
        out.emit(
            *key,
            RTree::bulk_load_with_max_entries(items, self.max_entries),
        );
    }
}

/// Builds an R-tree over `input` with the 3-phase MapReduce pipeline.
pub fn mapreduce_build_rtree(
    cluster: &Cluster,
    dfs: &Dfs<MobilityTrace>,
    input: &str,
    cfg: &RTreeBuildConfig,
) -> Result<(RTree<u64>, RTreeBuildReport), JobError> {
    assert!(cfg.partitions >= 1, "need at least one partition");
    assert!(cfg.samples_per_chunk >= 1);

    // Phase 0: dataset MBR (anchors the curve grid).
    let bounds_result =
        MapOnlyJob::new("rtree-bounds", cluster, dfs, input, BoundsMapper::default()).run()?;
    let bounds = bounds_result
        .output
        .iter()
        .fold(Rect::empty(), |acc, (_, r)| acc.union(r));
    if bounds.is_empty() {
        // Empty input: an empty tree.
        let report = RTreeBuildReport {
            bounds_job: bounds_result.stats.clone(),
            phase1: bounds_result.stats.clone(),
            phase2: bounds_result.stats,
            partition_sizes: Vec::new(),
        };
        return Ok((RTree::with_max_entries(cfg.max_entries), report));
    }
    let grid = GridMapper::new(bounds, cfg.grid_order);
    let cache = DistributedCache::new().with(GRID_CACHE_KEY, (grid, cfg.curve));

    // Phase 1: sample → boundaries.
    let records = dfs.num_records(input)?.max(1);
    let chunks = dfs.num_blocks(input)?.max(1);
    let per_chunk = records.div_ceil(chunks);
    let stride = (per_chunk / cfg.samples_per_chunk).max(1) as u64;
    let phase1 = MapReduceJob::new(
        "rtree-phase1",
        cluster,
        dfs,
        input,
        SampleMapper { grid: None, stride },
        BoundaryReducer {
            partitions: cfg.partitions,
        },
    )
    .reducers(1)
    .cache(cache.clone())
    .run()?;
    let boundaries: Vec<u64> = phase1
        .output
        .first()
        .map(|(_, b)| b.clone())
        .unwrap_or_default();

    // Phase 2: partition → small R-trees.
    let cache2 = {
        let mut c = cache;
        c.insert(BOUNDARIES_CACHE_KEY, boundaries.clone());
        c
    };
    let phase2 = MapReduceJob::new(
        "rtree-phase2",
        cluster,
        dfs,
        input,
        PartitionMapper {
            grid: None,
            boundaries: Arc::new(Vec::new()),
        },
        TreeBuildReducer {
            max_entries: cfg.max_entries,
        },
    )
    .reducers(cfg.partitions)
    .cache(cache2)
    .pair_bytes(|_, _| 24)
    .run()?;

    // Phase 3: sequential merge.
    let mut partition_sizes: Vec<usize> = phase2.output.iter().map(|(_, t)| t.len()).collect();
    partition_sizes.sort_unstable_by(|a, b| b.cmp(a));
    let trees: Vec<RTree<u64>> = phase2.output.into_iter().map(|(_, t)| t).collect();
    let merged = RTree::merge(trees);

    Ok((
        merged,
        RTreeBuildReport {
            bounds_job: bounds_result.stats,
            phase1: phase1.stats,
            phase2: phase2.stats,
            partition_sizes,
        },
    ))
}

/// Single-machine baseline: read the file, STR-bulk-load one tree.
pub fn direct_build_rtree(
    dfs: &Dfs<MobilityTrace>,
    input: &str,
    max_entries: usize,
) -> Result<RTree<u64>, JobError> {
    let traces = dfs.read(input)?;
    let items: Vec<(gepeto_model::GeoPoint, u64)> = traces
        .iter()
        .enumerate()
        .map(|(i, t)| (t.point, i as u64))
        .collect();
    Ok(RTree::bulk_load_with_max_entries(items, max_entries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfs_io::{put_dataset, trace_dfs};
    use gepeto_model::{Dataset, GeoPoint, Timestamp};

    fn grid_dataset(side: usize) -> Dataset {
        let mut traces = Vec::new();
        for i in 0..side {
            for j in 0..side {
                traces.push(MobilityTrace::new(
                    0,
                    GeoPoint::new(39.8 + i as f64 * 0.002, 116.2 + j as f64 * 0.002),
                    Timestamp((i * side + j) as i64),
                ));
            }
        }
        Dataset::from_traces(traces)
    }

    fn setup(side: usize) -> (Cluster, Dfs<MobilityTrace>) {
        let cluster = Cluster::local(3, 2);
        let mut dfs = trace_dfs(&cluster, 4_096);
        put_dataset(&mut dfs, "pts", &grid_dataset(side)).unwrap();
        (cluster, dfs)
    }

    #[test]
    fn mapreduce_tree_indexes_every_record() {
        let (cluster, dfs) = setup(30);
        let (tree, report) =
            mapreduce_build_rtree(&cluster, &dfs, "pts", &RTreeBuildConfig::default()).unwrap();
        assert_eq!(tree.len(), 900);
        assert!(tree.check_invariants().is_none());
        assert_eq!(report.partition_sizes.iter().sum::<usize>(), 900);
        assert!(report.phase2.reduce_tasks >= 1);
    }

    #[test]
    fn queries_match_direct_build() {
        let (cluster, dfs) = setup(25);
        let (mr_tree, _) =
            mapreduce_build_rtree(&cluster, &dfs, "pts", &RTreeBuildConfig::default()).unwrap();
        let direct = direct_build_rtree(&dfs, "pts", 16).unwrap();
        let center = GeoPoint::new(39.82, 116.22);
        for radius in [50.0, 300.0, 2_000.0] {
            let mut a: Vec<u64> = mr_tree
                .within_radius_m(center, radius)
                .iter()
                .map(|e| e.payload)
                .collect();
            let mut b: Vec<u64> = direct
                .within_radius_m(center, radius)
                .iter()
                .map(|e| e.payload)
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "radius {radius}");
        }
    }

    #[test]
    fn both_curves_balance_partitions() {
        let (cluster, dfs) = setup(32);
        for curve in [SpaceFillingCurve::ZOrder, SpaceFillingCurve::Hilbert] {
            let cfg = RTreeBuildConfig {
                curve,
                partitions: 4,
                samples_per_chunk: 128,
                ..RTreeBuildConfig::default()
            };
            let (_, report) = mapreduce_build_rtree(&cluster, &dfs, "pts", &cfg).unwrap();
            assert!(
                report.imbalance() < 2.0,
                "{} imbalance {}: {:?}",
                curve.name(),
                report.imbalance(),
                report.partition_sizes
            );
        }
    }

    #[test]
    fn single_partition_degenerates_gracefully() {
        let (cluster, dfs) = setup(10);
        let cfg = RTreeBuildConfig {
            partitions: 1,
            ..RTreeBuildConfig::default()
        };
        let (tree, report) = mapreduce_build_rtree(&cluster, &dfs, "pts", &cfg).unwrap();
        assert_eq!(tree.len(), 100);
        assert_eq!(report.partition_sizes.len(), 1);
    }

    #[test]
    fn empty_input_builds_empty_tree() {
        let cluster = Cluster::local(2, 1);
        let mut dfs = trace_dfs(&cluster, 1_024);
        dfs.put_with_sizer("empty", vec![], |_| 64).unwrap();
        let (tree, report) =
            mapreduce_build_rtree(&cluster, &dfs, "empty", &RTreeBuildConfig::default()).unwrap();
        assert!(tree.is_empty());
        assert!(report.partition_sizes.is_empty());
    }

    #[test]
    fn payloads_are_global_offsets() {
        let (cluster, dfs) = setup(12);
        let (tree, _) =
            mapreduce_build_rtree(&cluster, &dfs, "pts", &RTreeBuildConfig::default()).unwrap();
        let traces = dfs.read("pts").unwrap();
        for e in tree.iter() {
            let t = &traces[e.payload as usize];
            assert_eq!(t.point, e.point);
        }
    }
}
