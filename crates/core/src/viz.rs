//! Visualization — the first verb in GEPETO's own description: a toolkit
//! "that can be used to **visualize**, sanitize, perform inference
//! attacks and measure the utility of a particular geolocated dataset".
//!
//! Three renderers, all dependency-free:
//!
//! - [`SvgMap`] — an SVG scatter map of traces, clusters and POIs, with
//!   one color per user/cluster; open the file in any browser.
//! - [`geojson`] — GeoJSON export (traces as points, trails as
//!   LineStrings, POIs as annotated points) for GIS tools.
//! - [`ascii_density`] — a terminal density map, handy when comparing a
//!   dataset before and after sanitization at a glance.

use gepeto_geo::Rect;
use gepeto_model::{Dataset, GeoPoint, MobilityTrace};
use std::fmt::Write as _;

/// The qualitative palette used for per-user / per-cluster coloring.
pub const PALETTE: [&str; 10] = [
    "#4269d0", "#efb118", "#ff725c", "#6cc5b0", "#3ca951", "#ff8ab7", "#a463f2", "#97bbf5",
    "#9c6b4e", "#9498a0",
];

/// An SVG scatter-map builder over a fixed geographic viewport.
#[derive(Debug, Clone)]
pub struct SvgMap {
    bounds: Rect,
    width: u32,
    height: u32,
    layers: Vec<String>,
}

impl SvgMap {
    /// A map over `bounds` (padded 5%), `width` pixels wide; the height
    /// follows the aspect ratio of the bounds.
    ///
    /// # Panics
    /// If `bounds` is empty or `width == 0`.
    pub fn new(bounds: Rect, width: u32) -> Self {
        assert!(!bounds.is_empty(), "cannot map an empty region");
        assert!(width > 0);
        let pad_lat = (bounds.max_lat - bounds.min_lat).max(1e-6) * 0.05;
        let pad_lon = (bounds.max_lon - bounds.min_lon).max(1e-6) * 0.05;
        let bounds = Rect::new(
            bounds.min_lat - pad_lat,
            bounds.min_lon - pad_lon,
            bounds.max_lat + pad_lat,
            bounds.max_lon + pad_lon,
        );
        let aspect = (bounds.max_lat - bounds.min_lat) / (bounds.max_lon - bounds.min_lon);
        let height = ((width as f64) * aspect).ceil().max(1.0) as u32;
        Self {
            bounds,
            width,
            height,
            layers: Vec::new(),
        }
    }

    /// A map sized to a dataset's bounding box.
    pub fn for_dataset(dataset: &Dataset, width: u32) -> Self {
        Self::new(
            Rect::of_points(dataset.iter_traces().map(|t| t.point)),
            width,
        )
    }

    fn xy(&self, p: GeoPoint) -> (f64, f64) {
        let x = (p.lon - self.bounds.min_lon) / (self.bounds.max_lon - self.bounds.min_lon)
            * f64::from(self.width);
        let y = (self.bounds.max_lat - p.lat) / (self.bounds.max_lat - self.bounds.min_lat)
            * f64::from(self.height);
        (x, y)
    }

    /// Adds every trace of the dataset, colored per user.
    pub fn add_dataset(&mut self, dataset: &Dataset, radius_px: f64) -> &mut Self {
        let mut layer = String::new();
        for (i, trail) in dataset.trails().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            for t in trail.traces() {
                let (x, y) = self.xy(t.point);
                let _ = write!(
                    layer,
                    r#"<circle cx="{x:.1}" cy="{y:.1}" r="{radius_px}" fill="{color}" fill-opacity="0.45"/>"#
                );
            }
        }
        self.layers.push(layer);
        self
    }

    /// Adds trails as polylines (one color per user).
    pub fn add_trails(&mut self, dataset: &Dataset) -> &mut Self {
        let mut layer = String::new();
        for (i, trail) in dataset.trails().enumerate() {
            if trail.len() < 2 {
                continue;
            }
            let color = PALETTE[i % PALETTE.len()];
            let pts: Vec<String> = trail
                .traces()
                .iter()
                .map(|t| {
                    let (x, y) = self.xy(t.point);
                    format!("{x:.1},{y:.1}")
                })
                .collect();
            let _ = write!(
                layer,
                r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1" stroke-opacity="0.6"/>"#,
                pts.join(" ")
            );
        }
        self.layers.push(layer);
        self
    }

    /// Adds clusters: each cluster's traces in its own color, plus a
    /// centroid cross.
    pub fn add_clusters(&mut self, clusters: &[Vec<MobilityTrace>]) -> &mut Self {
        let mut layer = String::new();
        for (i, cluster) in clusters.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            let mut clat = 0.0;
            let mut clon = 0.0;
            for t in cluster {
                let (x, y) = self.xy(t.point);
                let _ = write!(
                    layer,
                    r#"<circle cx="{x:.1}" cy="{y:.1}" r="2" fill="{color}" fill-opacity="0.7"/>"#
                );
                clat += t.point.lat;
                clon += t.point.lon;
            }
            if !cluster.is_empty() {
                let n = cluster.len() as f64;
                let (x, y) = self.xy(GeoPoint::new(clat / n, clon / n));
                let _ = write!(
                    layer,
                    r#"<path d="M{:.1} {y:.1} H{:.1} M{x:.1} {:.1} V{:.1}" stroke="{color}" stroke-width="2" fill="none"/>"#,
                    x - 6.0,
                    x + 6.0,
                    y - 6.0,
                    y + 6.0,
                    x = x,
                    y = y
                );
            }
        }
        self.layers.push(layer);
        self
    }

    /// Adds labeled markers (e.g. inferred POIs: home, work).
    pub fn add_markers(&mut self, markers: &[(GeoPoint, String)]) -> &mut Self {
        let mut layer = String::new();
        for (p, label) in markers {
            let (x, y) = self.xy(*p);
            let _ = write!(
                layer,
                r##"<circle cx="{x:.1}" cy="{y:.1}" r="5" fill="none" stroke="#d62728" stroke-width="2"/><text x="{:.1}" y="{:.1}" font-size="11" font-family="sans-serif" fill="#d62728">{label}</text>"##,
                x + 8.0,
                y + 4.0
            );
        }
        self.layers.push(layer);
        self
    }

    /// Renders the final SVG document.
    pub fn render(&self) -> String {
        let mut svg = format!(
            r##"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}"><rect width="{w}" height="{h}" fill="#ffffff"/>"##,
            w = self.width,
            h = self.height
        );
        for layer in &self.layers {
            svg.push_str(layer);
        }
        svg.push_str("</svg>");
        svg
    }
}

/// GeoJSON export.
pub mod geojson {
    use super::*;

    fn feature_point(p: GeoPoint, props: &str) -> String {
        format!(
            r#"{{"type":"Feature","geometry":{{"type":"Point","coordinates":[{:.6},{:.6}]}},"properties":{{{props}}}}}"#,
            p.lon, p.lat
        )
    }

    /// Traces as a FeatureCollection of points with `user` and `time`
    /// properties.
    pub fn dataset_points(dataset: &Dataset) -> String {
        let features: Vec<String> = dataset
            .iter_traces()
            .map(|t| {
                feature_point(
                    t.point,
                    &format!(r#""user":{},"time":{}"#, t.user, t.timestamp.secs()),
                )
            })
            .collect();
        wrap(features)
    }

    /// Trails as LineString features.
    pub fn dataset_trails(dataset: &Dataset) -> String {
        let features: Vec<String> = dataset
            .trails()
            .filter(|t| t.len() >= 2)
            .map(|trail| {
                let coords: Vec<String> = trail
                    .traces()
                    .iter()
                    .map(|t| format!("[{:.6},{:.6}]", t.point.lon, t.point.lat))
                    .collect();
                format!(
                    r#"{{"type":"Feature","geometry":{{"type":"LineString","coordinates":[{}]}},"properties":{{"user":{}}}}}"#,
                    coords.join(","),
                    trail.user
                )
            })
            .collect();
        wrap(features)
    }

    /// POIs as annotated points.
    pub fn pois(pois: &[(u32, crate::attacks::Poi)]) -> String {
        let features: Vec<String> = pois
            .iter()
            .map(|(user, p)| {
                feature_point(
                    p.center,
                    &format!(
                        r#""user":{user},"visits":{},"dwell_secs":{}"#,
                        p.visits, p.dwell_secs
                    ),
                )
            })
            .collect();
        wrap(features)
    }

    fn wrap(features: Vec<String>) -> String {
        format!(
            r#"{{"type":"FeatureCollection","features":[{}]}}"#,
            features.join(",")
        )
    }
}

/// A terminal density map: `rows × cols` cells shaded ` .:-=+*#%@` by
/// trace count (log scale).
pub fn ascii_density(dataset: &Dataset, rows: usize, cols: usize) -> String {
    const SHADES: &[u8] = b" .:-=+*#%@";
    if dataset.is_empty() || rows == 0 || cols == 0 {
        return String::new();
    }
    let bounds = Rect::of_points(dataset.iter_traces().map(|t| t.point));
    let mut grid = vec![0usize; rows * cols];
    let span_lat = (bounds.max_lat - bounds.min_lat).max(1e-12);
    let span_lon = (bounds.max_lon - bounds.min_lon).max(1e-12);
    for t in dataset.iter_traces() {
        let r = ((bounds.max_lat - t.point.lat) / span_lat * rows as f64) as usize;
        let c = ((t.point.lon - bounds.min_lon) / span_lon * cols as f64) as usize;
        grid[r.min(rows - 1) * cols + c.min(cols - 1)] += 1;
    }
    let max = *grid.iter().max().unwrap() as f64;
    let mut out = String::with_capacity(rows * (cols + 1));
    for r in 0..rows {
        for c in 0..cols {
            let v = grid[r * cols + c] as f64;
            let shade = if v == 0.0 {
                0
            } else {
                let level = (v.ln_1p() / max.ln_1p() * (SHADES.len() - 1) as f64).ceil();
                (level as usize).clamp(1, SHADES.len() - 1)
            };
            out.push(SHADES[shade] as char);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gepeto_model::Timestamp;

    fn sample() -> Dataset {
        let mut traces = Vec::new();
        for u in 0..3u32 {
            for i in 0..20i64 {
                traces.push(MobilityTrace::new(
                    u,
                    GeoPoint::new(
                        39.9 + f64::from(u) * 0.01 + i as f64 * 1e-4,
                        116.4 + i as f64 * 1e-4,
                    ),
                    Timestamp(i * 60),
                ));
            }
        }
        Dataset::from_traces(traces)
    }

    #[test]
    fn svg_renders_well_formed_document() {
        let ds = sample();
        let mut map = SvgMap::for_dataset(&ds, 400);
        map.add_dataset(&ds, 2.0)
            .add_trails(&ds)
            .add_markers(&[(GeoPoint::new(39.9, 116.4), "home".into())]);
        let svg = map.render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<circle").count(), 60 + 1); // traces + marker
        assert_eq!(svg.matches("<polyline").count(), 3);
        assert!(svg.contains("home"));
    }

    #[test]
    fn svg_coordinates_inside_viewport() {
        let ds = sample();
        let map = SvgMap::for_dataset(&ds, 300);
        for t in ds.iter_traces() {
            let (x, y) = map.xy(t.point);
            assert!((0.0..=300.0).contains(&x), "{x}");
            assert!(y >= 0.0 && y <= f64::from(map.height), "{y}");
        }
    }

    #[test]
    fn svg_clusters_draw_centroid_crosses() {
        let ds = sample();
        let clusters: Vec<Vec<MobilityTrace>> = ds.trails().map(|t| t.traces().to_vec()).collect();
        let mut map = SvgMap::for_dataset(&ds, 400);
        map.add_clusters(&clusters);
        let svg = map.render();
        assert_eq!(svg.matches("<path").count(), 3);
    }

    #[test]
    #[should_panic(expected = "empty region")]
    fn svg_rejects_empty_bounds() {
        let _ = SvgMap::new(Rect::empty(), 100);
    }

    #[test]
    fn geojson_is_parseable_shape() {
        let ds = sample();
        let points = geojson::dataset_points(&ds);
        assert!(points.starts_with(r#"{"type":"FeatureCollection""#));
        assert_eq!(points.matches(r#""type":"Point""#).count(), 60);
        let trails = geojson::dataset_trails(&ds);
        assert_eq!(trails.matches("LineString").count(), 3);
        // Balanced braces/brackets (cheap well-formedness check).
        for doc in [&points, &trails] {
            assert_eq!(doc.matches('{').count(), doc.matches('}').count());
            assert_eq!(doc.matches('[').count(), doc.matches(']').count());
        }
    }

    #[test]
    fn geojson_pois_carry_properties() {
        let poi = crate::attacks::Poi {
            center: GeoPoint::new(39.9, 116.4),
            visits: 5,
            dwell_secs: 3600,
            night_secs: 1800,
            traces: 42,
        };
        let doc = geojson::pois(&[(7, poi)]);
        assert!(doc.contains(r#""user":7"#));
        assert!(doc.contains(r#""visits":5"#));
        assert!(doc.contains(r#""dwell_secs":3600"#));
    }

    #[test]
    fn ascii_density_shape_and_shading() {
        let ds = sample();
        let art = ascii_density(&ds, 10, 30);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 10);
        assert!(lines.iter().all(|l| l.len() == 30));
        // At least one inked cell and at least one blank cell.
        assert!(art.contains('@') || art.contains('#') || art.contains('*') || art.contains('.'));
        assert!(art.contains(' '));
    }

    #[test]
    fn ascii_density_empty_dataset() {
        assert!(ascii_density(&Dataset::new(), 5, 5).is_empty());
    }
}
