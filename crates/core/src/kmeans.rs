//! k-means clustering (§VI, Figure 4, Tables II–III).
//!
//! The MapReduce formulation implements **each iteration as one MapReduce
//! job**: the map phase assigns every mobility trace to its closest
//! centroid (Algorithm 1), the reduce phase averages each cluster's
//! points into the new centroid (Algorithm 2), and the driver
//! (Algorithm 3) iterates until the centroids stabilize or `maxIter` is
//! reached. The initialization "requires no distribution because it is
//! computationally cheap": k random traces are drawn on a single node.
//!
//! The related-work optimization §VI discusses — a **combiner** that
//! pre-sums each mapper's points locally so only one partial sum per
//! (mapper, cluster) is shuffled — is available via
//! [`KMeansConfig::use_combiner`].
//!
//! ```
//! use gepeto::kmeans::{sequential_kmeans, KMeansConfig};
//! use gepeto_geo::DistanceMetric;
//! use gepeto_model::GeoPoint;
//!
//! // Two obvious blobs.
//! let mut points = Vec::new();
//! for i in 0..20 {
//!     points.push(GeoPoint::new(39.90 + i as f64 * 1e-4, 116.40));
//!     points.push(GeoPoint::new(39.99 + i as f64 * 1e-4, 116.49));
//! }
//! let cfg = KMeansConfig { k: 2, convergence_delta: 1e-9, ..KMeansConfig::paper(DistanceMetric::SquaredEuclidean) };
//! let result = sequential_kmeans(&points, &cfg);
//! assert!(result.converged);
//! assert_eq!(result.centroids.len(), 2);
//! ```

use gepeto_geo::{assign_points_pooled, CentroidsSoa, ClusterSum, DistanceMetric, PointsSoa};
use gepeto_mapred::counters::builtin;
use gepeto_mapred::{
    run_with_recovery, Cluster, Counters, Dfs, DistributedCache, Emitter, JobConfig, JobError,
    JobStats, JournalEntry, MapReduceJob, Mapper, Reducer, RetryPolicy, RunJournal, TaskContext,
};
use gepeto_model::{GeoPoint, MobilityTrace};
use gepeto_telemetry::Recorder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Cache key under which the current centroids are shipped to mappers
/// (the paper's mappers `load from file` in `setup`; the distributed
/// cache is our file).
pub const CENTROIDS_CACHE_KEY: &str = "kmeans.centroids";

/// The runtime arguments of the paper's Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters (`k`); the paper's experiments use 11.
    pub k: usize,
    /// `distanceMeasure`: squared Euclidean or Haversine in the paper.
    pub distance: DistanceMetric,
    /// `convergencedelta`: iteration stops when no centroid moves more
    /// than this (units of `distance`); the paper uses 0.5.
    pub convergence_delta: f64,
    /// `maxIter`: hard iteration cap; the paper uses 150.
    pub max_iterations: usize,
    /// Seed of the single-node random initialization.
    pub seed: u64,
    /// Enables the map-side combiner (§VI related work).
    pub use_combiner: bool,
    /// Shuffle memory budget in bytes: iteration jobs whose map output
    /// exceeds it spill sorted runs to local disk instead of holding the
    /// whole partition in memory. `None` keeps the all-in-memory path.
    pub memory_budget: Option<usize>,
}

impl KMeansConfig {
    /// The paper's runtime arguments: k = 11, delta = 0.5, maxIter = 150.
    pub fn paper(distance: DistanceMetric) -> Self {
        Self {
            k: 11,
            distance,
            convergence_delta: 0.5,
            max_iterations: 150,
            seed: 2,
            use_combiner: false,
            memory_budget: None,
        }
    }
}

/// Statistics of one k-means iteration (one MapReduce job).
#[derive(Debug, Clone)]
pub struct IterationStats {
    /// 1-based iteration number.
    pub iteration: usize,
    /// Largest centroid movement in this iteration (metric units).
    pub max_shift: f64,
    /// The iteration job's engine statistics.
    pub job: JobStats,
}

/// The outcome of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Final centroids, cluster id = index.
    pub centroids: Vec<GeoPoint>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the convergence delta was reached before `maxIter`.
    pub converged: bool,
    /// Per-iteration job statistics (empty for the sequential runner).
    pub per_iteration: Vec<IterationStats>,
    /// Whole-job re-submissions the driver needed (always 0 outside
    /// [`mapreduce_kmeans_checkpointed`]).
    pub job_retries: u64,
}

/// Partial sum of points assigned to one cluster — the intermediate
/// value type. With the combiner enabled, one of these per
/// (mapper, cluster) is all that crosses the shuffle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointSum {
    /// Sum of latitudes.
    pub lat_sum: f64,
    /// Sum of longitudes.
    pub lon_sum: f64,
    /// Number of points accumulated.
    pub count: u64,
}

impl PointSum {
    fn of(p: GeoPoint) -> Self {
        Self {
            lat_sum: p.lat,
            lon_sum: p.lon,
            count: 1,
        }
    }

    fn add(&mut self, other: &Self) {
        self.lat_sum += other.lat_sum;
        self.lon_sum += other.lon_sum;
        self.count += other.count;
    }

    fn mean(&self) -> Option<GeoPoint> {
        (self.count > 0).then(|| {
            GeoPoint::new(
                self.lat_sum / self.count as f64,
                self.lon_sum / self.count as f64,
            )
        })
    }
}

/// Index of the centroid closest to `p` under `metric`.
pub fn nearest_centroid(p: GeoPoint, centroids: &[GeoPoint], metric: DistanceMetric) -> u32 {
    debug_assert!(!centroids.is_empty());
    let mut best = 0u32;
    let mut best_d = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = metric.between(p, *c);
        if d < best_d {
            best_d = d;
            best = i as u32;
        }
    }
    best
}

/// Assigns every point to its nearest centroid (final labeling pass).
///
/// Runs on the columnar [`CentroidsSoa`] kernel — the centroid-side
/// trigonometry is hoisted out of the per-point loop, while the argmin is
/// bit-identical to [`nearest_centroid`]. Chunks fan out over the global
/// work-stealing pool; labels come back in input order regardless of the
/// thread count.
pub fn assign_points(
    points: &[GeoPoint],
    centroids: &[GeoPoint],
    metric: DistanceMetric,
) -> Vec<u32> {
    let soa = CentroidsSoa::new(centroids, metric);
    assign_points_pooled(points, &soa)
}

/// Single-node random initialization: k distinct traces from the input
/// (k is clamped to the dataset size).
pub fn initial_centroids(points: &[GeoPoint], k: usize, seed: u64) -> Vec<GeoPoint> {
    assert!(!points.is_empty(), "cannot initialize k-means on no points");
    let k = k.min(points.len());
    let mut rng = StdRng::seed_from_u64(seed);
    // Partial Fisher–Yates over indices.
    let mut indices: Vec<usize> = (0..points.len()).collect();
    for i in 0..k {
        let j = rng.random_range(i..indices.len());
        indices.swap(i, j);
    }
    indices[..k].iter().map(|&i| points[i]).collect()
}

/// The chunk size of the sequential assign+sum reduction. Chunk results
/// are folded in chunk order, so the accumulation order (and hence the
/// floating-point result) is independent of the worker count.
const SEQ_CHUNK: usize = 16_384;

/// Turns per-cluster [`ClusterSum`]s into new centroids; clusters that
/// received no point keep their previous centroid.
fn sums_to_centroids(sums: &[ClusterSum], centroids: &[GeoPoint]) -> Vec<GeoPoint> {
    sums.iter()
        .zip(centroids)
        .map(|(s, &old)| {
            if s.count > 0 {
                GeoPoint::new(s.lat_sum / s.count as f64, s.lon_sum / s.count as f64)
            } else {
                old
            }
        })
        .collect()
}

/// One sequential assignment+update step; returns the new centroids.
/// Empty clusters keep their previous centroid.
///
/// Runs the fused assign + partial-sum kernel of [`CentroidsSoa`]: one
/// pass per chunk that both assigns and accumulates, with the same
/// chunking and fold order (and therefore bit-identical centroids) as
/// the original two-pass loop.
pub fn sequential_iteration(
    points: &[GeoPoint],
    centroids: &[GeoPoint],
    metric: DistanceMetric,
) -> Vec<GeoPoint> {
    let k = centroids.len();
    let soa = CentroidsSoa::new(centroids, metric);
    let chunks: Vec<&[GeoPoint]> = points.chunks(SEQ_CHUNK).collect();
    let partials = gepeto_pool::global().map_indexed(chunks.len(), |c| {
        let mut local = vec![ClusterSum::default(); k];
        soa.assign_sum_points(chunks[c], &mut local);
        local
    });
    sums_to_centroids(&merge_chunk_sums(partials, k), centroids)
}

/// Folds per-chunk partial sums **in chunk order** — the fixed
/// accumulation order that keeps centroids bit-identical at any thread
/// count (and to the pre-pool sequential reduction).
fn merge_chunk_sums(partials: Vec<Vec<ClusterSum>>, k: usize) -> Vec<ClusterSum> {
    let mut total = vec![ClusterSum::default(); k];
    for partial in &partials {
        for (t, p) in total.iter_mut().zip(partial) {
            t.merge(p);
        }
    }
    total
}

/// [`sequential_iteration`] over pre-split coordinate columns — what
/// [`sequential_kmeans`] runs so the lat/lon split is paid once for the
/// whole run, not once per iteration. Same chunking, same fold order,
/// bit-identical centroids.
fn columnar_iteration(
    cols: &PointsSoa,
    centroids: &[GeoPoint],
    metric: DistanceMetric,
) -> Vec<GeoPoint> {
    let k = centroids.len();
    let soa = CentroidsSoa::new(centroids, metric);
    let lat_chunks: Vec<&[f64]> = cols.lat.chunks(SEQ_CHUNK).collect();
    let lon_chunks: Vec<&[f64]> = cols.lon.chunks(SEQ_CHUNK).collect();
    let partials = gepeto_pool::global().map_indexed(lat_chunks.len(), |c| {
        let mut local = vec![ClusterSum::default(); k];
        soa.assign_sum(lat_chunks[c], lon_chunks[c], &mut local);
        local
    });
    sums_to_centroids(&merge_chunk_sums(partials, k), centroids)
}

/// The full sequential baseline.
pub fn sequential_kmeans(points: &[GeoPoint], cfg: &KMeansConfig) -> KMeansResult {
    let mut centroids = initial_centroids(points, cfg.k, cfg.seed);
    let cols = PointsSoa::from_points(points);
    let mut iterations = 0;
    let mut converged = false;
    while iterations < cfg.max_iterations {
        let next = columnar_iteration(&cols, &centroids, cfg.distance);
        iterations += 1;
        let shift = max_shift(&centroids, &next, cfg.distance);
        centroids = next;
        if shift <= cfg.convergence_delta {
            converged = true;
            break;
        }
    }
    KMeansResult {
        centroids,
        iterations,
        converged,
        per_iteration: Vec::new(),
        job_retries: 0,
    }
}

/// Mean distance from each point to its assigned centroid — the
/// objective k-means descends; used to pick the best restart.
pub fn within_cluster_cost(
    points: &[GeoPoint],
    centroids: &[GeoPoint],
    metric: DistanceMetric,
) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    // Chunks run on the pool; the final sum folds every per-point
    // distance in input order (not per-chunk partials), reproducing the
    // sequential accumulation bit for bit at any thread count.
    let chunks: Vec<&[GeoPoint]> = points.chunks(SEQ_CHUNK).collect();
    let per_chunk: Vec<Vec<f64>> = gepeto_pool::global().map_indexed(chunks.len(), |i| {
        chunks[i]
            .iter()
            .map(|&p| {
                centroids
                    .iter()
                    .map(|&c| metric.between(p, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect()
    });
    let total: f64 = per_chunk.iter().flatten().sum();
    total / points.len() as f64
}

/// Runs [`sequential_kmeans`] `restarts` times with seeds
/// `cfg.seed..cfg.seed + restarts` and keeps the run with the lowest
/// [`within_cluster_cost`] — the standard defense against the local
/// minima the paper lists among k-means' limitations.
pub fn sequential_kmeans_restarts(
    points: &[GeoPoint],
    cfg: &KMeansConfig,
    restarts: usize,
) -> KMeansResult {
    assert!(restarts >= 1);
    (0..restarts as u64)
        .map(|i| {
            sequential_kmeans(
                points,
                &KMeansConfig {
                    seed: cfg.seed + i,
                    ..cfg.clone()
                },
            )
        })
        .min_by(|a, b| {
            within_cluster_cost(points, &a.centroids, cfg.distance)
                .partial_cmp(&within_cluster_cost(points, &b.centroids, cfg.distance))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("at least one restart")
}

fn max_shift(old: &[GeoPoint], new: &[GeoPoint], metric: DistanceMetric) -> f64 {
    old.iter()
        .zip(new)
        .map(|(&a, &b)| metric.between(a, b))
        .fold(0.0, f64::max)
}

/// Algorithm 1: the assignment mapper. Loads the centroids in `setup`,
/// assigns each trace through the columnar [`CentroidsSoa`] kernel, and
/// (when the combiner is off) emits one `PointSum` per trace.
///
/// Distance evaluations are accumulated locally and flushed to the
/// [`builtin::DISTANCE_EVALS`] counter in `cleanup`, so the hot loop
/// never touches the shared counter lock.
#[derive(Clone)]
pub struct KMeansMapper {
    metric: DistanceMetric,
    soa: Arc<CentroidsSoa>,
    distance_evals: u64,
    counters: Option<Counters>,
}

impl KMeansMapper {
    fn new(metric: DistanceMetric) -> Self {
        Self {
            metric,
            soa: Arc::new(CentroidsSoa::new(&[], metric)),
            distance_evals: 0,
            counters: None,
        }
    }
}

impl Mapper<MobilityTrace> for KMeansMapper {
    type KOut = u32;
    type VOut = PointSum;

    fn setup(&mut self, ctx: &TaskContext<'_>) {
        let centroids = ctx.cache.expect::<Vec<GeoPoint>>(CENTROIDS_CACHE_KEY);
        let metric = ctx
            .config
            .get("distanceMeasure")
            .and_then(DistanceMetric::parse);
        if let Some(m) = metric {
            self.metric = m;
        }
        self.soa = Arc::new(CentroidsSoa::new(&centroids, self.metric));
        self.counters = Some(ctx.counters.clone());
    }

    fn map(&mut self, _offset: u64, value: &MobilityTrace, out: &mut Emitter<u32, PointSum>) {
        let cid = self.soa.nearest(value.point);
        self.distance_evals += self.soa.len() as u64;
        out.emit(cid, PointSum::of(value.point));
    }

    fn cleanup(&mut self, _out: &mut Emitter<u32, PointSum>) {
        if let Some(c) = &self.counters {
            c.inc(builtin::DISTANCE_EVALS, self.distance_evals);
        }
        self.distance_evals = 0;
    }
}

/// The §VI combiner: sums all `PointSum`s a single mapper produced for a
/// cluster, making the shuffled volume independent of the chunk size.
#[derive(Clone, Copy)]
pub struct KMeansCombiner;

impl gepeto_mapred::Combiner<u32, PointSum> for KMeansCombiner {
    fn combine(&mut self, _key: &u32, values: &[PointSum]) -> Vec<PointSum> {
        let mut acc = PointSum {
            lat_sum: 0.0,
            lon_sum: 0.0,
            count: 0,
        };
        for v in values {
            acc.add(v);
        }
        vec![acc]
    }
}

/// Algorithm 2: the update reducer — averages a cluster's points into the
/// new centroid.
///
/// Declares `SORTED_INPUT = false`: each cluster id is reduced
/// independently and the driver writes the result by id, so key-ordered
/// groups buy nothing — the engine skips the partition sort.
#[derive(Clone)]
pub struct KMeansReducer;

impl Reducer<u32, PointSum> for KMeansReducer {
    type KOut = u32;
    type VOut = GeoPoint;
    const SORTED_INPUT: bool = false;

    fn reduce(&mut self, key: &u32, values: &[PointSum], out: &mut Emitter<u32, GeoPoint>) {
        let mut acc = PointSum {
            lat_sum: 0.0,
            lon_sum: 0.0,
            count: 0,
        };
        for v in values {
            acc.add(v);
        }
        if let Some(mean) = acc.mean() {
            out.emit(*key, mean);
        }
    }
}

/// Algorithm 3: the driver — one MapReduce job per iteration until
/// convergence or `maxIter` (Figure 4's workflow).
pub fn mapreduce_kmeans(
    cluster: &Cluster,
    dfs: &Dfs<MobilityTrace>,
    input: &str,
    cfg: &KMeansConfig,
) -> Result<KMeansResult, JobError> {
    mapreduce_kmeans_with(cluster, dfs, input, cfg, &Recorder::disabled())
}

/// [`mapreduce_kmeans`] with telemetry: the run is wrapped in a `kmeans`
/// span, every iteration gets a `kmeans.iteration` child span, and the
/// centroid movement is recorded as a `kmeans.shift` point — the
/// convergence trajectory Figure 4's workflow monitors.
pub fn mapreduce_kmeans_with(
    cluster: &Cluster,
    dfs: &Dfs<MobilityTrace>,
    input: &str,
    cfg: &KMeansConfig,
    telemetry: &Recorder,
) -> Result<KMeansResult, JobError> {
    let run_span = telemetry.span("kmeans", &[("input", input), ("k", &cfg.k.to_string())]);
    let init_points = sample_points(dfs, input, cfg.k, cfg.seed)?;
    let mut centroids = init_points;
    let mut per_iteration = Vec::new();
    let mut converged = false;
    let mut iterations = 0;

    while iterations < cfg.max_iterations {
        // `span()` (not `run_span.child()`) so the iteration enters the
        // recorder's context stack and the iteration's job span nests
        // under it on the critical path.
        let iter_span = telemetry.span(
            "kmeans.iteration",
            &[("iter", &(iterations + 1).to_string())],
        );
        let (next, job) =
            mapreduce_iteration_with(cluster, dfs, input, &centroids, cfg, telemetry)?;
        iterations += 1;
        let shift = max_shift(&centroids, &next, cfg.distance);
        telemetry.point("kmeans.shift", shift, &[("iter", &iterations.to_string())]);
        if let Some(m) = telemetry.monitor() {
            m.set_driver_progress(iterations as u64, shift);
        }
        iter_span.end();
        per_iteration.push(IterationStats {
            iteration: iterations,
            max_shift: shift,
            job,
        });
        centroids = next;
        if shift <= cfg.convergence_delta {
            converged = true;
            break;
        }
    }
    run_span.end();
    Ok(KMeansResult {
        centroids,
        iterations,
        converged,
        per_iteration,
        job_retries: 0,
    })
}

/// Journal label under which the durable driver checkpoints each
/// finished iteration's centroids.
pub const KMEANS_CHECKPOINT_LABEL: &str = "kmeans";

/// Crash-safe k-means under a write-ahead [`RunJournal`]: every
/// iteration runs as a *uniquely named* job (`kmeans-i{n:03}`) whose
/// reduce partitions are committed into the run directory, and each
/// finished iteration's centroids are checkpointed into the journal
/// (bit-exact, via the IEEE-754 bit patterns). A resumed run restores
/// the last checkpoint, skips the finished iterations entirely, and the
/// in-flight iteration replays whatever reduce partitions it had
/// already committed — so a SIGKILL anywhere lands on the same final
/// centroids as an undisturbed run.
///
/// Unique per-iteration job names are load-bearing: reduce artifacts
/// are keyed by job name, so a driver that reused one name across
/// iterations would replay a *stale* iteration's output on resume.
///
/// `per_iteration` holds only the iterations executed by *this*
/// process; checkpoint-restored iterations contribute no stats.
pub fn mapreduce_kmeans_durable(
    cluster: &Cluster,
    dfs: &Dfs<MobilityTrace>,
    input: &str,
    cfg: &KMeansConfig,
    journal: &Arc<RunJournal>,
    telemetry: &Recorder,
) -> Result<KMeansResult, JobError> {
    let run_span = telemetry.span("kmeans", &[("input", input), ("k", &cfg.k.to_string())]);
    let restored = journal
        .last_checkpoint(KMEANS_CHECKPOINT_LABEL)
        .and_then(|p| decode_kmeans_checkpoint(&p));
    let (mut iterations, mut converged, mut centroids) = match restored {
        Some(state) => state,
        None => (0, false, sample_points(dfs, input, cfg.k, cfg.seed)?),
    };
    if iterations > 0 {
        telemetry.point("kmeans.resumed", iterations as f64, &[("input", input)]);
    }
    let mut per_iteration = Vec::new();
    while !converged && iterations < cfg.max_iterations {
        let iter_span = telemetry.span(
            "kmeans.iteration",
            &[("iter", &(iterations + 1).to_string())],
        );
        let (next, job) = mapreduce_iteration_inner(
            &format!("kmeans-i{:03}", iterations + 1),
            cluster,
            dfs,
            input,
            &centroids,
            cfg,
            Some(journal),
            telemetry,
        )?;
        iterations += 1;
        let shift = max_shift(&centroids, &next, cfg.distance);
        telemetry.point("kmeans.shift", shift, &[("iter", &iterations.to_string())]);
        if let Some(m) = telemetry.monitor() {
            m.set_driver_progress(iterations as u64, shift);
        }
        centroids = next;
        converged = shift <= cfg.convergence_delta;
        journal
            .append(&JournalEntry::Checkpoint {
                label: KMEANS_CHECKPOINT_LABEL.to_string(),
                payload: encode_kmeans_checkpoint(iterations, converged, &centroids),
            })
            .map_err(JobError::Io)?;
        iter_span.end();
        per_iteration.push(IterationStats {
            iteration: iterations,
            max_shift: shift,
            job,
        });
    }
    run_span.end();
    Ok(KMeansResult {
        centroids,
        iterations,
        converged,
        per_iteration,
        job_retries: 0,
    })
}

/// Encodes `(iteration, converged, centroids)` as the checkpoint
/// payload: centroid floats travel as hex bit patterns, so the decoded
/// state is the same bits the driver checkpointed.
fn encode_kmeans_checkpoint(iteration: usize, converged: bool, centroids: &[GeoPoint]) -> String {
    let mut s = format!("{iteration} {}", u8::from(converged));
    for c in centroids {
        s.push_str(&format!(
            " {:016x}:{:016x}",
            c.lat.to_bits(),
            c.lon.to_bits()
        ));
    }
    s
}

fn decode_kmeans_checkpoint(payload: &str) -> Option<(usize, bool, Vec<GeoPoint>)> {
    let mut parts = payload.split(' ');
    let iteration = parts.next()?.parse().ok()?;
    let converged = parts.next()? == "1";
    let mut centroids = Vec::new();
    for pair in parts {
        let (lat, lon) = pair.split_once(':')?;
        centroids.push(GeoPoint::new(
            f64::from_bits(u64::from_str_radix(lat, 16).ok()?),
            f64::from_bits(u64::from_str_radix(lon, 16).ok()?),
        ));
    }
    Some((iteration, converged, centroids))
}

/// Last-good-iteration state of a checkpointed k-means run. The driver
/// keeps this *outside* the job, so a job death costs one iteration
/// attempt, never the progress already made.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansCheckpoint {
    /// Iterations completed so far.
    pub iteration: usize,
    /// Centroids as of `iteration`.
    pub centroids: Vec<GeoPoint>,
}

/// [`mapreduce_kmeans`] hardened for a faulty cluster: each iteration's
/// job runs under [`gepeto_mapred::run_with_recovery`], so a whole-job
/// death (every replica of a chunk unreadable, a task out of attempts,
/// no live nodes) is retried from the last [`KMeansCheckpoint`] with
/// DFS re-replication and virtual-time backoff between attempts, up to
/// `policy.max_job_retries` per iteration. Needs `&mut` DFS because
/// healing re-places replicas.
///
/// With [`RetryPolicy::none`] and a quiet chaos plan this is
/// byte-identical to [`mapreduce_kmeans_with`]: attempt 0 keeps the
/// plain job name and host outputs never depend on the schedule.
pub fn mapreduce_kmeans_checkpointed(
    cluster: &Cluster,
    dfs: &mut Dfs<MobilityTrace>,
    input: &str,
    cfg: &KMeansConfig,
    policy: &RetryPolicy,
    telemetry: &Recorder,
) -> Result<KMeansResult, JobError> {
    let run_span = telemetry.span("kmeans", &[("input", input), ("k", &cfg.k.to_string())]);
    let mut state = KMeansCheckpoint {
        iteration: 0,
        centroids: sample_points(dfs, input, cfg.k, cfg.seed)?,
    };
    let mut per_iteration = Vec::new();
    let mut converged = false;
    let mut job_retries = 0u64;

    while state.iteration < cfg.max_iterations {
        let iter_span = run_span.child(
            "kmeans.iteration",
            &[("iter", &(state.iteration + 1).to_string())],
        );
        let centroids = state.centroids.clone();
        let ((next, job), retries) = run_with_recovery(
            "kmeans-iteration",
            cluster,
            dfs,
            policy,
            telemetry,
            |job_name, dfs| {
                mapreduce_iteration_named(job_name, cluster, dfs, input, &centroids, cfg, telemetry)
            },
        )?;
        job_retries += retries as u64;
        let shift = max_shift(&state.centroids, &next, cfg.distance);
        state = KMeansCheckpoint {
            iteration: state.iteration + 1,
            centroids: next,
        };
        telemetry.point(
            "kmeans.shift",
            shift,
            &[("iter", &state.iteration.to_string())],
        );
        if let Some(m) = telemetry.monitor() {
            m.set_driver_progress(state.iteration as u64, shift);
        }
        iter_span.end();
        per_iteration.push(IterationStats {
            iteration: state.iteration,
            max_shift: shift,
            job,
        });
        if shift <= cfg.convergence_delta {
            converged = true;
            break;
        }
    }
    run_span.end();
    Ok(KMeansResult {
        centroids: state.centroids,
        iterations: state.iteration,
        converged,
        per_iteration,
        job_retries,
    })
}

/// One MapReduce k-means iteration: assignment (map) + update (reduce).
pub fn mapreduce_iteration(
    cluster: &Cluster,
    dfs: &Dfs<MobilityTrace>,
    input: &str,
    centroids: &[GeoPoint],
    cfg: &KMeansConfig,
) -> Result<(Vec<GeoPoint>, JobStats), JobError> {
    mapreduce_iteration_with(cluster, dfs, input, centroids, cfg, &Recorder::disabled())
}

/// [`mapreduce_iteration`] with the iteration job's telemetry captured
/// through `telemetry`.
pub fn mapreduce_iteration_with(
    cluster: &Cluster,
    dfs: &Dfs<MobilityTrace>,
    input: &str,
    centroids: &[GeoPoint],
    cfg: &KMeansConfig,
    telemetry: &Recorder,
) -> Result<(Vec<GeoPoint>, JobStats), JobError> {
    mapreduce_iteration_named(
        "kmeans-iteration",
        cluster,
        dfs,
        input,
        centroids,
        cfg,
        telemetry,
    )
}

/// [`mapreduce_iteration_with`] under an explicit job name — what the
/// checkpointed driver uses to give re-submissions their `.r{n}` names.
fn mapreduce_iteration_named(
    job_name: &str,
    cluster: &Cluster,
    dfs: &Dfs<MobilityTrace>,
    input: &str,
    centroids: &[GeoPoint],
    cfg: &KMeansConfig,
    telemetry: &Recorder,
) -> Result<(Vec<GeoPoint>, JobStats), JobError> {
    mapreduce_iteration_inner(
        job_name, cluster, dfs, input, centroids, cfg, None, telemetry,
    )
}

/// The iteration job, optionally committing its reduce partitions into a
/// run journal (the durable driver's path).
#[allow(clippy::too_many_arguments)]
fn mapreduce_iteration_inner(
    job_name: &str,
    cluster: &Cluster,
    dfs: &Dfs<MobilityTrace>,
    input: &str,
    centroids: &[GeoPoint],
    cfg: &KMeansConfig,
    journal: Option<&Arc<RunJournal>>,
    telemetry: &Recorder,
) -> Result<(Vec<GeoPoint>, JobStats), JobError> {
    let cache = DistributedCache::new().with(CENTROIDS_CACHE_KEY, centroids.to_vec());
    let config = JobConfig::new()
        .set("k", cfg.k)
        .set(
            "distanceMeasure",
            format!("{:?}", cfg.distance).to_lowercase(),
        )
        .set("convergencedelta", cfg.convergence_delta)
        .set("maxIter", cfg.max_iterations);
    let mapper = KMeansMapper::new(cfg.distance);
    let job = MapReduceJob::new(job_name, cluster, dfs, input, mapper, KMeansReducer)
        .reducers(cluster.topology.num_nodes())
        .config(config)
        .cache(cache)
        .telemetry(telemetry.clone())
        .pair_bytes(|_, _| std::mem::size_of::<(u32, PointSum)>());
    let job = match cfg.memory_budget {
        Some(bytes) => job.memory_budget_with(bytes, crate::spill_codecs::point_sum_codec()),
        None => job.spill_codec(crate::spill_codecs::point_sum_codec()),
    };
    let job = match journal {
        Some(j) => job.durable_with(j.clone(), crate::spill_codecs::centroid_codec()),
        None => job,
    };
    let result = if cfg.use_combiner {
        job.with_combiner(KMeansCombiner).run()?
    } else {
        job.run()?
    };
    // Clusters that received no point keep their previous centroid.
    let mut next = centroids.to_vec();
    for (cid, mean) in result.output {
        next[cid as usize] = mean;
    }
    Ok((next, result.stats))
}

/// Draws `k` traces from the input file without reading it entirely —
/// the paper's cheap single-node initialization.
fn sample_points(
    dfs: &Dfs<MobilityTrace>,
    input: &str,
    k: usize,
    seed: u64,
) -> Result<Vec<GeoPoint>, JobError> {
    let total = dfs.num_records(input)?;
    assert!(total > 0, "cannot initialize k-means on an empty file");
    let k = k.min(total);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut picks: Vec<usize> = Vec::with_capacity(k);
    while picks.len() < k {
        let idx = rng.random_range(0..total);
        if !picks.contains(&idx) {
            picks.push(idx);
        }
    }
    picks.sort_unstable();
    let mut points = Vec::with_capacity(k);
    let mut next = picks.iter().peekable();
    let mut offset = 0usize;
    'outer: for &block_id in dfs.blocks_of(input)? {
        let block = dfs.block(block_id);
        while let Some(&&idx) = next.peek() {
            if idx < offset + block.data.len() {
                points.push(block.data[idx - offset].point);
                next.next();
            } else {
                offset += block.data.len();
                continue 'outer;
            }
        }
        break;
    }
    Ok(points)
}

// ---------------------------------------------------------------------
// k-medians: the outlier-robust variant §VI alludes to ("another
// drawback of using the mean as the center of the cluster instead of the
// median is that outliers can have a sensible impact").
// ---------------------------------------------------------------------

/// Component-wise median of a set of points (the k-medians center).
pub fn component_median(points: &mut [(f64, f64)]) -> Option<GeoPoint> {
    if points.is_empty() {
        return None;
    }
    let mid = points.len() / 2;
    let med = |vals: &mut Vec<f64>| -> f64 {
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        if vals.len() % 2 == 1 {
            vals[mid]
        } else {
            (vals[mid - 1] + vals[mid]) / 2.0
        }
    };
    let mut lats: Vec<f64> = points.iter().map(|p| p.0).collect();
    let mut lons: Vec<f64> = points.iter().map(|p| p.1).collect();
    Some(GeoPoint::new(med(&mut lats), med(&mut lons)))
}

/// One sequential k-medians step: assign to nearest center, update each
/// center to the component-wise median of its points.
pub fn sequential_median_iteration(
    points: &[GeoPoint],
    centroids: &[GeoPoint],
    metric: DistanceMetric,
) -> Vec<GeoPoint> {
    let k = centroids.len();
    let mut buckets: Vec<Vec<(f64, f64)>> = vec![Vec::new(); k];
    for &p in points {
        buckets[nearest_centroid(p, centroids, metric) as usize].push((p.lat, p.lon));
    }
    buckets
        .iter_mut()
        .zip(centroids)
        .map(|(b, &old)| component_median(b).unwrap_or(old))
        .collect()
}

/// The k-medians assignment mapper: emits the raw point per cluster —
/// unlike the mean, the median is not decomposable, so **no combiner can
/// shrink this shuffle** (the flip side of the §VI optimization).
#[derive(Clone)]
pub struct KMediansMapper {
    metric: DistanceMetric,
    centroids: Arc<Vec<GeoPoint>>,
}

impl Mapper<MobilityTrace> for KMediansMapper {
    type KOut = u32;
    type VOut = (f64, f64);

    fn setup(&mut self, ctx: &TaskContext<'_>) {
        self.centroids = ctx.cache.expect::<Vec<GeoPoint>>(CENTROIDS_CACHE_KEY);
    }

    fn map(&mut self, _offset: u64, value: &MobilityTrace, out: &mut Emitter<u32, (f64, f64)>) {
        let cid = nearest_centroid(value.point, &self.centroids, self.metric);
        out.emit(cid, (value.point.lat, value.point.lon));
    }
}

/// The k-medians update reducer.
#[derive(Clone)]
pub struct KMediansReducer;

impl Reducer<u32, (f64, f64)> for KMediansReducer {
    type KOut = u32;
    type VOut = GeoPoint;

    fn reduce(&mut self, key: &u32, values: &[(f64, f64)], out: &mut Emitter<u32, GeoPoint>) {
        let mut pts = values.to_vec();
        if let Some(center) = component_median(&mut pts) {
            out.emit(*key, center);
        }
    }
}

/// One MapReduce k-medians iteration.
pub fn mapreduce_median_iteration(
    cluster: &Cluster,
    dfs: &Dfs<MobilityTrace>,
    input: &str,
    centroids: &[GeoPoint],
    cfg: &KMeansConfig,
) -> Result<(Vec<GeoPoint>, JobStats), JobError> {
    let cache = DistributedCache::new().with(CENTROIDS_CACHE_KEY, centroids.to_vec());
    let result = MapReduceJob::new(
        "kmedians-iteration",
        cluster,
        dfs,
        input,
        KMediansMapper {
            metric: cfg.distance,
            centroids: Arc::new(Vec::new()),
        },
        KMediansReducer,
    )
    .reducers(cluster.topology.num_nodes())
    .cache(cache)
    .pair_bytes(|_, _| std::mem::size_of::<(u32, (f64, f64))>())
    .run()?;
    let mut next = centroids.to_vec();
    for (cid, center) in result.output {
        next[cid as usize] = center;
    }
    Ok((next, result.stats))
}

// ---------------------------------------------------------------------
// Choosing k: "the parameter has to be specified by the user or inferred
// by cross-validation" (§VI).
// ---------------------------------------------------------------------

/// Cost curve over candidate `k`s plus the elbow pick (the largest
/// relative drop in within-cluster cost, a standard heuristic stand-in
/// for the cross-validation the paper mentions).
pub fn select_k(
    points: &[GeoPoint],
    candidates: &[usize],
    base: &KMeansConfig,
) -> (Vec<(usize, f64)>, usize) {
    assert!(!candidates.is_empty());
    let curve: Vec<(usize, f64)> = candidates
        .iter()
        .map(|&k| {
            let cfg = KMeansConfig { k, ..base.clone() };
            // Restarts smooth out local minima, which would otherwise make
            // the cost curve non-monotone and fool the elbow pick.
            let result = sequential_kmeans_restarts(points, &cfg, 4);
            (
                k,
                within_cluster_cost(points, &result.centroids, cfg.distance),
            )
        })
        .collect();
    let mut best = curve[0].0;
    let mut best_gain = f64::NEG_INFINITY;
    for w in curve.windows(2) {
        let (_, prev_cost) = w[0];
        let (k, cost) = w[1];
        let gain = if prev_cost > 0.0 {
            (prev_cost - cost) / prev_cost
        } else {
            0.0
        };
        if gain > best_gain {
            best_gain = gain;
            best = k;
        }
    }
    (curve, best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfs_io::{put_dataset, trace_dfs};
    use gepeto_model::{Dataset, Timestamp};

    /// Three well-separated blobs of points.
    fn blobs() -> Vec<GeoPoint> {
        let mut pts = Vec::new();
        for (cx, cy) in [(40.0, 116.0), (40.3, 116.3), (39.7, 116.6)] {
            for i in 0..60 {
                let d = (i as f64) * 1e-4;
                pts.push(GeoPoint::new(cx + d * ((i % 7) as f64 - 3.0) / 3.0, cy + d));
            }
        }
        pts
    }

    fn blob_dataset() -> Dataset {
        Dataset::from_traces(
            blobs()
                .into_iter()
                .enumerate()
                .map(|(i, p)| MobilityTrace::new(0, p, Timestamp(i as i64))),
        )
    }

    fn cfg(metric: DistanceMetric) -> KMeansConfig {
        KMeansConfig {
            k: 3,
            distance: metric,
            convergence_delta: 1e-9,
            max_iterations: 100,
            // A seed whose random init lands one centroid per blob (random
            // initialization can hit local minima, as §VI notes; see also
            // `sequential_kmeans_restarts`).
            seed: 2,
            use_combiner: false,
            memory_budget: None,
        }
    }

    #[test]
    fn sequential_finds_the_three_blobs() {
        let points = blobs();
        let result = sequential_kmeans_restarts(&points, &cfg(DistanceMetric::SquaredEuclidean), 8);
        assert!(result.converged);
        assert_eq!(result.centroids.len(), 3);
        // Each blob center has a centroid within ~0.05 degrees.
        for (cx, cy) in [(40.0, 116.0), (40.3, 116.3), (39.7, 116.6)] {
            let best = result
                .centroids
                .iter()
                .map(|c| ((c.lat - cx).powi(2) + (c.lon - cy).powi(2)).sqrt())
                .fold(f64::INFINITY, f64::min);
            assert!(best < 0.05, "no centroid near ({cx},{cy}): {best}");
        }
    }

    #[test]
    fn assignment_is_consistent_with_centroids() {
        let points = blobs();
        let result = sequential_kmeans(&points, &cfg(DistanceMetric::Euclidean));
        let labels = assign_points(&points, &result.centroids, DistanceMetric::Euclidean);
        assert_eq!(labels.len(), points.len());
        // Every point is closer to its own centroid than to the others.
        for (p, &l) in points.iter().zip(&labels) {
            let own = DistanceMetric::Euclidean.between(*p, result.centroids[l as usize]);
            for c in &result.centroids {
                assert!(own <= DistanceMetric::Euclidean.between(*p, *c) + 1e-12);
            }
        }
    }

    #[test]
    fn squared_euclidean_and_euclidean_agree_on_assignment() {
        let points = blobs();
        let cs = initial_centroids(&points, 3, 5);
        assert_eq!(
            assign_points(&points, &cs, DistanceMetric::Euclidean),
            assign_points(&points, &cs, DistanceMetric::SquaredEuclidean),
        );
    }

    #[test]
    fn initial_centroids_are_input_points_and_deterministic() {
        let points = blobs();
        let a = initial_centroids(&points, 5, 99);
        let b = initial_centroids(&points, 5, 99);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        for c in &a {
            assert!(points.iter().any(|p| p == c));
        }
        // Distinct picks.
        for i in 0..a.len() {
            for j in (i + 1)..a.len() {
                assert_ne!(a[i], a[j]);
            }
        }
    }

    #[test]
    fn k_clamped_to_dataset_size() {
        let points = vec![GeoPoint::new(1.0, 2.0), GeoPoint::new(3.0, 4.0)];
        assert_eq!(initial_centroids(&points, 10, 1).len(), 2);
    }

    #[test]
    fn mapreduce_iteration_matches_sequential() {
        let ds = blob_dataset();
        let cluster = Cluster::local(3, 2);
        let mut dfs = trace_dfs(&cluster, 2_048); // several chunks
        put_dataset(&mut dfs, "pts", &ds).unwrap();
        let points = blobs();
        let centroids = initial_centroids(&points, 3, 7);
        let c = cfg(DistanceMetric::SquaredEuclidean);
        let (mr, _) = mapreduce_iteration(&cluster, &dfs, "pts", &centroids, &c).unwrap();
        let seq = sequential_iteration(&points, &centroids, c.distance);
        for (a, b) in mr.iter().zip(&seq) {
            assert!((a.lat - b.lat).abs() < 1e-9, "{a:?} vs {b:?}");
            assert!((a.lon - b.lon).abs() < 1e-9);
        }
    }

    #[test]
    fn soa_assignment_is_bit_identical_to_scalar_for_all_metrics() {
        let points = blobs();
        let centroids = initial_centroids(&points, 5, 11);
        for metric in [
            DistanceMetric::Euclidean,
            DistanceMetric::SquaredEuclidean,
            DistanceMetric::Manhattan,
            DistanceMetric::Haversine,
        ] {
            let scalar: Vec<u32> = points
                .iter()
                .map(|&p| nearest_centroid(p, &centroids, metric))
                .collect();
            assert_eq!(
                assign_points(&points, &centroids, metric),
                scalar,
                "{metric:?}"
            );
        }
    }

    #[test]
    fn fused_iteration_is_bit_identical_to_two_pass_reference() {
        let points = blobs();
        let centroids = initial_centroids(&points, 3, 7);
        for metric in [DistanceMetric::SquaredEuclidean, DistanceMetric::Haversine] {
            // The pre-optimization reference: assign, then sum, in input
            // order (one chunk — blobs() is far below the chunk size).
            let mut sums = vec![
                PointSum {
                    lat_sum: 0.0,
                    lon_sum: 0.0,
                    count: 0
                };
                centroids.len()
            ];
            for &p in &points {
                sums[nearest_centroid(p, &centroids, metric) as usize].add(&PointSum::of(p));
            }
            let want: Vec<GeoPoint> = sums
                .iter()
                .zip(&centroids)
                .map(|(s, &old)| s.mean().unwrap_or(old))
                .collect();
            let got = sequential_iteration(&points, &centroids, metric);
            let cols = PointsSoa::from_points(&points);
            let col = columnar_iteration(&cols, &centroids, metric);
            for ((g, c), w) in got.iter().zip(&col).zip(&want) {
                assert_eq!(g.lat.to_bits(), w.lat.to_bits(), "{metric:?}");
                assert_eq!(g.lon.to_bits(), w.lon.to_bits(), "{metric:?}");
                assert_eq!(c.lat.to_bits(), w.lat.to_bits(), "{metric:?}");
                assert_eq!(c.lon.to_bits(), w.lon.to_bits(), "{metric:?}");
            }
        }
    }

    #[test]
    fn mapreduce_iteration_counts_evals_and_skips_sorts() {
        let ds = blob_dataset();
        let cluster = Cluster::local(3, 2);
        let mut dfs = trace_dfs(&cluster, 2_048);
        put_dataset(&mut dfs, "pts", &ds).unwrap();
        let points = blobs();
        let centroids = initial_centroids(&points, 3, 7);
        let c = cfg(DistanceMetric::SquaredEuclidean);
        let (_, stats) = mapreduce_iteration(&cluster, &dfs, "pts", &centroids, &c).unwrap();
        // Every trace is compared against every centroid exactly once.
        assert_eq!(
            stats.counters[builtin::DISTANCE_EVALS],
            (points.len() * centroids.len()) as u64
        );
        // KMeansReducer opts out of sorting: every reduce task skips.
        assert_eq!(
            stats.counters[builtin::SORT_SKIPPED],
            stats.reduce_tasks as u64
        );
    }

    #[test]
    fn combiner_does_not_change_the_result_but_cuts_shuffle() {
        let ds = blob_dataset();
        let cluster = Cluster::local(3, 2);
        let mut dfs = trace_dfs(&cluster, 2_048);
        put_dataset(&mut dfs, "pts", &ds).unwrap();
        let centroids = initial_centroids(&blobs(), 3, 7);
        let plain_cfg = cfg(DistanceMetric::Haversine);
        let comb_cfg = KMeansConfig {
            use_combiner: true,
            ..plain_cfg.clone()
        };
        let (a, sa) = mapreduce_iteration(&cluster, &dfs, "pts", &centroids, &plain_cfg).unwrap();
        let (b, sb) = mapreduce_iteration(&cluster, &dfs, "pts", &centroids, &comb_cfg).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x.lat - y.lat).abs() < 1e-9);
            assert!((x.lon - y.lon).abs() < 1e-9);
        }
        assert!(
            sb.sim.shuffle_bytes < sa.sim.shuffle_bytes / 2,
            "combiner shuffle {} vs plain {}",
            sb.sim.shuffle_bytes,
            sa.sim.shuffle_bytes
        );
    }

    #[test]
    fn full_mapreduce_kmeans_converges_like_sequential() {
        let ds = blob_dataset();
        let cluster = Cluster::local(4, 2);
        let mut dfs = trace_dfs(&cluster, 4_096);
        put_dataset(&mut dfs, "pts", &ds).unwrap();
        let c = KMeansConfig {
            convergence_delta: 1e-7,
            ..cfg(DistanceMetric::SquaredEuclidean)
        };
        let mr = mapreduce_kmeans(&cluster, &dfs, "pts", &c).unwrap();
        assert!(mr.converged, "did not converge in {} iters", mr.iterations);
        assert_eq!(mr.per_iteration.len(), mr.iterations);
        // Centroids land on the three blob centers.
        for (cx, cy) in [(40.0, 116.0), (40.3, 116.3), (39.7, 116.6)] {
            let best = mr
                .centroids
                .iter()
                .map(|c| ((c.lat - cx).powi(2) + (c.lon - cy).powi(2)).sqrt())
                .fold(f64::INFINITY, f64::min);
            assert!(best < 0.05, "no centroid near ({cx},{cy})");
        }
        // Shifts shrink towards convergence.
        let first = mr.per_iteration.first().unwrap().max_shift;
        let last = mr.per_iteration.last().unwrap().max_shift;
        assert!(last <= first);
        assert!(last <= c.convergence_delta);
    }

    #[test]
    fn haversine_is_costlier_than_squared_euclidean() {
        // The Table III effect, measured on the metric itself.
        let points = blobs();
        let cs = initial_centroids(&points, 3, 7);
        let time = |m: DistanceMetric| {
            let t0 = std::time::Instant::now();
            for _ in 0..200 {
                let _ = assign_points(&points, &cs, m);
            }
            t0.elapsed()
        };
        let se = time(DistanceMetric::SquaredEuclidean);
        let hv = time(DistanceMetric::Haversine);
        assert!(
            hv > se,
            "haversine {hv:?} should cost more than squared euclidean {se:?}"
        );
    }

    #[test]
    fn component_median_basics() {
        assert!(component_median(&mut []).is_none());
        let mut one = vec![(1.0, 2.0)];
        assert_eq!(component_median(&mut one), Some(GeoPoint::new(1.0, 2.0)));
        let mut odd = vec![(1.0, 10.0), (3.0, 30.0), (2.0, 20.0)];
        assert_eq!(component_median(&mut odd), Some(GeoPoint::new(2.0, 20.0)));
        let mut even = vec![(1.0, 10.0), (2.0, 20.0), (3.0, 30.0), (4.0, 40.0)];
        assert_eq!(component_median(&mut even), Some(GeoPoint::new(2.5, 25.0)));
    }

    #[test]
    fn median_is_robust_to_an_outlier() {
        // One far outlier drags the mean but not the median.
        let mut points: Vec<GeoPoint> = (0..20)
            .map(|i| GeoPoint::new(40.0 + (i % 5) as f64 * 1e-4, 116.0))
            .collect();
        points.push(GeoPoint::new(45.0, 120.0)); // outlier
        let centroids = vec![GeoPoint::new(40.0, 116.0)];
        let mean = sequential_iteration(&points, &centroids, DistanceMetric::Euclidean);
        let median = sequential_median_iteration(&points, &centroids, DistanceMetric::Euclidean);
        let d = |p: GeoPoint| ((p.lat - 40.0).powi(2) + (p.lon - 116.0).powi(2)).sqrt();
        assert!(d(mean[0]) > 0.1, "mean should be dragged: {:?}", mean[0]);
        assert!(d(median[0]) < 0.01, "median should hold: {:?}", median[0]);
    }

    #[test]
    fn mapreduce_kmedians_matches_sequential() {
        let ds = blob_dataset();
        let cluster = Cluster::local(3, 2);
        let mut dfs = trace_dfs(&cluster, 2_048);
        put_dataset(&mut dfs, "pts", &ds).unwrap();
        let points = blobs();
        let centroids = initial_centroids(&points, 3, 1);
        let c = cfg(DistanceMetric::SquaredEuclidean);
        let (mr, _) = mapreduce_median_iteration(&cluster, &dfs, "pts", &centroids, &c).unwrap();
        let seq = sequential_median_iteration(&points, &centroids, c.distance);
        for (a, b) in mr.iter().zip(&seq) {
            assert!((a.lat - b.lat).abs() < 1e-12 && (a.lon - b.lon).abs() < 1e-12);
        }
    }

    #[test]
    fn kmedians_shuffle_exceeds_combined_kmeans() {
        // The median is not decomposable: its shuffle volume scales with
        // the points, whereas the combined mean shuffles one partial sum
        // per (mapper, cluster).
        let ds = blob_dataset();
        let cluster = Cluster::local(3, 2);
        let mut dfs = trace_dfs(&cluster, 2_048);
        put_dataset(&mut dfs, "pts", &ds).unwrap();
        let centroids = initial_centroids(&blobs(), 3, 1);
        let c = KMeansConfig {
            use_combiner: true,
            ..cfg(DistanceMetric::SquaredEuclidean)
        };
        let (_, mean_stats) = mapreduce_iteration(&cluster, &dfs, "pts", &centroids, &c).unwrap();
        let (_, median_stats) =
            mapreduce_median_iteration(&cluster, &dfs, "pts", &centroids, &c).unwrap();
        assert!(
            median_stats.sim.shuffle_bytes > mean_stats.sim.shuffle_bytes * 3,
            "median {} vs combined mean {}",
            median_stats.sim.shuffle_bytes,
            mean_stats.sim.shuffle_bytes
        );
    }

    #[test]
    fn select_k_finds_the_blob_count() {
        let points = blobs();
        let base = KMeansConfig {
            max_iterations: 30,
            convergence_delta: 1e-9,
            ..cfg(DistanceMetric::SquaredEuclidean)
        };
        let (curve, best) = select_k(&points, &[1, 2, 3, 4, 5, 6], &base);
        assert_eq!(curve.len(), 6);
        // Cost is non-increasing in k (up to local-minimum noise at the
        // tail) and collapses at k = 3 for three well-separated blobs.
        assert!(curve[0].1 > curve[2].1);
        assert_eq!(best, 3, "{curve:?}");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_input_rejected() {
        let cluster = Cluster::local(2, 1);
        let mut dfs = trace_dfs(&cluster, 1_024);
        dfs.put_with_sizer("empty", vec![], |_| 64).unwrap();
        let _ = mapreduce_kmeans(&cluster, &dfs, "empty", &cfg(DistanceMetric::Euclidean));
    }
}
