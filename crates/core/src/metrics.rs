//! Privacy and utility metrics — the trade-off GEPETO exists to measure
//! ("evaluate the resulting trade-off between privacy and utility",
//! Abstract).
//!
//! Privacy is measured *operationally*: run an inference attack on the
//! sanitized dataset and score how much it still recovers (POI
//! recall/precision, home identification). Utility is measured as
//! fidelity of the sanitized data to the original (spatial displacement,
//! trace retention).

use crate::attacks::poi::Poi;
use gepeto_geo::haversine_m;
use gepeto_model::{Dataset, GeoPoint};

/// Fraction of reference POIs that the attack rediscovered within
/// `tolerance_m` meters (privacy: lower after sanitization = better).
pub fn poi_recall(reference: &[Poi], attacked: &[Poi], tolerance_m: f64) -> f64 {
    if reference.is_empty() {
        return 0.0;
    }
    let found = reference
        .iter()
        .filter(|r| {
            attacked
                .iter()
                .any(|a| haversine_m(r.center, a.center) <= tolerance_m)
        })
        .count();
    found as f64 / reference.len() as f64
}

/// Fraction of attacked POIs that correspond to a real reference POI
/// (an attack flooding the map with junk scores low).
pub fn poi_precision(reference: &[Poi], attacked: &[Poi], tolerance_m: f64) -> f64 {
    if attacked.is_empty() {
        return 0.0;
    }
    let real = attacked
        .iter()
        .filter(|a| {
            reference
                .iter()
                .any(|r| haversine_m(r.center, a.center) <= tolerance_m)
        })
        .count();
    real as f64 / attacked.len() as f64
}

/// Harmonic mean of [`poi_recall`] and [`poi_precision`].
pub fn poi_f1(reference: &[Poi], attacked: &[Poi], tolerance_m: f64) -> f64 {
    let r = poi_recall(reference, attacked, tolerance_m);
    let p = poi_precision(reference, attacked, tolerance_m);
    if r + p == 0.0 {
        0.0
    } else {
        2.0 * r * p / (r + p)
    }
}

/// Whether an inferred home lands within `tolerance_m` of the true home.
pub fn home_identified(true_home: GeoPoint, inferred: Option<GeoPoint>, tolerance_m: f64) -> bool {
    inferred.is_some_and(|h| haversine_m(true_home, h) <= tolerance_m)
}

/// Utility: mean spatial displacement in meters between the original and
/// sanitized datasets, matching traces by `(user, timestamp)`. Traces
/// the sanitizer suppressed are skipped (see [`retention`]).
pub fn mean_displacement_m(original: &Dataset, sanitized: &Dataset) -> f64 {
    let mut total = 0.0f64;
    let mut n = 0usize;
    for trail in original.trails() {
        let Some(san) = sanitized.trail(trail.user) else {
            continue;
        };
        let mut it = san.traces().iter().peekable();
        for t in trail.traces() {
            while let Some(s) = it.peek() {
                if s.timestamp < t.timestamp {
                    it.next();
                } else {
                    break;
                }
            }
            if let Some(s) = it.peek() {
                if s.timestamp == t.timestamp {
                    total += haversine_m(t.point, s.point);
                    n += 1;
                }
            }
        }
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

/// Utility: fraction of traces the sanitizer kept.
pub fn retention(original: &Dataset, sanitized: &Dataset) -> f64 {
    if original.num_traces() == 0 {
        return 1.0;
    }
    sanitized.num_traces() as f64 / original.num_traces() as f64
}

/// Quasi-identifier analysis (§II: "A combination of locations can play
/// the role of a quasi-identifier if they characterize almost uniquely
/// an individual", after Golle & Partridge): the fraction of users whose
/// (home, work) pair — coarsened to `cell_m` grid cells — is unique in
/// the dataset. A uniqueness near 1.0 means pseudonymization offers no
/// protection at that granularity.
pub fn home_work_uniqueness(
    dataset: &Dataset,
    cfg: &crate::djcluster::DjConfig,
    cell_m: f64,
) -> f64 {
    use crate::attacks::linking::fingerprints;
    use std::collections::HashMap;
    type Cell = (i64, i64);
    let prints = fingerprints(dataset, cfg);
    if prints.is_empty() {
        return 0.0;
    }
    let cell = |p: GeoPoint| {
        let s = cell_m / 111_194.93;
        ((p.lat / s).floor() as i64, (p.lon / s).floor() as i64)
    };
    let mut counts: HashMap<(Cell, Cell), usize> = HashMap::new();
    for fp in prints.values() {
        *counts.entry((cell(fp.home), cell(fp.work))).or_insert(0) += 1;
    }
    let unique = prints
        .values()
        .filter(|fp| counts[&(cell(fp.home), cell(fp.work))] == 1)
        .count();
    unique as f64 / prints.len() as f64
}

/// One row of a privacy/utility trade-off report.
#[derive(Debug, Clone, PartialEq)]
pub struct TradeoffPoint {
    /// Sanitizer description.
    pub mechanism: String,
    /// Attack POI recall after sanitization (privacy leakage).
    pub poi_recall: f64,
    /// Attack POI precision after sanitization.
    pub poi_precision: f64,
    /// Mean displacement in meters (utility loss).
    pub mean_displacement_m: f64,
    /// Trace retention (utility).
    pub retention: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gepeto_model::{MobilityTrace, Timestamp};

    fn poi(lat: f64, lon: f64) -> Poi {
        Poi {
            center: GeoPoint::new(lat, lon),
            visits: 1,
            dwell_secs: 100,
            night_secs: 0,
            traces: 10,
        }
    }

    #[test]
    fn recall_and_precision_basics() {
        let reference = vec![poi(39.90, 116.40), poi(39.95, 116.45)];
        let attacked = vec![poi(39.9001, 116.4001), poi(38.0, 115.0)];
        let r = poi_recall(&reference, &attacked, 100.0);
        let p = poi_precision(&reference, &attacked, 100.0);
        assert!((r - 0.5).abs() < 1e-9); // one of two found
        assert!((p - 0.5).abs() < 1e-9); // one of two is junk
        let f1 = poi_f1(&reference, &attacked, 100.0);
        assert!((f1 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn perfect_attack_scores_one() {
        let reference = vec![poi(39.90, 116.40)];
        assert_eq!(poi_recall(&reference, &reference, 10.0), 1.0);
        assert_eq!(poi_precision(&reference, &reference, 10.0), 1.0);
        assert_eq!(poi_f1(&reference, &reference, 10.0), 1.0);
    }

    #[test]
    fn empty_edge_cases() {
        let some = vec![poi(39.9, 116.4)];
        assert_eq!(poi_recall(&[], &some, 10.0), 0.0);
        assert_eq!(poi_precision(&some, &[], 10.0), 0.0);
        assert_eq!(poi_f1(&[], &[], 10.0), 0.0);
    }

    #[test]
    fn home_identification_tolerance() {
        let home = GeoPoint::new(39.9, 116.4);
        assert!(home_identified(
            home,
            Some(GeoPoint::new(39.9002, 116.4)),
            100.0
        ));
        assert!(!home_identified(
            home,
            Some(GeoPoint::new(39.93, 116.4)),
            100.0
        ));
        assert!(!home_identified(home, None, 100.0));
    }

    #[test]
    fn displacement_matches_known_shift() {
        let mk = |lat: f64, s| MobilityTrace::new(1, GeoPoint::new(lat, 116.4), Timestamp(s));
        let original = Dataset::from_traces(vec![mk(39.9, 0), mk(39.9, 60)]);
        // Shift every point ~111 m north.
        let shifted = Dataset::from_traces(vec![mk(39.901, 0), mk(39.901, 60)]);
        let d = mean_displacement_m(&original, &shifted);
        assert!((d - 111.2).abs() < 2.0, "{d}");
    }

    #[test]
    fn displacement_skips_suppressed_traces() {
        let mk = |lat: f64, s| MobilityTrace::new(1, GeoPoint::new(lat, 116.4), Timestamp(s));
        let original = Dataset::from_traces(vec![mk(39.9, 0), mk(39.9, 60)]);
        let pruned = Dataset::from_traces(vec![mk(39.9, 0)]);
        assert_eq!(mean_displacement_m(&original, &pruned), 0.0);
        assert!((retention(&original, &pruned) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn retention_of_empty_original_is_one() {
        assert_eq!(retention(&Dataset::new(), &Dataset::new()), 1.0);
    }

    #[test]
    fn home_work_uniqueness_separated_vs_colocated() {
        use gepeto_model::Trail;
        let cfg = crate::djcluster::DjConfig {
            radius_m: 80.0,
            min_pts: 4,
            speed_threshold_mps: 1.0,
            dup_threshold_m: 0.2,
        };
        let commuter = |user: u32, home: GeoPoint, work: GeoPoint| {
            let mut traces = Vec::new();
            for day in 0..3i64 {
                let d0 = day * 86_400;
                for (spot, hours) in [(home, [0i64, 5, 22]), (work, [9, 12, 16])] {
                    for h in hours {
                        for m in 0..8 {
                            traces.push(MobilityTrace::new(
                                user,
                                GeoPoint::new(
                                    spot.lat + (m % 3) as f64 * 3e-6,
                                    spot.lon + (m % 2) as f64 * 3e-6,
                                ),
                                Timestamp(d0 + h * 3_600 + m * 240),
                            ));
                        }
                    }
                }
            }
            Trail::new(user, traces)
        };
        // Distinct home/work pairs km apart: everyone unique.
        let spread = Dataset::from_trails((1..=4).map(|u| {
            let lat = 39.6 + f64::from(u) * 0.1;
            commuter(
                u,
                GeoPoint::new(lat, 116.4),
                GeoPoint::new(lat + 0.05, 116.5),
            )
        }));
        assert_eq!(home_work_uniqueness(&spread, &cfg, 500.0), 1.0);
        // Everyone sharing home+work building: nobody unique.
        let home = GeoPoint::new(39.9, 116.4);
        let work = GeoPoint::new(39.95, 116.45);
        let colocated = Dataset::from_trails((1..=4).map(|u| commuter(u, home, work)));
        assert_eq!(home_work_uniqueness(&colocated, &cfg, 500.0), 0.0);
        // Empty dataset.
        assert_eq!(home_work_uniqueness(&Dataset::new(), &cfg, 500.0), 0.0);
    }
}
