//! Discovering social relations (§II): "Discover social relations
//! between individuals, by considering that two individuals that are in
//! contact during a non-negligible amount of time share some kind of
//! social link (false positive may happen)."
//!
//! Two users are *in contact* when they report positions within
//! `radius_m` of each other within `time_slack_secs`. Contact seconds
//! accumulate into an edge-weighted social graph; edges below
//! `min_contact_secs` are dropped, which is the paper's own caveat about
//! false positives (strangers crossing paths briefly).

use gepeto_geo::{haversine_m, RTree};
use gepeto_model::{Dataset, UserId};
use std::collections::BTreeMap;

/// Parameters of the co-location detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SocialConfig {
    /// Maximum distance between two traces to count as contact, meters.
    pub radius_m: f64,
    /// Maximum timestamp difference between the two traces, seconds.
    pub time_slack_secs: i64,
    /// Minimum accumulated contact time for an edge to be reported —
    /// the "non-negligible amount of time" of §II.
    pub min_contact_secs: i64,
}

impl Default for SocialConfig {
    fn default() -> Self {
        Self {
            radius_m: 25.0,
            time_slack_secs: 60,
            min_contact_secs: 600,
        }
    }
}

/// An undirected social edge with its accumulated contact time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SocialEdge {
    /// Lower user id of the pair.
    pub a: UserId,
    /// Higher user id of the pair.
    pub b: UserId,
    /// Accumulated co-location time, seconds.
    pub contact_secs: i64,
}

/// The inferred social graph, edges sorted by contact time (strongest
/// first).
pub fn discover_social_links(dataset: &Dataset, cfg: &SocialConfig) -> Vec<SocialEdge> {
    // Index every trace once; query each trace's spatial neighborhood and
    // keep cross-user matches within the time slack.
    let traces: Vec<_> = dataset.to_traces();
    let items: Vec<(gepeto_model::GeoPoint, u64)> = traces
        .iter()
        .enumerate()
        .map(|(i, t)| (t.point, i as u64))
        .collect();
    let tree = RTree::bulk_load(items);

    // Contact seconds are sampled per (pair, time bucket) so dense logging
    // doesn't multi-count the same co-located minute.
    let bucket = cfg.time_slack_secs.max(1);
    let mut contact: BTreeMap<(UserId, UserId), BTreeMap<i64, ()>> = BTreeMap::new();
    for (i, t) in traces.iter().enumerate() {
        for e in tree.within_radius_m(t.point, cfg.radius_m) {
            let j = e.payload as usize;
            if j <= i {
                continue; // each unordered pair once
            }
            let o = &traces[j];
            if o.user == t.user {
                continue;
            }
            if (o.timestamp.delta(t.timestamp)).abs() > cfg.time_slack_secs {
                continue;
            }
            debug_assert!(haversine_m(t.point, o.point) <= cfg.radius_m);
            let key = if t.user < o.user {
                (t.user, o.user)
            } else {
                (o.user, t.user)
            };
            let slot = t.timestamp.secs().div_euclid(bucket);
            contact.entry(key).or_default().insert(slot, ());
        }
    }
    let mut edges: Vec<SocialEdge> = contact
        .into_iter()
        .map(|((a, b), slots)| SocialEdge {
            a,
            b,
            contact_secs: slots.len() as i64 * bucket,
        })
        .filter(|e| e.contact_secs >= cfg.min_contact_secs)
        .collect();
    edges.sort_by_key(|e| std::cmp::Reverse(e.contact_secs));
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use gepeto_model::{GeoPoint, MobilityTrace, Timestamp, Trail};

    /// Two users walking together for `secs` seconds, 10 m apart.
    fn walking_together(u1: UserId, u2: UserId, secs: i64, t0: i64) -> Vec<Trail> {
        let mk_trail = |user: UserId, off: f64| {
            let traces: Vec<MobilityTrace> = (0..secs / 10)
                .map(|i| {
                    MobilityTrace::new(
                        user,
                        GeoPoint::new(39.9 + i as f64 * 1e-5, 116.4 + off),
                        Timestamp(t0 + i * 10),
                    )
                })
                .collect();
            Trail::new(user, traces)
        };
        vec![mk_trail(u1, 0.0), mk_trail(u2, 1e-4)] // ~8.5 m apart
    }

    /// A loner far away, same time window.
    fn loner(user: UserId, t0: i64) -> Trail {
        let traces: Vec<MobilityTrace> = (0..60)
            .map(|i| MobilityTrace::new(user, GeoPoint::new(39.99, 116.49), Timestamp(t0 + i * 10)))
            .collect();
        Trail::new(user, traces)
    }

    #[test]
    fn detects_companions_and_ignores_loners() {
        let mut trails = walking_together(1, 2, 1_800, 0);
        trails.push(loner(3, 0));
        let ds = Dataset::from_trails(trails);
        let edges = discover_social_links(&ds, &SocialConfig::default());
        assert_eq!(edges.len(), 1, "{edges:?}");
        assert_eq!((edges[0].a, edges[0].b), (1, 2));
        assert!(edges[0].contact_secs >= 1_200, "{}", edges[0].contact_secs);
    }

    #[test]
    fn brief_crossings_are_filtered_as_false_positives() {
        // 2 minutes together < the 10-minute threshold.
        let ds = Dataset::from_trails(walking_together(1, 2, 120, 0));
        let edges = discover_social_links(&ds, &SocialConfig::default());
        assert!(edges.is_empty(), "{edges:?}");
        // …but show up if the curator lowers the threshold.
        let loose = SocialConfig {
            min_contact_secs: 60,
            ..SocialConfig::default()
        };
        assert_eq!(discover_social_links(&ds, &loose).len(), 1);
    }

    #[test]
    fn same_place_different_times_is_no_contact() {
        // User 2 walks the same path 2 hours later.
        let mut trails = walking_together(1, 99, 600, 0);
        trails.truncate(1); // keep only user 1
        let mut later = walking_together(2, 98, 600, 7_200);
        later.truncate(1);
        trails.extend(later);
        let ds = Dataset::from_trails(trails);
        let edges = discover_social_links(&ds, &SocialConfig::default());
        assert!(edges.is_empty(), "{edges:?}");
    }

    #[test]
    fn edges_sorted_by_strength() {
        let mut trails = walking_together(1, 2, 3_600, 0);
        trails.extend(walking_together(3, 4, 1_200, 100_000));
        let ds = Dataset::from_trails(trails);
        let edges = discover_social_links(&ds, &SocialConfig::default());
        assert_eq!(edges.len(), 2);
        assert!(edges[0].contact_secs >= edges[1].contact_secs);
        assert_eq!((edges[0].a, edges[0].b), (1, 2));
    }

    #[test]
    fn empty_dataset_has_no_links() {
        assert!(discover_social_links(&Dataset::new(), &SocialConfig::default()).is_empty());
    }
}
