//! Mobility Markov Chains (§VIII): "a MMC represents in a compact way
//! the mobility behavior of an individual and can be used to predict his
//! future locations or even to perform de-anonymization attacks"
//! (Gambs, Killijian & Núñez del Prado, *Show me how you move and I will
//! tell you who you are*, Trans. Data Privacy 2011).
//!
//! States are the individual's POIs (from [`crate::attacks::poi`]);
//! transitions are learned from the order in which the trail visits
//! them. De-anonymization matches an anonymous chain against a gallery
//! of known chains by a stationary-weighted spatial distance.

use crate::attacks::poi::{extract_pois, Poi};
use crate::djcluster::DjConfig;
use gepeto_geo::haversine_m;
use gepeto_model::{Trail, UserId};
use std::collections::BTreeMap;

/// A learned Mobility Markov Chain.
#[derive(Debug, Clone, PartialEq)]
pub struct MobilityMarkovChain {
    /// The POIs acting as states.
    pub states: Vec<Poi>,
    /// Row-stochastic transition matrix (Laplace-smoothed).
    pub transitions: Vec<Vec<f64>>,
    /// Stationary distribution (power iteration).
    pub stationary: Vec<f64>,
}

impl MobilityMarkovChain {
    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Most likely next state after `state`.
    ///
    /// # Panics
    /// If `state` is out of range.
    pub fn predict_next(&self, state: usize) -> usize {
        let row = &self.transitions[state];
        row.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .expect("non-empty transition row")
    }

    /// Probability of moving `from → to`.
    pub fn transition(&self, from: usize, to: usize) -> f64 {
        self.transitions[from][to]
    }

    /// Stationary-weighted spatial distance to another chain, in meters:
    /// for each state of `self`, the distance to the nearest state of
    /// `other`, weighted by how much time `self` spends there —
    /// symmetrized. Two chains of the same individual share POIs and
    /// score near zero; strangers' POIs are kilometers apart.
    pub fn distance(&self, other: &MobilityMarkovChain) -> f64 {
        fn one_way(a: &MobilityMarkovChain, b: &MobilityMarkovChain) -> f64 {
            a.states
                .iter()
                .zip(&a.stationary)
                .map(|(s, &w)| {
                    let nearest = b
                        .states
                        .iter()
                        .map(|t| haversine_m(s.center, t.center))
                        .fold(f64::INFINITY, f64::min);
                    w * nearest
                })
                .sum()
        }
        if self.states.is_empty() || other.states.is_empty() {
            return f64::INFINITY;
        }
        (one_way(self, other) + one_way(other, self)) / 2.0
    }
}

/// Learns the MMC of one trail: extract POIs, map each trace to the
/// nearest POI (within the clustering radius), collapse repeats into a
/// state sequence, count transitions. Returns `None` when fewer than two
/// POIs are found (no transition to learn).
pub fn learn_mmc(trail: &Trail, cfg: &DjConfig) -> Option<MobilityMarkovChain> {
    let pois = extract_pois(trail, cfg);
    learn_mmc_with_pois(trail, cfg, pois)
}

/// [`learn_mmc`] with POIs the caller already extracted.
pub fn learn_mmc_with_pois(
    trail: &Trail,
    cfg: &DjConfig,
    pois: Vec<Poi>,
) -> Option<MobilityMarkovChain> {
    if pois.len() < 2 {
        return None;
    }
    // State sequence: nearest POI within the radius, repeats collapsed.
    let mut sequence: Vec<usize> = Vec::new();
    for t in trail.traces() {
        let (best, d) = pois
            .iter()
            .enumerate()
            .map(|(i, p)| (i, haversine_m(t.point, p.center)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())?;
        if d <= cfg.radius_m * 2.0 && sequence.last() != Some(&best) {
            sequence.push(best);
        }
    }
    let n = pois.len();
    // Laplace-smoothed transition counts.
    let mut counts = vec![vec![1.0f64; n]; n];
    for w in sequence.windows(2) {
        counts[w[0]][w[1]] += 1.0;
    }
    let transitions: Vec<Vec<f64>> = counts
        .into_iter()
        .map(|row| {
            let total: f64 = row.iter().sum();
            row.into_iter().map(|c| c / total).collect()
        })
        .collect();
    let stationary = stationary_distribution(&transitions);
    Some(MobilityMarkovChain {
        states: pois,
        transitions,
        stationary,
    })
}

/// Power iteration for the stationary distribution of a row-stochastic
/// matrix.
fn stationary_distribution(p: &[Vec<f64>]) -> Vec<f64> {
    let n = p.len();
    let mut pi = vec![1.0 / n as f64; n];
    for _ in 0..200 {
        let mut next = vec![0.0; n];
        for (i, &w) in pi.iter().enumerate() {
            for (j, &pij) in p[i].iter().enumerate() {
                next[j] += w * pij;
            }
        }
        let diff: f64 = next.iter().zip(&pi).map(|(a, b)| (a - b).abs()).sum();
        pi = next;
        if diff < 1e-12 {
            break;
        }
    }
    pi
}

/// The de-anonymization attack: rank every known user's chain by
/// distance to the anonymous `target` chain, closest first.
pub fn deanonymize(
    gallery: &BTreeMap<UserId, MobilityMarkovChain>,
    target: &MobilityMarkovChain,
) -> Vec<(UserId, f64)> {
    let mut ranked: Vec<(UserId, f64)> = gallery
        .iter()
        .map(|(&u, mmc)| (u, mmc.distance(target)))
        .collect();
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use gepeto_model::{Dataset, GeoPoint, MobilityTrace, Timestamp};

    fn commuting_trail(user: UserId, home: GeoPoint, work: GeoPoint, days: i64) -> Trail {
        let mut traces = Vec::new();
        for day in 0..days {
            let d0 = day * 86_400;
            for (spot, hours) in [(home, [0i64, 5, 22]), (work, [9, 12, 16])] {
                for h in hours {
                    for m in 0..8 {
                        traces.push(MobilityTrace::new(
                            user,
                            GeoPoint::new(
                                spot.lat + (m % 3) as f64 * 3e-6,
                                spot.lon + (m % 2) as f64 * 3e-6,
                            ),
                            Timestamp(d0 + h * 3_600 + m * 240),
                        ));
                    }
                }
            }
        }
        Trail::new(user, traces)
    }

    fn cfg() -> DjConfig {
        DjConfig {
            radius_m: 80.0,
            min_pts: 4,
            speed_threshold_mps: 1.0,
            dup_threshold_m: 0.2,
        }
    }

    #[test]
    fn learns_a_two_state_chain() {
        let trail = commuting_trail(
            1,
            GeoPoint::new(39.9, 116.4),
            GeoPoint::new(39.95, 116.45),
            4,
        );
        let mmc = learn_mmc(&trail, &cfg()).expect("chain learned");
        assert!(mmc.num_states() >= 2);
        // Rows are stochastic.
        for row in &mmc.transitions {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
        // Stationary sums to 1.
        let s: f64 = mmc.stationary.iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn commuter_alternates_states() {
        let trail = commuting_trail(
            1,
            GeoPoint::new(39.9, 116.4),
            GeoPoint::new(39.95, 116.45),
            5,
        );
        let mmc = learn_mmc(&trail, &cfg()).unwrap();
        // From any of the two main states, the predicted next state is the
        // other one (the commute dominates the counts).
        let a = 0;
        let b = mmc.predict_next(a);
        assert_ne!(a, b);
        assert_eq!(mmc.predict_next(b), a);
    }

    #[test]
    fn same_user_chains_are_close_different_users_far() {
        let home1 = GeoPoint::new(39.90, 116.40);
        let work1 = GeoPoint::new(39.95, 116.45);
        let home2 = GeoPoint::new(39.80, 116.30);
        let work2 = GeoPoint::new(39.75, 116.55);
        let cfg = cfg();
        let t1a = commuting_trail(1, home1, work1, 4);
        let t1b = commuting_trail(1, home1, work1, 3); // same places, new data
        let t2 = commuting_trail(2, home2, work2, 4);
        let m1a = learn_mmc(&t1a, &cfg).unwrap();
        let m1b = learn_mmc(&t1b, &cfg).unwrap();
        let m2 = learn_mmc(&t2, &cfg).unwrap();
        assert!(m1a.distance(&m1b) < 100.0, "{}", m1a.distance(&m1b));
        assert!(m1a.distance(&m2) > 1_000.0, "{}", m1a.distance(&m2));
    }

    #[test]
    fn deanonymization_ranks_the_true_user_first() {
        let cfg = cfg();
        let users = [
            (
                1,
                GeoPoint::new(39.90, 116.40),
                GeoPoint::new(39.95, 116.45),
            ),
            (
                2,
                GeoPoint::new(39.80, 116.30),
                GeoPoint::new(39.75, 116.55),
            ),
            (
                3,
                GeoPoint::new(40.00, 116.20),
                GeoPoint::new(40.05, 116.25),
            ),
        ];
        let gallery: BTreeMap<UserId, MobilityMarkovChain> = users
            .iter()
            .map(|&(u, h, w)| (u, learn_mmc(&commuting_trail(u, h, w, 4), &cfg).unwrap()))
            .collect();
        // An "anonymous" chain from fresh data of user 2.
        let anon = learn_mmc(&commuting_trail(99, users[1].1, users[1].2, 3), &cfg).unwrap();
        let ranked = deanonymize(&gallery, &anon);
        assert_eq!(ranked[0].0, 2, "{ranked:?}");
        assert!(ranked[0].1 < ranked[1].1);
    }

    #[test]
    fn single_poi_trail_learns_nothing() {
        // A trail that never leaves home: one POI → no chain.
        let home = GeoPoint::new(39.9, 116.4);
        let traces: Vec<MobilityTrace> = (0..200)
            .map(|i| {
                MobilityTrace::new(
                    1,
                    GeoPoint::new(home.lat + (i % 3) as f64 * 3e-6, home.lon),
                    Timestamp(i * 300),
                )
            })
            .collect();
        let trail = Trail::new(1, traces);
        assert!(learn_mmc(&trail, &cfg()).is_none());
    }

    #[test]
    fn distance_to_empty_chain_is_infinite() {
        let trail = commuting_trail(
            1,
            GeoPoint::new(39.9, 116.4),
            GeoPoint::new(39.95, 116.45),
            4,
        );
        let mmc = learn_mmc(&trail, &cfg()).unwrap();
        let empty = MobilityMarkovChain {
            states: vec![],
            transitions: vec![],
            stationary: vec![],
        };
        assert_eq!(mmc.distance(&empty), f64::INFINITY);
    }

    #[test]
    fn works_from_dataset_split() {
        // End-to-end: split a dataset in two halves by time, learn on one,
        // de-anonymize the other.
        let cfg = cfg();
        let mut gallery = BTreeMap::new();
        let mut targets = Vec::new();
        for (u, lat) in [(1u32, 39.9), (2, 39.7), (3, 40.1)] {
            let home = GeoPoint::new(lat, 116.4);
            let work = GeoPoint::new(lat + 0.05, 116.5);
            let full = commuting_trail(u, home, work, 6);
            let traces = full.into_traces();
            let mid = traces.len() / 2;
            let train = Trail::new(u, traces[..mid].to_vec());
            let test = Trail::new(u, traces[mid..].to_vec());
            gallery.insert(u, learn_mmc(&train, &cfg).unwrap());
            targets.push((u, learn_mmc(&test, &cfg).unwrap()));
        }
        let _ = Dataset::new();
        for (truth, target) in targets {
            let ranked = deanonymize(&gallery, &target);
            assert_eq!(ranked[0].0, truth);
        }
    }
}
