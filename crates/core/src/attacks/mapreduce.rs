//! Inference attacks **as MapReduce jobs** — the integration §VIII
//! announces: "In the future we aim at integrating other inference
//! techniques within the MapReduced framework of GEPETO. In particular
//! we want to develop algorithms for learning a mobility model out of
//! the mobility traces of an individual such as Mobility Markov Chains."
//!
//! Per-user attacks parallelize naturally in MapReduce: the map phase
//! routes every trace to its user's reducer (identity map keyed by user,
//! the grouping the shuffle provides for free), and each reducer runs
//! the whole per-user pipeline — POI extraction, then MMC learning — on
//! its user's complete trail.

use crate::attacks::mmc::{learn_mmc, MobilityMarkovChain};
use crate::attacks::poi::{extract_pois, Poi};
use crate::djcluster::DjConfig;
use gepeto_mapred::{
    Cluster, Dfs, DistributedCache, Emitter, JobError, JobStats, MapReduceJob, Mapper, Reducer,
    TaskContext,
};
use gepeto_model::{MobilityTrace, Trail, UserId};
use std::collections::BTreeMap;
use std::sync::Arc;

const DJ_CONFIG_CACHE_KEY: &str = "attack.dj-config";

/// Identity mapper keyed by user id: the shuffle assembles each user's
/// complete trail at one reducer.
#[derive(Clone, Default)]
pub struct PerUserMapper;

impl Mapper<MobilityTrace> for PerUserMapper {
    type KOut = UserId;
    type VOut = MobilityTrace;

    fn map(
        &mut self,
        _offset: u64,
        value: &MobilityTrace,
        out: &mut Emitter<UserId, MobilityTrace>,
    ) {
        out.emit(value.user, *value);
    }
}

/// Reducer running POI extraction on one user's assembled trail.
#[derive(Clone)]
pub struct PoiReducer {
    cfg: Arc<DjConfig>,
}

impl Reducer<UserId, MobilityTrace> for PoiReducer {
    type KOut = UserId;
    type VOut = Vec<Poi>;

    fn setup(&mut self, ctx: &TaskContext<'_>) {
        self.cfg = ctx.cache.expect(DJ_CONFIG_CACHE_KEY);
    }

    fn reduce(
        &mut self,
        key: &UserId,
        values: &[MobilityTrace],
        out: &mut Emitter<UserId, Vec<Poi>>,
    ) {
        let trail = Trail::new(*key, values.to_vec());
        out.emit(*key, extract_pois(&trail, &self.cfg));
    }
}

/// Reducer learning one user's Mobility Markov Chain; users with fewer
/// than two POIs are silently skipped (no chain to learn).
#[derive(Clone)]
pub struct MmcReducer {
    cfg: Arc<DjConfig>,
}

impl Reducer<UserId, MobilityTrace> for MmcReducer {
    type KOut = UserId;
    type VOut = MobilityMarkovChain;

    fn setup(&mut self, ctx: &TaskContext<'_>) {
        self.cfg = ctx.cache.expect(DJ_CONFIG_CACHE_KEY);
    }

    fn reduce(
        &mut self,
        key: &UserId,
        values: &[MobilityTrace],
        out: &mut Emitter<UserId, MobilityMarkovChain>,
    ) {
        let trail = Trail::new(*key, values.to_vec());
        if let Some(mmc) = learn_mmc(&trail, &self.cfg) {
            out.emit(*key, mmc);
        }
    }
}

/// Runs POI extraction for every user as one MapReduce job.
pub fn mapreduce_extract_pois(
    cluster: &Cluster,
    dfs: &Dfs<MobilityTrace>,
    input: &str,
    cfg: &DjConfig,
) -> Result<(BTreeMap<UserId, Vec<Poi>>, JobStats), JobError> {
    let cache = DistributedCache::new().with(DJ_CONFIG_CACHE_KEY, cfg.clone());
    let result = MapReduceJob::new(
        "poi-extraction",
        cluster,
        dfs,
        input,
        PerUserMapper,
        PoiReducer {
            cfg: Arc::new(cfg.clone()),
        },
    )
    .cache(cache)
    .pair_bytes(|_, t| t.approx_plt_bytes())
    .run()?;
    Ok((result.output.into_iter().collect(), result.stats))
}

/// Learns every user's MMC as one MapReduce job — the §VIII gallery an
/// attacker de-anonymizes against.
pub fn mapreduce_learn_mmcs(
    cluster: &Cluster,
    dfs: &Dfs<MobilityTrace>,
    input: &str,
    cfg: &DjConfig,
) -> Result<(BTreeMap<UserId, MobilityMarkovChain>, JobStats), JobError> {
    let cache = DistributedCache::new().with(DJ_CONFIG_CACHE_KEY, cfg.clone());
    let result = MapReduceJob::new(
        "mmc-learning",
        cluster,
        dfs,
        input,
        PerUserMapper,
        MmcReducer {
            cfg: Arc::new(cfg.clone()),
        },
    )
    .cache(cache)
    .pair_bytes(|_, t| t.approx_plt_bytes())
    .run()?;
    Ok((result.output.into_iter().collect(), result.stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfs_io::{put_dataset, trace_dfs};
    use gepeto_model::{Dataset, GeoPoint, Timestamp};

    fn commuter(user: UserId, lat: f64) -> Trail {
        let home = GeoPoint::new(lat, 116.40);
        let work = GeoPoint::new(lat + 0.05, 116.48);
        let mut traces = Vec::new();
        for day in 0..4i64 {
            let d0 = day * 86_400;
            for (spot, hours) in [(home, [0i64, 5, 22]), (work, [9, 12, 16])] {
                for h in hours {
                    for m in 0..8 {
                        traces.push(MobilityTrace::new(
                            user,
                            GeoPoint::new(
                                spot.lat + (m % 3) as f64 * 3e-6,
                                spot.lon + (m % 2) as f64 * 3e-6,
                            ),
                            Timestamp(d0 + h * 3_600 + m * 240),
                        ));
                    }
                }
            }
        }
        Trail::new(user, traces)
    }

    fn cfg() -> DjConfig {
        DjConfig {
            radius_m: 80.0,
            min_pts: 4,
            speed_threshold_mps: 1.0,
            dup_threshold_m: 0.2,
        }
    }

    fn setup() -> (Cluster, Dfs<MobilityTrace>, Dataset) {
        let ds = Dataset::from_trails((1..=4).map(|u| commuter(u, 39.7 + f64::from(u) * 0.08)));
        let cluster = Cluster::local(3, 2);
        let mut dfs = trace_dfs(&cluster, 8 * 1024); // several chunks
        put_dataset(&mut dfs, "d", &ds).unwrap();
        (cluster, dfs, ds)
    }

    #[test]
    fn mapreduce_pois_match_sequential_per_user() {
        let (cluster, dfs, ds) = setup();
        let (mr, stats) = mapreduce_extract_pois(&cluster, &dfs, "d", &cfg()).unwrap();
        let seq = crate::attacks::extract_pois_dataset(&ds, &cfg());
        assert_eq!(mr.len(), 4);
        for (user, pois) in &seq {
            assert_eq!(&mr[user], pois, "user {user}");
        }
        assert!(stats.map_tasks > 1, "want parallel map phase");
        assert!(stats.reduce_tasks >= 1);
    }

    #[test]
    fn mapreduce_mmcs_match_sequential_per_user() {
        let (cluster, dfs, ds) = setup();
        let (mr, _) = mapreduce_learn_mmcs(&cluster, &dfs, "d", &cfg()).unwrap();
        assert_eq!(mr.len(), 4);
        for trail in ds.trails() {
            let seq = learn_mmc(trail, &cfg()).unwrap();
            assert_eq!(mr[&trail.user], seq, "user {}", trail.user);
        }
    }

    #[test]
    fn mapreduce_gallery_deanonymizes() {
        // End to end: learn the gallery with MapReduce, attack an
        // anonymous chain learned locally from fresh data of user 3.
        let (cluster, dfs, _) = setup();
        let (gallery, _) = mapreduce_learn_mmcs(&cluster, &dfs, "d", &cfg()).unwrap();
        let fresh = commuter(99, 39.7 + 3.0 * 0.08); // user 3's geography
        let anon = learn_mmc(&fresh, &cfg()).unwrap();
        let ranked = crate::attacks::mmc::deanonymize(&gallery, &anon);
        assert_eq!(ranked[0].0, 3, "{ranked:?}");
    }

    #[test]
    fn users_without_chains_are_skipped() {
        // One commuter plus one stationary user (single POI → no MMC).
        let stationary = Trail::new(
            9,
            (0..200)
                .map(|i| {
                    MobilityTrace::new(
                        9,
                        GeoPoint::new(39.9 + (i % 3) as f64 * 3e-6, 116.4),
                        Timestamp(i * 300),
                    )
                })
                .collect(),
        );
        let ds = Dataset::from_trails(vec![commuter(1, 39.8), stationary]);
        let cluster = Cluster::local(2, 2);
        let mut dfs = trace_dfs(&cluster, 64 * 1024);
        put_dataset(&mut dfs, "d", &ds).unwrap();
        let (mmcs, _) = mapreduce_learn_mmcs(&cluster, &dfs, "d", &cfg()).unwrap();
        assert!(mmcs.contains_key(&1));
        assert!(!mmcs.contains_key(&9));
    }
}
