//! Semantic labeling of mobility (§II): "Learn the semantics of the
//! mobility behavior of an individual … some mobility models such as
//! [semantic trajectories] do not only represent the evolution of the
//! movements of an individual over time but they also attach a semantic
//! label to the visited places."
//!
//! POIs are labeled **Home / Work / Leisure** from their diurnal dwell
//! profile, and a trail becomes a *semantic trajectory*: the sequence of
//! labeled visits with their time intervals — precisely the "clearer
//! understanding about the interests of an individual" the paper warns
//! an adversary derives.

use crate::attacks::poi::{extract_pois, Poi};
use crate::djcluster::DjConfig;
use gepeto_geo::haversine_m;
use gepeto_model::{Timestamp, Trail};

/// The semantic class of a place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoiLabel {
    /// Dominant night-time dwell.
    Home,
    /// Dominant working-hours dwell, away from home.
    Work,
    /// Everything else the individual visits repeatedly.
    Leisure,
}

impl std::fmt::Display for PoiLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PoiLabel::Home => "home",
            PoiLabel::Work => "work",
            PoiLabel::Leisure => "leisure",
        };
        f.write_str(s)
    }
}

/// Labels a POI list: the largest night dweller is Home, the largest
/// day dweller ≥ 200 m from home is Work, the rest Leisure.
pub fn label_pois(pois: &[Poi]) -> Vec<(Poi, PoiLabel)> {
    if pois.is_empty() {
        return Vec::new();
    }
    let home_idx = pois
        .iter()
        .enumerate()
        .max_by_key(|(_, p)| (p.night_secs, p.dwell_secs))
        .map(|(i, _)| i)
        .unwrap();
    let home_center = pois[home_idx].center;
    let work_idx = pois
        .iter()
        .enumerate()
        .filter(|(i, p)| *i != home_idx && haversine_m(p.center, home_center) > 200.0)
        .max_by_key(|(_, p)| p.dwell_secs - p.night_secs)
        .map(|(i, _)| i);
    pois.iter()
        .enumerate()
        .map(|(i, p)| {
            let label = if i == home_idx {
                PoiLabel::Home
            } else if Some(i) == work_idx {
                PoiLabel::Work
            } else {
                PoiLabel::Leisure
            };
            (p.clone(), label)
        })
        .collect()
}

/// One visit of a semantic trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct SemanticVisit {
    /// Which labeled place.
    pub label: PoiLabel,
    /// Index into the labeled-POI list.
    pub poi: usize,
    /// Visit start.
    pub start: Timestamp,
    /// Visit duration in seconds.
    pub duration_secs: i64,
}

/// A trail rewritten as labeled visits.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SemanticTrajectory {
    /// Visits in time order.
    pub visits: Vec<SemanticVisit>,
}

impl SemanticTrajectory {
    /// Total time attributed to `label`, seconds.
    pub fn time_at(&self, label: PoiLabel) -> i64 {
        self.visits
            .iter()
            .filter(|v| v.label == label)
            .map(|v| v.duration_secs)
            .sum()
    }
}

/// Extracts the semantic trajectory of a trail: POIs via DJ-Cluster,
/// labels via [`label_pois`], then a pass over the traces grouping
/// consecutive same-POI presence (gaps > 30 min close a visit).
pub fn semantic_trajectory(
    trail: &Trail,
    cfg: &DjConfig,
) -> (Vec<(Poi, PoiLabel)>, SemanticTrajectory) {
    let labeled = label_pois(&extract_pois(trail, cfg));
    let mut trajectory = SemanticTrajectory::default();
    if labeled.is_empty() {
        return (labeled, trajectory);
    }
    let mut current: Option<(usize, Timestamp, Timestamp)> = None; // (poi, start, last)
    for t in trail.traces() {
        let nearest = labeled
            .iter()
            .enumerate()
            .map(|(i, (p, _))| (i, haversine_m(t.point, p.center)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .filter(|(_, d)| *d <= cfg.radius_m * 2.0)
            .map(|(i, _)| i);
        match (nearest, &mut current) {
            (Some(i), Some((poi, start, last)))
                if *poi == i && t.timestamp.delta(*last) <= 1_800 =>
            {
                *last = t.timestamp;
                let _ = start;
            }
            (Some(i), cur) => {
                if let Some((poi, start, last)) = cur.take() {
                    push_visit(&mut trajectory, &labeled, poi, start, last);
                }
                *cur = Some((i, t.timestamp, t.timestamp));
            }
            (None, cur) => {
                if let Some((poi, start, last)) = cur.take() {
                    push_visit(&mut trajectory, &labeled, poi, start, last);
                }
            }
        }
    }
    if let Some((poi, start, last)) = current {
        push_visit(&mut trajectory, &labeled, poi, start, last);
    }
    (labeled, trajectory)
}

fn push_visit(
    trajectory: &mut SemanticTrajectory,
    labeled: &[(Poi, PoiLabel)],
    poi: usize,
    start: Timestamp,
    last: Timestamp,
) {
    trajectory.visits.push(SemanticVisit {
        label: labeled[poi].1,
        poi,
        start,
        duration_secs: last.delta(start),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gepeto_model::{GeoPoint, MobilityTrace};

    fn commuter(days: i64) -> Trail {
        let home = GeoPoint::new(39.90, 116.40);
        let work = GeoPoint::new(39.95, 116.45);
        let gym = GeoPoint::new(39.91, 116.38);
        let mut traces = Vec::new();
        for day in 0..days {
            let d0 = day * 86_400;
            for (spot, hours) in [
                (home, vec![0i64, 5, 22, 23]),
                (work, vec![9, 12, 16]),
                (gym, vec![18]),
            ] {
                for h in hours {
                    for m in 0..8 {
                        traces.push(MobilityTrace::new(
                            1,
                            GeoPoint::new(
                                spot.lat + (m % 3) as f64 * 3e-6,
                                spot.lon + (m % 2) as f64 * 3e-6,
                            ),
                            Timestamp(d0 + h * 3_600 + m * 240),
                        ));
                    }
                }
            }
        }
        Trail::new(1, traces)
    }

    fn cfg() -> DjConfig {
        DjConfig {
            radius_m: 80.0,
            min_pts: 4,
            speed_threshold_mps: 1.0,
            dup_threshold_m: 0.2,
        }
    }

    #[test]
    fn labels_home_work_leisure() {
        let (labeled, _) = semantic_trajectory(&commuter(5), &cfg());
        assert!(labeled.len() >= 3, "{}", labeled.len());
        let homes: Vec<&(Poi, PoiLabel)> = labeled
            .iter()
            .filter(|(_, l)| *l == PoiLabel::Home)
            .collect();
        let works: Vec<&(Poi, PoiLabel)> = labeled
            .iter()
            .filter(|(_, l)| *l == PoiLabel::Work)
            .collect();
        assert_eq!(homes.len(), 1);
        assert_eq!(works.len(), 1);
        assert!(
            haversine_m(homes[0].0.center, GeoPoint::new(39.90, 116.40)) < 100.0,
            "home mislabeled at {:?}",
            homes[0].0.center
        );
        assert!(
            haversine_m(works[0].0.center, GeoPoint::new(39.95, 116.45)) < 100.0,
            "work mislabeled at {:?}",
            works[0].0.center
        );
        assert!(labeled.iter().any(|(_, l)| *l == PoiLabel::Leisure));
    }

    #[test]
    fn trajectory_orders_visits_in_time() {
        let (_, traj) = semantic_trajectory(&commuter(3), &cfg());
        assert!(traj.visits.len() >= 6, "{}", traj.visits.len());
        for w in traj.visits.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
    }

    #[test]
    fn home_time_dominates_for_a_commuter() {
        let (_, traj) = semantic_trajectory(&commuter(5), &cfg());
        let home = traj.time_at(PoiLabel::Home);
        let work = traj.time_at(PoiLabel::Work);
        let leisure = traj.time_at(PoiLabel::Leisure);
        assert!(home > work, "home {home} vs work {work}");
        assert!(work > leisure, "work {work} vs leisure {leisure}");
    }

    #[test]
    fn empty_trail_yields_empty_semantics() {
        let (labeled, traj) = semantic_trajectory(&Trail::empty(1), &cfg());
        assert!(labeled.is_empty());
        assert!(traj.visits.is_empty());
        assert_eq!(traj.time_at(PoiLabel::Home), 0);
    }

    #[test]
    fn label_display() {
        assert_eq!(PoiLabel::Home.to_string(), "home");
        assert_eq!(PoiLabel::Work.to_string(), "work");
        assert_eq!(PoiLabel::Leisure.to_string(), "leisure");
    }
}
