//! The linking attack (§II): "associate the movements of Alice's car
//! contained in dataset A with the tracking of her cell phone locations
//! recorded in another dataset B". The home/work location pair acts as a
//! quasi-identifier (Golle & Partridge, *On the anonymity of home/work
//! location pairs*): two pseudonyms whose inferred home **and** work
//! coincide almost certainly belong to the same individual.

use crate::attacks::poi::{extract_pois, infer_home, infer_work};
use crate::djcluster::DjConfig;
use gepeto_geo::haversine_m;
use gepeto_model::{Dataset, GeoPoint, UserId};
use std::collections::BTreeMap;

/// The home/work fingerprint of one pseudonym.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fingerprint {
    /// Inferred home location.
    pub home: GeoPoint,
    /// Inferred work location (may equal home when only one POI exists).
    pub work: GeoPoint,
}

/// One proposed link between a pseudonym of dataset A and one of B.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkResult {
    /// Pseudonym in the first dataset.
    pub user_a: UserId,
    /// Best-matching pseudonym in the second dataset.
    pub user_b: UserId,
    /// Match score in meters (home distance + work distance); lower is a
    /// stronger link.
    pub score_m: f64,
}

/// Computes each user's home/work fingerprint; users with no usable POIs
/// are skipped.
pub fn fingerprints(dataset: &Dataset, cfg: &DjConfig) -> BTreeMap<UserId, Fingerprint> {
    let trails: Vec<_> = dataset.trails().collect();
    gepeto_pool::global()
        .map_indexed(trails.len(), |i| {
            let trail = &trails[i];
            let pois = extract_pois(trail, cfg);
            let home = infer_home(&pois)?;
            let work = infer_work(&pois, home).unwrap_or(home);
            Some((
                trail.user,
                Fingerprint {
                    home: home.center,
                    work: work.center,
                },
            ))
        })
        .into_iter()
        .flatten()
        .collect()
}

/// Links every pseudonym of `a` to its best-matching pseudonym of `b`
/// by home/work fingerprint proximity, sorted by score (strongest link
/// first).
pub fn link_datasets(a: &Dataset, b: &Dataset, cfg: &DjConfig) -> Vec<LinkResult> {
    let fa = fingerprints(a, cfg);
    let fb = fingerprints(b, cfg);
    let mut links: Vec<LinkResult> = fa
        .iter()
        .filter_map(|(&ua, pa)| {
            let (ub, score) = fb
                .iter()
                .map(|(&ub, pb)| {
                    (
                        ub,
                        haversine_m(pa.home, pb.home) + haversine_m(pa.work, pb.work),
                    )
                })
                .min_by(|x, y| x.1.partial_cmp(&y.1).unwrap())?;
            Some(LinkResult {
                user_a: ua,
                user_b: ub,
                score_m: score,
            })
        })
        .collect();
    links.sort_by(|x, y| x.score_m.partial_cmp(&y.score_m).unwrap());
    links
}

/// Fraction of links that are correct under an id-preserving ground
/// truth (same numeric user id in both datasets).
pub fn linking_accuracy(links: &[LinkResult]) -> f64 {
    if links.is_empty() {
        return 0.0;
    }
    links.iter().filter(|l| l.user_a == l.user_b).count() as f64 / links.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use gepeto_model::{MobilityTrace, Timestamp, Trail};

    fn commuting_trail(user: UserId, home: GeoPoint, work: GeoPoint, days: i64, t0: i64) -> Trail {
        let mut traces = Vec::new();
        for day in 0..days {
            let d0 = t0 + day * 86_400;
            for (spot, hours) in [(home, [0i64, 5, 22]), (work, [9, 12, 16])] {
                for h in hours {
                    for m in 0..8 {
                        traces.push(MobilityTrace::new(
                            user,
                            GeoPoint::new(
                                spot.lat + (m % 3) as f64 * 3e-6,
                                spot.lon + (m % 2) as f64 * 3e-6,
                            ),
                            Timestamp(d0 + h * 3_600 + m * 240),
                        ));
                    }
                }
            }
        }
        Trail::new(user, traces)
    }

    fn cfg() -> DjConfig {
        DjConfig {
            radius_m: 80.0,
            min_pts: 4,
            speed_threshold_mps: 1.0,
            dup_threshold_m: 0.2,
        }
    }

    fn places(u: UserId) -> (GeoPoint, GeoPoint) {
        let lat = 39.7 + f64::from(u) * 0.08;
        (
            GeoPoint::new(lat, 116.40),
            GeoPoint::new(lat + 0.04, 116.48),
        )
    }

    #[test]
    fn links_users_across_datasets() {
        let cfg = cfg();
        // Dataset A: days 0-3; dataset B: the same people, days 10-13
        // (e.g. car GPS vs phone records).
        let a = Dataset::from_trails((1..=4).map(|u| {
            let (h, w) = places(u);
            commuting_trail(u, h, w, 3, 0)
        }));
        let b = Dataset::from_trails((1..=4).map(|u| {
            let (h, w) = places(u);
            commuting_trail(u, h, w, 3, 10 * 86_400)
        }));
        let links = link_datasets(&a, &b, &cfg);
        assert_eq!(links.len(), 4);
        assert_eq!(linking_accuracy(&links), 1.0, "{links:?}");
        for l in &links {
            assert!(l.score_m < 100.0, "{l:?}");
        }
    }

    #[test]
    fn pseudonymization_does_not_stop_the_attack() {
        // Dataset B under fresh pseudonyms (u + 100): the attack still
        // finds the right person — the paper's §II point that
        // pseudonymization is insufficient.
        let cfg = cfg();
        let a = Dataset::from_trails((1..=3).map(|u| {
            let (h, w) = places(u);
            commuting_trail(u, h, w, 3, 0)
        }));
        let b = Dataset::from_trails((1..=3).map(|u| {
            let (h, w) = places(u);
            commuting_trail(u + 100, h, w, 3, 10 * 86_400)
        }));
        let links = link_datasets(&a, &b, &cfg);
        for l in &links {
            assert_eq!(l.user_b, l.user_a + 100, "{l:?}");
        }
    }

    #[test]
    fn empty_datasets_produce_no_links() {
        let links = link_datasets(&Dataset::new(), &Dataset::new(), &cfg());
        assert!(links.is_empty());
        assert_eq!(linking_accuracy(&links), 0.0);
    }

    #[test]
    fn fingerprints_skip_poi_less_users() {
        // A user with 3 isolated traces yields no POI, hence no
        // fingerprint.
        let sparse = Trail::new(
            9,
            (0..3)
                .map(|i| {
                    MobilityTrace::new(
                        9,
                        GeoPoint::new(39.0 + i as f64, 116.0),
                        Timestamp(i * 10_000),
                    )
                })
                .collect(),
        );
        let ds = Dataset::from_trails(vec![sparse]);
        assert!(fingerprints(&ds, &cfg()).is_empty());
    }
}
