//! POI extraction: DJ-Cluster over one individual's preprocessed trail;
//! each resulting cluster is a place the individual demonstrably spends
//! time at (§II: home, work, "a sport center, theater or the headquarters
//! of a political party").

use crate::djcluster::{sequential_djcluster, sequential_preprocess, DjConfig};
use gepeto_model::{Dataset, GeoPoint, Trail, UserId};
use std::collections::BTreeMap;

/// A point of interest inferred for one individual.
#[derive(Debug, Clone, PartialEq)]
pub struct Poi {
    /// Cluster centroid.
    pub center: GeoPoint,
    /// Number of distinct visits (in-cluster time runs split at > 30 min
    /// gaps).
    pub visits: usize,
    /// Total dwell time across visits, seconds.
    pub dwell_secs: i64,
    /// Dwell seconds in the 22:00–06:00 band — the home-detection signal.
    pub night_secs: i64,
    /// Number of traces in the cluster.
    pub traces: usize,
}

/// Extracts the POIs of one trail: preprocess, DJ-Cluster, summarize.
/// Sorted by total dwell time, longest first.
pub fn extract_pois(trail: &Trail, cfg: &DjConfig) -> Vec<Poi> {
    let single = Dataset::from_trails(vec![trail.clone()]);
    let pre = sequential_preprocess(&single, cfg);
    let traces = pre.to_traces();
    let clustering = sequential_djcluster(&traces, cfg);
    let mut pois: Vec<Poi> = clustering
        .clusters
        .iter()
        .map(|cluster| summarize_cluster(cluster))
        .collect();
    pois.sort_by_key(|p| std::cmp::Reverse(p.dwell_secs));
    pois
}

/// POIs of every user in the dataset, computed in parallel.
pub fn extract_pois_dataset(dataset: &Dataset, cfg: &DjConfig) -> BTreeMap<UserId, Vec<Poi>> {
    let trails: Vec<&Trail> = dataset.trails().collect();
    gepeto_pool::global()
        .map_indexed(trails.len(), |i| {
            (trails[i].user, extract_pois(trails[i], cfg))
        })
        .into_iter()
        .collect()
}

fn summarize_cluster(cluster: &[gepeto_model::MobilityTrace]) -> Poi {
    let n = cluster.len().max(1);
    let center = GeoPoint::new(
        cluster.iter().map(|t| t.point.lat).sum::<f64>() / n as f64,
        cluster.iter().map(|t| t.point.lon).sum::<f64>() / n as f64,
    );
    let mut times: Vec<i64> = cluster.iter().map(|t| t.timestamp.secs()).collect();
    times.sort_unstable();
    let mut visits = 0usize;
    let mut dwell = 0i64;
    let mut night = 0i64;
    let mut run_start = None;
    let mut prev = None;
    for &t in &times {
        match prev {
            Some(p) if t - p <= 1_800 => {
                dwell += t - p;
                if is_night(p) || is_night(t) {
                    night += t - p;
                }
            }
            _ => {
                visits += 1;
                run_start = Some(t);
            }
        }
        prev = Some(t);
    }
    let _ = run_start;
    Poi {
        center,
        visits,
        dwell_secs: dwell,
        night_secs: night,
        traces: cluster.len(),
    }
}

fn is_night(unix_secs: i64) -> bool {
    let hour = unix_secs.rem_euclid(86_400) / 3_600;
    !(6..22).contains(&hour)
}

/// The home heuristic: the POI with the most night-time dwell (falls
/// back to total dwell when no night data exists).
pub fn infer_home(pois: &[Poi]) -> Option<&Poi> {
    if pois.is_empty() {
        return None;
    }
    let by_night = pois.iter().max_by_key(|p| p.night_secs)?;
    if by_night.night_secs > 0 {
        Some(by_night)
    } else {
        pois.iter().max_by_key(|p| p.dwell_secs)
    }
}

/// The work heuristic: the heaviest-dwell day-time POI that is not home.
pub fn infer_work<'a>(pois: &'a [Poi], home: &Poi) -> Option<&'a Poi> {
    pois.iter()
        .filter(|p| gepeto_geo::haversine_m(p.center, home.center) > 200.0)
        .max_by_key(|p| p.dwell_secs - p.night_secs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gepeto_model::{MobilityTrace, Timestamp};

    /// A trail dwelling at home every night and work every day.
    fn commuter_trail() -> Trail {
        let home = GeoPoint::new(39.90, 116.40);
        let work = GeoPoint::new(39.95, 116.45);
        let mut traces = Vec::new();
        // 3 days: home 22:00–06:00, work 09:00–17:00 (sparse logging while
        // dwelling + a fast commute that preprocessing throws away).
        for day in 0..3i64 {
            let d0 = day * 86_400;
            for h in [22, 23, 0, 1, 5] {
                let base = if h >= 22 { d0 } else { d0 + 86_400 };
                for m in 0..6 {
                    traces.push(MobilityTrace::new(
                        7,
                        jitter(home, m),
                        Timestamp(base + h * 3_600 + m * 300),
                    ));
                }
            }
            for h in [9, 12, 16] {
                for m in 0..6 {
                    traces.push(MobilityTrace::new(
                        7,
                        jitter(work, m),
                        Timestamp(d0 + h * 3_600 + m * 300),
                    ));
                }
            }
        }
        Trail::new(7, traces)
    }

    fn jitter(p: GeoPoint, i: i64) -> GeoPoint {
        GeoPoint::new(p.lat + (i % 3) as f64 * 3e-6, p.lon + (i % 2) as f64 * 3e-6)
    }

    fn cfg() -> DjConfig {
        DjConfig {
            radius_m: 80.0,
            min_pts: 4,
            speed_threshold_mps: 1.0,
            dup_threshold_m: 0.2,
        }
    }

    #[test]
    fn finds_home_and_work() {
        let trail = commuter_trail();
        let pois = extract_pois(&trail, &cfg());
        assert!(pois.len() >= 2, "found {} POIs", pois.len());
        let home = infer_home(&pois).unwrap();
        assert!(
            gepeto_geo::haversine_m(home.center, GeoPoint::new(39.90, 116.40)) < 100.0,
            "home at {:?}",
            home.center
        );
        let work = infer_work(&pois, home).unwrap();
        assert!(
            gepeto_geo::haversine_m(work.center, GeoPoint::new(39.95, 116.45)) < 100.0,
            "work at {:?}",
            work.center
        );
    }

    #[test]
    fn night_dwell_dominates_home_detection() {
        let pois = extract_pois(&commuter_trail(), &cfg());
        let home = infer_home(&pois).unwrap();
        assert!(home.night_secs > 0);
        assert!(home.night_secs >= pois.iter().map(|p| p.night_secs).max().unwrap());
    }

    #[test]
    fn visits_are_counted_per_day() {
        let pois = extract_pois(&commuter_trail(), &cfg());
        let home = infer_home(&pois).unwrap();
        // 3 nights, each split at the 06:00→22:00 gap; visits ≥ 3.
        assert!(home.visits >= 3, "{}", home.visits);
    }

    #[test]
    fn empty_trail_has_no_pois() {
        let pois = extract_pois(&Trail::empty(1), &cfg());
        assert!(pois.is_empty());
        assert!(infer_home(&pois).is_none());
    }

    #[test]
    fn dataset_extraction_covers_all_users() {
        let mut trail2 = commuter_trail();
        trail2.user = 8;
        let trail2 = Trail::new(
            8,
            trail2
                .into_traces()
                .into_iter()
                .map(|mut t| {
                    t.user = 8;
                    t
                })
                .collect(),
        );
        let ds = Dataset::from_trails(vec![commuter_trail(), trail2]);
        let per_user = extract_pois_dataset(&ds, &cfg());
        assert_eq!(per_user.len(), 2);
        assert!(per_user[&7].len() >= 2);
        assert!(per_user[&8].len() >= 2);
    }
}
