//! Next-place prediction with Mobility Markov Chains (§VIII: an MMC
//! "can be used to predict his future locations"), evaluated the
//! standard way: learn on the first part of a trail, predict the state
//! transitions of the rest, score top-1 accuracy against a
//! most-frequent-state baseline (cf. Song et al., *Limits of
//! predictability in human mobility*, which the paper cites).

use crate::attacks::mmc::{learn_mmc_with_pois, MobilityMarkovChain};
use crate::attacks::poi::{extract_pois, Poi};
use crate::djcluster::DjConfig;
use gepeto_geo::haversine_m;
use gepeto_model::Trail;

/// Outcome of a next-place evaluation on one trail.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictionReport {
    /// Number of POI states in the learned chain.
    pub states: usize,
    /// Transitions in the held-out state sequence.
    pub transitions: usize,
    /// Transitions where the MMC's top prediction was correct.
    pub hits: usize,
    /// Transitions where always predicting the globally most frequent
    /// state was correct (the baseline a useful model must beat).
    pub baseline_hits: usize,
}

impl PredictionReport {
    /// MMC top-1 accuracy.
    pub fn accuracy(&self) -> f64 {
        if self.transitions == 0 {
            0.0
        } else {
            self.hits as f64 / self.transitions as f64
        }
    }

    /// Baseline (most-frequent-state) accuracy.
    pub fn baseline_accuracy(&self) -> f64 {
        if self.transitions == 0 {
            0.0
        } else {
            self.baseline_hits as f64 / self.transitions as f64
        }
    }
}

/// Maps a trail onto a sequence of POI states (nearest POI within twice
/// the clustering radius; consecutive repeats collapsed).
pub fn state_sequence(trail: &Trail, pois: &[Poi], radius_m: f64) -> Vec<usize> {
    let mut seq = Vec::new();
    for t in trail.traces() {
        let Some((best, d)) = pois
            .iter()
            .enumerate()
            .map(|(i, p)| (i, haversine_m(t.point, p.center)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        else {
            continue;
        };
        if d <= radius_m * 2.0 && seq.last() != Some(&best) {
            seq.push(best);
        }
    }
    seq
}

/// Learns an MMC on the first `train_fraction` of `trail` (split by
/// trace count) and scores next-place prediction on the remainder.
/// Returns `None` when no chain can be learned or the test part yields
/// no transitions.
pub fn evaluate_next_place(
    trail: &Trail,
    cfg: &DjConfig,
    train_fraction: f64,
) -> Option<(MobilityMarkovChain, PredictionReport)> {
    assert!(
        (0.0..1.0).contains(&train_fraction) && train_fraction > 0.0,
        "train_fraction must be in (0, 1)"
    );
    let traces = trail.traces();
    let split = ((traces.len() as f64) * train_fraction) as usize;
    if split < 2 || split >= traces.len() {
        return None;
    }
    let train = Trail::new(trail.user, traces[..split].to_vec());
    let test = Trail::new(trail.user, traces[split..].to_vec());

    let pois = extract_pois(&train, cfg);
    let mmc = learn_mmc_with_pois(&train, cfg, pois)?;
    let seq = state_sequence(&test, &mmc.states, cfg.radius_m);
    if seq.len() < 2 {
        return None;
    }
    // Baseline: always predict the state with the highest stationary mass.
    let baseline_state = mmc
        .stationary
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)?;

    let mut hits = 0;
    let mut baseline_hits = 0;
    for w in seq.windows(2) {
        if mmc.predict_next(w[0]) == w[1] {
            hits += 1;
        }
        if baseline_state == w[1] {
            baseline_hits += 1;
        }
    }
    let report = PredictionReport {
        states: mmc.num_states(),
        transitions: seq.len() - 1,
        hits,
        baseline_hits,
    };
    Some((mmc, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gepeto_model::{GeoPoint, MobilityTrace, Timestamp};

    /// A strict commuter: home → work → home → work …
    fn commuter(days: i64) -> Trail {
        let home = GeoPoint::new(39.90, 116.40);
        let work = GeoPoint::new(39.95, 116.45);
        let mut traces = Vec::new();
        for day in 0..days {
            let d0 = day * 86_400;
            for (spot, hours) in [(home, [0i64, 5, 22]), (work, [9, 12, 16])] {
                for h in hours {
                    for m in 0..8 {
                        traces.push(MobilityTrace::new(
                            1,
                            GeoPoint::new(
                                spot.lat + (m % 3) as f64 * 3e-6,
                                spot.lon + (m % 2) as f64 * 3e-6,
                            ),
                            Timestamp(d0 + h * 3_600 + m * 240),
                        ));
                    }
                }
            }
        }
        Trail::new(1, traces)
    }

    fn cfg() -> DjConfig {
        DjConfig {
            radius_m: 80.0,
            min_pts: 4,
            speed_threshold_mps: 1.0,
            dup_threshold_m: 0.2,
        }
    }

    #[test]
    fn commuter_is_highly_predictable() {
        let trail = commuter(8);
        let (mmc, report) = evaluate_next_place(&trail, &cfg(), 0.6).unwrap();
        assert!(mmc.num_states() >= 2);
        assert!(report.transitions >= 4);
        assert!(
            report.accuracy() > 0.8,
            "commuting is near-deterministic: {report:?}"
        );
        // With two alternating states, the fixed baseline hits ~half.
        assert!(report.accuracy() > report.baseline_accuracy());
    }

    #[test]
    fn state_sequence_collapses_repeats() {
        let trail = commuter(2);
        let pois = extract_pois(&trail, &cfg());
        let seq = state_sequence(&trail, &pois, cfg().radius_m);
        for w in seq.windows(2) {
            assert_ne!(w[0], w[1]);
        }
        assert!(seq.len() >= 4); // several alternations over 2 days
    }

    #[test]
    fn too_short_trail_yields_none() {
        let trail = Trail::new(
            1,
            vec![MobilityTrace::new(
                1,
                GeoPoint::new(39.9, 116.4),
                Timestamp(0),
            )],
        );
        assert!(evaluate_next_place(&trail, &cfg(), 0.5).is_none());
    }

    #[test]
    #[should_panic(expected = "train_fraction")]
    fn bad_fraction_rejected() {
        let _ = evaluate_next_place(&commuter(3), &cfg(), 1.5);
    }

    #[test]
    fn report_math() {
        let r = PredictionReport {
            states: 3,
            transitions: 10,
            hits: 7,
            baseline_hits: 4,
        };
        assert!((r.accuracy() - 0.7).abs() < 1e-12);
        assert!((r.baseline_accuracy() - 0.4).abs() < 1e-12);
        let zero = PredictionReport {
            states: 0,
            transitions: 0,
            hits: 0,
            baseline_hits: 0,
        };
        assert_eq!(zero.accuracy(), 0.0);
    }
}
