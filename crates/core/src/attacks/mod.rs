//! Inference attacks (§II: "an inference attack is an algorithm that
//! takes as input a geolocated dataset … and outputs some additional
//! knowledge").
//!
//! - [`poi`] — extract the Points Of Interest characterizing an
//!   individual from their trail of traces, the paper's canonical attack
//!   ("the clustering algorithms that we have implemented can be used
//!   primarily to extract the POIs of an individual").
//! - [`mmc`] — Mobility Markov Chains (§VIII future work): a compact
//!   mobility model usable for next-place prediction and
//!   de-anonymization.
//! - [`linking`] — link the records of the same individual across two
//!   datasets using the home/work pair as a quasi-identifier (§II,
//!   after Golle & Partridge).
//! - [`prediction`] — next-place prediction from a learned MMC,
//!   scored against a most-frequent-place baseline.
//! - [`semantics`] — label POIs home/work/leisure and rewrite a trail
//!   as a semantic trajectory (§II).
//! - [`social`] — discover social links from co-location (§II:
//!   "individuals that are in contact during a non-negligible amount of
//!   time share some kind of social link").

pub mod linking;
pub mod mapreduce;
pub mod mmc;
pub mod poi;
pub mod prediction;
pub mod semantics;
pub mod social;

pub use linking::{link_datasets, LinkResult};
pub use mapreduce::{mapreduce_extract_pois, mapreduce_learn_mmcs};
pub use mmc::{learn_mmc, MobilityMarkovChain};
pub use poi::{extract_pois, extract_pois_dataset, infer_home, infer_work, Poi};
pub use prediction::{evaluate_next_place, PredictionReport};
pub use semantics::{semantic_trajectory, PoiLabel, SemanticTrajectory};
pub use social::{discover_social_links, SocialConfig, SocialEdge};
