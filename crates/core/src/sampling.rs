//! Down-sampling (§V, Figures 2–3, Table I): a temporal aggregation that
//! merges all mobility traces inside a time window into a single
//! *representative* trace.
//!
//! Two techniques, as in the paper: the representative is the trace
//! closest to the **upper limit** of the window (Figure 2), or the trace
//! closest to the **middle** of the window (Figure 3).
//!
//! The MapReduce version is a map-only job ("the reduce phase is not
//! necessary as sampling represents a computationally cheap operation").
//! Each mapper streams its chunk, tracking the best candidate of the
//! current `(user, window)` and emitting it when the window closes. A
//! chunk boundary that splits a window can therefore yield one extra
//! representative for that window — the same artifact the paper's
//! Hadoop implementation has; [`sequential_sample`] is the exact
//! single-machine reference.
//!
//! ```
//! use gepeto::sampling::{sequential_sample, SamplingConfig, Technique};
//! use gepeto_model::{Dataset, GeoPoint, MobilityTrace, Timestamp};
//!
//! // Three traces in one 60 s window, one in the next.
//! let ds = Dataset::from_traces([5i64, 29, 58, 61].map(|s| {
//!     MobilityTrace::new(1, GeoPoint::new(39.9, 116.4), Timestamp(s))
//! }));
//! let cfg = SamplingConfig::new(60, Technique::ClosestToUpperLimit);
//! let sampled = sequential_sample(&ds, &cfg);
//! let secs: Vec<i64> = sampled.iter_traces().map(|t| t.timestamp.secs()).collect();
//! assert_eq!(secs, vec![58, 61]); // Figure 2: latest trace per window
//! ```

use crate::dfs_io::read_dataset;
use gepeto_mapred::{
    Cluster, Dfs, Emitter, JobError, JobStats, MapOnlyJob, MapReduceJob, Mapper, Reducer,
    RunJournal,
};
use gepeto_model::{Dataset, MobilityTrace, Trail, UserId};
use gepeto_telemetry::Recorder;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// How the representative trace of a window is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Technique {
    /// The trace closest to the upper limit of the time window (Fig. 2).
    ClosestToUpperLimit,
    /// The trace closest to the middle of the time window (Fig. 3).
    ClosestToMiddle,
}

impl Technique {
    /// Distance (in seconds, lower is better) from a trace at `ts` to the
    /// reference instant of window `[w0, w0 + window)`.
    fn badness(self, ts: i64, w0: i64, window: i64) -> i64 {
        match self {
            // The reference is the (exclusive) upper limit; every trace is
            // below it, so the latest trace wins.
            Technique::ClosestToUpperLimit => w0 + window - ts,
            Technique::ClosestToMiddle => (ts - (w0 + window / 2)).abs(),
        }
    }

    /// Parses the CLI spelling.
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "upper" | "upper-limit" | "end" => Some(Self::ClosestToUpperLimit),
            "middle" | "center" => Some(Self::ClosestToMiddle),
            _ => None,
        }
    }
}

/// Sampling parameters: the window size (the paper evaluates 60 s, 300 s
/// and 600 s) and the representative-selection technique.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamplingConfig {
    /// Window length in seconds (> 0).
    pub window_secs: i64,
    /// Representative selection.
    pub technique: Technique,
}

impl SamplingConfig {
    /// A config; panics if `window_secs` is not positive.
    pub fn new(window_secs: i64, technique: Technique) -> Self {
        assert!(window_secs > 0, "sampling window must be positive");
        Self {
            window_secs,
            technique,
        }
    }
}

/// Exact sequential reference: samples each user's trail independently
/// with global (absolute-time) windows.
pub fn sequential_sample(dataset: &Dataset, cfg: &SamplingConfig) -> Dataset {
    let trails = dataset.trails().map(|t| sample_trail(t, cfg));
    Dataset::from_trails(trails.collect::<Vec<_>>())
}

/// Samples a single trail.
pub fn sample_trail(trail: &Trail, cfg: &SamplingConfig) -> Trail {
    // At most one representative per window, and the trail is
    // time-ordered, so the span divided by the window length bounds the
    // output — pre-size to that instead of growing through reallocation.
    // Saturating arithmetic throughout: a trail spanning the whole i64
    // timestamp range must degrade to "pre-size to the trace count",
    // not overflow.
    let traces = trail.traces();
    let windows = match (traces.first(), traces.last()) {
        (Some(a), Some(b)) => {
            let span = b.timestamp.secs().saturating_sub(a.timestamp.secs());
            (span / cfg.window_secs)
                .saturating_add(1)
                .clamp(1, i64::try_from(traces.len()).unwrap_or(i64::MAX)) as usize
        }
        _ => 0,
    };
    let mut out = Vec::with_capacity(windows);
    let mut state: Option<WindowState> = None;
    for t in trail.traces() {
        push_trace(&mut state, t, cfg, &mut |tr| out.push(tr));
    }
    if let Some(s) = state {
        out.push(s.best);
    }
    Trail::new(trail.user, out)
}

/// The streaming state: current `(user, window)` plus its best candidate.
#[derive(Clone, Debug)]
struct WindowState {
    user: UserId,
    window: i64,
    best: MobilityTrace,
    best_badness: i64,
}

/// Core streaming step shared by the sequential and MapReduce paths.
fn push_trace(
    state: &mut Option<WindowState>,
    t: &MobilityTrace,
    cfg: &SamplingConfig,
    emit: &mut impl FnMut(MobilityTrace),
) {
    let window = t.timestamp.secs().div_euclid(cfg.window_secs);
    let badness = cfg.technique.badness(
        t.timestamp.secs(),
        window * cfg.window_secs,
        cfg.window_secs,
    );
    match state {
        Some(s) if s.user == t.user && s.window == window => {
            if badness < s.best_badness {
                s.best = *t;
                s.best_badness = badness;
            }
        }
        Some(s) => {
            emit(s.best);
            *state = Some(WindowState {
                user: t.user,
                window,
                best: *t,
                best_badness: badness,
            });
        }
        None => {
            *state = Some(WindowState {
                user: t.user,
                window,
                best: *t,
                best_badness: badness,
            });
        }
    }
}

/// The paper's sampling mapper: a pure filter with per-window state.
#[derive(Clone)]
pub struct SamplingMapper {
    cfg: SamplingConfig,
    state: Option<WindowState>,
}

impl SamplingMapper {
    /// A mapper applying `cfg`.
    pub fn new(cfg: SamplingConfig) -> Self {
        Self { cfg, state: None }
    }
}

impl Mapper<MobilityTrace> for SamplingMapper {
    type KOut = UserId;
    type VOut = MobilityTrace;

    fn map(
        &mut self,
        _offset: u64,
        value: &MobilityTrace,
        out: &mut Emitter<UserId, MobilityTrace>,
    ) {
        let cfg = self.cfg;
        push_trace(&mut self.state, value, &cfg, &mut |t| out.emit(t.user, t));
    }

    fn cleanup(&mut self, out: &mut Emitter<UserId, MobilityTrace>) {
        if let Some(s) = self.state.take() {
            out.emit(s.best.user, s.best);
        }
    }
}

/// Runs sampling as a map-only MapReduce job over `input` and returns the
/// sampled dataset plus the job statistics.
pub fn mapreduce_sample(
    cluster: &Cluster,
    dfs: &Dfs<MobilityTrace>,
    input: &str,
    cfg: &SamplingConfig,
) -> Result<(Dataset, JobStats), JobError> {
    mapreduce_sample_with(cluster, dfs, input, cfg, &Recorder::disabled())
}

/// [`mapreduce_sample`] with telemetry: the job's spans are captured, and
/// a `sampling.throughput` point records the end-to-end records/second —
/// the number Table I's per-window rows normalize against.
pub fn mapreduce_sample_with(
    cluster: &Cluster,
    dfs: &Dfs<MobilityTrace>,
    input: &str,
    cfg: &SamplingConfig,
    telemetry: &Recorder,
) -> Result<(Dataset, JobStats), JobError> {
    let span = telemetry.span(
        "sampling",
        &[("input", input), ("window", &cfg.window_secs.to_string())],
    );
    let result = MapOnlyJob::new("sampling", cluster, dfs, input, SamplingMapper::new(*cfg))
        .pair_bytes(|_, t| t.approx_plt_bytes())
        .telemetry(telemetry.clone())
        .run()?;
    span.end();
    let input_records = dfs.num_records(input)? as f64;
    let elapsed = result.stats.real_elapsed.as_secs_f64();
    if elapsed > 0.0 {
        telemetry.point(
            "sampling.throughput",
            input_records / elapsed,
            &[("input", input)],
        );
    }
    let dataset = Dataset::from_traces(result.output.into_iter().map(|(_, t)| t));
    Ok((dataset, result.stats))
}

/// Identity reducer that regroups sampled traces per user — the
/// reduce-side variant of sampling used when the output should arrive
/// user-grouped (and the shuffle it adds is what the out-of-core spill
/// path exercises at scale).
#[derive(Clone)]
pub struct RegroupReducer;

impl Reducer<UserId, MobilityTrace> for RegroupReducer {
    type KOut = UserId;
    type VOut = MobilityTrace;

    fn reduce(
        &mut self,
        key: &UserId,
        values: &[MobilityTrace],
        out: &mut Emitter<UserId, MobilityTrace>,
    ) {
        for v in values {
            out.emit(*key, *v);
        }
    }
}

/// Sampling with a full shuffle: maps with [`SamplingMapper`], then
/// regroups the representatives per user through a real reduce phase.
/// Always registers the trace spill codec, so a memory budget — either
/// the explicit `memory_budget` argument or the `mapred.memory.budget`
/// config key — makes the shuffle spill to disk instead of holding every
/// intermediate pair in memory.
pub fn mapreduce_sample_by_user(
    cluster: &Cluster,
    dfs: &Dfs<MobilityTrace>,
    input: &str,
    cfg: &SamplingConfig,
    memory_budget: Option<usize>,
    telemetry: &Recorder,
) -> Result<(Dataset, JobStats), JobError> {
    sample_by_user_inner(cluster, dfs, input, cfg, memory_budget, None, telemetry)
}

/// [`mapreduce_sample_by_user`] under a write-ahead [`RunJournal`]: every
/// reduce partition's output is committed into the run directory, so a
/// killed run resumed against the same journal replays the committed
/// partitions from disk instead of re-shuffling them — bit-identically.
pub fn mapreduce_sample_by_user_durable(
    cluster: &Cluster,
    dfs: &Dfs<MobilityTrace>,
    input: &str,
    cfg: &SamplingConfig,
    memory_budget: Option<usize>,
    journal: &Arc<RunJournal>,
    telemetry: &Recorder,
) -> Result<(Dataset, JobStats), JobError> {
    sample_by_user_inner(
        cluster,
        dfs,
        input,
        cfg,
        memory_budget,
        Some(journal),
        telemetry,
    )
}

fn sample_by_user_inner(
    cluster: &Cluster,
    dfs: &Dfs<MobilityTrace>,
    input: &str,
    cfg: &SamplingConfig,
    memory_budget: Option<usize>,
    journal: Option<&Arc<RunJournal>>,
    telemetry: &Recorder,
) -> Result<(Dataset, JobStats), JobError> {
    let span = telemetry.span(
        "sampling-by-user",
        &[("input", input), ("window", &cfg.window_secs.to_string())],
    );
    let codec = crate::spill_codecs::trace_codec();
    let job = MapReduceJob::new(
        "sampling-by-user",
        cluster,
        dfs,
        input,
        SamplingMapper::new(*cfg),
        RegroupReducer,
    )
    .reducers(cluster.topology.num_nodes())
    .pair_bytes(|_, t| t.approx_plt_bytes())
    .telemetry(telemetry.clone());
    let job = match memory_budget {
        Some(bytes) => job.memory_budget_with(bytes, codec.clone()),
        None => job.spill_codec(codec.clone()),
    };
    let job = match journal {
        Some(j) => job.durable_with(j.clone(), codec),
        None => job,
    };
    let result = job.run()?;
    span.end();
    let dataset = Dataset::from_traces(result.output.into_iter().map(|(_, t)| t));
    Ok((dataset, result.stats))
}

/// Convenience: MapReduce-samples `input` and writes the result back to
/// the DFS under `output` (the paper's jobs read and write HDFS folders).
pub fn mapreduce_sample_to_dfs(
    cluster: &Cluster,
    dfs: &mut Dfs<MobilityTrace>,
    input: &str,
    output: &str,
    cfg: &SamplingConfig,
) -> Result<JobStats, JobError> {
    let (dataset, stats) = mapreduce_sample(cluster, dfs, input, cfg)?;
    dfs.put_with_sizer(output, dataset.to_traces(), |t| t.approx_plt_bytes())?;
    let _ = read_dataset(dfs, output); // sanity: output is readable
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfs_io::{put_dataset, trace_dfs};
    use gepeto_model::{GeoPoint, Timestamp};

    fn tr(user: UserId, secs: i64) -> MobilityTrace {
        MobilityTrace::new(
            user,
            GeoPoint::new(40.0 + secs as f64 * 1e-6, 116.0),
            Timestamp(secs),
        )
    }

    #[test]
    fn sample_trail_presizing_survives_extreme_timestamps() {
        // A trail spanning the whole representable time range: the
        // span subtraction and the `span / window + 1` estimate would
        // both overflow without saturating arithmetic.
        let trail = Trail::new(1, vec![tr(1, i64::MIN + 1), tr(1, 0), tr(1, i64::MAX - 1)]);
        let cfg = SamplingConfig::new(1, Technique::ClosestToUpperLimit);
        let sampled = sample_trail(&trail, &cfg);
        assert_eq!(sampled.len(), 3, "three windows, three representatives");
    }

    #[test]
    fn upper_limit_takes_latest_trace_per_window() {
        // Window 60: [0,60) holds 5, 20, 59 → 59; [60,120) holds 61 → 61.
        let ds = Dataset::from_traces(vec![tr(1, 5), tr(1, 20), tr(1, 59), tr(1, 61)]);
        let cfg = SamplingConfig::new(60, Technique::ClosestToUpperLimit);
        let sampled = sequential_sample(&ds, &cfg);
        let secs: Vec<i64> = sampled.iter_traces().map(|t| t.timestamp.secs()).collect();
        assert_eq!(secs, vec![59, 61]);
    }

    #[test]
    fn middle_takes_trace_closest_to_center() {
        // Window 60, center 30: traces at 5, 29, 55 → 29 wins.
        let ds = Dataset::from_traces(vec![tr(1, 5), tr(1, 29), tr(1, 55)]);
        let cfg = SamplingConfig::new(60, Technique::ClosestToMiddle);
        let sampled = sequential_sample(&ds, &cfg);
        let secs: Vec<i64> = sampled.iter_traces().map(|t| t.timestamp.secs()).collect();
        assert_eq!(secs, vec![29]);
    }

    #[test]
    fn techniques_differ_on_the_same_input() {
        let ds = Dataset::from_traces(vec![tr(1, 5), tr(1, 29), tr(1, 55)]);
        let up = sequential_sample(
            &ds,
            &SamplingConfig::new(60, Technique::ClosestToUpperLimit),
        );
        let mid = sequential_sample(&ds, &SamplingConfig::new(60, Technique::ClosestToMiddle));
        assert_eq!(up.iter_traces().next().unwrap().timestamp.secs(), 55);
        assert_eq!(mid.iter_traces().next().unwrap().timestamp.secs(), 29);
    }

    #[test]
    fn windows_are_per_user() {
        let ds = Dataset::from_traces(vec![tr(1, 5), tr(1, 15), tr(2, 10), tr(2, 25)]);
        let cfg = SamplingConfig::new(60, Technique::ClosestToUpperLimit);
        let sampled = sequential_sample(&ds, &cfg);
        assert_eq!(sampled.num_traces(), 2); // one window each
        assert_eq!(sampled.num_users(), 2);
    }

    #[test]
    fn negative_timestamps_window_correctly() {
        // div_euclid keeps windows aligned across zero.
        let ds = Dataset::from_traces(vec![tr(1, -61), tr(1, -59), tr(1, -1), tr(1, 1)]);
        let cfg = SamplingConfig::new(60, Technique::ClosestToUpperLimit);
        let sampled = sequential_sample(&ds, &cfg);
        let secs: Vec<i64> = sampled.iter_traces().map(|t| t.timestamp.secs()).collect();
        // Windows: [-120,-60) → -61; [-60,0) → -1; [0,60) → 1.
        assert_eq!(secs, vec![-61, -1, 1]);
    }

    #[test]
    fn empty_dataset_samples_to_empty() {
        let cfg = SamplingConfig::new(60, Technique::ClosestToMiddle);
        assert!(sequential_sample(&Dataset::new(), &cfg).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_rejected() {
        let _ = SamplingConfig::new(0, Technique::ClosestToMiddle);
    }

    #[test]
    fn mapreduce_equals_sequential_single_chunk() {
        let traces: Vec<MobilityTrace> = (0..500).map(|i| tr(1 + (i % 3) as u32, i * 7)).collect();
        let ds = Dataset::from_traces(traces);
        let cluster = Cluster::local(3, 2);
        let mut dfs = trace_dfs(&cluster, 1 << 20); // everything in one chunk
        put_dataset(&mut dfs, "d", &ds).unwrap();
        let cfg = SamplingConfig::new(60, Technique::ClosestToUpperLimit);
        let (mr, stats) = mapreduce_sample(&cluster, &dfs, "d", &cfg).unwrap();
        assert_eq!(stats.map_tasks, 1);
        assert_eq!(mr, sequential_sample(&ds, &cfg));
    }

    #[test]
    fn mapreduce_boundary_artifact_is_bounded() {
        let traces: Vec<MobilityTrace> = (0..2_000).map(|i| tr(1, i * 3)).collect();
        let ds = Dataset::from_traces(traces);
        let cluster = Cluster::local(3, 2);
        let mut dfs = trace_dfs(&cluster, 4_096); // ~64 traces per chunk
        put_dataset(&mut dfs, "d", &ds).unwrap();
        let chunks = dfs.num_blocks("d").unwrap();
        assert!(chunks > 10);
        let cfg = SamplingConfig::new(60, Technique::ClosestToUpperLimit);
        let (mr, _) = mapreduce_sample(&cluster, &dfs, "d", &cfg).unwrap();
        let seq = sequential_sample(&ds, &cfg);
        // Each chunk boundary can split at most one window in two.
        let diff = mr.num_traces() as i64 - seq.num_traces() as i64;
        assert!(
            (0..(chunks as i64)).contains(&diff),
            "diff {diff}, chunks {chunks}"
        );
    }

    #[test]
    fn to_dfs_variant_writes_output_file() {
        let ds = Dataset::from_traces((0..100).map(|i| tr(1, i * 10)).collect::<Vec<_>>());
        let cluster = Cluster::local(2, 2);
        let mut dfs = trace_dfs(&cluster, 1 << 16);
        put_dataset(&mut dfs, "in", &ds).unwrap();
        let cfg = SamplingConfig::new(60, Technique::ClosestToMiddle);
        let stats = mapreduce_sample_to_dfs(&cluster, &mut dfs, "in", "out", &cfg).unwrap();
        assert!(dfs.exists("out"));
        assert!(stats.map_tasks >= 1);
        assert!(dfs.num_records("out").unwrap() < 100);
    }

    #[test]
    fn sample_by_user_matches_map_only_output() {
        let traces: Vec<MobilityTrace> = (0..800).map(|i| tr(1 + (i % 4) as u32, i * 9)).collect();
        let ds = Dataset::from_traces(traces);
        let cluster = Cluster::local(3, 2);
        let mut dfs = trace_dfs(&cluster, 4_096);
        put_dataset(&mut dfs, "d", &ds).unwrap();
        let cfg = SamplingConfig::new(60, Technique::ClosestToUpperLimit);
        let (map_only, _) = mapreduce_sample(&cluster, &dfs, "d", &cfg).unwrap();
        let rec = gepeto_telemetry::Recorder::disabled();
        let (grouped, _) = mapreduce_sample_by_user(&cluster, &dfs, "d", &cfg, None, &rec).unwrap();
        assert_eq!(grouped, map_only);
    }

    #[test]
    fn sample_by_user_spills_under_a_tiny_budget_without_changing_output() {
        let traces: Vec<MobilityTrace> = (0..800).map(|i| tr(1 + (i % 4) as u32, i * 9)).collect();
        let ds = Dataset::from_traces(traces);
        let cluster = Cluster::local(3, 2);
        let mut dfs = trace_dfs(&cluster, 4_096);
        put_dataset(&mut dfs, "d", &ds).unwrap();
        let cfg = SamplingConfig::new(60, Technique::ClosestToUpperLimit);
        let rec = gepeto_telemetry::Recorder::disabled();
        let (unbounded, base) =
            mapreduce_sample_by_user(&cluster, &dfs, "d", &cfg, None, &rec).unwrap();
        let (spilled, stats) =
            mapreduce_sample_by_user(&cluster, &dfs, "d", &cfg, Some(1), &rec).unwrap();
        assert_eq!(spilled, unbounded);
        use gepeto_mapred::counters::builtin;
        assert!(
            stats.counters[builtin::SPILL_FILES] > 0,
            "{:?}",
            stats.counters
        );
        assert!(stats.counters[builtin::SPILLED_BYTES] > 0);
        assert!(!base.counters.contains_key(builtin::SPILL_FILES));
    }

    #[test]
    fn technique_parse() {
        assert_eq!(
            Technique::parse("upper"),
            Some(Technique::ClosestToUpperLimit)
        );
        assert_eq!(Technique::parse("MIDDLE"), Some(Technique::ClosestToMiddle));
        assert_eq!(Technique::parse("mean"), None);
    }
}
