//! DJ-Cluster — Density-Joinable Clustering (§VII, Figure 5, Table IV,
//! Algorithms 4–5).
//!
//! The paper's three phases, each expressed in MapReduce:
//!
//! 1. **Preprocessing** — two pipelined map-only jobs: the first keeps
//!    stationary traces (speed between the neighboring traces below a
//!    small threshold ε), the second removes redundant consecutive
//!    traces (almost the same coordinate, different timestamps).
//! 2. **Neighborhood identification** — mappers load an R-tree from the
//!    distributed cache and compute, for each trace, its radius-`r`
//!    neighborhood; traces with fewer than `MinPts` neighbors are marked
//!    as noise (Algorithm 4).
//! 3. **Merging** — a single reducer joins all neighborhoods sharing at
//!    least one trace into clusters (Algorithm 5); the output clusters
//!    are non-overlapping and hold at least `MinPts` traces each.
//!
//! The sequential functions are the exact single-machine references; the
//! MapReduce clustering phase produces *identical* clusters because
//! radius queries are exact regardless of how the R-tree was built.
//!
//! ```
//! use gepeto::djcluster::{sequential_djcluster, DjConfig};
//! use gepeto_model::{GeoPoint, MobilityTrace, Timestamp};
//!
//! // A dense dwell spot plus one faraway stray.
//! let mut traces: Vec<MobilityTrace> = (0..8)
//!     .map(|i| MobilityTrace::new(
//!         1,
//!         GeoPoint::new(39.9 + (i % 3) as f64 * 1e-5, 116.4),
//!         Timestamp(i * 60),
//!     ))
//!     .collect();
//! traces.push(MobilityTrace::new(1, GeoPoint::new(39.5, 116.0), Timestamp(9_999)));
//! let clustering = sequential_djcluster(&traces, &DjConfig::default());
//! assert_eq!(clustering.clusters.len(), 1); // the dwell spot
//! assert_eq!(clustering.noise, 1);          // the stray
//! ```

use crate::rtree_build::{mapreduce_build_rtree, RTreeBuildConfig};
use gepeto_geo::distance::equirectangular_m;
use gepeto_geo::RTree;
use gepeto_mapred::counters::builtin;
use gepeto_mapred::{
    run_with_recovery, Cluster, Counters, Dfs, DistributedCache, Emitter, JobError, JobStats,
    MapOnlyJob, MapReduceJob, Mapper, PipelineReport, Reducer, RetryPolicy, TaskContext,
};
use gepeto_model::{Dataset, MobilityTrace, UserId};
use gepeto_telemetry::Recorder;
use std::collections::HashMap;
use std::sync::Arc;

const RTREE_CACHE_KEY: &str = "djcluster.rtree";

/// DJ-Cluster parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DjConfig {
    /// Neighborhood radius `r` in meters.
    pub radius_m: f64,
    /// Minimum neighborhood population `MinPts` (the query point counts).
    pub min_pts: usize,
    /// Preprocessing speed threshold ε in m/s; the paper uses a small
    /// value ("2 km/h ≈ 0.55 m/s"-scale). Traces moving faster are
    /// discarded.
    pub speed_threshold_mps: f64,
    /// Redundancy threshold in meters for the duplicate-removal job.
    pub dup_threshold_m: f64,
}

impl Default for DjConfig {
    fn default() -> Self {
        Self {
            radius_m: 60.0,
            min_pts: 4,
            speed_threshold_mps: 1.0,
            dup_threshold_m: 0.5,
        }
    }
}

/// Trace counts through the preprocessing pipeline — the rows of
/// Table IV.
#[derive(Debug, Clone)]
pub struct PreprocessStats {
    /// Traces before preprocessing.
    pub input: usize,
    /// After the moving-trace filter.
    pub after_speed_filter: usize,
    /// After duplicate removal.
    pub after_dedup: usize,
    /// Engine statistics of the two pipelined jobs.
    pub jobs: PipelineReport,
}

/// A finished clustering: the clusters (each a set of traces) plus the
/// number of traces marked as noise.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Non-overlapping clusters, each with ≥ `MinPts` members.
    pub clusters: Vec<Vec<MobilityTrace>>,
    /// Traces whose neighborhood was too sparse.
    pub noise: usize,
}

impl Clustering {
    /// Canonical form for comparisons: clusters as sorted lists of
    /// `(user, timestamp)` ids, clusters sorted by first member.
    pub fn canonical_ids(&self) -> Vec<Vec<(UserId, i64)>> {
        let mut out: Vec<Vec<(UserId, i64)>> = self
            .clusters
            .iter()
            .map(|c| {
                let mut ids: Vec<(UserId, i64)> =
                    c.iter().map(|t| (t.user, t.timestamp.secs())).collect();
                ids.sort_unstable();
                ids
            })
            .collect();
        out.sort();
        out
    }
}

// ---------------------------------------------------------------------
// Phase 1: preprocessing
// ---------------------------------------------------------------------

/// The speed of `cur` estimated from its neighbors, as the paper defines
/// it: distance between the previous and next traces over their time
/// difference (one-sided at trail edges).
fn neighbor_speed(
    prev: Option<&MobilityTrace>,
    cur: &MobilityTrace,
    next: Option<&MobilityTrace>,
) -> f64 {
    let (a, b) = match (prev, next) {
        (Some(p), Some(n)) => (p, n),
        (Some(p), None) => (p, cur),
        (None, Some(n)) => (cur, n),
        (None, None) => return 0.0,
    };
    let dt = b.timestamp.delta(a.timestamp);
    if dt <= 0 {
        return 0.0;
    }
    equirectangular_m(a.point, b.point) / dt as f64
}

/// Streaming speed filter over one user-ordered run of traces; shared by
/// the sequential reference and the mapper.
#[derive(Clone, Default)]
struct SpeedFilterState {
    prev: Option<MobilityTrace>,
    cur: Option<MobilityTrace>,
}

impl SpeedFilterState {
    fn push(&mut self, t: &MobilityTrace, threshold: f64, emit: &mut impl FnMut(MobilityTrace)) {
        // A user switch closes the previous run.
        if self.cur.map(|c| c.user) != Some(t.user) && self.cur.is_some() {
            self.flush(threshold, emit);
        }
        if let Some(cur) = self.cur {
            if neighbor_speed(self.prev.as_ref(), &cur, Some(t)) <= threshold {
                emit(cur);
            }
            self.prev = Some(cur);
        }
        self.cur = Some(*t);
    }

    fn flush(&mut self, threshold: f64, emit: &mut impl FnMut(MobilityTrace)) {
        if let Some(cur) = self.cur.take() {
            if neighbor_speed(self.prev.as_ref(), &cur, None) <= threshold {
                emit(cur);
            }
        }
        self.prev = None;
    }
}

/// Map-only job 1: keep stationary traces, discard moving ones.
#[derive(Clone)]
pub struct SpeedFilterMapper {
    threshold: f64,
    state: SpeedFilterState,
}

impl Mapper<MobilityTrace> for SpeedFilterMapper {
    type KOut = UserId;
    type VOut = MobilityTrace;

    fn setup(&mut self, ctx: &TaskContext<'_>) {
        if let Some(t) = ctx.config.get_f64("speed.threshold") {
            self.threshold = t;
        }
    }

    fn map(
        &mut self,
        _offset: u64,
        value: &MobilityTrace,
        out: &mut Emitter<UserId, MobilityTrace>,
    ) {
        let threshold = self.threshold;
        self.state
            .push(value, threshold, &mut |t| out.emit(t.user, t));
    }

    fn cleanup(&mut self, out: &mut Emitter<UserId, MobilityTrace>) {
        let threshold = self.threshold;
        self.state.flush(threshold, &mut |t| out.emit(t.user, t));
    }
}

/// Map-only job 2: keep the first trace of each redundant run.
#[derive(Clone)]
pub struct DedupMapper {
    threshold_m: f64,
    last_kept: Option<MobilityTrace>,
}

impl Mapper<MobilityTrace> for DedupMapper {
    type KOut = UserId;
    type VOut = MobilityTrace;

    fn setup(&mut self, ctx: &TaskContext<'_>) {
        if let Some(t) = ctx.config.get_f64("dup.threshold") {
            self.threshold_m = t;
        }
    }

    fn map(
        &mut self,
        _offset: u64,
        value: &MobilityTrace,
        out: &mut Emitter<UserId, MobilityTrace>,
    ) {
        let keep = match &self.last_kept {
            Some(last) if last.user == value.user => {
                equirectangular_m(last.point, value.point) > self.threshold_m
            }
            _ => true,
        };
        if keep {
            out.emit(value.user, *value);
            self.last_kept = Some(*value);
        }
    }
}

/// Sequential reference for the whole preprocessing phase.
pub fn sequential_preprocess(dataset: &Dataset, cfg: &DjConfig) -> Dataset {
    let mut kept = Vec::new();
    for trail in dataset.trails() {
        let mut state = SpeedFilterState::default();
        let mut stationary = Vec::new();
        for t in trail.traces() {
            state.push(t, cfg.speed_threshold_mps, &mut |x| stationary.push(x));
        }
        state.flush(cfg.speed_threshold_mps, &mut |x| stationary.push(x));
        // Dedup.
        let mut last: Option<MobilityTrace> = None;
        for t in stationary {
            let keep = match &last {
                Some(l) => equirectangular_m(l.point, t.point) > cfg.dup_threshold_m,
                None => true,
            };
            if keep {
                kept.push(t);
                last = Some(t);
            }
        }
    }
    Dataset::from_traces(kept)
}

/// Runs the two pipelined preprocessing jobs (Figure 5), writing the
/// filtered dataset to `output` on the DFS and returning the Table IV
/// counts.
pub fn mapreduce_preprocess(
    cluster: &Cluster,
    dfs: &mut Dfs<MobilityTrace>,
    input: &str,
    output: &str,
    cfg: &DjConfig,
) -> Result<PreprocessStats, JobError> {
    mapreduce_preprocess_with(cluster, dfs, input, output, cfg, &Recorder::disabled())
}

/// [`mapreduce_preprocess`] with the two pipelined jobs' telemetry
/// captured under a `djcluster.preprocess` span.
pub fn mapreduce_preprocess_with(
    cluster: &Cluster,
    dfs: &mut Dfs<MobilityTrace>,
    input: &str,
    output: &str,
    cfg: &DjConfig,
    telemetry: &Recorder,
) -> Result<PreprocessStats, JobError> {
    let span = telemetry.span("djcluster.preprocess", &[("input", input)]);
    let input_count = dfs.num_records(input)?;
    let mut jobs = PipelineReport::new();

    // Job 1: filter moving traces.
    let job1 = MapOnlyJob::new(
        "dj-filter-moving",
        cluster,
        dfs,
        input,
        SpeedFilterMapper {
            threshold: cfg.speed_threshold_mps,
            state: SpeedFilterState::default(),
        },
    )
    .pair_bytes(|_, t| t.approx_plt_bytes())
    .telemetry(telemetry.clone())
    .run()?;
    let stationary: Vec<MobilityTrace> = job1.output.into_iter().map(|(_, t)| t).collect();
    let after_speed_filter = stationary.len();
    jobs.add(job1.stats);

    // Pipeline hop: job 1's output becomes job 2's input.
    let intermediate = format!("{output}.stationary");
    if dfs.exists(&intermediate) {
        dfs.delete(&intermediate)?;
    }
    dfs.put_with_sizer(&intermediate, stationary, |t| t.approx_plt_bytes())?;

    // Job 2: remove redundant consecutive traces.
    let job2 = MapOnlyJob::new(
        "dj-dedup",
        cluster,
        dfs,
        &intermediate,
        DedupMapper {
            threshold_m: cfg.dup_threshold_m,
            last_kept: None,
        },
    )
    .pair_bytes(|_, t| t.approx_plt_bytes())
    .telemetry(telemetry.clone())
    .run()?;
    let deduped: Vec<MobilityTrace> = job2.output.into_iter().map(|(_, t)| t).collect();
    let after_dedup = deduped.len();
    jobs.add(job2.stats);

    if dfs.exists(output) {
        dfs.delete(output)?;
    }
    dfs.put_with_sizer(output, deduped, |t| t.approx_plt_bytes())?;
    telemetry.point(
        "djcluster.preprocessed",
        after_dedup as f64,
        &[("input", input)],
    );
    span.end();
    Ok(PreprocessStats {
        input: input_count,
        after_speed_filter,
        after_dedup,
        jobs,
    })
}

/// [`mapreduce_preprocess_with`] hardened for a faulty cluster: each of
/// the two pipelined jobs runs under [`gepeto_mapred::run_with_recovery`]
/// (DFS healing + virtual-time backoff between attempts). The pipeline
/// hop itself is the checkpoint — a job death never re-runs the stage
/// before it. Returns the stats plus the job re-submissions needed.
pub fn mapreduce_preprocess_resilient(
    cluster: &Cluster,
    dfs: &mut Dfs<MobilityTrace>,
    input: &str,
    output: &str,
    cfg: &DjConfig,
    policy: &RetryPolicy,
    telemetry: &Recorder,
) -> Result<(PreprocessStats, u64), JobError> {
    let span = telemetry.span("djcluster.preprocess", &[("input", input)]);
    let input_count = dfs.num_records(input)?;
    let mut jobs = PipelineReport::new();
    let mut job_retries = 0u64;

    let (job1, r1) = run_with_recovery(
        "dj-filter-moving",
        cluster,
        dfs,
        policy,
        telemetry,
        |name, dfs| {
            MapOnlyJob::new(
                name,
                cluster,
                dfs,
                input,
                SpeedFilterMapper {
                    threshold: cfg.speed_threshold_mps,
                    state: SpeedFilterState::default(),
                },
            )
            .pair_bytes(|_, t| t.approx_plt_bytes())
            .telemetry(telemetry.clone())
            .run()
        },
    )?;
    job_retries += r1 as u64;
    let stationary: Vec<MobilityTrace> = job1.output.into_iter().map(|(_, t)| t).collect();
    let after_speed_filter = stationary.len();
    jobs.add(job1.stats);

    let intermediate = format!("{output}.stationary");
    if dfs.exists(&intermediate) {
        dfs.delete(&intermediate)?;
    }
    dfs.put_with_sizer(&intermediate, stationary, |t| t.approx_plt_bytes())?;

    let (job2, r2) =
        run_with_recovery("dj-dedup", cluster, dfs, policy, telemetry, |name, dfs| {
            MapOnlyJob::new(
                name,
                cluster,
                dfs,
                &intermediate,
                DedupMapper {
                    threshold_m: cfg.dup_threshold_m,
                    last_kept: None,
                },
            )
            .pair_bytes(|_, t| t.approx_plt_bytes())
            .telemetry(telemetry.clone())
            .run()
        })?;
    job_retries += r2 as u64;
    let deduped: Vec<MobilityTrace> = job2.output.into_iter().map(|(_, t)| t).collect();
    let after_dedup = deduped.len();
    jobs.add(job2.stats);

    if dfs.exists(output) {
        dfs.delete(output)?;
    }
    dfs.put_with_sizer(output, deduped, |t| t.approx_plt_bytes())?;
    telemetry.point(
        "djcluster.preprocessed",
        after_dedup as f64,
        &[("input", input)],
    );
    span.end();
    Ok((
        PreprocessStats {
            input: input_count,
            after_speed_filter,
            after_dedup,
            jobs,
        },
        job_retries,
    ))
}

// ---------------------------------------------------------------------
// Phases 2–3: neighborhood identification + merging
// ---------------------------------------------------------------------

/// Appends `v` as an LEB128 varint (7 payload bits per byte, high bit =
/// continuation).
fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// A neighborhood's sorted trace ids, delta-encoded as LEB128 varints:
/// the first id raw, every later one as the gap to its predecessor.
///
/// Neighborhood ids are dense indexes into the preprocessed input and the
/// R-tree returns spatially close traces, so the gaps are tiny — one or
/// two bytes each instead of the eight a raw `u64` costs. The shuffle of
/// the merge job is *nothing but* neighborhood payloads, so this encoding
/// directly cuts the job's simulated `shuffle_bytes`; the saving is
/// surfaced through [`builtin::SHUFFLE_BYTES_SAVED`]. Decoding streams
/// via [`EncodedNeighborhood::iter`], so the merge reducer never
/// materializes the raw `Vec<u64>` again.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedNeighborhood {
    bytes: Vec<u8>,
}

impl EncodedNeighborhood {
    /// Encodes an ascending-sorted id list (the mapper sorts before
    /// emitting, exactly as the uncompressed path did).
    pub fn encode_sorted(ids: &[u64]) -> Self {
        debug_assert!(ids.windows(2).all(|w| w[0] <= w[1]), "ids must be sorted");
        let mut bytes = Vec::with_capacity(ids.len() * 2);
        let mut prev = 0u64;
        for &id in ids {
            write_varint(&mut bytes, id - prev);
            prev = id;
        }
        Self { bytes }
    }

    /// Encoded payload size in bytes — the job's `pair_bytes` sizer, and
    /// what the raw `8 * ids.len()` is compared against for the
    /// bytes-saved counter.
    pub fn encoded_len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the neighborhood holds no ids.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Streaming decoder over the original ascending id sequence.
    pub fn iter(&self) -> NeighborhoodIds<'_> {
        NeighborhoodIds {
            bytes: &self.bytes,
            prev: 0,
        }
    }

    /// Decodes back to the id vector (tests and diagnostics; the hot
    /// path streams with [`Self::iter`]).
    pub fn decode(&self) -> Vec<u64> {
        self.iter().collect()
    }
}

impl<'a> IntoIterator for &'a EncodedNeighborhood {
    type Item = u64;
    type IntoIter = NeighborhoodIds<'a>;

    fn into_iter(self) -> NeighborhoodIds<'a> {
        self.iter()
    }
}

/// Iterator of [`EncodedNeighborhood::iter`]: reads one varint delta per
/// step and adds it to the running previous id.
#[derive(Debug, Clone)]
pub struct NeighborhoodIds<'a> {
    bytes: &'a [u8],
    prev: u64,
}

impl Iterator for NeighborhoodIds<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        let mut delta = 0u64;
        let mut shift = 0u32;
        loop {
            let (&b, rest) = self.bytes.split_first()?;
            self.bytes = rest;
            delta |= u64::from(b & 0x7f) << shift;
            if b < 0x80 {
                break;
            }
            shift += 7;
        }
        self.prev += delta;
        Some(self.prev)
    }
}

/// Algorithm 4: the neighborhood mapper. Loads the R-tree in `setup`,
/// queries each trace's radius-`r` neighborhood, marks sparse traces as
/// noise (via a counter), and emits `(const, neighborhood)` so a single
/// reducer sees every neighborhood. Payloads shuffle delta-encoded (see
/// [`EncodedNeighborhood`]); the bytes saved versus raw ids accumulate
/// into [`builtin::SHUFFLE_BYTES_SAVED`] on task cleanup.
#[derive(Clone)]
pub struct NeighborhoodMapper {
    radius_m: f64,
    min_pts: usize,
    rtree: Option<Arc<RTree<u64>>>,
    bytes_saved: u64,
    counters: Option<Counters>,
}

impl Mapper<MobilityTrace> for NeighborhoodMapper {
    type KOut = u8;
    type VOut = EncodedNeighborhood;

    fn setup(&mut self, ctx: &TaskContext<'_>) {
        self.rtree = Some(ctx.cache.expect(RTREE_CACHE_KEY));
        if let Some(r) = ctx.config.get_f64("dj.radius") {
            self.radius_m = r;
        }
        if let Some(m) = ctx.config.get_usize("dj.minpts") {
            self.min_pts = m;
        }
        self.counters = Some(ctx.counters.clone());
    }

    fn map(
        &mut self,
        _offset: u64,
        value: &MobilityTrace,
        out: &mut Emitter<u8, EncodedNeighborhood>,
    ) {
        let tree = self.rtree.as_ref().expect("setup ran");
        let mut neighborhood: Vec<u64> = tree
            .within_radius_m(value.point, self.radius_m)
            .iter()
            .map(|e| e.payload)
            .collect();
        if neighborhood.len() < self.min_pts {
            // markAsNoise: nothing shuffles; the driver counts it.
            return;
        }
        neighborhood.sort_unstable();
        let encoded = EncodedNeighborhood::encode_sorted(&neighborhood);
        self.bytes_saved += (8 * neighborhood.len()).saturating_sub(encoded.encoded_len()) as u64;
        out.emit(0, encoded);
    }

    fn cleanup(&mut self, _out: &mut Emitter<u8, EncodedNeighborhood>) {
        if let Some(c) = &self.counters {
            c.inc(builtin::SHUFFLE_BYTES_SAVED, self.bytes_saved);
        }
        self.bytes_saved = 0;
    }
}

/// Algorithm 5: the single merging reducer — union-find over trace ids
/// joins every pair of neighborhoods sharing a trace. Neighborhoods are
/// decoded in place off their varint payloads, and — there being a single
/// key — the reducer opts out of the shuffle sort.
#[derive(Clone)]
pub struct MergeReducer;

impl Reducer<u8, EncodedNeighborhood> for MergeReducer {
    type KOut = u32;
    type VOut = Vec<u64>;

    /// Every pair lands in the one `key = 0` group and the output is
    /// sorted internally, so sorted shuffle input buys nothing.
    const SORTED_INPUT: bool = false;

    fn reduce(
        &mut self,
        _key: &u8,
        values: &[EncodedNeighborhood],
        out: &mut Emitter<u32, Vec<u64>>,
    ) {
        let mut uf = UnionFind::default();
        for neighborhood in values {
            let mut ids = neighborhood.iter();
            let Some(first) = ids.next() else {
                continue;
            };
            uf.union(first, first);
            for id in ids {
                uf.union(first, id);
            }
        }
        let mut clusters: HashMap<u64, Vec<u64>> = HashMap::new();
        for neighborhood in values {
            for id in neighborhood {
                clusters.entry(uf.find(id)).or_default().push(id);
            }
        }
        let mut sorted: Vec<Vec<u64>> = clusters
            .into_values()
            .map(|mut members| {
                members.sort_unstable();
                members.dedup();
                members
            })
            .collect();
        sorted.sort();
        for (i, members) in sorted.into_iter().enumerate() {
            out.emit(i as u32, members);
        }
    }
}

#[derive(Default, Clone)]
struct UnionFind {
    parent: HashMap<u64, u64>,
}

impl UnionFind {
    fn find(&mut self, x: u64) -> u64 {
        let p = *self.parent.entry(x).or_insert(x);
        if p == x {
            return x;
        }
        let root = self.find(p);
        self.parent.insert(x, root);
        root
    }

    fn union(&mut self, a: u64, b: u64) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent.insert(rb, ra);
        }
    }
}

/// Statistics of the clustering phases (2 and 3).
#[derive(Debug, Clone)]
pub struct DjClusterStats {
    /// The neighborhood + merge job.
    pub cluster_job: JobStats,
    /// R-tree construction report (when built with MapReduce).
    pub rtree_report: Option<crate::rtree_build::RTreeBuildReport>,
}

/// Runs DJ-Cluster phases 2–3 on an already-preprocessed `input` file.
///
/// The R-tree over the input is built with the MapReduce pipeline of
/// [`crate::rtree_build`] when `rtree_cfg` is given, or directly
/// otherwise, then shipped to mappers through the distributed cache.
pub fn mapreduce_djcluster(
    cluster: &Cluster,
    dfs: &Dfs<MobilityTrace>,
    input: &str,
    cfg: &DjConfig,
    rtree_cfg: Option<&RTreeBuildConfig>,
) -> Result<(Clustering, DjClusterStats), JobError> {
    mapreduce_djcluster_with(cluster, dfs, input, cfg, rtree_cfg, &Recorder::disabled())
}

/// [`mapreduce_djcluster`] with R-tree build and merge-job telemetry
/// captured under a `djcluster.cluster` span.
pub fn mapreduce_djcluster_with(
    cluster: &Cluster,
    dfs: &Dfs<MobilityTrace>,
    input: &str,
    cfg: &DjConfig,
    rtree_cfg: Option<&RTreeBuildConfig>,
    telemetry: &Recorder,
) -> Result<(Clustering, DjClusterStats), JobError> {
    let span = telemetry.span("djcluster.cluster", &[("input", input)]);
    let (rtree, rtree_report) = {
        let _rtree_span = telemetry.span("djcluster.rtree", &[]);
        match rtree_cfg {
            Some(rc) => {
                let (t, r) = mapreduce_build_rtree(cluster, dfs, input, rc)?;
                (t, Some(r))
            }
            None => (
                crate::rtree_build::direct_build_rtree(dfs, input, 16)?,
                None,
            ),
        }
    };
    let traces = dfs.read(input)?;

    let cache = {
        let mut c = DistributedCache::new();
        c.insert_arc(RTREE_CACHE_KEY, Arc::new(rtree));
        c
    };
    let result = MapReduceJob::new(
        "dj-cluster",
        cluster,
        dfs,
        input,
        NeighborhoodMapper {
            radius_m: cfg.radius_m,
            min_pts: cfg.min_pts,
            rtree: None,
            bytes_saved: 0,
            counters: None,
        },
        MergeReducer,
    )
    .reducers(1) // the merge "must be done by a centralized entity"
    .cache(cache)
    .pair_bytes(|_, n| n.encoded_len())
    .telemetry(telemetry.clone())
    .run()?;

    let clusters: Vec<Vec<MobilityTrace>> = result
        .output
        .iter()
        .map(|(_, members)| members.iter().map(|&id| traces[id as usize]).collect())
        .collect();
    let clustered: usize = clusters.iter().map(Vec::len).sum();
    let noise = traces.len() - clustered;
    telemetry.point(
        "djcluster.clusters",
        clusters.len() as f64,
        &[("noise", &noise.to_string())],
    );
    span.end();
    Ok((
        Clustering { clusters, noise },
        DjClusterStats {
            cluster_job: result.stats,
            rtree_report,
        },
    ))
}

/// [`mapreduce_djcluster_with`] hardened for a faulty cluster: the
/// neighborhood+merge job runs under
/// [`gepeto_mapred::run_with_recovery`]. The R-tree lives in the driver
/// (distributed cache), so it survives job deaths and is not rebuilt on
/// retry. Returns the clustering, the stats and the job re-submissions
/// needed.
pub fn mapreduce_djcluster_resilient(
    cluster: &Cluster,
    dfs: &mut Dfs<MobilityTrace>,
    input: &str,
    cfg: &DjConfig,
    rtree_cfg: Option<&RTreeBuildConfig>,
    policy: &RetryPolicy,
    telemetry: &Recorder,
) -> Result<(Clustering, DjClusterStats, u64), JobError> {
    let span = telemetry.span("djcluster.cluster", &[("input", input)]);
    let (rtree, rtree_report) = {
        let _rtree_span = telemetry.span("djcluster.rtree", &[]);
        match rtree_cfg {
            Some(rc) => {
                let (t, r) = mapreduce_build_rtree(cluster, dfs, input, rc)?;
                (t, Some(r))
            }
            None => (
                crate::rtree_build::direct_build_rtree(dfs, input, 16)?,
                None,
            ),
        }
    };
    let traces = dfs.read(input)?;
    let cache = {
        let mut c = DistributedCache::new();
        c.insert_arc(RTREE_CACHE_KEY, Arc::new(rtree));
        c
    };
    let (result, job_retries) = run_with_recovery(
        "dj-cluster",
        cluster,
        dfs,
        policy,
        telemetry,
        |name, dfs| {
            MapReduceJob::new(
                name,
                cluster,
                dfs,
                input,
                NeighborhoodMapper {
                    radius_m: cfg.radius_m,
                    min_pts: cfg.min_pts,
                    rtree: None,
                    bytes_saved: 0,
                    counters: None,
                },
                MergeReducer,
            )
            .reducers(1)
            .cache(cache.clone())
            .pair_bytes(|_, n| n.encoded_len())
            .telemetry(telemetry.clone())
            .run()
        },
    )?;

    let clusters: Vec<Vec<MobilityTrace>> = result
        .output
        .iter()
        .map(|(_, members)| members.iter().map(|&id| traces[id as usize]).collect())
        .collect();
    let clustered: usize = clusters.iter().map(Vec::len).sum();
    let noise = traces.len() - clustered;
    telemetry.point(
        "djcluster.clusters",
        clusters.len() as f64,
        &[("noise", &noise.to_string())],
    );
    span.end();
    Ok((
        Clustering { clusters, noise },
        DjClusterStats {
            cluster_job: result.stats,
            rtree_report,
        },
        job_retries as u64,
    ))
}

/// Exact sequential reference for phases 2–3.
pub fn sequential_djcluster(traces: &[MobilityTrace], cfg: &DjConfig) -> Clustering {
    let items: Vec<(gepeto_model::GeoPoint, u64)> = traces
        .iter()
        .enumerate()
        .map(|(i, t)| (t.point, i as u64))
        .collect();
    let tree = RTree::bulk_load(items);
    let mut uf = UnionFind::default();
    let mut dense: Vec<Vec<u64>> = Vec::new();
    for t in traces.iter() {
        let mut n: Vec<u64> = tree
            .within_radius_m(t.point, cfg.radius_m)
            .iter()
            .map(|e| e.payload)
            .collect();
        if n.len() < cfg.min_pts {
            continue;
        }
        n.sort_unstable();
        dense.push(n);
    }
    for n in &dense {
        let first = n[0];
        for &id in n {
            uf.union(first, id);
        }
    }
    let mut groups: HashMap<u64, Vec<u64>> = HashMap::new();
    for n in &dense {
        for &id in n {
            groups.entry(uf.find(id)).or_default().push(id);
        }
    }
    let mut clusters: Vec<Vec<MobilityTrace>> = groups
        .into_values()
        .map(|mut members| {
            members.sort_unstable();
            members.dedup();
            members.iter().map(|&i| traces[i as usize]).collect()
        })
        .collect();
    clusters.sort_by_key(|c: &Vec<MobilityTrace>| {
        c.first().map(|t| (t.user, t.timestamp)).unwrap_or_default()
    });
    let clustered: usize = clusters.iter().map(Vec::len).sum();
    Clustering {
        clusters,
        noise: traces.len() - clustered,
    }
}

/// End-to-end convenience: preprocess then cluster, returning everything.
pub fn mapreduce_djcluster_full(
    cluster: &Cluster,
    dfs: &mut Dfs<MobilityTrace>,
    input: &str,
    cfg: &DjConfig,
    rtree_cfg: Option<&RTreeBuildConfig>,
) -> Result<(Clustering, PreprocessStats, DjClusterStats), JobError> {
    mapreduce_djcluster_full_with(cluster, dfs, input, cfg, rtree_cfg, &Recorder::disabled())
}

/// [`mapreduce_djcluster_full`] with all phase timings captured under a
/// root `djcluster` span.
pub fn mapreduce_djcluster_full_with(
    cluster: &Cluster,
    dfs: &mut Dfs<MobilityTrace>,
    input: &str,
    cfg: &DjConfig,
    rtree_cfg: Option<&RTreeBuildConfig>,
    telemetry: &Recorder,
) -> Result<(Clustering, PreprocessStats, DjClusterStats), JobError> {
    let span = telemetry.span("djcluster", &[("input", input)]);
    let pre_name = format!("{input}.preprocessed");
    if dfs.exists(&pre_name) {
        dfs.delete(&pre_name)?;
    }
    let pre = mapreduce_preprocess_with(cluster, dfs, input, &pre_name, cfg, telemetry)?;
    let (clustering, stats) =
        mapreduce_djcluster_with(cluster, dfs, &pre_name, cfg, rtree_cfg, telemetry)?;
    span.end();
    Ok((clustering, pre, stats))
}

/// [`mapreduce_djcluster_full_with`] hardened for a faulty cluster:
/// every stage job carries the given retry policy (see
/// [`mapreduce_preprocess_resilient`] and
/// [`mapreduce_djcluster_resilient`]). The final element of the result
/// is the total number of whole-job re-submissions across all stages.
pub fn mapreduce_djcluster_full_resilient(
    cluster: &Cluster,
    dfs: &mut Dfs<MobilityTrace>,
    input: &str,
    cfg: &DjConfig,
    rtree_cfg: Option<&RTreeBuildConfig>,
    policy: &RetryPolicy,
    telemetry: &Recorder,
) -> Result<(Clustering, PreprocessStats, DjClusterStats, u64), JobError> {
    let span = telemetry.span("djcluster", &[("input", input)]);
    let pre_name = format!("{input}.preprocessed");
    if dfs.exists(&pre_name) {
        dfs.delete(&pre_name)?;
    }
    let (pre, pre_retries) =
        mapreduce_preprocess_resilient(cluster, dfs, input, &pre_name, cfg, policy, telemetry)?;
    let (clustering, stats, cluster_retries) =
        mapreduce_djcluster_resilient(cluster, dfs, &pre_name, cfg, rtree_cfg, policy, telemetry)?;
    span.end();
    Ok((clustering, pre, stats, pre_retries + cluster_retries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfs_io::{put_dataset, trace_dfs};
    use gepeto_model::{GeoPoint, Timestamp};

    /// A trail that dwells at two spots with a fast trip in between.
    fn dwell_trip_dwell() -> Dataset {
        let mut traces = Vec::new();
        let spot_a = GeoPoint::new(39.90, 116.40);
        let spot_b = GeoPoint::new(39.92, 116.42);
        let mut t = 0i64;
        // Dwell A: 20 samples, 5 s apart, ~2 m GPS wobble (slow enough for
        // the speed filter, wide enough for the 0.5 m dedup threshold).
        for i in 0..20 {
            let p = GeoPoint::new(spot_a.lat + (i % 3) as f64 * 2e-5, spot_a.lon);
            traces.push(MobilityTrace::new(1, p, Timestamp(t)));
            t += 5;
        }
        // Trip: 10 samples at ~10 m/s.
        for i in 1..=10 {
            let frac = i as f64 / 10.0;
            let p = GeoPoint::new(
                spot_a.lat + (spot_b.lat - spot_a.lat) * frac,
                spot_a.lon + (spot_b.lon - spot_a.lon) * frac,
            );
            t += 30;
            traces.push(MobilityTrace::new(1, p, Timestamp(t)));
        }
        // Dwell B.
        for i in 0..20 {
            let p = GeoPoint::new(spot_b.lat, spot_b.lon + (i % 3) as f64 * 2e-5);
            t += 5;
            traces.push(MobilityTrace::new(1, p, Timestamp(t)));
        }
        Dataset::from_traces(traces)
    }

    #[test]
    fn speed_filter_drops_the_trip() {
        let ds = dwell_trip_dwell();
        let cfg = DjConfig::default();
        let pre = sequential_preprocess(&ds, &cfg);
        // The ~10 trip traces are gone; most dwell traces survive
        // (dedup may eat a few of the jittered dwell points).
        assert!(pre.num_traces() >= 30, "{}", pre.num_traces());
        assert!(pre.num_traces() < 45, "{}", pre.num_traces());
    }

    #[test]
    fn dedup_removes_exact_repeats() {
        let p = GeoPoint::new(39.9, 116.4);
        let traces: Vec<MobilityTrace> = (0..10)
            .map(|i| MobilityTrace::new(1, p, Timestamp(i * 60)))
            .collect();
        let ds = Dataset::from_traces(traces);
        let pre = sequential_preprocess(&ds, &DjConfig::default());
        assert_eq!(pre.num_traces(), 1);
    }

    #[test]
    fn mapreduce_preprocess_matches_sequential_single_chunk() {
        let ds = dwell_trip_dwell();
        let cluster = Cluster::local(2, 2);
        let mut dfs = trace_dfs(&cluster, 1 << 20);
        put_dataset(&mut dfs, "d", &ds).unwrap();
        let cfg = DjConfig::default();
        let stats = mapreduce_preprocess(&cluster, &mut dfs, "d", "out", &cfg).unwrap();
        let seq = sequential_preprocess(&ds, &cfg);
        assert_eq!(stats.input, ds.num_traces());
        assert_eq!(stats.after_dedup, seq.num_traces());
        assert!(stats.after_speed_filter >= stats.after_dedup);
        assert_eq!(stats.jobs.num_jobs(), 2);
        let out = crate::dfs_io::read_dataset(&dfs, "out").unwrap();
        assert_eq!(out, seq);
    }

    #[test]
    fn clustering_finds_the_two_dwell_spots() {
        let ds = dwell_trip_dwell();
        let cfg = DjConfig {
            radius_m: 50.0,
            min_pts: 4,
            ..DjConfig::default()
        };
        let pre = sequential_preprocess(&ds, &cfg);
        let clustering = sequential_djcluster(&pre.to_traces(), &cfg);
        assert_eq!(clustering.clusters.len(), 2, "noise={}", clustering.noise);
        for c in &clustering.clusters {
            assert!(c.len() >= cfg.min_pts);
        }
    }

    #[test]
    fn clusters_are_non_overlapping() {
        let ds = dwell_trip_dwell();
        let cfg = DjConfig::default();
        let pre = sequential_preprocess(&ds, &cfg);
        let clustering = sequential_djcluster(&pre.to_traces(), &cfg);
        let mut seen = std::collections::HashSet::new();
        for c in &clustering.clusters {
            for t in c {
                assert!(
                    seen.insert((t.user, t.timestamp.secs(), t.point.lat.to_bits())),
                    "trace in two clusters"
                );
            }
        }
    }

    #[test]
    fn sparse_points_are_noise() {
        // 3 isolated points: all noise under min_pts = 4.
        let traces: Vec<MobilityTrace> = (0..3)
            .map(|i| {
                MobilityTrace::new(
                    1,
                    GeoPoint::new(39.0 + i as f64, 116.0),
                    Timestamp(i as i64 * 1000),
                )
            })
            .collect();
        let clustering = sequential_djcluster(&traces, &DjConfig::default());
        assert!(clustering.clusters.is_empty());
        assert_eq!(clustering.noise, 3);
    }

    #[test]
    fn mapreduce_clustering_equals_sequential() {
        let ds = dwell_trip_dwell();
        let cfg = DjConfig::default();
        let cluster = Cluster::local(3, 2);
        let mut dfs = trace_dfs(&cluster, 1_024); // multiple chunks
        let pre = sequential_preprocess(&ds, &cfg);
        put_dataset(&mut dfs, "pre", &pre).unwrap();
        let (mr, stats) = mapreduce_djcluster(&cluster, &dfs, "pre", &cfg, None).unwrap();
        let seq = sequential_djcluster(&dfs.read("pre").unwrap(), &cfg);
        assert_eq!(mr.canonical_ids(), seq.canonical_ids());
        assert_eq!(mr.noise, seq.noise);
        assert_eq!(stats.cluster_job.reduce_tasks, 1, "single merging reducer");
    }

    #[test]
    fn varint_delta_roundtrips_sorted_id_lists() {
        // Deterministic xorshift over assorted list shapes, plus edge
        // values straddling every varint byte-length boundary.
        let mut s = 0x9e37_79b9_7f4a_7c15u64;
        let mut rand = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut cases: Vec<Vec<u64>> = vec![
            vec![],
            vec![0],
            vec![0, 0, 0],
            vec![127, 128, 16_383, 16_384, 2_097_151, 2_097_152],
            vec![u64::MAX - 1, u64::MAX],
            vec![0, u64::MAX],
        ];
        for len in [1usize, 2, 17, 300] {
            let mut ids: Vec<u64> = (0..len).map(|_| rand() % 1_000_000).collect();
            ids.sort_unstable();
            cases.push(ids);
        }
        for ids in cases {
            let enc = EncodedNeighborhood::encode_sorted(&ids);
            assert_eq!(enc.decode(), ids, "roundtrip failed for {ids:?}");
            assert_eq!(enc.is_empty(), ids.is_empty());
            // Streaming twice gives the same sequence (iter borrows).
            assert_eq!(enc.iter().count(), ids.len());
        }
    }

    #[test]
    fn delta_encoding_beats_raw_ids_on_dense_neighborhoods() {
        // Dense index neighborhoods — the real shape after preprocessing.
        let ids: Vec<u64> = (100..600).collect();
        let enc = EncodedNeighborhood::encode_sorted(&ids);
        let raw = 8 * ids.len();
        assert!(
            enc.encoded_len() * 3 < raw,
            "encoded {} vs raw {raw}",
            enc.encoded_len()
        );
    }

    #[test]
    fn clustering_shuffle_is_compressed_and_sort_skipped() {
        let ds = dwell_trip_dwell();
        let cfg = DjConfig::default();
        let cluster = Cluster::local(3, 2);
        let mut dfs = trace_dfs(&cluster, 1_024);
        let pre = sequential_preprocess(&ds, &cfg);
        put_dataset(&mut dfs, "pre", &pre).unwrap();
        let (_, stats) = mapreduce_djcluster(&cluster, &dfs, "pre", &cfg, None).unwrap();
        let saved = stats.cluster_job.counters[builtin::SHUFFLE_BYTES_SAVED];
        assert!(saved > 0, "compression saved nothing");
        // The encoded shuffle plus the saving reconstructs the raw size,
        // and the encoding wins by a wide margin on dense indexes.
        let shuffled = stats.cluster_job.sim.shuffle_bytes;
        assert!(
            saved >= 2 * shuffled,
            "saved {saved} vs shuffled {shuffled}"
        );
        // The single-key merge reducer skips the shuffle sort.
        assert_eq!(stats.cluster_job.counters[builtin::SORT_SKIPPED], 1);
    }

    #[test]
    fn mapreduce_clustering_with_mapreduce_rtree() {
        let ds = dwell_trip_dwell();
        let cfg = DjConfig::default();
        let cluster = Cluster::local(3, 2);
        let mut dfs = trace_dfs(&cluster, 1_024);
        let pre = sequential_preprocess(&ds, &cfg);
        put_dataset(&mut dfs, "pre", &pre).unwrap();
        let rc = RTreeBuildConfig {
            partitions: 3,
            ..RTreeBuildConfig::default()
        };
        let (mr, stats) = mapreduce_djcluster(&cluster, &dfs, "pre", &cfg, Some(&rc)).unwrap();
        let seq = sequential_djcluster(&dfs.read("pre").unwrap(), &cfg);
        assert_eq!(mr.canonical_ids(), seq.canonical_ids());
        assert!(stats.rtree_report.is_some());
    }

    #[test]
    fn full_pipeline_runs_end_to_end() {
        let ds = dwell_trip_dwell();
        let cfg = DjConfig::default();
        let cluster = Cluster::local(2, 2);
        let mut dfs = trace_dfs(&cluster, 1 << 16);
        put_dataset(&mut dfs, "raw", &ds).unwrap();
        let (clustering, pre, _) =
            mapreduce_djcluster_full(&cluster, &mut dfs, "raw", &cfg, None).unwrap();
        assert_eq!(pre.input, ds.num_traces());
        assert!(pre.after_dedup <= pre.after_speed_filter);
        assert_eq!(clustering.clusters.len(), 2);
    }

    #[test]
    fn empty_input_clusters_to_nothing() {
        let clustering = sequential_djcluster(&[], &DjConfig::default());
        assert!(clustering.clusters.is_empty());
        assert_eq!(clustering.noise, 0);
    }
}
