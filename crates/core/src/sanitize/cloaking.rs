//! Spatial cloaking (§VIII; Gruteser & Grunwald): coordinates are
//! coarsened to grid cells, and a trace is released only when its cell
//! is shared by at least `k` distinct users over the dataset's lifetime —
//! the k-anonymity condition.

use super::aggregation::SpatialAggregation;
use super::Sanitizer;
use gepeto_model::{Dataset, MobilityTrace};
use std::collections::{HashMap, HashSet};

/// k-anonymous grid cloaking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpatialCloaking {
    /// Cloaking cell side, meters.
    pub cell_m: f64,
    /// Minimum number of distinct users that must share a cell for its
    /// traces to be released.
    pub k: usize,
}

impl Sanitizer for SpatialCloaking {
    fn name(&self) -> String {
        format!("spatial-cloaking(cell={} m, k={})", self.cell_m, self.k)
    }

    fn apply(&self, dataset: &Dataset) -> Dataset {
        let agg = SpatialAggregation {
            cell_m: self.cell_m,
        };
        // Pass 1: distinct users per cell.
        let mut users_per_cell: HashMap<(i64, i64), HashSet<u32>> = HashMap::new();
        for t in dataset.iter_traces() {
            let c = agg.snap(t.point);
            users_per_cell
                .entry(cell_key(c))
                .or_default()
                .insert(t.user);
        }
        // Pass 2: release cloaked traces of popular cells only.
        Dataset::from_traces(dataset.iter_traces().filter_map(|t| {
            let snapped = agg.snap(t.point);
            (users_per_cell[&cell_key(snapped)].len() >= self.k).then_some(MobilityTrace {
                point: snapped,
                ..*t
            })
        }))
    }
}

fn cell_key(p: gepeto_model::GeoPoint) -> (i64, i64) {
    // Snapped centers are exact; quantize to avoid float-key fragility.
    ((p.lat * 1e7).round() as i64, (p.lon * 1e7).round() as i64)
}

#[cfg(test)]
mod tests {
    use super::super::testutil::two_user_dataset;
    use super::*;
    use gepeto_model::{GeoPoint, Timestamp};

    #[test]
    fn k1_keeps_everything_cloaked() {
        let ds = two_user_dataset();
        let out = SpatialCloaking {
            cell_m: 200.0,
            k: 1,
        }
        .apply(&ds);
        assert_eq!(out.num_traces(), ds.num_traces());
        // …but coordinates are coarsened: few distinct positions remain.
        let distinct: HashSet<(i64, i64)> = out.iter_traces().map(|t| cell_key(t.point)).collect();
        assert!(distinct.len() <= 4, "{}", distinct.len());
    }

    #[test]
    fn lone_users_cells_are_suppressed() {
        // Users 1 and 2 dwell ~7 km apart: with k=2 nobody shares a cell,
        // so everything is suppressed.
        let ds = two_user_dataset();
        let out = SpatialCloaking {
            cell_m: 200.0,
            k: 2,
        }
        .apply(&ds);
        assert_eq!(out.num_traces(), 0);
    }

    #[test]
    fn shared_cells_survive_k2() {
        // Two users at the same spot + one loner elsewhere.
        let mut traces = Vec::new();
        for u in [1u32, 2] {
            for i in 0..10i64 {
                traces.push(MobilityTrace::new(
                    u,
                    GeoPoint::new(39.900, 116.400),
                    Timestamp(i * 60),
                ));
            }
        }
        for i in 0..10i64 {
            traces.push(MobilityTrace::new(
                3,
                GeoPoint::new(39.99, 116.49),
                Timestamp(i * 60),
            ));
        }
        let ds = Dataset::from_traces(traces);
        let out = SpatialCloaking {
            cell_m: 200.0,
            k: 2,
        }
        .apply(&ds);
        assert_eq!(out.num_traces(), 20); // the loner's 10 are gone
        assert!(out.trail(3).is_none());
    }

    #[test]
    fn timestamps_survive_cloaking() {
        let ds = two_user_dataset();
        let out = SpatialCloaking {
            cell_m: 300.0,
            k: 1,
        }
        .apply(&ds);
        let a: Vec<i64> = ds.iter_traces().map(|t| t.timestamp.secs()).collect();
        let b: Vec<i64> = out.iter_traces().map(|t| t.timestamp.secs()).collect();
        assert_eq!(a, b);
    }
}
