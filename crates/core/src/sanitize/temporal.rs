//! Temporal cloaking: the time-axis counterpart of spatial cloaking
//! (Gruteser & Grunwald cloak both dimensions; §II notes a timestamp
//! "can be the exact date and time or just an interval, e.g. between 2PM
//! and 6PM"). Timestamps are coarsened to the center of their window, so
//! an adversary can no longer order events within a window or correlate
//! them with external fine-grained observations.

use super::Sanitizer;
use gepeto_model::{Dataset, MobilityTrace, Timestamp};

/// Rounds every timestamp to the center of its `window_secs` window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemporalCloaking {
    /// Cloaking window length in seconds (> 0).
    pub window_secs: i64,
}

impl TemporalCloaking {
    /// The cloaked form of `ts`.
    pub fn cloak(&self, ts: Timestamp) -> Timestamp {
        assert!(self.window_secs > 0, "window must be positive");
        let w = ts.secs().div_euclid(self.window_secs);
        Timestamp(w * self.window_secs + self.window_secs / 2)
    }
}

impl Sanitizer for TemporalCloaking {
    fn name(&self) -> String {
        format!("temporal-cloaking(window={} s)", self.window_secs)
    }

    fn apply(&self, dataset: &Dataset) -> Dataset {
        Dataset::from_traces(dataset.iter_traces().map(|t| MobilityTrace {
            timestamp: self.cloak(t.timestamp),
            ..*t
        }))
    }
}

/// Utility metric companion: mean absolute timestamp displacement in
/// seconds between two datasets with identical trace counts per user.
pub fn mean_time_displacement_s(original: &Dataset, cloaked: &Dataset) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for trail in original.trails() {
        let Some(c) = cloaked.trail(trail.user) else {
            continue;
        };
        for (a, b) in trail.traces().iter().zip(c.traces()) {
            total += (a.timestamp.delta(b.timestamp)).abs() as f64;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::two_user_dataset;
    use super::*;
    use gepeto_model::GeoPoint;

    #[test]
    fn cloaks_to_window_centers() {
        let c = TemporalCloaking { window_secs: 600 };
        assert_eq!(c.cloak(Timestamp(0)), Timestamp(300));
        assert_eq!(c.cloak(Timestamp(599)), Timestamp(300));
        assert_eq!(c.cloak(Timestamp(600)), Timestamp(900));
        assert_eq!(c.cloak(Timestamp(-1)), Timestamp(-300)); // window [-600,0)
    }

    #[test]
    fn cloaking_is_idempotent() {
        let c = TemporalCloaking { window_secs: 300 };
        for s in [-1000i64, -1, 0, 1, 149, 150, 299, 12_345] {
            let once = c.cloak(Timestamp(s));
            assert_eq!(c.cloak(once), once, "s={s}");
        }
    }

    #[test]
    fn displacement_bounded_by_half_window() {
        let ds = two_user_dataset();
        let c = TemporalCloaking { window_secs: 240 };
        let out = c.apply(&ds);
        assert_eq!(out.num_traces(), ds.num_traces());
        for (a, b) in ds.iter_traces().zip(out.iter_traces()) {
            assert!((a.timestamp.delta(b.timestamp)).abs() <= 120);
            assert_eq!(a.point, b.point); // space untouched
        }
        let mean = mean_time_displacement_s(&ds, &out);
        assert!(mean <= 120.0);
        assert!(mean > 0.0);
    }

    #[test]
    fn events_within_a_window_become_indistinguishable() {
        use gepeto_model::MobilityTrace;
        let mk = |s| MobilityTrace::new(1, GeoPoint::new(39.9, 116.4), Timestamp(s));
        let ds = Dataset::from_traces(vec![mk(10), mk(20), mk(50)]);
        let out = TemporalCloaking { window_secs: 60 }.apply(&ds);
        let times: Vec<i64> = out.iter_traces().map(|t| t.timestamp.secs()).collect();
        assert!(times.iter().all(|&t| t == 30));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_rejected() {
        let _ = TemporalCloaking { window_secs: 0 }.cloak(Timestamp(5));
    }
}
