//! Geographical masks: perturb each trace's coordinate with random noise
//! while keeping identifiers and timestamps intact.

use super::Sanitizer;
use gepeto_mapred::hash::fnv_hash;
use gepeto_model::{Dataset, GeoPoint, MobilityTrace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const M_PER_DEG: f64 = 111_194.93;

fn displaced(p: GeoPoint, north_m: f64, east_m: f64) -> GeoPoint {
    GeoPoint::new(
        (p.lat + north_m / M_PER_DEG).clamp(-90.0, 90.0),
        p.lon + east_m / (M_PER_DEG * p.lat.to_radians().cos().max(1e-9)),
    )
}

/// Per-trace RNG keyed by (seed, user, timestamp): deterministic and
/// independent of dataset iteration order *and* chunking, so the
/// map-only MapReduce sanitizer ([`super::mapreduce`]) produces exactly
/// the same noise as this sequential path. Two traces of one user at the
/// same second would share their displacement — harmless, as they are
/// duplicates the preprocessing phase removes anyway.
fn trace_rng(seed: u64, t: &MobilityTrace) -> StdRng {
    StdRng::seed_from_u64(fnv_hash(&(seed, t.user, t.timestamp.secs())))
}

/// Gaussian geographical mask: i.i.d. `N(0, σ²)` displacement per axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianMask {
    /// Standard deviation of the displacement per axis, meters.
    pub sigma_m: f64,
    /// Seed of the deterministic noise stream.
    pub seed: u64,
}

impl Sanitizer for GaussianMask {
    fn name(&self) -> String {
        format!("gaussian-mask(sigma={} m)", self.sigma_m)
    }

    fn apply(&self, dataset: &Dataset) -> Dataset {
        Dataset::from_traces(dataset.iter_traces().map(|t| {
            let mut rng = trace_rng(self.seed, t);
            let n = gepeto_geolife::rng::normal(&mut rng, 0.0, self.sigma_m);
            let e = gepeto_geolife::rng::normal(&mut rng, 0.0, self.sigma_m);
            MobilityTrace {
                point: displaced(t.point, n, e),
                ..*t
            }
        }))
    }
}

/// Uniform-disc geographical mask: displacement uniform on a disc of the
/// given radius.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformMask {
    /// Radius of the displacement disc, meters.
    pub radius_m: f64,
    /// Seed of the deterministic noise stream.
    pub seed: u64,
}

impl Sanitizer for UniformMask {
    fn name(&self) -> String {
        format!("uniform-mask(r={} m)", self.radius_m)
    }

    fn apply(&self, dataset: &Dataset) -> Dataset {
        Dataset::from_traces(dataset.iter_traces().map(|t| {
            let mut rng = trace_rng(self.seed, t);
            // Uniform on the disc: r = R√u, θ uniform.
            let r = self.radius_m * rng.random::<f64>().sqrt();
            let theta = rng.random::<f64>() * std::f64::consts::TAU;
            MobilityTrace {
                point: displaced(t.point, r * theta.sin(), r * theta.cos()),
                ..*t
            }
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::two_user_dataset;
    use super::*;
    use gepeto_geo::haversine_m;

    #[test]
    fn gaussian_mask_preserves_structure() {
        let ds = two_user_dataset();
        let masked = GaussianMask {
            sigma_m: 50.0,
            seed: 1,
        }
        .apply(&ds);
        assert_eq!(masked.num_traces(), ds.num_traces());
        assert_eq!(masked.num_users(), ds.num_users());
        // Timestamps untouched.
        for (a, b) in ds.iter_traces().zip(masked.iter_traces()) {
            assert_eq!(a.timestamp, b.timestamp);
            assert_eq!(a.user, b.user);
        }
    }

    #[test]
    fn gaussian_mask_moves_points_by_about_sigma() {
        let ds = two_user_dataset();
        let masked = GaussianMask {
            sigma_m: 100.0,
            seed: 2,
        }
        .apply(&ds);
        let displacements: Vec<f64> = ds
            .iter_traces()
            .zip(masked.iter_traces())
            .map(|(a, b)| haversine_m(a.point, b.point))
            .collect();
        let mean = displacements.iter().sum::<f64>() / displacements.len() as f64;
        // Mean of a 2-D Gaussian's norm is σ√(π/2) ≈ 1.25 σ.
        assert!((80.0..180.0).contains(&mean), "mean displacement {mean}");
        assert!(displacements.iter().any(|&d| d > 1.0));
    }

    #[test]
    fn uniform_mask_bounded_by_radius() {
        let ds = two_user_dataset();
        let masked = UniformMask {
            radius_m: 200.0,
            seed: 3,
        }
        .apply(&ds);
        for (a, b) in ds.iter_traces().zip(masked.iter_traces()) {
            assert!(haversine_m(a.point, b.point) <= 201.0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = two_user_dataset();
        let m = GaussianMask {
            sigma_m: 30.0,
            seed: 9,
        };
        assert_eq!(m.apply(&ds), m.apply(&ds));
        let other = GaussianMask {
            sigma_m: 30.0,
            seed: 10,
        };
        assert_ne!(m.apply(&ds), other.apply(&ds));
    }

    #[test]
    fn zero_noise_is_identity_shaped() {
        let ds = two_user_dataset();
        let masked = GaussianMask {
            sigma_m: 0.0,
            seed: 1,
        }
        .apply(&ds);
        for (a, b) in ds.iter_traces().zip(masked.iter_traces()) {
            assert!(haversine_m(a.point, b.point) < 1e-6);
        }
    }

    #[test]
    fn names_are_descriptive() {
        assert!(GaussianMask {
            sigma_m: 50.0,
            seed: 0
        }
        .name()
        .contains("gaussian"));
        assert!(UniformMask {
            radius_m: 10.0,
            seed: 0
        }
        .name()
        .contains("uniform"));
    }
}
