//! Spatial aggregation: "aggregate several mobility traces into a single
//! spatial coordinate" (§VIII) — every coordinate snaps to the center of
//! its grid cell, so all traces inside a cell become spatially
//! indistinguishable.

use super::Sanitizer;
use gepeto_model::{Dataset, GeoPoint, MobilityTrace};

const M_PER_DEG: f64 = 111_194.93;

/// Snap-to-grid aggregation with a configurable cell size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpatialAggregation {
    /// Grid cell side, meters.
    pub cell_m: f64,
}

impl SpatialAggregation {
    /// The cell center the point snaps to.
    ///
    /// Longitude cells are sized at the *snapped* latitude (the cell
    /// band), not the point's raw latitude — otherwise every distinct
    /// latitude would define its own longitude grid and snapping would
    /// not be idempotent.
    pub fn snap(&self, p: GeoPoint) -> GeoPoint {
        let cell_lat = self.cell_m / M_PER_DEG;
        let lat = (p.lat / cell_lat).floor() * cell_lat + cell_lat / 2.0;
        let cell_lon = self.cell_m / (M_PER_DEG * lat.to_radians().cos().max(1e-9));
        let lon = (p.lon / cell_lon).floor() * cell_lon + cell_lon / 2.0;
        GeoPoint::new(lat, lon)
    }
}

impl Sanitizer for SpatialAggregation {
    fn name(&self) -> String {
        format!("spatial-aggregation(cell={} m)", self.cell_m)
    }

    fn apply(&self, dataset: &Dataset) -> Dataset {
        Dataset::from_traces(dataset.iter_traces().map(|t| MobilityTrace {
            point: self.snap(t.point),
            ..*t
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::two_user_dataset;
    use super::*;
    use gepeto_geo::haversine_m;

    #[test]
    fn snapping_is_idempotent() {
        let agg = SpatialAggregation { cell_m: 250.0 };
        let p = GeoPoint::new(39.9042, 116.4074);
        let s1 = agg.snap(p);
        let s2 = agg.snap(s1);
        assert!(haversine_m(s1, s2) < 1e-6);
    }

    #[test]
    fn displacement_bounded_by_cell_diagonal() {
        let agg = SpatialAggregation { cell_m: 250.0 };
        let ds = two_user_dataset();
        let out = agg.apply(&ds);
        for (a, b) in ds.iter_traces().zip(out.iter_traces()) {
            // Half-diagonal of a 250 m cell ≈ 177 m.
            assert!(haversine_m(a.point, b.point) <= 180.0);
        }
    }

    #[test]
    fn nearby_points_collapse_to_one_coordinate() {
        let agg = SpatialAggregation { cell_m: 500.0 };
        let a = agg.snap(GeoPoint::new(39.9001, 116.4001));
        let b = agg.snap(GeoPoint::new(39.9003, 116.4004)); // ~40 m away
        assert_eq!(a, b);
    }

    #[test]
    fn distant_points_stay_distinct() {
        let agg = SpatialAggregation { cell_m: 100.0 };
        let a = agg.snap(GeoPoint::new(39.90, 116.40));
        let b = agg.snap(GeoPoint::new(39.95, 116.45));
        assert_ne!(a, b);
    }

    #[test]
    fn counts_and_times_preserved() {
        let ds = two_user_dataset();
        let out = SpatialAggregation { cell_m: 300.0 }.apply(&ds);
        assert_eq!(out.num_traces(), ds.num_traces());
        for (a, b) in ds.iter_traces().zip(out.iter_traces()) {
            assert_eq!(a.timestamp, b.timestamp);
            assert_eq!(a.user, b.user);
        }
    }
}
