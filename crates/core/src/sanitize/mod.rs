//! Geo-sanitization mechanisms (§VIII): "geographical masks that modify
//! the spatial coordinate of a mobility trace by adding some random
//! noise, or aggregate several mobility traces into a single spatial
//! coordinate … more sophisticated geo-sanitization methods … such as
//! spatial cloaking techniques and mix zones."
//!
//! All sanitizers implement [`Sanitizer`]: a pure, deterministic
//! `Dataset → Dataset` transformation, so the privacy/utility loop of
//! [`crate::metrics`] can treat them uniformly. Down-sampling
//! ([`crate::sampling`]) doubles as a temporal sanitizer.

pub mod aggregation;
pub mod cloaking;
pub mod mapreduce;
pub mod mixzone;
pub mod noise;
pub mod temporal;

pub use aggregation::SpatialAggregation;
pub use cloaking::SpatialCloaking;
pub use mapreduce::{mapreduce_sanitize, PerTraceMechanism};
pub use mixzone::{MixZone, MixZones};
pub use noise::{GaussianMask, UniformMask};
pub use temporal::TemporalCloaking;

use gepeto_model::Dataset;

/// A sanitization mechanism: a deterministic dataset transformation.
pub trait Sanitizer {
    /// Human-readable mechanism name for reports.
    fn name(&self) -> String;

    /// Applies the mechanism.
    fn apply(&self, dataset: &Dataset) -> Dataset;
}

#[cfg(test)]
pub(crate) mod testutil {
    use gepeto_model::{Dataset, GeoPoint, MobilityTrace, Timestamp};

    /// A two-user dataset dwelling around fixed spots.
    pub fn two_user_dataset() -> Dataset {
        let mut traces = Vec::new();
        for (u, lat, lon) in [(1u32, 39.90, 116.40), (2, 39.95, 116.50)] {
            for i in 0..50i64 {
                traces.push(MobilityTrace::new(
                    u,
                    GeoPoint::new(lat + (i % 5) as f64 * 1e-5, lon + (i % 3) as f64 * 1e-5),
                    Timestamp(i * 60),
                ));
            }
        }
        Dataset::from_traces(traces)
    }
}
