//! Sanitization **as MapReduce jobs** — §VIII: "We also want to design
//! MapReduced versions of geo-sanitization mechanisms such as
//! geographical masks that modify the spatial coordinate of a mobility
//! trace by adding some random noise, or aggregate several mobility
//! traces into a single spatial coordinate."
//!
//! Per-trace mechanisms (noise masks, spatial aggregation, temporal
//! cloaking) are pure functions of a single record, so they MapReduce as
//! **map-only** jobs — the cheapest possible shape, like the paper's
//! sampling. Dataset-global mechanisms (k-anonymous cloaking, mix zones)
//! need cross-record state and stay on the [`super::Sanitizer`] path.

use super::aggregation::SpatialAggregation;
use super::noise::{GaussianMask, UniformMask};
use super::temporal::TemporalCloaking;
use gepeto_mapred::{Cluster, Dfs, Emitter, JobError, JobStats, MapOnlyJob, Mapper};
use gepeto_model::{Dataset, MobilityTrace, UserId};

/// The per-trace mechanisms that run as map-only jobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PerTraceMechanism {
    /// Gaussian geographical mask.
    Gaussian(GaussianMask),
    /// Uniform-disc geographical mask.
    Uniform(UniformMask),
    /// Snap-to-grid spatial aggregation.
    Aggregate(SpatialAggregation),
    /// Timestamp coarsening.
    Temporal(TemporalCloaking),
}

impl PerTraceMechanism {
    /// Applies the mechanism to one trace. Deterministic: noise masks key
    /// their RNG on the trace itself, so the result is independent of
    /// chunking and task order.
    pub fn apply_trace(&self, index: u64, t: &MobilityTrace) -> MobilityTrace {
        match self {
            // The mask sanitizers are documented deterministic per
            // (seed, trace); reuse their dataset paths on a singleton to
            // avoid duplicating the displacement math.
            PerTraceMechanism::Gaussian(m) => single(
                &super::Sanitizer::apply(m, &Dataset::from_traces([*t])),
                index,
            ),
            PerTraceMechanism::Uniform(m) => single(
                &super::Sanitizer::apply(m, &Dataset::from_traces([*t])),
                index,
            ),
            PerTraceMechanism::Aggregate(a) => MobilityTrace {
                point: a.snap(t.point),
                ..*t
            },
            PerTraceMechanism::Temporal(c) => MobilityTrace {
                timestamp: c.cloak(t.timestamp),
                ..*t
            },
        }
    }

    /// Human-readable name (mirrors [`super::Sanitizer::name`]).
    pub fn name(&self) -> String {
        match self {
            PerTraceMechanism::Gaussian(m) => super::Sanitizer::name(m),
            PerTraceMechanism::Uniform(m) => super::Sanitizer::name(m),
            PerTraceMechanism::Aggregate(a) => super::Sanitizer::name(a),
            PerTraceMechanism::Temporal(c) => super::Sanitizer::name(c),
        }
    }
}

fn single(ds: &Dataset, _index: u64) -> MobilityTrace {
    *ds.iter_traces().next().expect("singleton dataset")
}

/// The map-only sanitization mapper.
#[derive(Clone)]
pub struct SanitizeMapper {
    mechanism: PerTraceMechanism,
}

impl Mapper<MobilityTrace> for SanitizeMapper {
    type KOut = UserId;
    type VOut = MobilityTrace;

    fn map(
        &mut self,
        offset: u64,
        value: &MobilityTrace,
        out: &mut Emitter<UserId, MobilityTrace>,
    ) {
        let sanitized = self.mechanism.apply_trace(offset, value);
        out.emit(sanitized.user, sanitized);
    }
}

/// Applies a per-trace mechanism to `input` as a map-only MapReduce job,
/// returning the sanitized dataset and job statistics.
pub fn mapreduce_sanitize(
    cluster: &Cluster,
    dfs: &Dfs<MobilityTrace>,
    input: &str,
    mechanism: PerTraceMechanism,
) -> Result<(Dataset, JobStats), JobError> {
    let result = MapOnlyJob::new(
        "geo-sanitize",
        cluster,
        dfs,
        input,
        SanitizeMapper { mechanism },
    )
    .pair_bytes(|_, t| t.approx_plt_bytes())
    .run()?;
    Ok((
        Dataset::from_traces(result.output.into_iter().map(|(_, t)| t)),
        result.stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::super::Sanitizer;
    use super::*;
    use crate::dfs_io::{put_dataset, trace_dfs};
    use gepeto_model::{GeoPoint, Timestamp};

    fn dataset() -> Dataset {
        Dataset::from_traces((0..200i64).map(|i| {
            MobilityTrace::new(
                (i % 3) as u32,
                GeoPoint::new(39.9 + (i as f64) * 1e-5, 116.4),
                Timestamp(i * 30),
            )
        }))
    }

    fn run(mechanism: PerTraceMechanism, chunk: usize) -> (Dataset, Dataset) {
        let ds = dataset();
        let cluster = Cluster::local(3, 2);
        let mut dfs = trace_dfs(&cluster, chunk);
        put_dataset(&mut dfs, "d", &ds).unwrap();
        let (out, stats) = mapreduce_sanitize(&cluster, &dfs, "d", mechanism).unwrap();
        assert_eq!(stats.reduce_tasks, 0, "map-only like the paper's sampling");
        (ds, out)
    }

    #[test]
    fn mapreduce_aggregation_equals_sequential() {
        let agg = SpatialAggregation { cell_m: 300.0 };
        let (ds, out) = run(PerTraceMechanism::Aggregate(agg), 2_048);
        assert_eq!(out, agg.apply(&ds));
    }

    #[test]
    fn mapreduce_temporal_equals_sequential() {
        let c = TemporalCloaking { window_secs: 300 };
        let (ds, out) = run(PerTraceMechanism::Temporal(c), 2_048);
        assert_eq!(out, c.apply(&ds));
    }

    #[test]
    fn mapreduce_gaussian_equals_sequential_and_is_chunk_invariant() {
        let m = GaussianMask {
            sigma_m: 80.0,
            seed: 5,
        };
        let (ds, out_small) = run(PerTraceMechanism::Gaussian(m), 1_024);
        let (_, out_big) = run(PerTraceMechanism::Gaussian(m), 1 << 20);
        // Chunking must not change the noise (per-trace keyed RNG)…
        assert_eq!(out_small, out_big);
        // …and the map-only job is bit-identical to the sequential
        // sanitizer.
        assert_eq!(out_small, m.apply(&ds));
    }

    #[test]
    fn mapreduce_uniform_respects_radius() {
        let m = UniformMask {
            radius_m: 120.0,
            seed: 9,
        };
        let (ds, out) = run(PerTraceMechanism::Uniform(m), 2_048);
        for (a, b) in ds.iter_traces().zip(out.iter_traces()) {
            assert!(gepeto_geo::haversine_m(a.point, b.point) <= 121.0);
            assert_eq!(a.timestamp, b.timestamp);
        }
    }

    #[test]
    fn mechanism_names_forward() {
        assert!(
            PerTraceMechanism::Aggregate(SpatialAggregation { cell_m: 10.0 })
                .name()
                .contains("aggregation")
        );
        assert!(
            PerTraceMechanism::Temporal(TemporalCloaking { window_secs: 60 })
                .name()
                .contains("temporal")
        );
    }
}
