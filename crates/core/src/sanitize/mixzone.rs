//! Mix zones (§VIII; Beresford & Stajano): spatial regions where no
//! location is ever reported and pseudonyms are exchanged, so an
//! adversary cannot link the trail entering a zone to the trail leaving
//! it. Each user receives a fresh pseudonym after every zone traversal.

use super::Sanitizer;
use gepeto_geo::haversine_m;
use gepeto_model::{Dataset, GeoPoint, MobilityTrace, Trail};

/// A circular mix zone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixZone {
    /// Zone center.
    pub center: GeoPoint,
    /// Zone radius, meters.
    pub radius_m: f64,
}

impl MixZone {
    /// Whether `p` lies inside the zone.
    pub fn contains(&self, p: GeoPoint) -> bool {
        haversine_m(self.center, p) <= self.radius_m
    }
}

/// The mix-zone sanitizer: traces inside any zone are suppressed, and a
/// trail is re-pseudonymized after each zone traversal.
///
/// Pseudonyms are allocated deterministically: user `u`'s segments get
/// ids `u * PSEUDONYM_STRIDE + segment_index`, which keeps tests and
/// ground-truth accounting simple while severing the identifier link the
/// way a real deployment would.
#[derive(Debug, Clone, PartialEq)]
pub struct MixZones {
    /// The deployed zones.
    pub zones: Vec<MixZone>,
}

/// Segment-id stride per original user.
pub const PSEUDONYM_STRIDE: u32 = 10_000;

impl MixZones {
    /// Whether `p` is inside any zone.
    pub fn covers(&self, p: GeoPoint) -> bool {
        self.zones.iter().any(|z| z.contains(p))
    }
}

impl Sanitizer for MixZones {
    fn name(&self) -> String {
        format!("mix-zones(n={})", self.zones.len())
    }

    fn apply(&self, dataset: &Dataset) -> Dataset {
        let mut trails: Vec<Trail> = Vec::new();
        for trail in dataset.trails() {
            let mut segment: u32 = 0;
            let mut inside_prev = false;
            let mut current: Vec<MobilityTrace> = Vec::new();
            for t in trail.traces() {
                let inside = self.covers(t.point);
                if inside {
                    // Suppressed; a later exit starts a new pseudonym.
                    if !inside_prev && !current.is_empty() {
                        let pseudo = trail.user * PSEUDONYM_STRIDE + segment;
                        trails.push(retag(Trail::new(pseudo, std::mem::take(&mut current))));
                        segment += 1;
                    }
                } else {
                    current.push(*t);
                }
                inside_prev = inside;
            }
            if !current.is_empty() {
                let pseudo = trail.user * PSEUDONYM_STRIDE + segment;
                trails.push(retag(Trail::new(pseudo, current)));
            }
        }
        Dataset::from_trails(trails)
    }
}

fn retag(trail: Trail) -> Trail {
    let user = trail.user;
    Trail::new(
        user,
        trail
            .into_traces()
            .into_iter()
            .map(|mut t| {
                t.user = user;
                t
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gepeto_model::{Timestamp, UserId};

    /// A user walking east through a mix zone at (39.9, 116.42).
    fn crossing_trail() -> Dataset {
        let traces: Vec<MobilityTrace> = (0..40)
            .map(|i| {
                MobilityTrace::new(
                    3,
                    GeoPoint::new(39.9, 116.40 + i as f64 * 0.001),
                    Timestamp(i * 30),
                )
            })
            .collect();
        Dataset::from_traces(traces)
    }

    fn zone() -> MixZones {
        MixZones {
            zones: vec![MixZone {
                center: GeoPoint::new(39.9, 116.42),
                radius_m: 400.0,
            }],
        }
    }

    #[test]
    fn traces_inside_the_zone_are_suppressed() {
        let ds = crossing_trail();
        let out = zone().apply(&ds);
        assert!(out.num_traces() < ds.num_traces());
        for t in out.iter_traces() {
            assert!(!zone().covers(t.point));
        }
    }

    #[test]
    fn pseudonym_changes_across_the_zone() {
        let ds = crossing_trail();
        let out = zone().apply(&ds);
        // The walk is split into two trails under different pseudonyms.
        assert_eq!(out.num_users(), 2);
        let ids: Vec<UserId> = out.trails().map(|t| t.user).collect();
        assert_eq!(ids, vec![3 * PSEUDONYM_STRIDE, 3 * PSEUDONYM_STRIDE + 1]);
        // Time ordering respected: first segment ends before second starts.
        let first = out.trail(ids[0]).unwrap();
        let second = out.trail(ids[1]).unwrap();
        assert!(
            first.traces().last().unwrap().timestamp < second.traces().first().unwrap().timestamp
        );
    }

    #[test]
    fn no_zone_means_only_retagging() {
        let ds = crossing_trail();
        let out = MixZones { zones: vec![] }.apply(&ds);
        assert_eq!(out.num_traces(), ds.num_traces());
        assert_eq!(out.num_users(), 1);
    }

    #[test]
    fn trail_entirely_inside_a_zone_vanishes() {
        let traces: Vec<MobilityTrace> = (0..10)
            .map(|i| MobilityTrace::new(1, GeoPoint::new(39.9, 116.42), Timestamp(i * 10)))
            .collect();
        let out = zone().apply(&Dataset::from_traces(traces));
        assert!(out.is_empty());
    }

    #[test]
    fn multiple_crossings_yield_multiple_pseudonyms() {
        // Walk east, back west, east again: two crossings → 3 segments.
        let mut traces = Vec::new();
        let mut t = 0i64;
        for leg in [
            (0..40).collect::<Vec<i64>>(),
            (0..40).rev().collect(),
            (0..40).collect(),
        ] {
            for i in leg {
                traces.push(MobilityTrace::new(
                    5,
                    GeoPoint::new(39.9, 116.40 + i as f64 * 0.001),
                    Timestamp(t),
                ));
                t += 30;
            }
        }
        let out = zone().apply(&Dataset::from_traces(traces));
        assert!(out.num_users() >= 3, "{}", out.num_users());
    }
}
