#![warn(missing_docs)]

//! # GEPETO — a GEoPrivacy-Enhancing TOolkit on MapReduce
//!
//! Rust reproduction of *MapReducing GEPETO, or Towards Conducting a
//! Privacy Analysis on Millions of Mobility Traces* (IPDPSW 2013).
//! GEPETO lets a data curator **sanitize** a geolocated dataset, run
//! **inference attacks** against it, and **measure** the resulting
//! privacy/utility trade-off — at the scale of millions of mobility
//! traces, by expressing each algorithm in the MapReduce programming
//! model (`gepeto-mapred`).
//!
//! The paper's three MapReduced algorithm families:
//!
//! - [`sampling`] — down-sampling as a map-only job (§V, Figures 2–3,
//!   Table I);
//! - [`kmeans`] — k-means with one MapReduce job per iteration (§VI,
//!   Figure 4, Tables II–III), with the related-work combiner
//!   optimization;
//! - [`djcluster`] — density-joinable clustering in three phases (§VII,
//!   Figure 5, Table IV), backed by an R-tree built with MapReduce
//!   ([`rtree_build`], §VII-C, Figure 6).
//!
//! Plus the extensions §VIII announces as future work, implemented here:
//! [`attacks`] (POI extraction, Mobility Markov Chains with next-place
//! prediction and de-anonymization, linking, semantic trajectories,
//! social-link discovery — the per-user attacks also as MapReduce jobs in
//! [`attacks::mapreduce`]) and [`sanitize`] (geographical masks, spatial
//! aggregation, spatial/temporal cloaking, mix zones — the per-trace
//! mechanisms also as map-only jobs in [`sanitize::mapreduce`]), tied
//! together by the privacy/utility [`metrics`]. [`viz`] renders datasets
//! and attack output as SVG/GeoJSON/ASCII; [`textio`] processes GeoLife
//! PLT text the way the paper's Hadoop jobs do.
//!
//! ## Quickstart
//!
//! ```
//! use gepeto::prelude::*;
//!
//! // A small synthetic GeoLife-like dataset…
//! let dataset = SyntheticGeoLife::new(GeneratorConfig {
//!     users: 5,
//!     scale: 0.003,
//!     ..GeneratorConfig::paper()
//! })
//! .generate();
//!
//! // …stored in the DFS of a local cluster…
//! let cluster = Cluster::local(4, 2);
//! let mut dfs = trace_dfs(&cluster, 1 << 20);
//! put_dataset(&mut dfs, "geolife", &dataset).unwrap();
//!
//! // …and down-sampled with a map-only MapReduce job (Figure 2).
//! let (sampled, stats) = sampling::mapreduce_sample(
//!     &cluster, &dfs, "geolife",
//!     &sampling::SamplingConfig::new(60, sampling::Technique::ClosestToUpperLimit),
//! ).unwrap();
//! assert!(sampled.num_traces() < dataset.num_traces());
//! assert!(stats.map_tasks >= 1);
//! ```

pub mod attacks;
pub mod dfs_io;
pub mod djcluster;
pub mod kmeans;
pub mod metrics;
pub mod rtree_build;
pub mod sampling;
pub mod sanitize;
pub mod spill_codecs;
pub mod textio;
pub mod viz;

/// One-stop imports for applications and examples.
pub mod prelude {
    pub use crate::dfs_io::{put_dataset, trace_dfs};
    pub use crate::{
        attacks, djcluster, kmeans, metrics, rtree_build, sampling, sanitize, textio, viz,
    };
    pub use gepeto_geo::{DistanceMetric, RTree, Rect, SpaceFillingCurve};
    pub use gepeto_geolife::{DatasetStats, GeneratorConfig, SyntheticGeoLife};
    pub use gepeto_mapred::{Cluster, Dfs, JobConfig, PipelineReport};
    pub use gepeto_model::{Dataset, GeoPoint, MobilityTrace, Timestamp, Trail};
}
