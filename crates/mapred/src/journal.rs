//! The write-ahead run journal behind `gepeto resume`.
//!
//! A *run directory* makes a whole analysis run durable:
//!
//! ```text
//! <run-dir>/
//!   MANIFEST        # the launching argv, one token per line
//!   journal.log     # append-only, line-framed, per-line checksummed
//!   spill/          # this run's spill dirs (swept on resume)
//!   partitions/     # committed reduce outputs (commit-footer files)
//!   OUTPUT          # the final artifact (commit-footer file)
//! ```
//!
//! Every journal line is `v1 <kind> <fields…> <fnv64-hex>` with
//! space-separated, percent-escaped fields and a trailing FNV-1a
//! checksum of the line body. Reads stop at the first damaged line —
//! classic WAL semantics, so a SIGKILL mid-append costs at most the
//! last record. Appends that mark durable progress (reduce commits,
//! checkpoints, artifacts, completion) are fsynced; high-rate map/spill
//! records are only flushed.
//!
//! Resume replays the journal: maps and shuffles are deterministic and
//! always re-run, but a reduce partition whose committed artifact still
//! verifies is loaded from disk instead of recomputed, and an iterative
//! driver restarts from its last checkpoint — producing bit-identical
//! output to an uninterrupted run.

use crate::commit::fnv_bytes;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Journal line-format version tag.
const VERSION: &str = "v1";

/// One journaled fact about a run.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalEntry {
    /// The run began (records the dispatched command for sanity).
    RunStart {
        /// The CLI command (e.g. `synth`).
        command: String,
    },
    /// DFS chunk `index` of `file` was committed with `checksum` —
    /// resume verifies the regenerated chunk against it.
    ChunkCommit {
        /// DFS file name.
        file: String,
        /// Chunk index within the file.
        index: usize,
        /// The chunk's content checksum.
        checksum: u64,
    },
    /// A spill run was sealed and verified on disk.
    SpillSealed {
        /// Owning job name.
        job: String,
        /// Committed run path.
        path: String,
        /// Records in the run.
        records: usize,
        /// Payload bytes in the run.
        bytes: usize,
        /// Commit-footer checksum.
        checksum: u64,
    },
    /// Reduce partition `partition` of `job` committed its output.
    ReduceCommit {
        /// Owning job name.
        job: String,
        /// Partition index.
        partition: usize,
        /// Committed artifact path.
        path: String,
        /// Output pairs in the artifact.
        records: usize,
        /// Commit-footer checksum.
        checksum: u64,
    },
    /// A driver-level checkpoint (e.g. k-means iteration state).
    Checkpoint {
        /// Checkpoint namespace (e.g. `kmeans`).
        label: String,
        /// Opaque driver payload.
        payload: String,
    },
    /// A named run artifact (e.g. `OUTPUT`) committed.
    ArtifactCommit {
        /// Artifact name.
        name: String,
        /// Committed path.
        path: String,
        /// Commit-footer checksum.
        checksum: u64,
    },
    /// A telemetry segment for one attempt of this run was opened —
    /// provenance for the stitched cross-attempt trace. Not durable:
    /// the stitcher scans `<run-dir>/telemetry/` directly and this line
    /// only records which attempt wrote which file.
    TelemetrySegment {
        /// Attempt ordinal (0 = first launch, 1 = first resume, ...).
        attempt: usize,
        /// Segment path, relative to or inside the run directory.
        path: String,
    },
    /// The run finished; nothing is left to resume.
    RunComplete,
}

impl JournalEntry {
    fn kind(&self) -> &'static str {
        match self {
            JournalEntry::RunStart { .. } => "run-start",
            JournalEntry::ChunkCommit { .. } => "chunk",
            JournalEntry::SpillSealed { .. } => "spill",
            JournalEntry::ReduceCommit { .. } => "reduce",
            JournalEntry::Checkpoint { .. } => "checkpoint",
            JournalEntry::ArtifactCommit { .. } => "artifact",
            JournalEntry::TelemetrySegment { .. } => "telemetry",
            JournalEntry::RunComplete => "complete",
        }
    }

    /// Whether this entry marks durable progress worth an fsync.
    fn durable(&self) -> bool {
        matches!(
            self,
            JournalEntry::ReduceCommit { .. }
                | JournalEntry::Checkpoint { .. }
                | JournalEntry::ArtifactCommit { .. }
                | JournalEntry::RunComplete
        )
    }

    fn body(&self) -> String {
        let mut parts: Vec<String> = vec![VERSION.into(), self.kind().into()];
        match self {
            JournalEntry::RunStart { command } => parts.push(escape(command)),
            JournalEntry::ChunkCommit {
                file,
                index,
                checksum,
            } => {
                parts.push(escape(file));
                parts.push(index.to_string());
                parts.push(format!("{checksum:016x}"));
            }
            JournalEntry::SpillSealed {
                job,
                path,
                records,
                bytes,
                checksum,
            } => {
                parts.push(escape(job));
                parts.push(escape(path));
                parts.push(records.to_string());
                parts.push(bytes.to_string());
                parts.push(format!("{checksum:016x}"));
            }
            JournalEntry::ReduceCommit {
                job,
                partition,
                path,
                records,
                checksum,
            } => {
                parts.push(escape(job));
                parts.push(partition.to_string());
                parts.push(escape(path));
                parts.push(records.to_string());
                parts.push(format!("{checksum:016x}"));
            }
            JournalEntry::Checkpoint { label, payload } => {
                parts.push(escape(label));
                parts.push(escape(payload));
            }
            JournalEntry::ArtifactCommit {
                name,
                path,
                checksum,
            } => {
                parts.push(escape(name));
                parts.push(escape(path));
                parts.push(format!("{checksum:016x}"));
            }
            JournalEntry::TelemetrySegment { attempt, path } => {
                parts.push(attempt.to_string());
                parts.push(escape(path));
            }
            JournalEntry::RunComplete => {}
        }
        parts.join(" ")
    }

    fn parse(line: &str) -> Option<JournalEntry> {
        let body_end = line.rfind(' ')?;
        let (body, sum_hex) = (&line[..body_end], &line[body_end + 1..]);
        let sum = u64::from_str_radix(sum_hex, 16).ok()?;
        if fnv_bytes(body.as_bytes()) != sum {
            return None;
        }
        let mut it = body.split(' ');
        if it.next()? != VERSION {
            return None;
        }
        let kind = it.next()?;
        let entry = match kind {
            "run-start" => JournalEntry::RunStart {
                command: unescape(it.next()?),
            },
            "chunk" => JournalEntry::ChunkCommit {
                file: unescape(it.next()?),
                index: it.next()?.parse().ok()?,
                checksum: u64::from_str_radix(it.next()?, 16).ok()?,
            },
            "spill" => JournalEntry::SpillSealed {
                job: unescape(it.next()?),
                path: unescape(it.next()?),
                records: it.next()?.parse().ok()?,
                bytes: it.next()?.parse().ok()?,
                checksum: u64::from_str_radix(it.next()?, 16).ok()?,
            },
            "reduce" => JournalEntry::ReduceCommit {
                job: unescape(it.next()?),
                partition: it.next()?.parse().ok()?,
                path: unescape(it.next()?),
                records: it.next()?.parse().ok()?,
                checksum: u64::from_str_radix(it.next()?, 16).ok()?,
            },
            "checkpoint" => JournalEntry::Checkpoint {
                label: unescape(it.next()?),
                payload: unescape(it.next()?),
            },
            "artifact" => JournalEntry::ArtifactCommit {
                name: unescape(it.next()?),
                path: unescape(it.next()?),
                checksum: u64::from_str_radix(it.next()?, 16).ok()?,
            },
            "telemetry" => JournalEntry::TelemetrySegment {
                attempt: it.next()?.parse().ok()?,
                path: unescape(it.next()?),
            },
            "complete" => JournalEntry::RunComplete,
            _ => return None,
        };
        if it.next().is_some() {
            return None;
        }
        Some(entry)
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 3 <= bytes.len() {
            if let Ok(v) = u8::from_str_radix(&s[i + 1..i + 3], 16) {
                out.push(v as char);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i] as char);
        i += 1;
    }
    out
}

/// A committed reduce artifact recovered from the journal.
#[derive(Debug, Clone, PartialEq)]
pub struct ReduceArtifact {
    /// Committed file path.
    pub path: PathBuf,
    /// Output pairs stored in it.
    pub records: usize,
    /// Commit-footer checksum at commit time.
    pub checksum: u64,
}

/// The append-only journal of one run directory. Thread-safe; clones of
/// the surrounding [`std::sync::Arc`] share the file handle.
#[derive(Debug)]
pub struct RunJournal {
    dir: PathBuf,
    log: Mutex<File>,
}

impl RunJournal {
    /// Opens (creating if needed) the journal under `dir`. The log is
    /// opened in append mode, so resuming never truncates history.
    ///
    /// # Errors
    /// Any filesystem error, stringified.
    pub fn attach(dir: &Path) -> Result<Self, String> {
        let mk = |e: std::io::Error| format!("{}: {e}", dir.display());
        fs::create_dir_all(dir.join("spill")).map_err(mk)?;
        fs::create_dir_all(dir.join("partitions")).map_err(mk)?;
        let log = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join("journal.log"))
            .map_err(mk)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            log: Mutex::new(log),
        })
    }

    /// The run directory this journal lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Where this run's spill dirs are rooted.
    pub fn spill_root(&self) -> PathBuf {
        self.dir.join("spill")
    }

    /// Where committed reduce outputs live.
    pub fn partitions_dir(&self) -> PathBuf {
        self.dir.join("partitions")
    }

    /// Appends one entry; durable entries are fsynced, the rest only
    /// flushed (WAL discipline).
    ///
    /// # Errors
    /// Any filesystem error, stringified.
    pub fn append(&self, entry: &JournalEntry) -> Result<(), String> {
        let body = entry.body();
        let line = format!("{body} {:016x}\n", fnv_bytes(body.as_bytes()));
        let mut f = self.log.lock();
        f.write_all(line.as_bytes())
            .and_then(|()| f.flush())
            .and_then(|()| {
                if entry.durable() {
                    f.sync_data()
                } else {
                    Ok(())
                }
            })
            .map_err(|e| format!("journal {}: {e}", self.dir.display()))
    }

    /// All intact entries, stopping at the first torn/corrupt line.
    pub fn entries(&self) -> Vec<JournalEntry> {
        let text = fs::read_to_string(self.dir.join("journal.log")).unwrap_or_default();
        let mut out = Vec::new();
        for line in text.lines() {
            match JournalEntry::parse(line) {
                Some(e) => out.push(e),
                None => break,
            }
        }
        out
    }

    /// Whether a `RunComplete` entry has been journaled.
    pub fn is_complete(&self) -> bool {
        self.entries()
            .iter()
            .any(|e| matches!(e, JournalEntry::RunComplete))
    }

    /// Committed reduce artifacts of `job`, by partition (latest wins).
    pub fn committed_reduces(&self, job: &str) -> BTreeMap<usize, ReduceArtifact> {
        let mut out = BTreeMap::new();
        for e in self.entries() {
            if let JournalEntry::ReduceCommit {
                job: j,
                partition,
                path,
                records,
                checksum,
            } = e
            {
                if j == job {
                    out.insert(
                        partition,
                        ReduceArtifact {
                            path: PathBuf::from(path),
                            records,
                            checksum,
                        },
                    );
                }
            }
        }
        out
    }

    /// The payload of the last checkpoint under `label`, if any.
    pub fn last_checkpoint(&self, label: &str) -> Option<String> {
        self.entries().into_iter().rev().find_map(|e| match e {
            JournalEntry::Checkpoint { label: l, payload } if l == label => Some(payload),
            _ => None,
        })
    }

    /// Journaled DFS chunk checksums of `file`, by chunk index.
    pub fn chunk_commits(&self, file: &str) -> BTreeMap<usize, u64> {
        let mut out = BTreeMap::new();
        for e in self.entries() {
            if let JournalEntry::ChunkCommit {
                file: f,
                index,
                checksum,
            } = e
            {
                if f == file {
                    out.insert(index, checksum);
                }
            }
        }
        out
    }

    /// Removes everything under `spill/` — stale runs left by a killed
    /// process. Maps and shuffles re-run deterministically, so nothing
    /// in there is needed to resume.
    pub fn sweep_spill(&self) {
        let root = self.spill_root();
        if let Ok(rd) = fs::read_dir(&root) {
            for e in rd.flatten() {
                let p = e.path();
                if p.is_dir() {
                    let _ = fs::remove_dir_all(&p);
                } else {
                    let _ = fs::remove_file(&p);
                }
            }
        }
    }

    /// Writes the MANIFEST (launch argv, one token per line) if it does
    /// not already exist — resume re-dispatches from it.
    ///
    /// # Errors
    /// Any filesystem error, stringified.
    pub fn write_manifest(&self, argv: &[String]) -> Result<(), String> {
        let path = self.dir.join("MANIFEST");
        if path.exists() {
            return Ok(());
        }
        let mut body = argv.join("\n");
        body.push('\n');
        fs::write(&path, body).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Reads a run directory's MANIFEST back into an argv.
    ///
    /// # Errors
    /// When the MANIFEST is missing or unreadable.
    pub fn read_manifest(dir: &Path) -> Result<Vec<String>, String> {
        let path = dir.join("MANIFEST");
        let text = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        Ok(text.lines().map(str::to_string).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let p =
            std::env::temp_dir().join(format!("gepeto-journal-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn entries_round_trip_with_escaping() {
        let dir = scratch("rt");
        let j = RunJournal::attach(&dir).unwrap();
        let entries = vec![
            JournalEntry::RunStart {
                command: "synth --users 100".into(),
            },
            JournalEntry::ChunkCommit {
                file: "synth traces".into(),
                index: 3,
                checksum: 0xdead_beef,
            },
            JournalEntry::SpillSealed {
                job: "sampling-by-user".into(),
                path: "/tmp/a b/run-0000.run".into(),
                records: 42,
                bytes: 1234,
                checksum: 7,
            },
            JournalEntry::ReduceCommit {
                job: "sampling-by-user".into(),
                partition: 5,
                path: "p5.part".into(),
                records: 9,
                checksum: 99,
            },
            JournalEntry::Checkpoint {
                label: "kmeans".into(),
                payload: "2 0x3ff0 0x4000".into(),
            },
            JournalEntry::ArtifactCommit {
                name: "OUTPUT".into(),
                path: "OUTPUT".into(),
                checksum: 1,
            },
            JournalEntry::TelemetrySegment {
                attempt: 1,
                path: "telemetry/attempt-001.jsonl".into(),
            },
            JournalEntry::RunComplete,
        ];
        for e in &entries {
            j.append(e).unwrap();
        }
        assert_eq!(j.entries(), entries);
        assert!(j.is_complete());
        let reduces = j.committed_reduces("sampling-by-user");
        assert_eq!(reduces.len(), 1);
        assert_eq!(reduces[&5].records, 9);
        assert_eq!(j.last_checkpoint("kmeans").unwrap(), "2 0x3ff0 0x4000");
        assert_eq!(j.chunk_commits("synth traces")[&3], 0xdead_beef);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_line_is_dropped_not_fatal() {
        let dir = scratch("torn");
        let j = RunJournal::attach(&dir).unwrap();
        j.append(&JournalEntry::RunStart {
            command: "synth".into(),
        })
        .unwrap();
        j.append(&JournalEntry::RunComplete).unwrap();
        // Simulate a SIGKILL mid-append: chop the last line in half.
        let log = dir.join("journal.log");
        let text = fs::read_to_string(&log).unwrap();
        fs::write(&log, &text[..text.len() - 8]).unwrap();
        let j2 = RunJournal::attach(&dir).unwrap();
        let entries = j2.entries();
        assert_eq!(entries.len(), 1, "only the intact prefix survives");
        assert!(!j2.is_complete());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_round_trips_and_never_overwrites() {
        let dir = scratch("mani");
        let j = RunJournal::attach(&dir).unwrap();
        let argv = vec!["synth".to_string(), "--users".into(), "100".into()];
        j.write_manifest(&argv).unwrap();
        j.write_manifest(&["other".to_string()]).unwrap();
        assert_eq!(RunJournal::read_manifest(&dir).unwrap(), argv);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn latest_checkpoint_and_reduce_win() {
        let dir = scratch("latest");
        let j = RunJournal::attach(&dir).unwrap();
        for (i, payload) in ["a", "b"].iter().enumerate() {
            j.append(&JournalEntry::Checkpoint {
                label: "kmeans".into(),
                payload: (*payload).into(),
            })
            .unwrap();
            j.append(&JournalEntry::ReduceCommit {
                job: "j".into(),
                partition: 0,
                path: format!("p0-v{i}.part"),
                records: i,
                checksum: i as u64,
            })
            .unwrap();
        }
        assert_eq!(j.last_checkpoint("kmeans").unwrap(), "b");
        assert_eq!(
            j.committed_reduces("j")[&0].path,
            PathBuf::from("p0-v1.part")
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
