//! The cluster-time simulator.
//!
//! Map/reduce tasks *really* execute in parallel on host threads (see
//! [`crate::job`]); this module answers "how long would this job have
//! taken on the paper's cluster?" by replaying each task's **measured**
//! CPU time through a locality-aware slot scheduler over a virtual
//! [`Topology`]. It models the effects the paper's evaluation turns on:
//!
//! - one map task per chunk, scheduled preferring data-local, then
//!   rack-local, then remote nodes (§III: "priority is given to
//!   neighboring nodes, i.e. belonging to the same network rack");
//! - reducers start only after the map phase completes;
//! - shuffle transfer time proportional to intermediate bytes;
//! - a constant deployment overhead ("approximately 25 seconds", §VI);
//! - the failure modes of [`crate::chaos::ChaosPlan`]: nodes crashing
//!   mid-job (killing in-flight attempts, invalidating their completed
//!   map outputs, making their chunk replicas unreadable), corrupt
//!   replicas forcing read failover, degraded nodes running slow, and
//!   the jobtracker blacklisting nodes after repeated task failures —
//!   with every failed or re-executed attempt charged to the makespan.

use crate::chaos::{ChaosEvent, ChaosPlan};
use crate::dfs::BlockId;
use crate::topology::{NodeId, Topology};
use gepeto_telemetry::Recorder;
use serde::{Deserialize, Serialize};

/// Where a map task ran relative to its input chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Locality {
    /// On a node holding a replica of the chunk.
    DataLocal,
    /// On a different node of a replica-holding rack.
    RackLocal,
    /// Anywhere else: the chunk crosses racks.
    Remote,
}

impl Locality {
    /// Stable lowercase tag used in telemetry labels.
    pub fn as_str(self) -> &'static str {
        match self {
            Locality::DataLocal => "data-local",
            Locality::RackLocal => "rack-local",
            Locality::Remote => "remote",
        }
    }
}

/// Time-model parameters of the virtual cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimParams {
    /// Fixed per-task overhead (task launch, JVM reuse, heartbeat), secs.
    pub task_startup_s: f64,
    /// Multiplier from measured host-thread seconds to virtual-node
    /// seconds (>1 emulates slower 2013-era cores). This carries the
    /// *algorithmic* cost differences (e.g. Haversine vs squared
    /// Euclidean) into the virtual timeline.
    pub cpu_scale: f64,
    /// Fixed per-record cost in microseconds, modeling Hadoop's
    /// per-record overhead (text parsing, serialization, object churn) —
    /// the dominant term of the paper's per-iteration times, invisible
    /// to a Rust host measurement.
    pub per_record_us: f64,
    /// Intra-rack network bandwidth, MB/s.
    pub net_mb_s: f64,
    /// Cross-rack network bandwidth, MB/s.
    pub cross_rack_mb_s: f64,
    /// One-off HDFS deployment + daemon startup overhead, secs.
    pub cluster_startup_s: f64,
    /// Per-job fixed overhead (job setup, split computation, commit) —
    /// what dominates small Hadoop jobs; added once to every makespan.
    pub job_overhead_s: f64,
    /// Probability that a task lands on a straggling executor
    /// (deterministic per task index; 0 disables straggler modeling).
    pub straggler_prob: f64,
    /// Slowdown factor a straggling task suffers.
    pub straggler_slowdown: f64,
    /// Hadoop's speculative execution: when a straggler is detected a
    /// backup task is launched on another node, capping the effective
    /// slowdown at ~2× nominal (detection + fresh run).
    pub speculative_execution: bool,
}

impl SimParams {
    /// Profile calibrated to the paper's §VI observations: ~25 s
    /// deployment overhead, gigabit-class network, sub-second task
    /// startup, and a CPU scale that maps one 2026 host thread to one
    /// 1.7 GHz Opteron core.
    pub fn parapluie() -> Self {
        Self {
            task_startup_s: 0.8,
            cpu_scale: 15.0,
            per_record_us: 25.0,
            net_mb_s: 112.0,
            cross_rack_mb_s: 80.0,
            cluster_startup_s: 25.0,
            job_overhead_s: 20.0,
            straggler_prob: 0.03,
            straggler_slowdown: 6.0,
            speculative_execution: true,
        }
    }

    /// Overhead-free profile for unit tests: virtual time ≈ pure measured
    /// CPU time.
    pub fn instant() -> Self {
        Self {
            task_startup_s: 0.0,
            cpu_scale: 1.0,
            per_record_us: 0.0,
            net_mb_s: f64::INFINITY,
            cross_rack_mb_s: f64::INFINITY,
            cluster_startup_s: 0.0,
            job_overhead_s: 0.0,
            straggler_prob: 0.0,
            straggler_slowdown: 1.0,
            speculative_execution: false,
        }
    }

    /// Profile for chaos tests: the virtual schedule is fully determined
    /// by task *counts* (every task costs exactly 1 s), independent of
    /// measured host times — so crash times scripted against virtual
    /// seconds land on the same task attempt in every run.
    pub fn unit_time() -> Self {
        Self {
            task_startup_s: 1.0,
            cpu_scale: 0.0,
            ..Self::instant()
        }
    }
}

/// One map task's inputs to the simulator.
#[derive(Debug, Clone)]
pub struct MapTaskSim {
    /// Measured host-thread seconds of the task body.
    pub host_secs: f64,
    /// Bytes of the input chunk (transferred when run non-locally).
    pub input_bytes: u64,
    /// Records in the input chunk (drives the per-record cost model).
    pub records: u64,
    /// The chunk this task reads (for unreadable-block error reporting).
    pub block: BlockId,
    /// Datanodes holding replicas of the input chunk.
    pub replicas: Vec<NodeId>,
    /// Parallel to `replicas`: whether that copy fails checksum
    /// verification (empty ⇒ all intact).
    pub corrupted: Vec<bool>,
    /// One entry per injected failed attempt (from
    /// [`crate::job::FailurePlan`]): the fraction of the attempt's
    /// nominal post-startup runtime it burned before dying. Each entry
    /// is charged to the virtual schedule before the task can succeed.
    pub failed_attempts: Vec<f64>,
}

/// One reduce task's inputs to the simulator.
#[derive(Debug, Clone)]
pub struct ReduceTaskSim {
    /// Measured host-thread seconds of the task body.
    pub host_secs: f64,
    /// Intermediate bytes this reducer pulls from mappers.
    pub shuffle_bytes: u64,
    /// Intermediate records this reducer consumes.
    pub records: u64,
    /// Injected failed attempts; see [`MapTaskSim::failed_attempts`].
    pub failed_attempts: Vec<f64>,
}

/// The simulator's verdict for one job.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Virtual job time excluding cluster startup, seconds.
    pub makespan_s: f64,
    /// Virtual map-phase span, seconds.
    pub map_phase_s: f64,
    /// Virtual shuffle+reduce span, seconds.
    pub reduce_phase_s: f64,
    /// The modeled one-off deployment overhead, seconds.
    pub cluster_startup_s: f64,
    /// Tasks that hit a straggling executor.
    pub stragglers: usize,
    /// Stragglers rescued by a speculative backup task.
    pub speculated: usize,
    /// Map tasks that ran data-local / rack-local / remote.
    pub data_local: usize,
    /// See [`SimReport::data_local`].
    pub rack_local: usize,
    /// See [`SimReport::data_local`].
    pub remote: usize,
    /// Total bytes shuffled from mappers to reducers.
    pub shuffle_bytes: u64,
    /// Completed map tasks re-executed because their node crashed before
    /// the map barrier and took their locally-stored outputs with it.
    pub reexecuted_maps: usize,
    /// Successful map-input reads that had to skip at least one dead or
    /// corrupt replica (the DFS client's checksum-verified failover).
    pub failed_over_reads: usize,
    /// Nodes the jobtracker blacklisted after repeated task failures.
    pub blacklisted_nodes: usize,
    /// Attempts killed in flight by their node crashing.
    pub crash_killed_attempts: usize,
    /// Virtual seconds burned by failed, killed and invalidated attempts
    /// — the recovery cost inside `makespan_s`.
    pub failed_attempt_s: f64,
}

/// Why a chaos replay could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A map attempt found no readable replica of its chunk: every copy
    /// sits on a crashed node or fails checksum verification.
    UnreadableBlock(BlockId),
    /// Work remains but every node is dead or blacklisted.
    NoLiveNodes,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::UnreadableBlock(b) => {
                write!(f, "sim: no readable replica of block {b}")
            }
            SimError::NoLiveNodes => write!(f, "sim: no live node left to run tasks"),
        }
    }
}

impl std::error::Error for SimError {}

/// Per-node slot pool: each node owns `slots` identical slots whose next
/// free times are tracked individually.
struct SlotPool {
    free_at: Vec<Vec<f64>>, // free_at[node][slot]
    /// Rotates the tie-break start so simultaneous-idle nodes take turns
    /// (a heartbeat-order stand-in; without it every task of an idle
    /// cluster would land on node 0).
    rotation: usize,
}

impl SlotPool {
    fn new(topology: &Topology) -> Self {
        Self {
            free_at: vec![vec![0.0; topology.slots_per_node()]; topology.num_nodes()],
            rotation: 0,
        }
    }

    /// `(node, slot, time)` of the earliest slot that frees *before its
    /// node dies*, skipping blacklisted nodes; ties broken round-robin
    /// across nodes (deterministic). `None` when no node can accept
    /// work any more.
    fn earliest_usable(
        &mut self,
        death: &[f64],
        blacklisted: &[bool],
    ) -> Option<(NodeId, usize, f64)> {
        let n_nodes = self.free_at.len();
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..n_nodes {
            let n = (self.rotation + i) % n_nodes;
            if blacklisted[n] {
                continue;
            }
            for (s, &t) in self.free_at[n].iter().enumerate() {
                if t >= death[n] {
                    continue; // the node is dead by the time this slot frees
                }
                if best.is_none_or(|b| t < b.2) {
                    best = Some((n, s, t));
                }
            }
        }
        if let Some(b) = best {
            self.rotation = (b.0 + 1) % n_nodes;
        }
        best
    }

    fn occupy(&mut self, node: NodeId, slot: usize, until: f64) {
        self.free_at[node][slot] = until;
    }
}

/// Replays a job's measured task times on the virtual cluster.
///
/// Scheduling model: whenever a slot frees (pull-based, like tasktracker
/// heartbeats), the jobtracker hands it the first still-pending map task
/// that is data-local to that node, else rack-local, else any pending
/// task — Hadoop's locality waterfall.
pub fn simulate(
    topology: &Topology,
    params: &SimParams,
    map_tasks: &[MapTaskSim],
    reduce_tasks: &[ReduceTaskSim],
) -> SimReport {
    simulate_with(
        topology,
        params,
        map_tasks,
        reduce_tasks,
        &Recorder::disabled(),
    )
}

/// [`simulate`] with telemetry: every slot assignment is recorded as a
/// `sched.map` / `sched.reduce` point event carrying the simulated task
/// duration (seconds) and `task` / `node` / `locality` labels — the
/// jobtracker-side scheduling log the paper's locality analysis reads.
/// Injected failed attempts still charge their partial runtime.
pub fn simulate_with(
    topology: &Topology,
    params: &SimParams,
    map_tasks: &[MapTaskSim],
    reduce_tasks: &[ReduceTaskSim],
    telemetry: &Recorder,
) -> SimReport {
    simulate_chaos(
        topology,
        params,
        &ChaosPlan::none(),
        0.0,
        map_tasks,
        reduce_tasks,
        telemetry,
    )
    .expect("an empty chaos plan cannot kill nodes or lose replicas")
}

/// [`simulate_with`] under a [`ChaosPlan`]: nodes crash at scripted
/// virtual times (`start_s` maps the plan's absolute clock onto this
/// job's local timeline), killing in-flight attempts, invalidating
/// completed map outputs held on the crashed node (which the jobtracker
/// re-executes on survivors), and making the node's chunk replicas
/// unreadable so map-input reads fail over to surviving replicas.
/// Nodes accumulating [`ChaosPlan::blacklist_threshold`] failed attempts
/// are blacklisted (never the last usable node). Every failed, killed or
/// re-executed attempt occupies its slot for the time it burned, so the
/// makespan carries the recovery cost.
///
/// # Errors
/// [`SimError::UnreadableBlock`] when every replica of a map input is on
/// crashed nodes or corrupt; [`SimError::NoLiveNodes`] when tasks remain
/// but every node is dead or blacklisted.
#[allow(clippy::too_many_arguments)]
pub fn simulate_chaos(
    topology: &Topology,
    params: &SimParams,
    chaos: &ChaosPlan,
    start_s: f64,
    map_tasks: &[MapTaskSim],
    reduce_tasks: &[ReduceTaskSim],
    telemetry: &Recorder,
) -> Result<SimReport, SimError> {
    let mut report = SimReport {
        cluster_startup_s: params.cluster_startup_s,
        ..SimReport::default()
    };
    let n_nodes = topology.num_nodes();
    // Crash times on this job's local timeline (∞ = never dies).
    let death: Vec<f64> = (0..n_nodes)
        .map(|n| chaos.crash_time(n).map_or(f64::INFINITY, |t| t - start_s))
        .collect();
    let mut blacklisted = vec![false; n_nodes];
    let mut node_failures = vec![0u32; n_nodes];
    let mut task_seq = 0usize;
    let monitor = telemetry.monitor();

    // Scripted chaos, projected onto this job's local timeline, is
    // announced up front so the timeline/Gantt layer can overlay the
    // annotations without re-deriving them from the plan.
    if telemetry.is_enabled() {
        for (node, &d) in death.iter().enumerate() {
            if d.is_finite() {
                telemetry.point("chaos.crash", d, &[("node", &node.to_string())]);
            }
        }
        for ev in chaos.events() {
            if let ChaosEvent::DegradeNode {
                node,
                at_s,
                slowdown,
            } = ev
            {
                telemetry.point(
                    "chaos.degrade",
                    at_s - start_s,
                    &[
                        ("node", &node.to_string()),
                        ("factor", &slowdown.to_string()),
                    ],
                );
            }
        }
    }

    // ---- map wave(s): schedule until done, re-executing maps whose
    // node died before the barrier (their outputs lived on local disk,
    // as in Hadoop). ----
    let mut pool = SlotPool::new(topology);
    let mut pending: Vec<usize> = (0..map_tasks.len()).collect();
    // Remaining injected-failure charges per task (consumed front-first).
    let mut fail_cursor: Vec<usize> = vec![0; map_tasks.len()];
    let mut completed: Vec<Option<(NodeId, f64)>> = vec![None; map_tasks.len()];
    // Tasks whose completed output was lost to a crash: their next
    // successful run is tagged `reexec` so trace analysis can attribute
    // the makespan delta to re-executed work.
    let mut lost_output: Vec<bool> = vec![false; map_tasks.len()];
    let mut invalidated = vec![false; n_nodes];
    let mut map_end: f64 = 0.0;
    loop {
        while !pending.is_empty() {
            let Some((node, slot, at)) = pool.earliest_usable(&death, &blacklisted) else {
                return Err(SimError::NoLiveNodes);
            };
            let rack = topology.rack_of(node);
            let abs_now = start_s + at;
            let readable = |t: &MapTaskSim, r_idx: usize| {
                let r = t.replicas[r_idx];
                !chaos.is_dead(r, abs_now) && !t.corrupted.get(r_idx).copied().unwrap_or(false)
            };
            // Locality waterfall over the pending list, on *readable*
            // replicas only.
            let idx = pending
                .iter()
                .position(|&t| {
                    let task = &map_tasks[t];
                    (0..task.replicas.len()).any(|i| task.replicas[i] == node && readable(task, i))
                })
                .or_else(|| {
                    pending.iter().position(|&t| {
                        let task = &map_tasks[t];
                        (0..task.replicas.len()).any(|i| {
                            topology.rack_of(task.replicas[i]) == rack && readable(task, i)
                        })
                    })
                })
                .unwrap_or(0);
            let tid = pending.swap_remove(idx);
            let task = &map_tasks[tid];
            // The DFS client's verified read: classify against the
            // *readable* replicas; error out when nothing is readable.
            let readable_count = (0..task.replicas.len())
                .filter(|&i| readable(task, i))
                .count();
            if readable_count == 0 {
                return Err(SimError::UnreadableBlock(task.block));
            }
            let local_ok =
                (0..task.replicas.len()).any(|i| task.replicas[i] == node && readable(task, i));
            let rack_ok = (0..task.replicas.len())
                .any(|i| topology.rack_of(task.replicas[i]) == rack && readable(task, i));
            let locality = if local_ok {
                Locality::DataLocal
            } else if rack_ok {
                Locality::RackLocal
            } else {
                Locality::Remote
            };
            let failover = readable_count < task.replicas.len();
            let transfer_s = match locality {
                Locality::DataLocal => 0.0,
                Locality::RackLocal => task.input_bytes as f64 / (params.net_mb_s * 1e6),
                Locality::Remote => task.input_bytes as f64 / (params.cross_rack_mb_s * 1e6),
            };
            let body = transfer_s
                + chaos.slowdown(node, abs_now)
                    * (task.records as f64 * params.per_record_us * 1e-6
                        + task.host_secs * params.cpu_scale);
            let nominal = params.task_startup_s + body;
            // Injected (FailurePlan) failure: the attempt burns part of
            // its runtime, occupies the slot for it, and is requeued.
            if let Some(&fraction) = task.failed_attempts.get(fail_cursor[tid]) {
                fail_cursor[tid] += 1;
                let end = (at + params.task_startup_s + fraction * body).min(death[node]);
                pool.occupy(node, slot, end);
                report.failed_attempt_s += end - at;
                node_failures[node] += 1;
                if let Some(m) = &monitor {
                    m.node_busy(node, end - at);
                }
                maybe_blacklist(
                    node,
                    &death,
                    &mut blacklisted,
                    &node_failures,
                    chaos,
                    &pool,
                    &mut report,
                    telemetry,
                    end,
                );
                if telemetry.is_enabled() {
                    telemetry.point(
                        "sched.map.failed",
                        end - at,
                        &[
                            ("task", &tid.to_string()),
                            ("node", &node.to_string()),
                            ("start", &fmt_secs(at)),
                        ],
                    );
                }
                pending.push(tid);
                continue;
            }
            task_seq += 1;
            let dur = straggler_adjusted(params, task_seq, nominal, &mut report);
            let end = at + dur;
            if end > death[node] {
                // The node crashes mid-attempt: the attempt is lost, the
                // task goes back to the queue for a surviving node.
                pool.occupy(node, slot, death[node]);
                report.failed_attempt_s += death[node] - at;
                report.crash_killed_attempts += 1;
                if let Some(m) = &monitor {
                    m.add_crash_killed();
                    m.node_busy(node, death[node] - at);
                }
                if telemetry.is_enabled() {
                    telemetry.point(
                        "sched.map.killed",
                        death[node] - at,
                        &[
                            ("task", &tid.to_string()),
                            ("node", &node.to_string()),
                            ("start", &fmt_secs(at)),
                        ],
                    );
                }
                pending.push(tid);
                continue;
            }
            match locality {
                Locality::DataLocal => report.data_local += 1,
                Locality::RackLocal => report.rack_local += 1,
                Locality::Remote => report.remote += 1,
            }
            if failover {
                report.failed_over_reads += 1;
            }
            if telemetry.is_enabled() {
                let task_label = tid.to_string();
                let node_label = node.to_string();
                let start_label = fmt_secs(at);
                let mut labels: Vec<(&str, &str)> = vec![
                    ("task", &task_label),
                    ("node", &node_label),
                    ("locality", locality.as_str()),
                    ("start", &start_label),
                ];
                if lost_output[tid] {
                    labels.push(("reexec", "1"));
                }
                if failover {
                    labels.push(("failover", "1"));
                }
                telemetry.point("sched.map", dur, &labels);
            }
            if let Some(m) = &monitor {
                m.node_busy(node, dur);
                if failover {
                    m.add_failed_over_read();
                }
            }
            pool.occupy(node, slot, end);
            completed[tid] = Some((node, end));
            map_end = map_end.max(end);
        }
        // Barrier check: any node that died strictly before the map
        // barrier takes its completed map outputs with it — those maps
        // re-execute on the survivors, Hadoop's jobtracker behavior.
        let mut requeued = 0usize;
        for node in 0..n_nodes {
            if invalidated[node] || death[node] >= map_end {
                continue;
            }
            invalidated[node] = true;
            for (tid, c) in completed.iter_mut().enumerate() {
                if matches!(c, Some((n, _)) if *n == node) {
                    *c = None;
                    lost_output[tid] = true;
                    pending.push(tid);
                    requeued += 1;
                }
            }
        }
        if requeued == 0 {
            break;
        }
        report.reexecuted_maps += requeued;
        if let Some(m) = &monitor {
            m.add_reexecuted_maps(requeued as u64);
        }
        if telemetry.is_enabled() {
            telemetry.point("sched.map.invalidated", requeued as f64, &[]);
        }
    }
    report.map_phase_s = map_end;

    // ---- shuffle + reduce wave (starts when the map phase completes) ----
    let mut reduce_end = map_end;
    if !reduce_tasks.is_empty() {
        let mut pool = SlotPool::new(topology);
        // Slots only become usable at map_end.
        for node in pool.free_at.iter_mut() {
            for t in node.iter_mut() {
                *t = map_end;
            }
        }
        // On average (N-1)/N of a reducer's input crosses the network.
        let remote_fraction = if topology.num_nodes() > 1 {
            (topology.num_nodes() - 1) as f64 / topology.num_nodes() as f64
        } else {
            0.0
        };
        let mut pending: std::collections::VecDeque<usize> = (0..reduce_tasks.len()).collect();
        let mut fail_cursor: Vec<usize> = vec![0; reduce_tasks.len()];
        while let Some(tid) = pending.pop_front() {
            let task = &reduce_tasks[tid];
            let Some((node, slot, at)) = pool.earliest_usable(&death, &blacklisted) else {
                return Err(SimError::NoLiveNodes);
            };
            let transfer_s = task.shuffle_bytes as f64 * remote_fraction / (params.net_mb_s * 1e6);
            let body = transfer_s
                + chaos.slowdown(node, start_s + at)
                    * (task.records as f64 * params.per_record_us * 1e-6
                        + task.host_secs * params.cpu_scale);
            let nominal = params.task_startup_s + body;
            if let Some(&fraction) = task.failed_attempts.get(fail_cursor[tid]) {
                fail_cursor[tid] += 1;
                let end = (at + params.task_startup_s + fraction * body).min(death[node]);
                pool.occupy(node, slot, end);
                report.failed_attempt_s += end - at;
                node_failures[node] += 1;
                if let Some(m) = &monitor {
                    m.node_busy(node, end - at);
                }
                maybe_blacklist(
                    node,
                    &death,
                    &mut blacklisted,
                    &node_failures,
                    chaos,
                    &pool,
                    &mut report,
                    telemetry,
                    end,
                );
                if telemetry.is_enabled() {
                    telemetry.point(
                        "sched.reduce.failed",
                        end - at,
                        &[
                            ("task", &tid.to_string()),
                            ("node", &node.to_string()),
                            ("start", &fmt_secs(at)),
                        ],
                    );
                }
                pending.push_back(tid);
                continue;
            }
            task_seq += 1;
            let dur = straggler_adjusted(params, task_seq, nominal, &mut report);
            let end = at + dur;
            if end > death[node] {
                pool.occupy(node, slot, death[node]);
                report.failed_attempt_s += death[node] - at;
                report.crash_killed_attempts += 1;
                if let Some(m) = &monitor {
                    m.add_crash_killed();
                    m.node_busy(node, death[node] - at);
                }
                if telemetry.is_enabled() {
                    telemetry.point(
                        "sched.reduce.killed",
                        death[node] - at,
                        &[
                            ("task", &tid.to_string()),
                            ("node", &node.to_string()),
                            ("start", &fmt_secs(at)),
                        ],
                    );
                }
                pending.push_back(tid);
                continue;
            }
            if telemetry.is_enabled() {
                telemetry.point(
                    "sched.reduce",
                    dur,
                    &[
                        ("task", &tid.to_string()),
                        ("node", &node.to_string()),
                        ("start", &fmt_secs(at)),
                    ],
                );
            }
            if let Some(m) = &monitor {
                m.node_busy(node, dur);
            }
            pool.occupy(node, slot, end);
            reduce_end = reduce_end.max(end);
            report.shuffle_bytes += task.shuffle_bytes;
        }
    }
    report.reduce_phase_s = reduce_end - map_end;
    report.makespan_s = reduce_end + params.job_overhead_s;
    Ok(report)
}

/// Blacklists `node` once it reaches the failure threshold — unless it is
/// the last node still able to accept work (blacklisting it would wedge
/// the job; Hadoop likewise keeps limping along on its last tracker).
#[allow(clippy::too_many_arguments)]
fn maybe_blacklist(
    node: NodeId,
    death: &[f64],
    blacklisted: &mut [bool],
    node_failures: &[u32],
    chaos: &ChaosPlan,
    pool: &SlotPool,
    report: &mut SimReport,
    telemetry: &Recorder,
    at: f64,
) {
    if blacklisted[node] || node_failures[node] < chaos.blacklist_threshold() {
        return;
    }
    let another_usable = (0..death.len())
        .any(|m| m != node && !blacklisted[m] && pool.free_at[m].iter().any(|&t| t < death[m]));
    if another_usable {
        blacklisted[node] = true;
        report.blacklisted_nodes += 1;
        if let Some(m) = telemetry.monitor() {
            m.add_blacklisted();
        }
        if telemetry.is_enabled() {
            telemetry.point("chaos.blacklist", at, &[("node", &node.to_string())]);
        }
    }
}

/// Virtual-seconds label value for `sched.*` points (fixed precision so
/// the telemetry timeline layer can parse it back).
fn fmt_secs(s: f64) -> String {
    format!("{s:.6}")
}

/// Applies the straggler model to one task's nominal duration.
///
/// With probability `straggler_prob` (deterministic in the task's
/// sequence number) the executor is slow by `straggler_slowdown`. With
/// speculative execution on, the jobtracker launches a backup once the
/// task overruns its nominal time, so the effective duration caps at
/// ~2× nominal (detection latency + a fresh full run).
fn straggler_adjusted(
    params: &SimParams,
    task_seq: usize,
    nominal: f64,
    report: &mut SimReport,
) -> f64 {
    if params.straggler_prob <= 0.0 {
        return nominal;
    }
    let roll = crate::hash::unit_hash(&("straggler", task_seq));
    if roll >= params.straggler_prob {
        return nominal;
    }
    report.stragglers += 1;
    let slowed = nominal * params.straggler_slowdown.max(1.0);
    if params.speculative_execution {
        report.speculated += 1;
        slowed.min(nominal * 2.0)
    } else {
        slowed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_task(secs: f64, replicas: Vec<NodeId>) -> MapTaskSim {
        MapTaskSim {
            host_secs: secs,
            input_bytes: 64 << 20,
            records: 0,
            block: 0,
            replicas,
            corrupted: Vec::new(),
            failed_attempts: Vec::new(),
        }
    }

    fn reduce_task(secs: f64, shuffle_bytes: u64) -> ReduceTaskSim {
        ReduceTaskSim {
            host_secs: secs,
            shuffle_bytes,
            records: 0,
            failed_attempts: Vec::new(),
        }
    }

    #[test]
    fn single_task_takes_its_duration() {
        let topo = Topology::new(2, 1, 1);
        let r = simulate(&topo, &SimParams::instant(), &[map_task(3.0, vec![0])], &[]);
        assert!((r.makespan_s - 3.0).abs() < 1e-9);
        assert_eq!(r.data_local, 1);
        assert_eq!(r.reduce_phase_s, 0.0);
    }

    #[test]
    fn parallel_tasks_overlap() {
        let topo = Topology::new(4, 1, 1);
        let tasks: Vec<MapTaskSim> = (0..4).map(|n| map_task(2.0, vec![n])).collect();
        let r = simulate(&topo, &SimParams::instant(), &tasks, &[]);
        assert!((r.makespan_s - 2.0).abs() < 1e-9, "{}", r.makespan_s);
        assert_eq!(r.data_local, 4);
    }

    #[test]
    fn limited_slots_serialize_work() {
        let topo = Topology::new(1, 1, 2);
        let tasks: Vec<MapTaskSim> = (0..4).map(|_| map_task(1.0, vec![0])).collect();
        let r = simulate(&topo, &SimParams::instant(), &tasks, &[]);
        // 4 tasks of 1 s on 2 slots = 2 s.
        assert!((r.makespan_s - 2.0).abs() < 1e-9);
    }

    #[test]
    fn more_chunks_faster_with_free_slots() {
        // The Table III effect: with slots to spare, halving the chunk
        // size (twice the tasks, each half as long) shortens the job
        // because the long tail shrinks.
        let topo = Topology::new(5, 1, 4); // 20 slots
        let coarse: Vec<MapTaskSim> = (0..24).map(|n| map_task(2.0, vec![n % 5])).collect();
        let fine: Vec<MapTaskSim> = (0..48).map(|n| map_task(1.0, vec![n % 5])).collect();
        let p = SimParams {
            task_startup_s: 0.05,
            ..SimParams::instant()
        };
        let rc = simulate(&topo, &p, &coarse, &[]);
        let rf = simulate(&topo, &p, &fine, &[]);
        assert!(
            rf.makespan_s < rc.makespan_s,
            "fine {} vs coarse {}",
            rf.makespan_s,
            rc.makespan_s
        );
    }

    #[test]
    fn locality_waterfall_prefers_local() {
        let topo = Topology::new(2, 2, 1); // 2 nodes, 2 racks
                                           // Both tasks' data on node 0; node 1's slot is equally free, so one
                                           // task must run remote (different rack).
        let tasks = vec![map_task(1.0, vec![0]), map_task(1.0, vec![0])];
        let r = simulate(&topo, &SimParams::instant(), &tasks, &[]);
        assert_eq!(r.data_local, 1);
        assert_eq!(r.remote, 1);
    }

    #[test]
    fn rack_local_counted() {
        let topo = Topology::new(4, 2, 1); // racks 0,1,0,1
                                           // Data on nodes 0 (rack 0) only; nodes 2 shares rack 0.
        let tasks = vec![
            map_task(1.0, vec![0]),
            map_task(1.0, vec![0]),
            map_task(1.0, vec![0]),
            map_task(1.0, vec![0]),
        ];
        let r = simulate(&topo, &SimParams::instant(), &tasks, &[]);
        assert_eq!(r.data_local + r.rack_local + r.remote, 4);
        assert!(r.rack_local >= 1, "{r:?}");
    }

    #[test]
    fn reducers_wait_for_map_phase() {
        let topo = Topology::new(2, 1, 2);
        let maps = vec![map_task(2.0, vec![0]), map_task(1.0, vec![1])];
        let reduces = vec![reduce_task(1.0, 0)];
        let r = simulate(&topo, &SimParams::instant(), &maps, &reduces);
        // map phase = 2 s, reduce = 1 s, strictly sequential phases.
        assert!((r.makespan_s - 3.0).abs() < 1e-9, "{}", r.makespan_s);
        assert!((r.map_phase_s - 2.0).abs() < 1e-9);
        assert!((r.reduce_phase_s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shuffle_bytes_add_transfer_time() {
        let topo = Topology::new(2, 1, 1);
        let maps = vec![map_task(1.0, vec![0])];
        let mk = |bytes| {
            simulate(
                &topo,
                &SimParams {
                    net_mb_s: 100.0,
                    cross_rack_mb_s: 100.0,
                    ..SimParams::instant()
                },
                &maps,
                &[reduce_task(0.0, bytes)],
            )
        };
        let small = mk(0);
        let big = mk(1_000_000_000); // 1 GB over 100 MB/s, half remote
        assert!(big.makespan_s > small.makespan_s + 4.0);
        assert_eq!(big.shuffle_bytes, 1_000_000_000);
    }

    #[test]
    fn startup_overhead_reported_not_included() {
        let topo = Topology::parapluie();
        let r = simulate(
            &topo,
            &SimParams::parapluie(),
            &[map_task(0.1, vec![0])],
            &[],
        );
        assert!((r.cluster_startup_s - 25.0).abs() < 1e-9);
        // Cluster startup is reported separately, not in the makespan; the
        // makespan still carries the per-job overhead.
        let p = SimParams::parapluie();
        assert!(r.makespan_s >= p.job_overhead_s);
        assert!(r.makespan_s < p.job_overhead_s + p.cluster_startup_s);
    }

    #[test]
    fn speculative_execution_caps_straggler_damage() {
        let topo = Topology::new(4, 1, 2);
        let tasks: Vec<MapTaskSim> = (0..32).map(|n| map_task(1.0, vec![n % 4])).collect();
        let base = SimParams {
            straggler_prob: 0.25,
            straggler_slowdown: 10.0,
            speculative_execution: false,
            ..SimParams::instant()
        };
        let slow = simulate(&topo, &base, &tasks, &[]);
        let spec = simulate(
            &topo,
            &SimParams {
                speculative_execution: true,
                ..base
            },
            &tasks,
            &[],
        );
        assert!(slow.stragglers > 0, "{slow:?}");
        assert_eq!(slow.stragglers, spec.stragglers, "same injected stragglers");
        assert_eq!(spec.speculated, spec.stragglers);
        assert_eq!(slow.speculated, 0);
        assert!(
            spec.makespan_s < slow.makespan_s,
            "speculation should help: {} vs {}",
            spec.makespan_s,
            slow.makespan_s
        );
        // Without stragglers both match the clean schedule.
        let clean = simulate(&topo, &SimParams::instant(), &tasks, &[]);
        assert!(clean.makespan_s <= spec.makespan_s);
        assert_eq!(clean.stragglers, 0);
    }

    #[test]
    fn scheduling_decisions_recorded_with_locality_tags() {
        let topo = Topology::new(2, 2, 1); // 2 nodes, 2 racks
        let tasks = vec![map_task(1.0, vec![0]), map_task(1.0, vec![0])];
        let reduces = vec![reduce_task(1.0, 8)];
        let rec = Recorder::enabled();
        simulate_with(&topo, &SimParams::instant(), &tasks, &reduces, &rec);
        let events = rec.events();
        let map_points: Vec<_> = events.iter().filter(|e| e.name == "sched.map").collect();
        assert_eq!(map_points.len(), 2);
        let localities: Vec<_> = map_points
            .iter()
            .filter_map(|e| e.label("locality"))
            .collect();
        assert!(localities.contains(&"data-local"), "{localities:?}");
        assert!(localities.contains(&"remote"), "{localities:?}");
        for p in &map_points {
            assert!(p.label("task").is_some() && p.label("node").is_some());
            assert!(p.value.unwrap() > 0.0);
        }
        assert_eq!(
            events.iter().filter(|e| e.name == "sched.reduce").count(),
            1
        );
    }

    #[test]
    fn cpu_scale_stretches_time() {
        let topo = Topology::new(1, 1, 1);
        let p = SimParams {
            cpu_scale: 10.0,
            ..SimParams::instant()
        };
        let r = simulate(&topo, &p, &[map_task(1.0, vec![0])], &[]);
        assert!((r.makespan_s - 10.0).abs() < 1e-9);
    }

    // ---- chaos-path tests ----

    /// 1 s per task regardless of host time: see [`SimParams::unit_time`].
    fn unit() -> SimParams {
        SimParams::unit_time()
    }

    fn unit_tasks(n: usize, nodes: usize) -> Vec<MapTaskSim> {
        (0..n)
            .map(|i| MapTaskSim {
                block: i as BlockId,
                replicas: vec![i % nodes, (i + 1) % nodes],
                ..map_task(5.0, vec![])
            })
            .collect()
    }

    #[test]
    fn failed_attempts_charge_virtual_time() {
        let topo = Topology::new(1, 1, 1);
        let mut task = map_task(0.0, vec![0]);
        task.failed_attempts = vec![0.5, 0.5];
        let clean = simulate(&topo, &unit(), &[map_task(0.0, vec![0])], &[]);
        let flaky = simulate(&topo, &unit(), &[task], &[]);
        // Each failed attempt burns the 1 s startup (body is 0 here).
        assert!((clean.makespan_s - 1.0).abs() < 1e-9);
        assert!(
            (flaky.makespan_s - 3.0).abs() < 1e-9,
            "{}",
            flaky.makespan_s
        );
        assert!((flaky.failed_attempt_s - 2.0).abs() < 1e-9);
    }

    #[test]
    fn reduce_failed_attempts_charge_too() {
        let topo = Topology::new(1, 1, 1);
        let maps = vec![map_task(0.0, vec![0])];
        let mut red = reduce_task(0.0, 0);
        red.failed_attempts = vec![0.0];
        let r = simulate(&topo, &unit(), &maps, &[red]);
        // 1 s map + 1 s failed reduce startup + 1 s good reduce.
        assert!((r.makespan_s - 3.0).abs() < 1e-9, "{}", r.makespan_s);
        assert!(r.failed_attempt_s > 0.0);
    }

    #[test]
    fn node_crash_invalidates_completed_maps_and_reexecutes() {
        let topo = Topology::new(2, 1, 1);
        // 4 unit tasks over 2 nodes ⇒ map barrier at 2 s without chaos.
        // Node 0 dies at t=2.5 s... but with reducers pushing the barrier
        // past it we instead crash it *during* the map phase tail: use 6
        // tasks (barrier at 3 s) and kill node 0 at 2.5 s — its completed
        // maps from t<2.5 are re-executed on node 1.
        let tasks: Vec<MapTaskSim> = (0..6)
            .map(|i| MapTaskSim {
                block: i as BlockId,
                replicas: vec![0, 1],
                ..map_task(0.0, vec![])
            })
            .collect();
        let chaos = ChaosPlan::none().crash_node(0, 2.5);
        let r = simulate_chaos(
            &topo,
            &unit(),
            &chaos,
            0.0,
            &tasks,
            &[],
            &Recorder::disabled(),
        )
        .unwrap();
        assert!(r.reexecuted_maps >= 2, "{r:?}");
        // All 6 tasks eventually completed on the surviving node only.
        let clean = simulate(&topo, &unit(), &tasks, &[]);
        assert!(r.makespan_s > clean.makespan_s, "{r:?} vs {clean:?}");
    }

    #[test]
    fn dead_replicas_fail_over_and_count() {
        let topo = Topology::new(3, 1, 1);
        // Task data on nodes 0 and 1; node 0 dead from the start.
        let mut task = map_task(0.0, vec![0, 1]);
        task.block = 7;
        let chaos = ChaosPlan::none().crash_node(0, 0.0);
        let r = simulate_chaos(
            &topo,
            &unit(),
            &chaos,
            0.0,
            &[task],
            &[],
            &Recorder::disabled(),
        )
        .unwrap();
        assert_eq!(r.failed_over_reads, 1, "{r:?}");
    }

    #[test]
    fn corrupt_replicas_fail_over_and_count() {
        let topo = Topology::new(2, 1, 1);
        let mut task = map_task(0.0, vec![0, 1]);
        task.block = 3;
        task.corrupted = vec![true, false];
        let r = simulate_chaos(
            &topo,
            &unit(),
            &ChaosPlan::none(),
            0.0,
            &[task],
            &[],
            &Recorder::disabled(),
        )
        .unwrap();
        assert_eq!(r.failed_over_reads, 1, "{r:?}");
    }

    #[test]
    fn unreadable_block_is_a_typed_error() {
        let topo = Topology::new(3, 1, 1);
        let mut task = map_task(0.0, vec![0, 1]);
        task.block = 9;
        let chaos = ChaosPlan::none().crash_node(0, 0.0).crash_node(1, 0.0);
        let err = simulate_chaos(
            &topo,
            &unit(),
            &chaos,
            0.0,
            &[task],
            &[],
            &Recorder::disabled(),
        )
        .unwrap_err();
        assert_eq!(err, SimError::UnreadableBlock(9));
    }

    #[test]
    fn all_nodes_dead_is_a_typed_error() {
        let topo = Topology::new(2, 1, 1);
        let chaos = ChaosPlan::none().crash_node(0, 0.0).crash_node(1, 0.0);
        let err = simulate_chaos(
            &topo,
            &unit(),
            &chaos,
            0.0,
            &unit_tasks(2, 2),
            &[],
            &Recorder::disabled(),
        )
        .unwrap_err();
        assert_eq!(err, SimError::NoLiveNodes);
    }

    #[test]
    fn repeated_failures_blacklist_a_node_but_never_the_last() {
        let topo = Topology::new(2, 1, 1);
        // Every task's injected failures would land rotation-fairly on
        // both nodes; give tasks enough failures to cross the threshold.
        let mut tasks = unit_tasks(4, 2);
        for t in &mut tasks {
            t.failed_attempts = vec![0.0, 0.0];
        }
        let chaos = ChaosPlan::none().blacklist_after(2);
        let r = simulate_chaos(
            &topo,
            &unit(),
            &chaos,
            0.0,
            &tasks,
            &[],
            &Recorder::disabled(),
        )
        .unwrap();
        // One node crosses the threshold and is blacklisted; the other
        // is the last usable node and must survive to finish the job.
        assert_eq!(r.blacklisted_nodes, 1, "{r:?}");
    }

    #[test]
    fn degraded_node_slows_its_tasks() {
        let topo = Topology::new(1, 1, 1);
        let task = map_task(1.0, vec![0]);
        let p = SimParams::instant();
        let clean = simulate(&topo, &p, std::slice::from_ref(&task), &[]);
        let slow = simulate_chaos(
            &topo,
            &p,
            &ChaosPlan::none().degrade_node(0, 0.0, 3.0),
            0.0,
            &[task],
            &[],
            &Recorder::disabled(),
        )
        .unwrap();
        assert!((clean.makespan_s - 1.0).abs() < 1e-9);
        assert!((slow.makespan_s - 3.0).abs() < 1e-9, "{}", slow.makespan_s);
    }

    #[test]
    fn start_offset_shifts_crash_times() {
        let topo = Topology::new(2, 1, 1);
        let tasks = unit_tasks(4, 2);
        // Crash at absolute t=1.0; a job starting at t=10 never sees it
        // as "mid-job" — the node is simply dead from its start.
        let chaos = ChaosPlan::none().crash_node(0, 1.0);
        let late = simulate_chaos(
            &topo,
            &unit(),
            &chaos,
            10.0,
            &tasks,
            &[],
            &Recorder::disabled(),
        )
        .unwrap();
        assert_eq!(late.crash_killed_attempts, 0);
        assert_eq!(late.reexecuted_maps, 0);
        // Everything ran on node 1 ⇒ 4 s of serialized unit tasks.
        assert!((late.map_phase_s - 4.0).abs() < 1e-9, "{late:?}");
    }

    #[test]
    fn chaos_replay_is_deterministic() {
        let topo = Topology::new(3, 2, 2);
        let tasks = unit_tasks(12, 3);
        let chaos = || {
            ChaosPlan::none()
                .crash_node(1, 2.5)
                .degrade_node(2, 0.0, 2.0)
        };
        let a = simulate_chaos(
            &topo,
            &unit(),
            &chaos(),
            0.0,
            &tasks,
            &[reduce_task(0.0, 100)],
            &Recorder::disabled(),
        )
        .unwrap();
        let b = simulate_chaos(
            &topo,
            &unit(),
            &chaos(),
            0.0,
            &tasks,
            &[reduce_task(0.0, 100)],
            &Recorder::disabled(),
        )
        .unwrap();
        assert_eq!(a, b);
    }
}
