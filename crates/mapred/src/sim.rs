//! The cluster-time simulator.
//!
//! Map/reduce tasks *really* execute in parallel on host threads (see
//! [`crate::job`]); this module answers "how long would this job have
//! taken on the paper's cluster?" by replaying each task's **measured**
//! CPU time through a locality-aware slot scheduler over a virtual
//! [`Topology`]. It models the effects the paper's evaluation turns on:
//!
//! - one map task per chunk, scheduled preferring data-local, then
//!   rack-local, then remote nodes (§III: "priority is given to
//!   neighboring nodes, i.e. belonging to the same network rack");
//! - reducers start only after the map phase completes;
//! - shuffle transfer time proportional to intermediate bytes;
//! - a constant deployment overhead ("approximately 25 seconds", §VI).

use crate::topology::{NodeId, Topology};
use gepeto_telemetry::Recorder;
use serde::{Deserialize, Serialize};

/// Where a map task ran relative to its input chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Locality {
    /// On a node holding a replica of the chunk.
    DataLocal,
    /// On a different node of a replica-holding rack.
    RackLocal,
    /// Anywhere else: the chunk crosses racks.
    Remote,
}

impl Locality {
    /// Stable lowercase tag used in telemetry labels.
    pub fn as_str(self) -> &'static str {
        match self {
            Locality::DataLocal => "data-local",
            Locality::RackLocal => "rack-local",
            Locality::Remote => "remote",
        }
    }
}

/// Time-model parameters of the virtual cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimParams {
    /// Fixed per-task overhead (task launch, JVM reuse, heartbeat), secs.
    pub task_startup_s: f64,
    /// Multiplier from measured host-thread seconds to virtual-node
    /// seconds (>1 emulates slower 2013-era cores). This carries the
    /// *algorithmic* cost differences (e.g. Haversine vs squared
    /// Euclidean) into the virtual timeline.
    pub cpu_scale: f64,
    /// Fixed per-record cost in microseconds, modeling Hadoop's
    /// per-record overhead (text parsing, serialization, object churn) —
    /// the dominant term of the paper's per-iteration times, invisible
    /// to a Rust host measurement.
    pub per_record_us: f64,
    /// Intra-rack network bandwidth, MB/s.
    pub net_mb_s: f64,
    /// Cross-rack network bandwidth, MB/s.
    pub cross_rack_mb_s: f64,
    /// One-off HDFS deployment + daemon startup overhead, secs.
    pub cluster_startup_s: f64,
    /// Per-job fixed overhead (job setup, split computation, commit) —
    /// what dominates small Hadoop jobs; added once to every makespan.
    pub job_overhead_s: f64,
    /// Probability that a task lands on a straggling executor
    /// (deterministic per task index; 0 disables straggler modeling).
    pub straggler_prob: f64,
    /// Slowdown factor a straggling task suffers.
    pub straggler_slowdown: f64,
    /// Hadoop's speculative execution: when a straggler is detected a
    /// backup task is launched on another node, capping the effective
    /// slowdown at ~2× nominal (detection + fresh run).
    pub speculative_execution: bool,
}

impl SimParams {
    /// Profile calibrated to the paper's §VI observations: ~25 s
    /// deployment overhead, gigabit-class network, sub-second task
    /// startup, and a CPU scale that maps one 2026 host thread to one
    /// 1.7 GHz Opteron core.
    pub fn parapluie() -> Self {
        Self {
            task_startup_s: 0.8,
            cpu_scale: 15.0,
            per_record_us: 25.0,
            net_mb_s: 112.0,
            cross_rack_mb_s: 80.0,
            cluster_startup_s: 25.0,
            job_overhead_s: 20.0,
            straggler_prob: 0.03,
            straggler_slowdown: 6.0,
            speculative_execution: true,
        }
    }

    /// Overhead-free profile for unit tests: virtual time ≈ pure measured
    /// CPU time.
    pub fn instant() -> Self {
        Self {
            task_startup_s: 0.0,
            cpu_scale: 1.0,
            per_record_us: 0.0,
            net_mb_s: f64::INFINITY,
            cross_rack_mb_s: f64::INFINITY,
            cluster_startup_s: 0.0,
            job_overhead_s: 0.0,
            straggler_prob: 0.0,
            straggler_slowdown: 1.0,
            speculative_execution: false,
        }
    }
}

/// One map task's inputs to the simulator.
#[derive(Debug, Clone)]
pub struct MapTaskSim {
    /// Measured host-thread seconds of the task body.
    pub host_secs: f64,
    /// Bytes of the input chunk (transferred when run non-locally).
    pub input_bytes: u64,
    /// Records in the input chunk (drives the per-record cost model).
    pub records: u64,
    /// Datanodes holding replicas of the input chunk.
    pub replicas: Vec<NodeId>,
}

/// One reduce task's inputs to the simulator.
#[derive(Debug, Clone)]
pub struct ReduceTaskSim {
    /// Measured host-thread seconds of the task body.
    pub host_secs: f64,
    /// Intermediate bytes this reducer pulls from mappers.
    pub shuffle_bytes: u64,
    /// Intermediate records this reducer consumes.
    pub records: u64,
}

/// The simulator's verdict for one job.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Virtual job time excluding cluster startup, seconds.
    pub makespan_s: f64,
    /// Virtual map-phase span, seconds.
    pub map_phase_s: f64,
    /// Virtual shuffle+reduce span, seconds.
    pub reduce_phase_s: f64,
    /// The modeled one-off deployment overhead, seconds.
    pub cluster_startup_s: f64,
    /// Tasks that hit a straggling executor.
    pub stragglers: usize,
    /// Stragglers rescued by a speculative backup task.
    pub speculated: usize,
    /// Map tasks that ran data-local / rack-local / remote.
    pub data_local: usize,
    /// See [`SimReport::data_local`].
    pub rack_local: usize,
    /// See [`SimReport::data_local`].
    pub remote: usize,
    /// Total bytes shuffled from mappers to reducers.
    pub shuffle_bytes: u64,
}

/// Per-node slot pool: each node owns `slots` identical slots whose next
/// free times are tracked individually.
struct SlotPool {
    free_at: Vec<Vec<f64>>, // free_at[node][slot]
    /// Rotates the tie-break start so simultaneous-idle nodes take turns
    /// (a heartbeat-order stand-in; without it every task of an idle
    /// cluster would land on node 0).
    rotation: usize,
}

impl SlotPool {
    fn new(topology: &Topology) -> Self {
        Self {
            free_at: vec![vec![0.0; topology.slots_per_node()]; topology.num_nodes()],
            rotation: 0,
        }
    }

    /// `(node, slot, time)` of the earliest free slot; ties broken
    /// round-robin across nodes (deterministic).
    fn earliest(&mut self) -> (NodeId, usize, f64) {
        let n_nodes = self.free_at.len();
        let mut best = (0usize, 0usize, f64::INFINITY);
        for i in 0..n_nodes {
            let n = (self.rotation + i) % n_nodes;
            for (s, &t) in self.free_at[n].iter().enumerate() {
                if t < best.2 {
                    best = (n, s, t);
                }
            }
        }
        self.rotation = (best.0 + 1) % n_nodes;
        best
    }

    fn occupy(&mut self, node: NodeId, slot: usize, until: f64) {
        self.free_at[node][slot] = until;
    }
}

/// Replays a job's measured task times on the virtual cluster.
///
/// Scheduling model: whenever a slot frees (pull-based, like tasktracker
/// heartbeats), the jobtracker hands it the first still-pending map task
/// that is data-local to that node, else rack-local, else any pending
/// task — Hadoop's locality waterfall.
pub fn simulate(
    topology: &Topology,
    params: &SimParams,
    map_tasks: &[MapTaskSim],
    reduce_tasks: &[ReduceTaskSim],
) -> SimReport {
    simulate_with(
        topology,
        params,
        map_tasks,
        reduce_tasks,
        &Recorder::disabled(),
    )
}

/// [`simulate`] with telemetry: every slot assignment is recorded as a
/// `sched.map` / `sched.reduce` point event carrying the simulated task
/// duration (seconds) and `task` / `node` / `locality` labels — the
/// jobtracker-side scheduling log the paper's locality analysis reads.
pub fn simulate_with(
    topology: &Topology,
    params: &SimParams,
    map_tasks: &[MapTaskSim],
    reduce_tasks: &[ReduceTaskSim],
    telemetry: &Recorder,
) -> SimReport {
    let mut report = SimReport {
        cluster_startup_s: params.cluster_startup_s,
        ..SimReport::default()
    };

    // ---- map wave ----
    let mut pool = SlotPool::new(topology);
    let mut pending: Vec<usize> = (0..map_tasks.len()).collect();
    let mut map_end: f64 = 0.0;
    let mut task_seq = 0usize;
    while !pending.is_empty() {
        let (node, slot, at) = pool.earliest();
        let rack = topology.rack_of(node);
        // Locality waterfall over the pending list.
        let pick = pending
            .iter()
            .position(|&t| map_tasks[t].replicas.contains(&node))
            .map(|i| (i, Locality::DataLocal))
            .or_else(|| {
                pending
                    .iter()
                    .position(|&t| {
                        map_tasks[t]
                            .replicas
                            .iter()
                            .any(|&r| topology.rack_of(r) == rack)
                    })
                    .map(|i| (i, Locality::RackLocal))
            })
            .unwrap_or((0, Locality::Remote));
        let (idx, locality) = pick;
        let tid = pending.swap_remove(idx);
        let task = &map_tasks[tid];
        let transfer_s = match locality {
            Locality::DataLocal => 0.0,
            Locality::RackLocal => task.input_bytes as f64 / (params.net_mb_s * 1e6),
            Locality::Remote => task.input_bytes as f64 / (params.cross_rack_mb_s * 1e6),
        };
        match locality {
            Locality::DataLocal => report.data_local += 1,
            Locality::RackLocal => report.rack_local += 1,
            Locality::Remote => report.remote += 1,
        }
        let nominal = params.task_startup_s
            + transfer_s
            + task.records as f64 * params.per_record_us * 1e-6
            + task.host_secs * params.cpu_scale;
        task_seq += 1;
        let dur = straggler_adjusted(params, task_seq, nominal, &mut report);
        if telemetry.is_enabled() {
            telemetry.point(
                "sched.map",
                dur,
                &[
                    ("task", &tid.to_string()),
                    ("node", &node.to_string()),
                    ("locality", locality.as_str()),
                ],
            );
        }
        let end = at + dur;
        pool.occupy(node, slot, end);
        map_end = map_end.max(end);
    }
    report.map_phase_s = map_end;

    // ---- shuffle + reduce wave (starts when the map phase completes) ----
    let mut reduce_end = map_end;
    if !reduce_tasks.is_empty() {
        let mut pool = SlotPool::new(topology);
        // Slots only become usable at map_end.
        for node in pool.free_at.iter_mut() {
            for t in node.iter_mut() {
                *t = map_end;
            }
        }
        // On average (N-1)/N of a reducer's input crosses the network.
        let remote_fraction = if topology.num_nodes() > 1 {
            (topology.num_nodes() - 1) as f64 / topology.num_nodes() as f64
        } else {
            0.0
        };
        for (tid, task) in reduce_tasks.iter().enumerate() {
            let (node, slot, at) = pool.earliest();
            let transfer_s = task.shuffle_bytes as f64 * remote_fraction / (params.net_mb_s * 1e6);
            let nominal = params.task_startup_s
                + transfer_s
                + task.records as f64 * params.per_record_us * 1e-6
                + task.host_secs * params.cpu_scale;
            task_seq += 1;
            let dur = straggler_adjusted(params, task_seq, nominal, &mut report);
            if telemetry.is_enabled() {
                telemetry.point(
                    "sched.reduce",
                    dur,
                    &[("task", &tid.to_string()), ("node", &node.to_string())],
                );
            }
            pool.occupy(node, slot, at + dur);
            reduce_end = reduce_end.max(at + dur);
            report.shuffle_bytes += task.shuffle_bytes;
        }
    }
    report.reduce_phase_s = reduce_end - map_end;
    report.makespan_s = reduce_end + params.job_overhead_s;
    report
}

/// Applies the straggler model to one task's nominal duration.
///
/// With probability `straggler_prob` (deterministic in the task's
/// sequence number) the executor is slow by `straggler_slowdown`. With
/// speculative execution on, the jobtracker launches a backup once the
/// task overruns its nominal time, so the effective duration caps at
/// ~2× nominal (detection latency + a fresh full run).
fn straggler_adjusted(
    params: &SimParams,
    task_seq: usize,
    nominal: f64,
    report: &mut SimReport,
) -> f64 {
    if params.straggler_prob <= 0.0 {
        return nominal;
    }
    let roll = crate::hash::unit_hash(&("straggler", task_seq));
    if roll >= params.straggler_prob {
        return nominal;
    }
    report.stragglers += 1;
    let slowed = nominal * params.straggler_slowdown.max(1.0);
    if params.speculative_execution {
        report.speculated += 1;
        slowed.min(nominal * 2.0)
    } else {
        slowed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_task(secs: f64, replicas: Vec<NodeId>) -> MapTaskSim {
        MapTaskSim {
            host_secs: secs,
            input_bytes: 64 << 20,
            records: 0,
            replicas,
        }
    }

    #[test]
    fn single_task_takes_its_duration() {
        let topo = Topology::new(2, 1, 1);
        let r = simulate(&topo, &SimParams::instant(), &[map_task(3.0, vec![0])], &[]);
        assert!((r.makespan_s - 3.0).abs() < 1e-9);
        assert_eq!(r.data_local, 1);
        assert_eq!(r.reduce_phase_s, 0.0);
    }

    #[test]
    fn parallel_tasks_overlap() {
        let topo = Topology::new(4, 1, 1);
        let tasks: Vec<MapTaskSim> = (0..4).map(|n| map_task(2.0, vec![n])).collect();
        let r = simulate(&topo, &SimParams::instant(), &tasks, &[]);
        assert!((r.makespan_s - 2.0).abs() < 1e-9, "{}", r.makespan_s);
        assert_eq!(r.data_local, 4);
    }

    #[test]
    fn limited_slots_serialize_work() {
        let topo = Topology::new(1, 1, 2);
        let tasks: Vec<MapTaskSim> = (0..4).map(|_| map_task(1.0, vec![0])).collect();
        let r = simulate(&topo, &SimParams::instant(), &tasks, &[]);
        // 4 tasks of 1 s on 2 slots = 2 s.
        assert!((r.makespan_s - 2.0).abs() < 1e-9);
    }

    #[test]
    fn more_chunks_faster_with_free_slots() {
        // The Table III effect: with slots to spare, halving the chunk
        // size (twice the tasks, each half as long) shortens the job
        // because the long tail shrinks.
        let topo = Topology::new(5, 1, 4); // 20 slots
        let coarse: Vec<MapTaskSim> = (0..24).map(|n| map_task(2.0, vec![n % 5])).collect();
        let fine: Vec<MapTaskSim> = (0..48).map(|n| map_task(1.0, vec![n % 5])).collect();
        let p = SimParams {
            task_startup_s: 0.05,
            ..SimParams::instant()
        };
        let rc = simulate(&topo, &p, &coarse, &[]);
        let rf = simulate(&topo, &p, &fine, &[]);
        assert!(
            rf.makespan_s < rc.makespan_s,
            "fine {} vs coarse {}",
            rf.makespan_s,
            rc.makespan_s
        );
    }

    #[test]
    fn locality_waterfall_prefers_local() {
        let topo = Topology::new(2, 2, 1); // 2 nodes, 2 racks
                                           // Both tasks' data on node 0; node 1's slot is equally free, so one
                                           // task must run remote (different rack).
        let tasks = vec![map_task(1.0, vec![0]), map_task(1.0, vec![0])];
        let r = simulate(&topo, &SimParams::instant(), &tasks, &[]);
        assert_eq!(r.data_local, 1);
        assert_eq!(r.remote, 1);
    }

    #[test]
    fn rack_local_counted() {
        let topo = Topology::new(4, 2, 1); // racks 0,1,0,1
                                           // Data on nodes 0 (rack 0) only; nodes 2 shares rack 0.
        let tasks = vec![
            map_task(1.0, vec![0]),
            map_task(1.0, vec![0]),
            map_task(1.0, vec![0]),
            map_task(1.0, vec![0]),
        ];
        let r = simulate(&topo, &SimParams::instant(), &tasks, &[]);
        assert_eq!(r.data_local + r.rack_local + r.remote, 4);
        assert!(r.rack_local >= 1, "{r:?}");
    }

    #[test]
    fn reducers_wait_for_map_phase() {
        let topo = Topology::new(2, 1, 2);
        let maps = vec![map_task(2.0, vec![0]), map_task(1.0, vec![1])];
        let reduces = vec![ReduceTaskSim {
            host_secs: 1.0,
            shuffle_bytes: 0,
            records: 0,
        }];
        let r = simulate(&topo, &SimParams::instant(), &maps, &reduces);
        // map phase = 2 s, reduce = 1 s, strictly sequential phases.
        assert!((r.makespan_s - 3.0).abs() < 1e-9, "{}", r.makespan_s);
        assert!((r.map_phase_s - 2.0).abs() < 1e-9);
        assert!((r.reduce_phase_s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shuffle_bytes_add_transfer_time() {
        let topo = Topology::new(2, 1, 1);
        let maps = vec![map_task(1.0, vec![0])];
        let mk = |bytes| {
            simulate(
                &topo,
                &SimParams {
                    net_mb_s: 100.0,
                    cross_rack_mb_s: 100.0,
                    ..SimParams::instant()
                },
                &maps,
                &[ReduceTaskSim {
                    host_secs: 0.0,
                    shuffle_bytes: bytes,
                    records: 0,
                }],
            )
        };
        let small = mk(0);
        let big = mk(1_000_000_000); // 1 GB over 100 MB/s, half remote
        assert!(big.makespan_s > small.makespan_s + 4.0);
        assert_eq!(big.shuffle_bytes, 1_000_000_000);
    }

    #[test]
    fn startup_overhead_reported_not_included() {
        let topo = Topology::parapluie();
        let r = simulate(
            &topo,
            &SimParams::parapluie(),
            &[map_task(0.1, vec![0])],
            &[],
        );
        assert!((r.cluster_startup_s - 25.0).abs() < 1e-9);
        // Cluster startup is reported separately, not in the makespan; the
        // makespan still carries the per-job overhead.
        let p = SimParams::parapluie();
        assert!(r.makespan_s >= p.job_overhead_s);
        assert!(r.makespan_s < p.job_overhead_s + p.cluster_startup_s);
    }

    #[test]
    fn speculative_execution_caps_straggler_damage() {
        let topo = Topology::new(4, 1, 2);
        let tasks: Vec<MapTaskSim> = (0..32).map(|n| map_task(1.0, vec![n % 4])).collect();
        let base = SimParams {
            straggler_prob: 0.25,
            straggler_slowdown: 10.0,
            speculative_execution: false,
            ..SimParams::instant()
        };
        let slow = simulate(&topo, &base, &tasks, &[]);
        let spec = simulate(
            &topo,
            &SimParams {
                speculative_execution: true,
                ..base
            },
            &tasks,
            &[],
        );
        assert!(slow.stragglers > 0, "{slow:?}");
        assert_eq!(slow.stragglers, spec.stragglers, "same injected stragglers");
        assert_eq!(spec.speculated, spec.stragglers);
        assert_eq!(slow.speculated, 0);
        assert!(
            spec.makespan_s < slow.makespan_s,
            "speculation should help: {} vs {}",
            spec.makespan_s,
            slow.makespan_s
        );
        // Without stragglers both match the clean schedule.
        let clean = simulate(&topo, &SimParams::instant(), &tasks, &[]);
        assert!(clean.makespan_s <= spec.makespan_s);
        assert_eq!(clean.stragglers, 0);
    }

    #[test]
    fn scheduling_decisions_recorded_with_locality_tags() {
        let topo = Topology::new(2, 2, 1); // 2 nodes, 2 racks
        let tasks = vec![map_task(1.0, vec![0]), map_task(1.0, vec![0])];
        let reduces = vec![ReduceTaskSim {
            host_secs: 1.0,
            shuffle_bytes: 8,
            records: 0,
        }];
        let rec = Recorder::enabled();
        simulate_with(&topo, &SimParams::instant(), &tasks, &reduces, &rec);
        let events = rec.events();
        let map_points: Vec<_> = events.iter().filter(|e| e.name == "sched.map").collect();
        assert_eq!(map_points.len(), 2);
        let localities: Vec<_> = map_points
            .iter()
            .filter_map(|e| e.label("locality"))
            .collect();
        assert!(localities.contains(&"data-local"), "{localities:?}");
        assert!(localities.contains(&"remote"), "{localities:?}");
        for p in &map_points {
            assert!(p.label("task").is_some() && p.label("node").is_some());
            assert!(p.value.unwrap() > 0.0);
        }
        assert_eq!(
            events.iter().filter(|e| e.name == "sched.reduce").count(),
            1
        );
    }

    #[test]
    fn cpu_scale_stretches_time() {
        let topo = Topology::new(1, 1, 1);
        let p = SimParams {
            cpu_scale: 10.0,
            ..SimParams::instant()
        };
        let r = simulate(&topo, &p, &[map_task(1.0, vec![0])], &[]);
        assert!((r.makespan_s - 10.0).abs() < 1e-9);
    }
}
