//! Atomic, verifiable commits for every durable byte the engine writes.
//!
//! Spill runs, reduce partition artifacts, and run outputs all go through
//! the same protocol: write `payload` to `<path>.tmp`, append a fixed
//! 24-byte footer — `[payload_len: u64 LE][fnv64: u64 LE][magic: 8 B]` —
//! fsync, then rename over `path`. The magic sits *last* so structural
//! verification is a single O(1) trailer read: a torn write (any prefix
//! of the stream) either loses the magic or leaves a length that
//! disagrees with the file size. Deep verification re-hashes the payload
//! and catches at-rest bit-rot that a torn-write check cannot.
//!
//! Faults from the cluster's [`ChaosPlan`] IO plan are injected *here*,
//! beneath every caller: transient EIOs are absorbed by a bounded retry
//! loop that charges virtual-time backoff, torn writes and bit-rot are
//! materialized into the committed file (for the verifying readers to
//! catch), and ENOSPC surfaces as [`CommitError::DiskFull`] for the
//! storage-aware retry policy to handle.

use crate::chaos::{ChaosPlan, IoFault};
use crate::hash::FnvHasher;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::hash::Hasher;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Trailing magic of every committed file (version-stamped).
pub const COMMIT_MAGIC: &[u8; 8] = b"GEPCMT01";

/// Footer size: payload length + checksum + magic.
pub const FOOTER_BYTES: u64 = 24;

/// Transient EIOs absorbed per commit before giving up.
pub const MAX_IO_ATTEMPTS: u32 = 8;

/// Virtual seconds charged for the first EIO retry (doubles per retry).
pub const EIO_BACKOFF_S: f64 = 0.5;

/// Why a commit or a verifying read failed.
#[derive(Debug, Clone, PartialEq)]
pub enum CommitError {
    /// A real filesystem error, or injected transient EIOs exhausted
    /// the retry budget.
    Io(String),
    /// The disk has no room for this payload (ENOSPC).
    DiskFull(String),
    /// Structural verification failed: missing magic or a length that
    /// disagrees with the file size — the tail of the write was lost.
    Torn(String),
    /// Structure is intact but the payload no longer matches its
    /// checksum — at-rest corruption.
    Corrupt(String),
}

impl fmt::Display for CommitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommitError::Io(m) => write!(f, "io error: {m}"),
            CommitError::DiskFull(m) => write!(f, "disk full: {m}"),
            CommitError::Torn(m) => write!(f, "torn write detected: {m}"),
            CommitError::Corrupt(m) => write!(f, "checksum mismatch: {m}"),
        }
    }
}

impl std::error::Error for CommitError {}

/// What a successful commit reports back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitReceipt {
    /// Bytes of payload (excludes the footer).
    pub payload_bytes: u64,
    /// FNV-1a checksum of the payload.
    pub checksum: u64,
    /// Injected transient EIOs absorbed before the write stuck.
    pub io_retries: u64,
    /// Virtual milliseconds this commit stalled on storage: EIO retry
    /// backoff plus the configured slow-disk write penalty.
    pub stall_ms: u64,
}

/// FNV-1a over raw bytes (byte-stream flavor of [`crate::fnv_hash`]).
pub fn fnv_bytes(payload: &[u8]) -> u64 {
    let mut h = FnvHasher::default();
    h.write(payload);
    h.finish()
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

fn footer(payload_len: u64, checksum: u64) -> [u8; FOOTER_BYTES as usize] {
    let mut f = [0u8; FOOTER_BYTES as usize];
    f[..8].copy_from_slice(&payload_len.to_le_bytes());
    f[8..16].copy_from_slice(&checksum.to_le_bytes());
    f[16..].copy_from_slice(COMMIT_MAGIC);
    f
}

/// Atomically commits `payload` to `path` with a checksum footer,
/// injecting any storage faults the chaos plan scripts for `site` at
/// retry number `attempt`.
///
/// Injected torn writes and bit-rot are materialized *into the
/// committed file* — the commit itself "succeeds" the way a lying disk
/// does, and the damage is only caught by [`verify_structure`] /
/// [`verify_deep`]. They fire only at `attempt == 0`, so a caller that
/// verifies and re-commits with `attempt + 1` always converges.
///
/// # Errors
/// [`CommitError::DiskFull`] when the virtual disk lacks capacity;
/// [`CommitError::Io`] on real filesystem errors or when injected
/// transient EIOs exceed [`MAX_IO_ATTEMPTS`].
pub fn commit_bytes(
    path: &Path,
    payload: &[u8],
    site: &str,
    attempt: u32,
    chaos: &ChaosPlan,
) -> Result<CommitReceipt, CommitError> {
    let checksum = fnv_bytes(payload);
    let io = chaos.io_plan();
    let mut io_retries = 0u64;
    let mut stall_ms = 0u64;
    let mut try_no = attempt;
    let fault = loop {
        match io.and_then(|p| p.write_fault(site, try_no, payload.len())) {
            Some(IoFault::TransientEio) => {
                io_retries += 1;
                if io_retries >= u64::from(MAX_IO_ATTEMPTS) {
                    return Err(CommitError::Io(format!(
                        "{}: transient EIO persisted for {MAX_IO_ATTEMPTS} attempts",
                        path.display()
                    )));
                }
                let backoff_s = EIO_BACKOFF_S * f64::from(1u32 << (io_retries - 1).min(6) as u32);
                chaos.advance(backoff_s);
                stall_ms += (backoff_s * 1e3).round() as u64;
                try_no += 1;
            }
            Some(IoFault::DiskFull) => {
                return Err(CommitError::DiskFull(format!(
                    "{}: {} payload bytes do not fit",
                    path.display(),
                    payload.len()
                )));
            }
            other => break other,
        }
    };

    let err = |e: std::io::Error| CommitError::Io(format!("{}: {e}", path.display()));
    let tmp = tmp_path(path);
    let mut stream = Vec::with_capacity(payload.len() + FOOTER_BYTES as usize);
    stream.extend_from_slice(payload);
    stream.extend_from_slice(&footer(payload.len() as u64, checksum));
    if let Some(IoFault::TornWrite { keep_bytes }) = fault {
        stream.truncate(keep_bytes);
    }
    {
        let mut f = File::create(&tmp).map_err(err)?;
        f.write_all(&stream).map_err(err)?;
        f.sync_all().map_err(err)?;
    }
    fs::rename(&tmp, path).map_err(err)?;
    if let Some(IoFault::BitRot { offset }) = fault {
        let mut f = OpenOptions::new().write(true).open(path).map_err(err)?;
        f.seek(SeekFrom::Start(offset as u64)).map_err(err)?;
        f.write_all(&[payload[offset] ^ 0x40]).map_err(err)?;
    }
    if let Some(p) = io {
        // Charge what actually landed on disk (minus the footer), so a
        // later quarantine — which releases `file_len - FOOTER_BYTES` —
        // returns exactly this charge.
        p.charge(stream.len().saturating_sub(FOOTER_BYTES as usize) as u64);
        let penalty_s = p.slow_penalty_s(stream.len() as u64);
        chaos.advance(penalty_s);
        stall_ms += (penalty_s * 1e3).round() as u64;
    }
    Ok(CommitReceipt {
        payload_bytes: payload.len() as u64,
        checksum,
        io_retries,
        stall_ms,
    })
}

/// Commits `payload` and then reads it back through [`verify_deep`],
/// quarantining and re-committing until the bytes on disk verify clean.
/// This is the write path for *final* artifacts (a run's `OUTPUT`),
/// where a lying disk must not be able to leave a torn or rotten file
/// behind for a later reader to trip over.
///
/// The returned receipt accumulates the transient-EIO retries across
/// all rewrites.
///
/// # Errors
/// Same classes as [`commit_bytes`], plus [`CommitError::Io`] if the
/// file still fails verification after [`MAX_IO_ATTEMPTS`] rewrites.
pub fn commit_bytes_verified(
    path: &Path,
    payload: &[u8],
    site: &str,
    chaos: &ChaosPlan,
) -> Result<CommitReceipt, CommitError> {
    let mut io_retries = 0u64;
    let mut stall_ms = 0u64;
    for attempt in 0..MAX_IO_ATTEMPTS {
        let receipt = commit_bytes(path, payload, site, attempt, chaos)?;
        io_retries += receipt.io_retries;
        stall_ms += receipt.stall_ms;
        match verify_deep(path) {
            Ok(_) => {
                return Ok(CommitReceipt {
                    io_retries,
                    stall_ms,
                    ..receipt
                })
            }
            Err(CommitError::Torn(_) | CommitError::Corrupt(_)) => {
                quarantine(path, chaos);
            }
            Err(e) => return Err(e),
        }
    }
    Err(CommitError::Io(format!(
        "{}: commit still failed verification after {MAX_IO_ATTEMPTS} rewrites",
        path.display()
    )))
}

/// O(1) structural verification: the footer's magic is present and its
/// recorded payload length matches the file size. Catches torn writes.
///
/// # Errors
/// [`CommitError::Torn`] on any structural mismatch, [`CommitError::Io`]
/// if the file cannot be read at all.
pub fn verify_structure(path: &Path) -> Result<CommitReceipt, CommitError> {
    let err = |e: std::io::Error| CommitError::Io(format!("{}: {e}", path.display()));
    let len = fs::metadata(path).map_err(err)?.len();
    if len < FOOTER_BYTES {
        return Err(CommitError::Torn(format!(
            "{}: {len} bytes is shorter than the commit footer",
            path.display()
        )));
    }
    let mut f = File::open(path).map_err(err)?;
    f.seek(SeekFrom::End(-(FOOTER_BYTES as i64))).map_err(err)?;
    let mut foot = [0u8; FOOTER_BYTES as usize];
    f.read_exact(&mut foot).map_err(err)?;
    if &foot[16..] != COMMIT_MAGIC {
        return Err(CommitError::Torn(format!(
            "{}: commit magic missing",
            path.display()
        )));
    }
    let payload_len = u64::from_le_bytes(foot[..8].try_into().unwrap());
    if payload_len != len - FOOTER_BYTES {
        return Err(CommitError::Torn(format!(
            "{}: footer claims {payload_len} payload bytes, file holds {}",
            path.display(),
            len - FOOTER_BYTES
        )));
    }
    let checksum = u64::from_le_bytes(foot[8..16].try_into().unwrap());
    Ok(CommitReceipt {
        payload_bytes: payload_len,
        checksum,
        io_retries: 0,
        stall_ms: 0,
    })
}

/// Full verification: structure plus a payload re-hash. Catches at-rest
/// bit-rot that structural checks cannot.
///
/// # Errors
/// [`CommitError::Torn`] / [`CommitError::Corrupt`] / [`CommitError::Io`].
pub fn verify_deep(path: &Path) -> Result<CommitReceipt, CommitError> {
    let receipt = verify_structure(path)?;
    let err = |e: std::io::Error| CommitError::Io(format!("{}: {e}", path.display()));
    let mut f = File::open(path).map_err(err)?;
    let mut hasher = FnvHasher::default();
    let mut remaining = receipt.payload_bytes;
    let mut buf = [0u8; 64 * 1024];
    while remaining > 0 {
        let want = remaining.min(buf.len() as u64) as usize;
        f.read_exact(&mut buf[..want]).map_err(err)?;
        hasher.write(&buf[..want]);
        remaining -= want as u64;
    }
    if hasher.finish() != receipt.checksum {
        return Err(CommitError::Corrupt(format!(
            "{}: payload hash {:016x} != footer {:016x}",
            path.display(),
            hasher.finish(),
            receipt.checksum
        )));
    }
    Ok(receipt)
}

/// Reads and fully verifies a committed file, returning the payload.
///
/// # Errors
/// Same classes as [`verify_deep`].
pub fn read_committed(path: &Path) -> Result<Vec<u8>, CommitError> {
    let receipt = verify_structure(path)?;
    let err = |e: std::io::Error| CommitError::Io(format!("{}: {e}", path.display()));
    let mut f = File::open(path).map_err(err)?;
    let mut payload = vec![0u8; receipt.payload_bytes as usize];
    f.read_exact(&mut payload).map_err(err)?;
    if fnv_bytes(&payload) != receipt.checksum {
        return Err(CommitError::Corrupt(format!(
            "{}: payload does not match footer checksum",
            path.display()
        )));
    }
    Ok(payload)
}

/// Moves a failed-verification file aside as `<path>.quarantined`
/// (falling back to deletion), releasing its virtual-disk charge so a
/// rewrite can fit. Returns the quarantine path if the file was kept.
pub fn quarantine(path: &Path, chaos: &ChaosPlan) -> Option<PathBuf> {
    let bytes = fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    if let Some(p) = chaos.io_plan() {
        // The payload charge excludes the footer; never release more
        // than was charged.
        p.release(bytes.saturating_sub(FOOTER_BYTES));
    }
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".quarantined");
    let q = path.with_file_name(name);
    if fs::rename(path, &q).is_ok() {
        Some(q)
    } else {
        let _ = fs::remove_file(path);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::IoFaultPlan;

    fn dir() -> tempdir::TempDir {
        tempdir::TempDir::create()
    }

    // A minimal tempdir helper so these tests need no external crate.
    mod tempdir {
        use std::path::{Path, PathBuf};
        pub struct TempDir(PathBuf);
        impl TempDir {
            pub fn create() -> Self {
                let n = std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos();
                let p = std::env::temp_dir()
                    .join(format!("gepeto-commit-test-{}-{n}", std::process::id()));
                std::fs::create_dir_all(&p).unwrap();
                TempDir(p)
            }
            pub fn path(&self) -> &Path {
                &self.0
            }
        }
        impl Drop for TempDir {
            fn drop(&mut self) {
                let _ = std::fs::remove_dir_all(&self.0);
            }
        }
    }

    #[test]
    fn commit_then_verify_round_trips() {
        let d = dir();
        let path = d.path().join("a.run");
        let chaos = ChaosPlan::none();
        let r = commit_bytes(&path, b"hello world", "a", 0, &chaos).unwrap();
        assert_eq!(r.payload_bytes, 11);
        assert_eq!(r.io_retries, 0);
        assert_eq!(verify_structure(&path).unwrap().checksum, r.checksum);
        verify_deep(&path).unwrap();
        assert_eq!(read_committed(&path).unwrap(), b"hello world");
        assert!(!tmp_path(&path).exists(), "tmp file renamed away");
    }

    #[test]
    fn truncation_is_structurally_detected() {
        let d = dir();
        let path = d.path().join("b.run");
        let chaos = ChaosPlan::none();
        commit_bytes(&path, &[7u8; 256], "b", 0, &chaos).unwrap();
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 5]).unwrap();
        assert!(matches!(verify_structure(&path), Err(CommitError::Torn(_))));
    }

    #[test]
    fn bitrot_passes_structure_but_fails_deep() {
        let d = dir();
        let path = d.path().join("c.run");
        let chaos = ChaosPlan::none();
        commit_bytes(&path, &[9u8; 256], "c", 0, &chaos).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[100] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        verify_structure(&path).unwrap();
        assert!(matches!(verify_deep(&path), Err(CommitError::Corrupt(_))));
        assert!(matches!(
            read_committed(&path),
            Err(CommitError::Corrupt(_))
        ));
    }

    #[test]
    fn injected_torn_write_is_caught_and_heals_on_retry() {
        let d = dir();
        let chaos =
            ChaosPlan::none().io_faults(IoFaultPlan::new(3).torn(1.0).disk_capacity(1 << 20));
        let path = d.path().join("d.run");
        commit_bytes(&path, &[1u8; 512], "d", 0, &chaos).unwrap();
        assert!(matches!(verify_structure(&path), Err(CommitError::Torn(_))));
        assert!(quarantine(&path, &chaos).is_some());
        assert!(!path.exists());
        // Attempt 1 never tears; the rewrite verifies clean.
        commit_bytes(&path, &[1u8; 512], "d", 1, &chaos).unwrap();
        verify_deep(&path).unwrap();
    }

    #[test]
    fn injected_bitrot_is_caught_by_deep_verify() {
        let d = dir();
        let chaos = ChaosPlan::none().io_faults(IoFaultPlan::new(11).bitrot(1.0));
        let path = d.path().join("e.run");
        commit_bytes(&path, &[5u8; 512], "e", 0, &chaos).unwrap();
        verify_structure(&path).unwrap();
        assert!(matches!(verify_deep(&path), Err(CommitError::Corrupt(_))));
        commit_bytes(&path, &[5u8; 512], "e", 1, &chaos).unwrap();
        verify_deep(&path).unwrap();
    }

    #[test]
    fn verified_commit_survives_certain_torn_writes_and_bitrot() {
        let d = dir();
        let chaos = ChaosPlan::none().io_faults(IoFaultPlan::new(7).torn(1.0).bitrot(1.0));
        let path = d.path().join("h.run");
        let r = commit_bytes_verified(&path, &[3u8; 700], "h", &chaos).unwrap();
        assert_eq!(r.payload_bytes, 700);
        verify_deep(&path).unwrap();
        assert_eq!(read_committed(&path).unwrap(), vec![3u8; 700]);
    }

    #[test]
    fn transient_eio_retries_and_charges_the_clock() {
        let d = dir();
        let chaos = ChaosPlan::none().io_faults(IoFaultPlan::new(2).eio(1.0).eio_streak(3));
        let path = d.path().join("f.run");
        let r = commit_bytes(&path, &[2u8; 64], "f", 0, &chaos).unwrap();
        assert_eq!(r.io_retries, 3, "one EIO per attempt below the streak cap");
        assert!(chaos.now() > 0.0, "backoff charged to the virtual clock");
        assert_eq!(r.stall_ms, 3_500, "0.5 + 1 + 2 s of exponential backoff");
        verify_deep(&path).unwrap();
    }

    #[test]
    fn slow_disk_penalty_lands_in_the_receipt() {
        let d = dir();
        // 2 virtual seconds per MiB; a 1 MiB payload (+footer) stalls
        // just over 2000 ms, and the receipt must carry it.
        let chaos = ChaosPlan::none().io_faults(IoFaultPlan::new(0).slow(2.0));
        let path = d.path().join("s.run");
        let r = commit_bytes(&path, &vec![0u8; 1 << 20], "s", 0, &chaos).unwrap();
        assert!(
            r.stall_ms >= 2_000,
            "slow-disk stall missing from receipt: {} ms",
            r.stall_ms
        );
        assert!(chaos.now() >= 2.0, "penalty charged to the virtual clock");
        // A fault-free commit stalls for nothing.
        let calm = ChaosPlan::none();
        let r2 = commit_bytes(&d.path().join("t.run"), b"x", "t", 0, &calm).unwrap();
        assert_eq!(r2.stall_ms, 0);
    }

    #[test]
    fn disk_full_surfaces_and_clears_after_release() {
        let d = dir();
        let plan = IoFaultPlan::new(0).disk_capacity(100);
        let chaos = ChaosPlan::none().io_faults(plan);
        let path = d.path().join("g.run");
        assert!(matches!(
            commit_bytes(&path, &[0u8; 200], "g", 0, &chaos),
            Err(CommitError::DiskFull(_))
        ));
        commit_bytes(&path, &[0u8; 80], "g", 0, &chaos).unwrap();
        assert_eq!(chaos.io_plan().unwrap().bytes_in_use(), 80);
        assert!(quarantine(&path, &chaos).is_some());
        assert_eq!(chaos.io_plan().unwrap().bytes_in_use(), 0);
    }
}
