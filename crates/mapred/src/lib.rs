#![warn(missing_docs)]

//! # gepeto-mapred
//!
//! A from-scratch MapReduce engine standing in for the Hadoop stack the
//! paper runs GEPETO on (Section III). It reproduces the moving parts the
//! paper's evaluation depends on:
//!
//! - **Chunked distributed storage** ([`dfs`]): files are split into
//!   fixed-size chunks ("usually of 64 MB but the chunk size is
//!   parametrable"), replicated with HDFS's rack-aware policy (local copy,
//!   same-rack copy, off-rack copy) across the datanodes of a
//!   [`topology::Topology`]; a namenode-style metadata map tracks replica
//!   locations.
//! - **The programming model** ([`api`], [`job`]): user-defined
//!   [`api::Mapper`]s and [`api::Reducer`]s with Hadoop-style
//!   `setup`/`map`/`cleanup` lifecycles, optional [`api::Combiner`]s,
//!   hash partitioning, a sort-based shuffle that presents all values of a
//!   key to a single reduce call, job configuration strings, counters and
//!   a typed distributed cache.
//! - **Scheduling and the cluster-time model** ([`sim`]): map tasks are
//!   one-per-chunk and really execute in parallel on host threads; their
//!   measured durations are then replayed by a locality-aware slot
//!   scheduler onto a virtual cluster (default: the 7-node *Parapluie*
//!   profile of the paper) to produce Hadoop-like makespans, startup
//!   overhead and shuffle-volume accounting.
//! - **Fault handling** ([`job::FailurePlan`], [`chaos::ChaosPlan`],
//!   [`recover`]): deterministic task-failure injection with bounded
//!   retries, scripted node crashes / replica corruption / node
//!   degradation with replica failover, map re-execution and node
//!   blacklisting, plus driver-level checkpoint-and-retry — mirroring the
//!   jobtracker's "monitoring tasks and handling failures" role.
//!
//! The canonical example — word count:
//!
//! ```
//! use gepeto_mapred::{Cluster, Dfs, Emitter, FnMapper, MapReduceJob, Reducer};
//!
//! #[derive(Clone)]
//! struct Sum;
//! impl Reducer<String, u64> for Sum {
//!     type KOut = String;
//!     type VOut = u64;
//!     fn reduce(&mut self, k: &String, vs: &[u64], out: &mut Emitter<String, u64>) {
//!         out.emit(k.clone(), vs.iter().sum());
//!     }
//! }
//!
//! let cluster = Cluster::local(3, 2);
//! let mut dfs = Dfs::new(cluster.topology.clone(), 32, 3);
//! let words: Vec<String> = "b a n a n a".split_whitespace().map(String::from).collect();
//! dfs.put_fixed("text", words, 8).unwrap();
//!
//! let tokenize = FnMapper::new(|_off, w: &String, out: &mut Emitter<String, u64>| {
//!     out.emit(w.clone(), 1);
//! });
//! let result = MapReduceJob::new("wc", &cluster, &dfs, "text", tokenize, Sum)
//!     .reducers(2)
//!     .run()
//!     .unwrap();
//! let counts: std::collections::BTreeMap<String, u64> = result.output.into_iter().collect();
//! assert_eq!(counts["a"], 3);
//! assert_eq!(counts["n"], 2);
//! assert_eq!(counts["b"], 1);
//! ```

pub mod api;
pub mod cache;
pub mod chaos;
pub mod commit;
pub mod config;
pub mod counters;
pub mod dfs;
pub mod hash;
pub mod job;
pub mod journal;
pub mod pipeline;
pub mod recover;
pub mod sim;
pub mod spill;
pub mod topology;

pub use api::{Combiner, Emitter, FnMapper, Mapper, Reducer, TaskContext};
pub use cache::DistributedCache;
pub use chaos::{ChaosEvent, ChaosPlan, IoFault, IoFaultPlan};
pub use commit::{CommitError, CommitReceipt};
pub use config::JobConfig;
pub use counters::Counters;
pub use dfs::{BlockId, ChunkStream, Dfs, DfsError, RecordStream, RereplicationReport};
pub use job::{
    group_sorted, group_unsorted, FailurePlan, JobError, JobResult, JobStats, MapOnlyJob,
    MapReduceJob,
};
pub use journal::{JournalEntry, ReduceArtifact, RunJournal};
pub use pipeline::PipelineReport;
pub use recover::{run_with_recovery, run_with_recovery_io, RetryPolicy, StorageAdvice};
pub use sim::{Locality, SimParams, SimReport};
pub use spill::{SpillCodec, SpillEncode};
pub use topology::{Cluster, NodeId, Topology};
