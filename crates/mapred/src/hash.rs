//! Deterministic hashing for partitioners and failure injection.
//!
//! Hadoop's default `HashPartitioner` sends a key to reducer
//! `hash(key) mod R`. Rust's `RandomState` is seeded per process, which
//! would make shuffle statistics differ between runs, so a fixed-seed
//! FNV-1a hasher is used instead.

use std::hash::{Hash, Hasher};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A FNV-1a [`Hasher`] with a fixed offset basis — deterministic across
/// processes and platforms.
#[derive(Debug, Clone)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        Self(FNV_OFFSET)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// A [`std::hash::BuildHasher`] producing [`FnvHasher`]s — plug this into
/// `HashMap` when iteration-independent, process-stable hashing matters
/// (the sort-skipping reduce path groups keys with it).
pub type FnvBuildHasher = std::hash::BuildHasherDefault<FnvHasher>;

/// Deterministic 64-bit hash of any `Hash` value.
pub fn fnv_hash<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FnvHasher::default();
    value.hash(&mut h);
    h.finish()
}

/// The default partitioner: `hash(key) mod num_partitions`.
pub fn default_partition<K: Hash>(key: &K, num_partitions: usize) -> usize {
    debug_assert!(num_partitions > 0);
    (fnv_hash(key) % num_partitions as u64) as usize
}

/// Deterministic uniform `[0, 1)` value derived from a tuple of seeds —
/// the basis of reproducible failure injection.
pub fn unit_hash<T: Hash>(value: &T) -> f64 {
    // Use the top 53 bits for a full-precision mantissa.
    (fnv_hash(value) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(fnv_hash("alpha"), fnv_hash("alpha"));
        assert_ne!(fnv_hash("alpha"), fnv_hash("beta"));
    }

    #[test]
    fn known_fnv_vector() {
        // FNV-1a of the empty input is the offset basis.
        assert_eq!(FnvHasher::default().finish(), FNV_OFFSET);
    }

    #[test]
    fn partition_in_range_and_stable() {
        for k in 0..1000u64 {
            let p = default_partition(&k, 7);
            assert!(p < 7);
            assert_eq!(p, default_partition(&k, 7));
        }
    }

    #[test]
    fn partitions_roughly_uniform() {
        let mut counts = [0usize; 8];
        for k in 0..8000u64 {
            counts[default_partition(&k, 8)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "skewed: {counts:?}");
        }
    }

    #[test]
    fn unit_hash_in_unit_interval() {
        for k in 0..1000u32 {
            let u = unit_hash(&("job", k, 0u32));
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_hash_mean_is_centered() {
        let n = 10_000;
        let mean: f64 = (0..n).map(|k| unit_hash(&k)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "{mean}");
    }
}
